#!/usr/bin/env python
"""Changing patterns: online RSU learning under regime drift.

The paper motivates CAD3 with time-varying driving behaviour
(Sec. II, "Changing Patterns") and says each RSU "learns the normal
behavior over time".  This example shows why that matters: halfway
through the stream the road's speed regime drops by 30 % (roadworks /
weather), and

- the offline-trained (static) detector collapses,
- the cumulative online detector (incremental Naive Bayes) partially
  recovers,
- the sliding-window online detector recovers to pre-drift accuracy.

Run:  python examples/drift_adaptation.py
"""

from repro.experiments.drift import drift_adaptation


def main() -> None:
    print("streaming motorway telemetry; speed regime drops 30% mid-stream\n")
    result = drift_adaptation(n_cars=150)
    print(result.format_series())
    print()
    for name in ("static", "cumulative", "window"):
        before = result.mean_accuracy(name, post_drift=False)
        after = result.mean_accuracy(name, post_drift=True)
        delta = after - before
        print(f"{name:<12} accuracy before={before:.3f} "
              f"after={after:.3f} ({delta:+.3f})")
    print(
        "\n-> an RSU that keeps learning (sliding-window refits) tracks the"
        "\n   road's changing normal; a frozen offline model does not."
    )


if __name__ == "__main__":
    main()
