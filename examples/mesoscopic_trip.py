#!/usr/bin/env python
"""Mesoscopic (driver-trip) detection: the paper's Fig. 8.

Follows vehicles across the motorway -> motorway-link handover and
shows how the three models behave along individual trips with an
abnormal-driving episode: CAD3 stays accurate and stable thanks to the
forwarded prediction summaries, AD3 fluctuates, and the centralized
model is unpredictable.

Run:  python examples/mesoscopic_trip.py
"""

from repro.dataset.schema import AnomalyKind
from repro.experiments.datasets import corridor_dataset
from repro.experiments.models import fig8_mesoscopic


def main() -> None:
    dataset = corridor_dataset()
    print(f"dataset: {len(dataset.records)} labelled records\n")

    for anomaly in (AnomalyKind.SLOWING, AnomalyKind.SPEEDING):
        print(f"=== episodes of abnormal {anomaly.value} ===")
        result = fig8_mesoscopic(dataset, anomaly=anomaly)
        print(result.format_aggregate())
        print()
        print("illustrative trip (most model disagreement):")
        print(result.format_timeline())
        for model in ("centralized", "ad3", "cad3"):
            print(f"  {model:<12} trip accuracy={result.accuracy(model):.2f} "
                  f"flips={result.flips(model)}")
        print()


if __name__ == "__main__":
    main()
