#!/usr/bin/env python
"""Edge resilience: RSU failure, vehicle re-homing, state replay.

Edge computing "delivers scalable, highly responsive services and
masks transient cloud outages" (Sec. III-A) — but edge nodes fail too.
This example kills one of the corridor's motorway RSUs mid-run with an
injected :class:`~repro.faults.events.RsuKill`: its vehicles re-home
to a neighbour, the dead node's per-driver prediction state is
replayed into the survivor's CO-DATA, and warnings keep flowing.

Run:  python examples/rsu_failover.py
"""

from repro.core import TestbedScenario
from repro.core.system import default_training_dataset
from repro.faults import FaultProfile, RsuKill


def main() -> None:
    dataset = default_training_dataset(seed=11, n_cars=80)
    kill = FaultProfile(
        "kill-mw-1",
        (RsuKill("rsu-mw-1", at_s=3.0, failover_to="rsu-mw-2"),),
    )
    scenario = (
        TestbedScenario.builder()
        .vehicles(24)
        .duration(6.0)
        .seed(5)
        .faults(kill)
        .corridor(motorways=2, dataset=dataset)
    )
    print("corridor with 2 motorway RSUs + 1 link RSU; "
          "rsu-mw-1 dies at t=3.0 s\n")
    result = scenario.run()

    for name in sorted(result.rsu_metrics):
        metrics = result.rsu_metrics[name]
        failed = scenario.rsus[name].failed
        state = "FAILED at 3.0s" if failed else "alive"
        print(f"{name:<14} {state:<15} events={metrics.n_events:5d} "
              f"warnings={metrics.warnings_issued:4d} "
              f"bw={metrics.bandwidth_in_bps / 1e6:.2f} Mb/s")

    survivor = scenario.rsus["rsu-mw-2"]
    before = sum(1 for e in survivor.events if e.detected_at < 3.0)
    after = sum(1 for e in survivor.events if e.detected_at >= 3.0)
    print(f"\nrsu-mw-2 detections: {before} before the failure, "
          f"{after} after (absorbed rsu-mw-1's vehicles)")

    warnings_received = sum(
        stats.warnings_received for stats in result.vehicle_stats.values()
    )
    print(f"warnings delivered across the run: {warnings_received}")
    for entry in result.resilience.fault_log:
        print(f"fault @ {entry.time_s:.3f}s: {entry.kind} "
              f"{entry.target} {entry.detail}")
    print("\n-> detection continued through the outage, and the dead "
          "node's\n   per-driver histories were replayed into the "
          "survivor's CO-DATA.")


if __name__ == "__main__":
    main()
