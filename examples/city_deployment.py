#!/usr/bin/env python
"""City-scale deployment planning: Tables V-VI and Fig. 9.

Builds the synthetic Shenzhen (road counts and length distributions
calibrated to the paper's Table V), plans the RSU deployment, places
roadside infrastructure calibrated to Table VI, and assesses coverage
as in Fig. 9.

Run:  python examples/city_deployment.py
"""

from repro.deploy import format_table_vi
from repro.experiments.deployment import (
    SHENZHEN_ROAD_TRUNKS,
    build_city,
    city_scale_capacity,
    fig9_coverage,
    table5_placement,
    table6_infrastructure,
)


def main() -> None:
    city = build_city(seed=3)
    print(f"synthetic Shenzhen: {len(city)} frequently-used road trunks, "
          f"{city.total_length_m() / 1000:.0f} km\n")

    print("=== Table V: RSUs required per road type ===")
    plan = table5_placement(network=city)
    print(plan.format_table())
    print(f"\none RSU per {plan.rsu_spacing_m:.0f} m of road; "
          f"each serves up to {plan.vehicles_per_rsu} vehicles under 50 ms")
    print(f"full-city scale: {SHENZHEN_ROAD_TRUNKS:,} road trunks x "
          f"{plan.vehicles_per_rsu} vehicles = "
          f"{city_scale_capacity():,} concurrent road users "
          f"(the paper's 13-million claim)\n")

    print("=== Table VI: existing roadside infrastructure spacing ===")
    rows, _ = table6_infrastructure(network=city)
    print(format_table_vi(rows))

    print("\n=== Fig. 9: coverage by existing infrastructure ===")
    report = fig9_coverage(network=city)
    print(report.format_summary())
    worst = report.uncovered_road_ids[:10]
    print(f"first uncovered road ids (the paper's gray circles): {worst}")


if __name__ == "__main__":
    main()
