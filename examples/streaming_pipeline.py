#!/usr/bin/env python
"""The online pipeline in miniature: topics, micro-batches, warnings.

Demonstrates the paper's Fig. 3/Fig. 4 data flow directly on the
substrate APIs, without the scenario wrapper:

- vehicles produce telemetry to the RSU broker's ``IN-DATA``;
- a 50 ms micro-batch stream runs the Naive Bayes detector;
- abnormal records become warnings on ``OUT-DATA``;
- a handover forwards the per-car prediction summary over a wired
  link into the next RSU's ``CO-DATA``.

Run:  python examples/streaming_pipeline.py
"""

import numpy as np

from repro.core import RsuNode
from repro.core.detector import AD3Detector
from repro.core.features import CO_DATA, OUT_DATA
from repro.core.vehicle import VehicleNode
from repro.dataset import DatasetGenerator, GeneratorConfig, Preprocessor
from repro.geo import CityNetworkBuilder, RoadType
from repro.net.dsrc import DsrcChannel
from repro.net.link import WiredLink
from repro.simkernel import Simulator
from repro.streaming import Consumer


def main() -> None:
    # Train a motorway detector offline.
    network = CityNetworkBuilder(seed=1).build_corridor()
    dataset = DatasetGenerator(
        network, GeneratorConfig(n_cars=80, trips_per_car=5, seed=5)
    ).generate()
    dataset.records = Preprocessor().run(dataset.records)
    motorway = dataset.by_road_type(RoadType.MOTORWAY)
    detector = AD3Detector(RoadType.MOTORWAY).fit(motorway)

    # Wire the online world: two RSUs joined by Ethernet, one vehicle.
    sim = Simulator()
    rsu_motorway = RsuNode(sim, "rsu-motorway", detector)
    rsu_link = RsuNode(sim, "rsu-link", detector)
    rsu_motorway.connect(rsu_link, WiredLink(sim, name="mw->link"))

    channel = DsrcChannel(sim, rng=np.random.default_rng(0))
    abnormal_stream = [r for r in motorway if r.label == 0][:40]
    vehicle = VehicleNode(
        sim, car_id=1, records=abnormal_stream, rsu=rsu_motorway,
        channel=channel, rng=np.random.default_rng(1),
    )

    rsu_motorway.start(until=3.0)
    rsu_link.start(until=3.0)
    vehicle.start(until=3.0)

    # Half-way through, the vehicle hands over to the link RSU.
    def handover() -> None:
        sent = rsu_motorway.handover(1, "rsu-link")
        print(f"t={sim.now:.2f}s handover: summary forwarded={sent}")

    sim.at(1.5, handover)
    sim.run_until(3.2)

    print(f"\nRSU processed {len(rsu_motorway.events)} records, "
          f"issued {rsu_motorway.warnings_issued} warnings")
    print(f"vehicle received {vehicle.stats.warnings_received} warnings; "
          f"mean end-to-end latency "
          f"{1e3 * np.mean(vehicle.stats.e2e_latencies_s):.1f} ms")

    # Peek at the wire: what OUT-DATA and CO-DATA actually carry.
    out = Consumer(rsu_motorway.broker)
    out.subscribe([OUT_DATA])
    warning = out.poll(max_records=1)[0].value
    print(f"\nsample OUT-DATA warning: {warning}")

    co = Consumer(rsu_link.broker)
    co.subscribe([CO_DATA])
    summary = co.poll(max_records=1)[0].value
    print(f"sample CO-DATA summary:  {summary}")
    print(f"link RSU now knows car 1 history: {rsu_link.summaries[1]}")


if __name__ == "__main__":
    main()
