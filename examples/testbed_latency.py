#!/usr/bin/env python
"""Testbed scalability: the paper's Fig. 6 experiments, end to end.

Spins up the simulated testbed (vehicles -> DSRC channel -> RSU broker
-> 50 ms micro-batch detection -> OUT-DATA warnings -> vehicle
consumers) and sweeps the vehicle count like Fig. 6a/6c, then runs the
5-RSU collaborative topology of Fig. 6b/6d with mid-run handovers.

Run:  python examples/testbed_latency.py  [--quick]
"""

import argparse

from repro.core.system import default_training_dataset
from repro.experiments.latency import fig6a_latency_sweep, format_fig6a
from repro.experiments.multirsu import fig6bd_corridor
from repro.experiments.reporting import horizontal_bars, series_with_axis


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller sweep and shorter runs (for CI smoke tests)",
    )
    args = parser.parse_args()

    counts = (8, 32, 128) if args.quick else (8, 16, 32, 64, 128, 256)
    duration = 2.0 if args.quick else 5.0
    dataset = default_training_dataset(seed=11, n_cars=80)

    print("=== Fig. 6a / 6c: single RSU, 8-256 vehicles ===")
    rows = fig6a_latency_sweep(counts, duration_s=duration, dataset=dataset)
    print(format_fig6a(rows))
    print()
    print(series_with_axis(
        [row.total_ms for row in rows], label="total latency", unit="ms"))
    print(series_with_axis(
        [row.total_bandwidth_mbps for row in rows], label="RSU bandwidth",
        unit="Mb/s"))
    worst = max(row.total_ms for row in rows)
    print(f"\n  -> end-to-end latency stays under 50 ms "
          f"(worst: {worst:.1f} ms); paper claims < 50 ms up to 256 vehicles")

    print("\n=== Fig. 6b / 6d: 4 motorway RSUs + 1 link RSU ===")
    corridor = fig6bd_corridor(
        n_vehicles_per_rsu=32 if args.quick else 128,
        duration_s=duration,
        handover_fraction=0.25,
        dataset=dataset,
    )
    print(corridor.format_table())
    print()
    print(horizontal_bars(
        [row.name for row in corridor.rows],
        [round(row.bandwidth_mbps, 3) for row in corridor.rows],
        unit=" Mb/s",
    ))
    link = corridor.link_row
    motorway_max = max(r.bandwidth_mbps for r in corridor.motorway_rows)
    print(f"\n  -> link RSU bandwidth {link.bandwidth_mbps:.3f} Mb/s vs "
          f"motorway max {motorway_max:.3f} Mb/s "
          f"(collaboration overhead is visible but small, as in Fig. 6d)")


if __name__ == "__main__":
    main()
