#!/usr/bin/env python
"""DSRC channel planning for dense RSU deployments (Sec. VII-B).

When RSUs stand close enough to interfere, the paper proposes a
"high-level management scheme [that] can change the operating service
channel".  This example plans service channels for a dense urban
corridor: RSUs every 400 m along a 4 km road plus a cluster at an
interchange, coloured so no two interfering RSUs share a channel.

Run:  python examples/channel_planning.py
"""

from repro.geo import LatLon
from repro.geo.coords import destination_point
from repro.net import ChannelManager, RsuSite, SERVICE_CHANNELS

CENTER = LatLon(22.6, 114.2)


def main() -> None:
    # A 4 km arterial with an RSU every 400 m...
    sites = [
        RsuSite(f"arterial-{i}", destination_point(CENTER, 90.0, i * 400.0))
        for i in range(11)
    ]
    # ...plus a dense interchange cluster at the east end.
    east = destination_point(CENTER, 90.0, 4000.0)
    for index, bearing in enumerate((0.0, 120.0, 240.0)):
        sites.append(
            RsuSite(
                f"interchange-{index}",
                destination_point(east, bearing, 150.0),
            )
        )

    manager = ChannelManager(interference_range_m=600.0)
    plan = manager.assign(sites)

    print(f"{len(sites)} RSU sites, {len(SERVICE_CHANNELS)} service channels")
    print(f"channels used: {plan.n_channels_used}, "
          f"conflict-free: {plan.conflict_free}\n")
    for site in sites:
        print(f"  {site.name:<16} SCH {plan.channel_of(site.name)}")

    graph = manager.interference_graph(sites)
    clashes = [
        (a, b)
        for a in graph
        for b in graph[a]
        if a < b and plan.channel_of(a) == plan.channel_of(b)
    ]
    print(f"\ninterfering pairs sharing a channel: {len(clashes)}")
    print("-> adjacent RSUs never share a service channel; the dense "
          "interchange\n   cluster spreads across the SCH palette, as "
          "Sec. VII-B prescribes.")


if __name__ == "__main__":
    main()
