#!/usr/bin/env python
"""Quickstart: train CAD3 and detect abnormal driving in 60 seconds.

This walks the whole public API once, at small scale:

1. Build the Fig. 1 road topology (four motorways meeting a motorway
   link).
2. Generate a synthetic Shenzhen-like driving dataset and label it
   with the paper's sigma-cutoff rule.
3. Train the three detectors: centralized, standalone AD3, and
   collaborative CAD3.
4. Compare them on held-out trips and print the Fig. 7 / Table IV
   style results.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import AD3Detector, CentralizedDetector, CollaborativeDetector
from repro.core.accidents import expected_accidents
from repro.core.collaborative import summaries_from_upstream
from repro.dataset import DatasetGenerator, GeneratorConfig, Preprocessor
from repro.geo import CityNetworkBuilder, RoadType
from repro.ml import evaluate_binary


def main() -> None:
    # 1. Road topology: the paper's microscopic interchange.
    network = CityNetworkBuilder(seed=1).build_corridor()
    print(f"road network: {len(network)} segments, "
          f"{network.total_length_m() / 1000:.1f} km")

    # 2. Synthetic dataset + offline labelling.
    generator = DatasetGenerator(
        network,
        GeneratorConfig(n_cars=150, trips_per_car=6, seed=7),
    )
    dataset = generator.generate()
    dataset.records = Preprocessor().run(dataset.records)
    abnormal = np.mean([r.label == 0 for r in dataset.records])
    print(f"dataset: {len(dataset.records)} labelled records "
          f"({abnormal:.0%} abnormal)")

    # 3. Train on 80 % of trips, exactly as the paper does.
    train, test = dataset.split_by_trip(0.8, seed=0)
    motorway_train = [r for r in train if r.road_type is RoadType.MOTORWAY]
    link_train = [r for r in train if r.road_type is RoadType.MOTORWAY_LINK]

    centralized = CentralizedDetector().fit(train)
    ad3_motorway = AD3Detector(RoadType.MOTORWAY).fit(motorway_train)
    ad3_link = AD3Detector(RoadType.MOTORWAY_LINK).fit(link_train)
    cad3 = CollaborativeDetector(RoadType.MOTORWAY_LINK, nb=ad3_link).fit(
        link_train,
        summaries_from_upstream(ad3_motorway, motorway_train),
        refit_nb=False,
    )
    print("\nlearned CAD3 fusion rules (explainable, Sec. VI-D):")
    print(cad3.explain())

    # 4. Evaluate at the motorway-link RSU.
    link_test = [r for r in test if r.road_type is RoadType.MOTORWAY_LINK]
    motorway_test = [r for r in test if r.road_type is RoadType.MOTORWAY]
    test_summaries = summaries_from_upstream(ad3_motorway, motorway_test)
    y_true = np.array([r.label for r in link_test])

    print(f"\nevaluation on {len(link_test)} held-out link records:")
    for name, y_pred in (
        ("centralized", centralized.predict(link_test)),
        ("AD3", ad3_link.predict(link_test)),
        ("CAD3", cad3.predict(link_test, test_summaries)),
    ):
        report = evaluate_binary(y_true, y_pred)
        estimate = expected_accidents(link_test, y_true, y_pred)
        print(f"  {report.format_row(name)}  "
              f"E(potential accidents)={estimate.expected_accidents:.1f}")


if __name__ == "__main__":
    main()
