"""Batched-MAC equivalence: deferred contention vs per-frame transmit.

The batched data plane queues frames with :meth:`DsrcChannel.enqueue`
and resolves the whole batch in one :meth:`DsrcChannel.flush` at the
next RSU tick; HTB charging moves from :meth:`HtbShaper.send` to
:meth:`HtbShaper.send_deferred` (lazy root accrual).  Both substitutions
claim bit-identity with the per-frame path — same RNG draw order, same
float-op order, same stats — which these tests pin directly at the
component level (the scenario-level counterpart is
``test_core/test_golden_dataplane.py``).
"""

import numpy as np
import pytest

from repro.net.dsrc import DsrcChannel, DsrcMacModel
from repro.net.htb import HtbClass, HtbShaper
from repro.simkernel import Simulator


def _frame_sizes(seed, n):
    """A deterministic mix of payload sizes (exercises the airtime
    memo with repeats and a few distinct sizes)."""
    rng = np.random.default_rng(seed)
    return [int(size) for size in rng.choice([71, 200, 43, 512], size=n)]


class TestFlushEquivalence:
    def _per_frame(self, sizes, seed, loss_prob=0.0):
        sim = Simulator()
        channel = DsrcChannel(
            sim, rng=np.random.default_rng(seed), loss_prob=loss_prob
        )
        deliveries = []
        for size in sizes:
            channel.transmit(size, deliveries.append)
        sim.run()
        return channel, deliveries

    def _batched(self, sizes, seed, flush_at, loss_prob=0.0):
        sim = Simulator()
        channel = DsrcChannel(
            sim, rng=np.random.default_rng(seed), loss_prob=loss_prob
        )
        deliveries = []
        for size in sizes:
            channel.enqueue(0.0, size, deliveries.append)
        channel.flush(flush_at)
        sim.run()
        return channel, deliveries

    @pytest.mark.parametrize("loss_prob", [0.0, 0.3])
    def test_flush_matches_per_frame_transmit(self, loss_prob):
        """Same RNG seed, same frames: one flush reproduces the exact
        delivery times and stats of per-frame transmit calls —
        including the loss draws."""
        sizes = _frame_sizes(0, 50)
        per_frame, expected = self._per_frame(sizes, 42, loss_prob)
        batched, got = self._batched(sizes, 42, flush_at=10.0, loss_prob=loss_prob)
        assert got == expected  # exact floats, not approx
        assert batched.transmissions == per_frame.transmissions
        assert batched.bytes_transmitted == per_frame.bytes_transmitted
        assert batched.frames_lost == per_frame.frames_lost
        assert batched.total_airtime_s == per_frame.total_airtime_s
        assert batched._busy_until == per_frame._busy_until

    def test_flush_orders_by_eff_time_then_seq(self):
        """Frames enqueue out of effective-time order (shaper delays
        differ per sender); flush must draw RNG in (eff_time, seq)
        order — the order the per-frame transmit events would fire."""
        sizes = [200, 200, 200]
        sim = Simulator()
        reference = DsrcChannel(sim, rng=np.random.default_rng(9))
        expected = []
        # per-frame path: kernel dispatches by time
        for eff, size in sorted(zip([0.00, 0.01, 0.02], sizes)):
            sim.at(eff, lambda s=size: reference.transmit(s, expected.append))
        sim.run()

        sim2 = Simulator()
        batched = DsrcChannel(sim2, rng=np.random.default_rng(9))
        got = []
        for eff in [0.02, 0.00, 0.01]:  # enqueue order != effective order
            batched.enqueue(eff, 200, got.append)
        batched.flush(1.0)
        sim2.run()
        # busy-medium serialization from eff_time 0.0 differs from the
        # reference's staggered sends only if a frame outlasts the gap;
        # with 10 ms gaps and sub-ms airtimes the starts are identical.
        assert got == expected

    def test_flush_carries_future_frames(self):
        """A frame whose eff_time is past the flush instant stays
        queued (shaper delay pushed it beyond this tick) and resolves
        on the next flush, RNG order preserved."""
        sim = Simulator()
        channel = DsrcChannel(sim, rng=np.random.default_rng(3))
        deliveries = []
        channel.enqueue(0.0, 200, deliveries.append)
        channel.enqueue(5.0, 200, deliveries.append)  # not yet effective
        assert channel.flush(1.0) == 1
        assert channel.pending_frames == 1
        assert channel.flush(6.0) == 1
        assert channel.pending_frames == 0
        sim.run()
        assert len(deliveries) == 2
        assert deliveries[1] > 5.0

    def test_flush_delivers_past_frames_inline(self):
        """A frame already clear of the medium by flush time invokes
        its callback inline (no kernel event), stamped with the same
        delivery time the event would have carried."""
        sim = Simulator()
        channel = DsrcChannel(sim, rng=np.random.default_rng(4))
        deliveries = []
        channel.enqueue(0.0, 200, deliveries.append)
        channel.flush(10.0)
        # delivered during flush, before the kernel ever runs
        assert len(deliveries) == 1
        assert 0.0 < deliveries[0] < 10.0

    def test_take_pending_moves_owners_frames(self):
        """Handover: the vehicle's not-yet-effective frames leave the
        old channel and nothing of other senders goes with them."""
        channel = DsrcChannel(Simulator(), rng=np.random.default_rng(5))
        mine, other = object(), object()
        channel.enqueue(1.0, 200, lambda t: None, owner=mine)
        channel.enqueue(2.0, 200, lambda t: None, owner=other)
        channel.enqueue(3.0, 200, lambda t: None, owner=mine)
        taken = channel.take_pending(mine)
        assert [frame[0] for frame in taken] == [1.0, 3.0]
        assert channel.pending_frames == 1
        assert channel.take_pending(mine) == []

    def test_empty_flush_is_free(self):
        channel = DsrcChannel(Simulator(), rng=np.random.default_rng(6))
        assert channel.flush(1.0) == 0
        assert channel.transmissions == 0


class TestSendDeferredEquivalence:
    def _shaper(self):
        shaper = HtbShaper(
            HtbClass("root", rate_bps=1_000_000.0, burst_bytes=20_000.0)
        )
        shaper.add_leaf(
            HtbClass("veh", rate_bps=100_000.0, burst_bytes=2_000.0)
        )
        return shaper

    def test_send_deferred_matches_send(self):
        """Interleaved idle gaps, burst borrowing, and starvation: the
        lazy-root path must price every packet identically."""
        # gaps chosen to hit all three branches: tokens available,
        # borrow from root, starved wait
        sends = [(0.0, 1500)] * 3 + [(0.001, 4000)] * 4 + [(0.5, 800)] * 2
        eager, lazy = self._shaper(), self._shaper()
        now = 0.0
        for gap, size in sends:
            now += gap
            assert lazy.send_deferred("veh", size, now) == eager.send(
                "veh", size, now
            )
        # identical leaf state, not just identical delays
        assert lazy.leaf("veh").tokens == eager.leaf("veh").tokens
        assert lazy.leaf("veh").bytes_sent == eager.leaf("veh").bytes_sent
        assert lazy.leaf("veh").bytes_borrowed == eager.leaf(
            "veh"
        ).bytes_borrowed
        # the root's snapshot may lag (idle refills are skipped — the
        # one documented state difference); a catch-up refill at a
        # common instant must land both on the same level exactly
        eager.root.refill(now)
        lazy.root.refill(now)
        assert lazy.root.tokens == eager.root.tokens

    def test_lazy_root_catches_up_on_borrow(self):
        """The root bucket skips idle refills; the first borrow after a
        gap must see exactly the level per-packet refilling would have
        accrued (token growth is associative under the burst cap)."""
        eager, lazy = self._shaper(), self._shaper()
        # drain the leaf so the next send must borrow
        for shaper, send in ((eager, eager.send), (lazy, lazy.send_deferred)):
            send("veh", 2000, 0.0)
            # eager refills root at every instant; lazy has not touched
            # it since construction
            for t in (0.01, 0.02, 0.03):
                if shaper is eager:
                    shaper.root.refill(t)
        assert lazy.send_deferred("veh", 1500, 0.04) == eager.send(
            "veh", 1500, 0.04
        )
        assert lazy.root.tokens == eager.root.tokens

    def test_send_deferred_validates_packet_size(self):
        with pytest.raises(ValueError):
            self._shaper().send_deferred("veh", 0, 0.0)

    def test_send_deferred_unknown_leaf(self):
        with pytest.raises(KeyError):
            self._shaper().send_deferred("ghost", 100, 0.0)
