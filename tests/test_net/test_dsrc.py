"""Tests for the DSRC MAC models (Eq. 5-6)."""

import numpy as np
import pytest

from repro.net import (
    DSRC_BANDWIDTH_BPS,
    MCS_TABLE,
    PAPER_MCS_3,
    PAPER_MCS_8,
    DsrcChannel,
    DsrcMacModel,
    McsScheme,
)
from repro.simkernel import Simulator


class TestMcsTable:
    def test_eight_schemes(self):
        assert sorted(MCS_TABLE) == list(range(1, 9))

    def test_rates_monotonic(self):
        rates = [MCS_TABLE[i].data_rate_bps for i in range(1, 9)]
        assert rates == sorted(rates)

    def test_top_rate_is_dsrc_bandwidth(self):
        assert MCS_TABLE[8].data_rate_bps == DSRC_BANDWIDTH_BPS

    def test_paper_mcs8_is_64qam(self):
        assert PAPER_MCS_8.modulation == "64-QAM"
        assert PAPER_MCS_8.coding_rate == "3/4"

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            McsScheme(1, "BPSK", "1/2", 0)


class TestAnalyticModel:
    def setup_method(self):
        self.model = DsrcMacModel()

    def test_difs_eq6(self):
        # DIFS = SIFS + 2 * t_slot = 16 + 18 = 34 us.
        assert self.model.difs_s == pytest.approx(34e-6)

    def test_backoff_eq6(self):
        # t_backoff = p_c * cw_max * t_slot = 0.03 * 255 * 9 us.
        assert self.model.backoff_s == pytest.approx(68.85e-6)

    def test_paper_access_time_mcs8(self):
        """Paper: 54.28 ms for 256 vehicles at MCS 8."""
        access = self.model.channel_access_time_s(256, PAPER_MCS_8)
        assert access * 1e3 == pytest.approx(54.28, rel=0.05)

    def test_paper_access_time_mcs3(self):
        """Paper: 92.62 ms for 256 vehicles at MCS 3."""
        access = self.model.channel_access_time_s(256, PAPER_MCS_3)
        assert access * 1e3 == pytest.approx(92.62, rel=0.05)

    def test_256_vehicles_fit_10hz_at_mcs8(self):
        """Paper: 256 vehicles at 10 Hz clear the medium before the
        next update (54.28 ms < 100 ms)."""
        assert self.model.supports_update_rate(256, 10.0, PAPER_MCS_8)

    def test_256_vehicles_fit_10hz_at_mcs3_too(self):
        assert self.model.supports_update_rate(256, 10.0, PAPER_MCS_3)

    def test_update_rate_limit(self):
        assert not self.model.supports_update_rate(600, 10.0, PAPER_MCS_8)

    def test_paper_dense_deployment_claim(self):
        """Sec. VII-B: at MCS 8 and 10 Hz, ~400 vehicles are served
        under 85 ms."""
        assert self.model.max_vehicles(0.085, PAPER_MCS_8) == pytest.approx(
            400, abs=15
        )

    def test_access_time_linear_in_vehicles(self):
        one = self.model.channel_access_time_s(1, PAPER_MCS_8)
        many = self.model.channel_access_time_s(100, PAPER_MCS_8)
        assert many == pytest.approx(100 * one)

    def test_airtime_decreases_with_rate(self):
        slow = self.model.airtime_s(MCS_TABLE[1])
        fast = self.model.airtime_s(MCS_TABLE[8])
        assert fast < slow

    def test_validation(self):
        with pytest.raises(ValueError):
            self.model.channel_access_time_s(0, PAPER_MCS_8)
        with pytest.raises(ValueError):
            self.model.airtime_s(PAPER_MCS_8, payload_bytes=0)
        with pytest.raises(ValueError):
            self.model.supports_update_rate(1, 0.0, PAPER_MCS_8)
        with pytest.raises(ValueError):
            self.model.max_vehicles(0.0, PAPER_MCS_8)
        with pytest.raises(ValueError):
            DsrcMacModel(collision_prob=1.5)


class TestDsrcChannel:
    def test_single_transmission_latency(self):
        sim = Simulator()
        channel = DsrcChannel(sim, rng=np.random.default_rng(0))
        delivered = []
        channel.transmit(200, delivered.append)
        sim.run()
        assert len(delivered) == 1
        # DIFS + backoff + airtime: sub-millisecond at 27 Mb/s.
        assert 50e-6 < delivered[0] < 3e-3

    def test_transmissions_serialize(self):
        sim = Simulator()
        channel = DsrcChannel(sim, rng=np.random.default_rng(1))
        deliveries = []
        for _ in range(10):
            channel.transmit(200, deliveries.append)
        sim.run()
        assert deliveries == sorted(deliveries)
        # Strictly increasing: only one frame on the medium at a time.
        assert all(b > a for a, b in zip(deliveries, deliveries[1:]))

    def test_byte_and_airtime_accounting(self):
        sim = Simulator()
        channel = DsrcChannel(sim, rng=np.random.default_rng(2))
        for _ in range(5):
            channel.transmit(200, lambda t: None)
        sim.run()
        assert channel.transmissions == 5
        assert channel.bytes_transmitted == 1000
        assert channel.utilization(1.0) == pytest.approx(
            channel.total_airtime_s
        )

    def test_utilization_validation(self):
        sim = Simulator()
        channel = DsrcChannel(sim)
        with pytest.raises(ValueError):
            channel.utilization(0.0)

    def test_loss_prob_drops_frames(self):
        sim = Simulator()
        channel = DsrcChannel(
            sim, rng=np.random.default_rng(5), loss_prob=0.3
        )
        delivered = []
        for _ in range(500):
            channel.transmit(200, delivered.append)
        sim.run()
        assert channel.frames_lost > 0
        assert len(delivered) + channel.frames_lost == 500
        # Empirical loss near the configured probability.
        assert channel.frames_lost / 500 == pytest.approx(0.3, abs=0.07)

    def test_lost_frames_still_occupy_airtime(self):
        """A lost broadcast still burned the medium (no ACK, no
        retransmit): airtime accounting includes it."""
        sim = Simulator()
        lossy = DsrcChannel(sim, rng=np.random.default_rng(6), loss_prob=0.5)
        for _ in range(100):
            lossy.transmit(200, lambda t: None)
        sim.run()
        clean = DsrcChannel(Simulator(), rng=np.random.default_rng(6))
        for _ in range(100):
            clean.transmit(200, lambda t: None)
        assert lossy.total_airtime_s == pytest.approx(clean.total_airtime_s)

    def test_loss_prob_validated(self):
        with pytest.raises(ValueError):
            DsrcChannel(Simulator(), loss_prob=1.0)

    def test_contention_grows_with_load(self):
        """Mean delivery latency under heavy offered load exceeds the
        idle-channel latency."""

        def mean_latency(n_senders):
            sim = Simulator()
            channel = DsrcChannel(sim, rng=np.random.default_rng(3))
            latencies = []
            for v in range(n_senders):
                start = sim.now
                channel.transmit(200, lambda t, s=start: latencies.append(t - s))
            sim.run()
            return float(np.mean(latencies))

        assert mean_latency(64) > mean_latency(1)
