"""Tests for cellular links and DSRC channel management."""

import numpy as np
import pytest

from repro.geo import LatLon
from repro.geo.coords import destination_point
from repro.net import (
    CONTROL_CHANNEL,
    LTE_PROFILE,
    NR_5G_PROFILE,
    CellularLink,
    CellularProfile,
    ChannelManager,
    RsuSite,
    SERVICE_CHANNELS,
)
from repro.simkernel import Simulator

CENTER = LatLon(22.6, 114.2)


class TestCellularLink:
    def test_delivery_scheduled(self):
        sim = Simulator()
        link = CellularLink(sim, rng=np.random.default_rng(0))
        delivered = []
        delivery = link.send(500, delivered.append)
        sim.run()
        assert delivered == [delivery]
        assert delivery > 0.0

    def test_5g_faster_than_lte(self):
        def mean_latency(profile):
            sim = Simulator()
            link = CellularLink(sim, profile, rng=np.random.default_rng(1))
            for _ in range(200):
                link.send(300, lambda t: None)
            sim.run()
            return link.mean_latency_ms()

        assert mean_latency(NR_5G_PROFILE) < mean_latency(LTE_PROFILE) / 2

    def test_latency_near_profile_base(self):
        sim = Simulator()
        link = CellularLink(sim, NR_5G_PROFILE, rng=np.random.default_rng(2))
        for _ in range(500):
            link.send(300, lambda t: None)
        sim.run()
        # Lognormal(0, 0.25) multiplier has mean exp(sigma^2/2) ~ 1.03.
        assert link.mean_latency_ms() == pytest.approx(4.0 * 1.03, rel=0.15)

    def test_accounting(self):
        sim = Simulator()
        link = CellularLink(sim, rng=np.random.default_rng(3))
        link.send(100, lambda t: None)
        link.send(200, lambda t: None)
        assert link.bytes_sent == 300
        assert link.packets_sent == 2

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CellularLink(sim).send(0, lambda t: None)
        with pytest.raises(ValueError):
            CellularProfile("x", 0.0, 0.1, 1e6)
        with pytest.raises(ValueError):
            CellularProfile("x", 1e-3, -0.1, 1e6)


def sites_on_line(count, spacing_m):
    return [
        RsuSite(f"rsu-{i}", destination_point(CENTER, 90.0, i * spacing_m))
        for i in range(count)
    ]


class TestChannelManager:
    def test_far_apart_sites_may_share_channels(self):
        sites = sites_on_line(4, 5000.0)
        plan = ChannelManager(interference_range_m=600.0).assign(sites)
        assert plan.conflict_free
        assert plan.n_channels_used == 1  # no interference: reuse freely

    def test_close_sites_get_distinct_channels(self):
        sites = sites_on_line(3, 200.0)  # all within 600 m of each other
        plan = ChannelManager(interference_range_m=600.0).assign(sites)
        assert plan.conflict_free
        channels = {plan.channel_of(s.name) for s in sites}
        assert len(channels) == 3

    def test_chain_alternates_channels(self):
        # 10 RSUs every 400 m: consecutive pairs interfere.
        sites = sites_on_line(10, 400.0)
        plan = ChannelManager(interference_range_m=500.0).assign(sites)
        assert plan.conflict_free
        for i in range(9):
            assert plan.channel_of(f"rsu-{i}") != plan.channel_of(f"rsu-{i + 1}")

    def test_control_channel_never_assigned(self):
        sites = sites_on_line(6, 100.0)
        plan = ChannelManager(interference_range_m=1000.0).assign(sites)
        assert CONTROL_CHANNEL not in set(plan.assignment.values())

    def test_palette_exhaustion_reports_conflicts(self):
        # 8 mutually interfering sites, 6 service channels.
        sites = sites_on_line(8, 50.0)
        plan = ChannelManager(interference_range_m=5000.0).assign(sites)
        assert not plan.conflict_free
        assert len(plan.assignment) == 8
        assert plan.n_channels_used == len(SERVICE_CHANNELS)

    def test_extra_edges(self):
        sites = sites_on_line(2, 5000.0)  # geographically independent
        manager = ChannelManager(interference_range_m=600.0)
        plan = manager.assign(sites, extra_edges=[("rsu-0", "rsu-1")])
        assert plan.channel_of("rsu-0") != plan.channel_of("rsu-1")
        with pytest.raises(KeyError):
            manager.assign(sites, extra_edges=[("rsu-0", "nope")])

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelManager(interference_range_m=0.0)
        with pytest.raises(ValueError):
            ChannelManager(channels=[])
        with pytest.raises(ValueError):
            ChannelManager(channels=[CONTROL_CHANNEL])
        with pytest.raises(ValueError):
            ChannelManager().assign(
                [RsuSite("a", CENTER), RsuSite("a", CENTER)]
            )
