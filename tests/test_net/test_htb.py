"""Tests for the hierarchical token bucket."""

import pytest

from repro.net import HtbClass, HtbShaper


def build_paper_shaper(n_vehicles=4):
    """The testbed configuration: 100 Kb/s assured per vehicle,
    27 Mb/s shared ceiling."""
    root = HtbClass("root", 27e6, 27e6)
    shaper = HtbShaper(root)
    for index in range(n_vehicles):
        shaper.add_leaf(HtbClass(f"vehicle-{index}", 100e3, 27e6))
    return shaper


class TestHtbClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            HtbClass("x", 0.0)
        with pytest.raises(ValueError):
            HtbClass("x", 200.0, ceil_bps=100.0)

    def test_refill_accrues_at_rate(self):
        leaf = HtbClass("x", 8000.0, burst_bytes=10_000.0)  # 1 KB/s
        leaf.tokens = 0.0
        leaf.refill(2.0)
        assert leaf.tokens == pytest.approx(2000.0)

    def test_refill_caps_at_burst(self):
        leaf = HtbClass("x", 8e6, burst_bytes=500.0)
        leaf.refill(100.0)
        assert leaf.tokens == 500.0

    def test_time_backwards_rejected(self):
        leaf = HtbClass("x", 1000.0)
        leaf.refill(5.0)
        with pytest.raises(ValueError):
            leaf.refill(4.0)


class TestHtbShaper:
    def test_within_assured_rate_no_delay(self):
        shaper = build_paper_shaper()
        # 100 Kb/s = 12.5 KB/s; a 200 B packet every 100 ms is 2 KB/s.
        for step in range(20):
            delay = shaper.send("vehicle-0", 200, now=step * 0.1)
            assert delay == 0.0

    def test_burst_borrows_from_root(self):
        shaper = build_paper_shaper()
        leaf = shaper.leaf("vehicle-0")
        # Exhaust the leaf's own bucket, then keep sending: the root
        # (27 Mb/s) lends.
        delay = shaper.send("vehicle-0", int(leaf.burst_bytes) + 10_000, now=0.0)
        assert delay == 0.0
        assert leaf.bytes_borrowed > 0

    def test_starved_leaf_waits_at_assured_rate(self):
        root = HtbClass("root", 1e6, 1e6, burst_bytes=100.0)
        shaper = HtbShaper(root)
        shaper.add_leaf(HtbClass("v", 8000.0, 1e6, burst_bytes=100.0))
        # Both buckets tiny: a 1100-byte packet must wait for the
        # leaf's assured 1 KB/s to cover the 1000-byte deficit.
        delay = shaper.send("v", 1100, now=0.0)
        assert delay == pytest.approx(1.0, rel=0.01)

    def test_leaf_ceil_cannot_exceed_root(self):
        shaper = HtbShaper(HtbClass("root", 1e6, 1e6))
        with pytest.raises(ValueError):
            shaper.add_leaf(HtbClass("v", 1e3, 2e6))

    def test_duplicate_leaf_rejected(self):
        shaper = build_paper_shaper(1)
        with pytest.raises(ValueError):
            shaper.add_leaf(HtbClass("vehicle-0", 100e3, 27e6))

    def test_unknown_leaf_raises(self):
        shaper = build_paper_shaper(1)
        with pytest.raises(KeyError):
            shaper.send("vehicle-99", 100, now=0.0)

    def test_packet_size_validated(self):
        shaper = build_paper_shaper(1)
        with pytest.raises(ValueError):
            shaper.send("vehicle-0", 0, now=0.0)

    def test_aggregate_rate(self):
        shaper = build_paper_shaper(2)
        shaper.send("vehicle-0", 1000, now=0.0)
        shaper.send("vehicle-1", 1000, now=0.0)
        assert shaper.aggregate_rate_bps(1.0) == pytest.approx(16_000.0)
        with pytest.raises(ValueError):
            shaper.aggregate_rate_bps(0.0)

    def test_vehicle_beaconing_fits_assured_rate(self):
        """The paper's workload (200 B at 10 Hz = 16 Kb/s) fits inside
        the 100 Kb/s assured rate with zero shaping delay."""
        shaper = build_paper_shaper(1)
        delays = [
            shaper.send("vehicle-0", 200, now=t * 0.1) for t in range(100)
        ]
        assert all(d == 0.0 for d in delays)


def build_banded_shaper(root_burst=1000.0, leaf_burst=1000.0):
    """Two CO-DATA bands on a deliberately tight root: urgent
    (priority 0) and refresh (priority 1), 1 KB/s assured each."""
    root = HtbClass("root", 16e3, 16e3, burst_bytes=root_burst)
    shaper = HtbShaper(root)
    shaper.add_leaf(
        HtbClass("urgent", 8e3, 16e3, burst_bytes=leaf_burst, priority=0)
    )
    shaper.add_leaf(
        HtbClass("refresh", 8e3, 16e3, burst_bytes=leaf_burst, priority=1)
    )
    return shaper


class TestHtbPriority:
    def test_priority_defaults_to_zero(self):
        assert HtbClass("x", 1e3).priority == 0

    def test_prioritized_charges_urgent_first(self):
        """Submission order refresh-then-urgent, but the shared root
        burst must go to the urgent leaf: refresh eats the deficit."""
        shaper = build_banded_shaper(root_burst=700.0, leaf_burst=100.0)
        delays = shaper.send_prioritized(
            [("refresh", 600), ("urgent", 600)], now=0.0
        )
        # Urgent (charged first) fits leaf burst + root borrow; the
        # refresh frame drains what's left and pays a wait.
        assert delays[1] == 0.0
        assert delays[0] > 0.0

    def test_fifo_submission_order_is_starved_without_bands(self):
        """Same workload through plain send() in submission order:
        the refresh frame wins the borrow instead — the inversion the
        priority bands exist to prevent."""
        shaper = build_banded_shaper(root_burst=700.0, leaf_burst=100.0)
        refresh_delay = shaper.send("refresh", 600, now=0.0)
        urgent_delay = shaper.send("urgent", 600, now=0.0)
        assert refresh_delay == 0.0
        assert urgent_delay > 0.0

    def test_delays_returned_in_submission_order(self):
        shaper = build_banded_shaper()
        delays = shaper.send_prioritized(
            [("refresh", 100), ("urgent", 100), ("refresh", 100)], now=0.0
        )
        assert len(delays) == 3
        assert all(d == 0.0 for d in delays)

    def test_equal_priority_preserves_submission_order(self):
        """Ties break by submission index: with equal priorities the
        first-submitted frame gets the borrow."""
        root = HtbClass("root", 16e3, 16e3, burst_bytes=700.0)
        shaper = HtbShaper(root)
        shaper.add_leaf(HtbClass("a", 8e3, 16e3, burst_bytes=100.0, priority=1))
        shaper.add_leaf(HtbClass("b", 8e3, 16e3, burst_bytes=100.0, priority=1))
        delays = shaper.send_prioritized([("a", 600), ("b", 600)], now=0.0)
        assert delays[0] == 0.0
        assert delays[1] > 0.0

    def test_low_band_not_permanently_starved(self):
        """Staleness-bounded refresh traffic still drains: the delay is
        the leaf's own assured-rate wait, not infinite postponement."""
        shaper = build_banded_shaper(root_burst=100.0, leaf_burst=100.0)
        delays = shaper.send_prioritized(
            [("refresh", 1100), ("urgent", 1100)], now=0.0
        )
        # Both waits are finite and bounded by the 1 KB/s assured rate.
        assert 0.0 < delays[0] < 3.0
        assert 0.0 < delays[1] < 3.0

    def test_burst_of_urgent_does_not_break_refresh_accounting(self):
        """After a contested burst, both leaves go on accruing at their
        assured rates — later sends clear once the deficit is paid."""
        shaper = build_banded_shaper(root_burst=500.0, leaf_burst=200.0)
        shaper.send_prioritized(
            [("refresh", 400), ("urgent", 400), ("urgent", 400)], now=0.0
        )
        later = shaper.send_prioritized(
            [("refresh", 200), ("urgent", 200)], now=5.0
        )
        assert later == [0.0, 0.0]
