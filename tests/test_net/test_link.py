"""Tests for wired inter-RSU links."""

import pytest

from repro.net import WiredLink
from repro.simkernel import Simulator


class TestWiredLink:
    def test_delivery_time_includes_latency_and_serialization(self):
        sim = Simulator()
        link = WiredLink(sim, latency_s=1e-3, bandwidth_bps=8e6)  # 1 MB/s
        delivered = []
        delivery = link.send(1000, delivered.append)
        sim.run()
        assert delivered == [delivery]
        assert delivery == pytest.approx(1e-3 + 1000 * 8 / 8e6)

    def test_fifo_serialization(self):
        sim = Simulator()
        link = WiredLink(sim, latency_s=0.0, bandwidth_bps=8000.0)  # 1 KB/s
        deliveries = []
        link.send(1000, deliveries.append)  # 1 s on the wire
        link.send(1000, deliveries.append)  # queues behind
        sim.run()
        assert deliveries == pytest.approx([1.0, 2.0])

    def test_idle_link_no_queueing(self):
        sim = Simulator()
        link = WiredLink(sim, latency_s=0.5e-3)
        first = link.send(100, lambda t: None)
        sim.run()
        second = link.send(100, lambda t: None)
        assert second - sim.now == pytest.approx(first - 0.0, rel=0.01)

    def test_accounting(self):
        sim = Simulator()
        link = WiredLink(sim)
        link.send(500, lambda t: None)
        link.send(300, lambda t: None)
        assert link.bytes_sent == 800
        assert link.packets_sent == 2

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            WiredLink(sim, latency_s=-1.0)
        with pytest.raises(ValueError):
            WiredLink(sim, bandwidth_bps=0.0)
        with pytest.raises(ValueError):
            WiredLink(sim).send(0, lambda t: None)
