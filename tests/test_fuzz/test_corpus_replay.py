"""Deterministic replay of the committed fuzz corpus (tier-1).

Every shrunk repro spec under ``tests/fuzz_corpus/`` is replayed
against the full oracle stack on every CI run: ``expect: "pass"``
entries must stay green *and* bit-identical to their pinned digest;
``expect: "fail"`` entries must keep failing until the bug is fixed
(then ``repro fuzz --replay <file> --update-digests`` flips them).
"""

from pathlib import Path

import pytest

from repro.fuzz import replay_corpus_entry

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus"
ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_committed():
    """The seed corpus ships with the repo — an empty directory means
    the entries were lost, not that there is nothing to replay."""
    assert len(ENTRIES) >= 5


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda p: p.stem)
def test_replay_is_green_and_bit_identical(entry):
    result = replay_corpus_entry(entry)
    assert result["ok"], result["problems"]


def test_replay_digest_is_stable_across_runs():
    """Same spec, two replays, same digest — the determinism the
    pinned digests rely on."""
    first = replay_corpus_entry(ENTRIES[0])
    second = replay_corpus_entry(ENTRIES[0])
    assert first["digest"] == second["digest"]
