"""The fuzz runner: green budgets, determinism, and the planted-bug
demonstration (find → shrink → persist → replay)."""

import json
from pathlib import Path

import pytest

from repro.fuzz import FuzzConfig, FuzzRunner, run_oracles
from repro.fuzz.oracles import set_planted_bug
from repro.fuzz.spec import FuzzSpec


class TestGreenRun:
    def test_small_budget_all_oracles_green(self):
        report = FuzzRunner(FuzzConfig(seed=11, examples=6)).run()
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.scenarios_run == 6
        # The two always-on oracles ran once per scenario.
        assert report.oracle_counts["conservation_audit"] == 6
        assert report.oracle_counts["observer_effect"] == 6

    def test_markdown_report_mentions_outcome(self):
        report = FuzzRunner(FuzzConfig(seed=11, examples=2)).run()
        assert "all oracles green" in report.format_markdown()


class TestDeterminism:
    def test_same_seed_same_spec_sequence(self):
        config = FuzzConfig(seed=5, examples=10)
        first = FuzzRunner(config).sample_specs(10)
        second = FuzzRunner(config).sample_specs(10)
        assert first == second

    def test_different_seed_different_sequence(self):
        first = FuzzRunner(FuzzConfig(seed=5)).sample_specs(10)
        second = FuzzRunner(FuzzConfig(seed=6)).sample_specs(10)
        assert first != second

    def test_oracle_digest_is_reproducible(self):
        spec = FuzzSpec(vehicles=3)
        assert run_oracles(spec).digest == run_oracles(spec).digest


class TestPlantedBugDemonstration:
    """Acceptance demo: a deliberately re-introduced off-by-one (the
    pre-PR-3 migrated-warning double count, behind a flag) must be
    *found* by the fuzzer, *shrunk* to a <= 5-line JSON repro, and
    *persisted* as a corpus entry that stops failing once the flag is
    off."""

    @pytest.fixture
    def planted(self):
        set_planted_bug(True)
        yield
        set_planted_bug(False)

    def test_found_shrunk_and_persisted(self, planted, tmp_path):
        config = FuzzConfig(
            seed=0, examples=10, max_failures=1, corpus_dir=tmp_path
        )
        report = FuzzRunner(config).run()

        assert not report.ok
        failure = report.failures[0]
        assert any(
            "conservation_audit" in message for message in failure.failures
        )

        # Shrunk to a minimal spec: its JSON fits in five lines.
        repro_json = failure.spec.to_json()
        assert len(repro_json.splitlines()) <= 5

        # Persisted as a replayable corpus entry.
        assert failure.corpus_path is not None
        corpus_file = Path(failure.corpus_path)
        assert corpus_file.parent == tmp_path
        payload = json.loads(corpus_file.read_text())
        assert payload["expect"] == "fail"
        assert payload["spec"] == failure.spec.to_payload()

        # With the regression flag off, the shrunk spec is green again:
        # exactly what a fixed bug looks like on replay.
        set_planted_bug(False)
        assert run_oracles(failure.spec).ok
