"""FuzzSpec: validation, JSON round-trips, minimal serialization."""

import pytest
from hypothesis import given, settings

from repro.core.scenario import ScenarioSpec
from repro.fuzz.spec import (
    CHANNEL_PRESETS,
    GOLDEN_SCENARIO_SEED,
    FuzzSpec,
)
from repro.fuzz.strategies import fuzz_specs


class TestGoldenSeeds:
    def test_scenario_seed_single_sourced(self):
        """The canonical scenario seed is the ScenarioSpec default —
        golden suites and the fuzzer must agree on it forever."""
        assert GOLDEN_SCENARIO_SEED == ScenarioSpec().seed == FuzzSpec().seed

    def test_conftest_fixture_exposes_them(self, golden_seeds):
        assert golden_seeds["scenario"] == GOLDEN_SCENARIO_SEED


class TestSerialization:
    def test_default_spec_is_empty_payload(self):
        assert FuzzSpec().to_payload() == {}
        assert FuzzSpec.from_json(FuzzSpec().to_json()) == FuzzSpec()

    @given(spec=fuzz_specs())
    @settings(max_examples=80, deadline=None)
    def test_json_round_trip(self, spec):
        assert FuzzSpec.from_json(spec.to_json()) == spec

    @given(spec=fuzz_specs())
    @settings(max_examples=80, deadline=None)
    def test_minimal_payload_omits_defaults(self, spec):
        payload = spec.to_payload()
        defaults = FuzzSpec()
        for key in payload:
            assert getattr(spec, key) != getattr(defaults, key), key

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            FuzzSpec.from_payload({"bogus": 1})


class TestValidation:
    @given(spec=fuzz_specs())
    @settings(max_examples=60, deadline=None)
    def test_every_generated_spec_builds_a_scenario_spec(self, spec):
        scenario_spec = spec.scenario_spec()
        assert scenario_spec.seed == spec.seed
        assert scenario_spec.n_vehicles == spec.vehicles
        assert scenario_spec.loss_prob == CHANNEL_PRESETS[spec.channel].loss_prob

    def test_batched_dataplane_rejects_faults(self):
        with pytest.raises(ValueError):
            FuzzSpec(
                dataplane="batched",
                faults=(
                    {
                        "kind": "burst_loss",
                        "rsu": "rsu-mw-1",
                        "at_s": 0.4,
                        "duration_s": 0.2,
                        "loss_prob": 0.5,
                    },
                ),
            )

    def test_fault_target_must_exist_on_the_corridor(self):
        with pytest.raises(ValueError):
            FuzzSpec(
                motorways=1,
                faults=(
                    {
                        "kind": "burst_loss",
                        "rsu": "rsu-mw-2",
                        "at_s": 0.4,
                        "duration_s": 0.2,
                        "loss_prob": 0.5,
                    },
                ),
            )

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError):
            FuzzSpec(channel="noisy")
