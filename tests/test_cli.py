"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "generate",
            "stats",
            "profiles",
            "evaluate",
            "mesoscopic",
            "testbed",
            "deploy",
            "mac",
        ):
            args = {
                "generate": [command, "/tmp/x.csv"],
            }.get(command, [command])
            parsed = parser.parse_args(args)
            assert parsed.command == command


class TestCommands:
    def test_mac(self, capsys):
        assert main(["mac", "--vehicles", "256"]) == 0
        out = capsys.readouterr().out
        assert "256 vehicles" in out
        assert "MCS 8" in out

    def test_generate_stats_round_trip(self, tmp_path, capsys):
        csv_path = str(tmp_path / "data.csv")
        assert main(
            ["generate", csv_path, "--cars", "30", "--trips", "3"]
        ) == 0
        assert main(["stats", "--input", csv_path]) == 0
        out = capsys.readouterr().out
        assert "Shenzhen" in out
        assert "Motorway" in out

    def test_profiles_library(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "motorway" in out
        assert len(out.splitlines()) >= 25

    def test_evaluate_small(self, capsys):
        assert main(["evaluate", "--cars", "80"]) == 0
        out = capsys.readouterr().out
        assert "cad3" in out
        assert "E(Lambda)" in out

    def test_deploy_scaled(self, capsys):
        assert main(["deploy", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "motorway" in out
        assert "coverage" in out

    def test_testbed_single(self, capsys):
        assert main(
            ["testbed", "--vehicles", "8", "--duration", "1.5", "--cars", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "total=" in out


class TestConsolidatedFlags:
    """The report subcommands share one scenario parent (--seed,
    --shards) and one output parent (--format, --out)."""

    @pytest.mark.parametrize(
        "command", ["resilience", "parallel", "obs", "city"]
    )
    def test_shared_flags_parse_everywhere(self, command):
        parsed = build_parser().parse_args(
            [command, "--seed", "13", "--shards", "2",
             "--format", "json", "--out", "/tmp/r.json"]
        )
        assert parsed.seed == 13
        assert parsed.shards == 2
        assert parsed.format == "json"
        assert parsed.out == "/tmp/r.json"

    def test_parallel_workers_alias(self, capsys):
        parsed = build_parser().parse_args(["parallel", "--workers", "3"])
        assert parsed.shards == 3
        err = capsys.readouterr().err
        assert "deprecated" in err
        assert "--shards" in err

    def test_obs_json_alias(self, capsys):
        parsed = build_parser().parse_args(["obs", "--json", "/tmp/o.json"])
        assert parsed.out == "/tmp/o.json"
        err = capsys.readouterr().err
        assert "deprecated" in err
        assert "--out" in err

    def test_repeated_alias_warns_once_per_invocation(self, capsys):
        parsed = build_parser().parse_args(
            ["parallel", "--workers", "2", "--workers", "3"]
        )
        assert parsed.shards == 3  # last occurrence still wins
        err = capsys.readouterr().err
        assert err.count("deprecated") == 1

    def test_distinct_aliases_each_warn(self, capsys):
        # Namespaces are per-parse, so a fresh invocation warns again
        # and different flags warn independently.
        build_parser().parse_args(["parallel", "--workers", "2"])
        build_parser().parse_args(["obs", "--json", "/tmp/o.json"])
        err = capsys.readouterr().err
        assert err.count("deprecated") == 2


class TestCityCommand:
    def test_city_report_json_and_out(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "city.json"
        assert main(
            ["city", "--scale", "0.01", "--duration", "300",
             "--shards", "2", "--rebalance-every", "2",
             "--format", "json", "--out", str(out_path)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out_path.read_text())
        assert payload["shards"] == 2
        assert payload["digest_signature"]

    def test_city_markdown_default(self, capsys):
        assert main(["city", "--scale", "0.01", "--duration", "120"]) == 0
        out = capsys.readouterr().out
        assert "city" in out.lower()


class TestCommCommand:
    def test_comm_report_json_and_out(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "comm.json"
        assert main(
            ["comm", "--vehicles", "4", "--duration", "2",
             "--format", "json", "--out", str(out_path)]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(out_path.read_text())
        assert payload["audits_ok"] is True
        assert payload["points"][0]["label"] == "baseline"
        assert len(payload["points"]) >= 6

    def test_comm_markdown_default(self, capsys):
        assert main(["comm", "--vehicles", "4", "--duration", "2"]) == 0
        out = capsys.readouterr().out
        assert "Knee" in out
        assert "bytes/frame" in out

    def test_comm_rejects_shards(self, capsys):
        assert main(["comm", "--vehicles", "4", "--shards", "2"]) == 2
        assert "single-process" in capsys.readouterr().err
