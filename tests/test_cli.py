"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            "generate",
            "stats",
            "profiles",
            "evaluate",
            "mesoscopic",
            "testbed",
            "deploy",
            "mac",
        ):
            args = {
                "generate": [command, "/tmp/x.csv"],
            }.get(command, [command])
            parsed = parser.parse_args(args)
            assert parsed.command == command


class TestCommands:
    def test_mac(self, capsys):
        assert main(["mac", "--vehicles", "256"]) == 0
        out = capsys.readouterr().out
        assert "256 vehicles" in out
        assert "MCS 8" in out

    def test_generate_stats_round_trip(self, tmp_path, capsys):
        csv_path = str(tmp_path / "data.csv")
        assert main(
            ["generate", csv_path, "--cars", "30", "--trips", "3"]
        ) == 0
        assert main(["stats", "--input", csv_path]) == 0
        out = capsys.readouterr().out
        assert "Shenzhen" in out
        assert "Motorway" in out

    def test_profiles_library(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "motorway" in out
        assert len(out.splitlines()) >= 25

    def test_evaluate_small(self, capsys):
        assert main(["evaluate", "--cars", "80"]) == 0
        out = capsys.readouterr().out
        assert "cad3" in out
        assert "E(Lambda)" in out

    def test_deploy_scaled(self, capsys):
        assert main(["deploy", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "motorway" in out
        assert "coverage" in out

    def test_testbed_single(self, capsys):
        assert main(
            ["testbed", "--vehicles", "8", "--duration", "1.5", "--cars", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "total=" in out
