"""Barrier grid and frame codec invariants."""

import pytest

from repro.parallel.barrier import (
    FRAME_SUMMARY,
    batch_barriers,
    decode_summary,
    decode_telemetry,
    decode_transfer,
    encode_summary,
    encode_telemetry,
    encode_transfer,
    frame_target,
    sync_schedule,
)
from repro.simkernel.simulator import Simulator


class TestBatchBarriers:
    def test_matches_simulator_tick_accumulation(self):
        """The whole determinism story rests on this: barriers must sit
        exactly ON the (float-drifted) tick instants of every RSU."""
        sim = Simulator()
        ticks = []
        sim.every(0.05, lambda: ticks.append(sim.now), until=10.0)
        sim.run()
        grid = batch_barriers(0.05, 10.0)
        assert grid == ticks
        # And they are NOT the naive multiples — the drift is real.
        naive = [(k + 1) * 0.05 for k in range(len(grid))]
        assert grid != naive

    def test_strictly_inside_duration(self):
        grid = batch_barriers(0.05, 1.0)
        assert all(0 < t < 1.0 for t in grid)
        assert grid == sorted(grid)

    def test_sync_schedule_unions_handovers_and_drain(self):
        schedule = sync_schedule(0.05, 1.0, [0.5, 0.123])
        assert schedule[-1] == 1.5  # final drain barrier
        assert 0.123 in schedule
        assert 0.5 in schedule
        assert schedule == sorted(set(schedule))

    def test_sync_schedule_ignores_late_handovers(self):
        schedule = sync_schedule(0.05, 1.0, [2.0])
        assert 2.0 not in schedule


class TestFrameCodec:
    def test_summary_round_trip(self):
        buf = encode_summary("rsu-mw-link", 1.25, b"\xc3payload")
        assert frame_target(buf) == "rsu-mw-link"
        assert decode_summary(buf) == ("rsu-mw-link", 1.25, b"\xc3payload")

    def test_telemetry_round_trip(self):
        buf = encode_telemetry("rsu-mw-2", 0.725, 42, b"\xc3" + b"z" * 70)
        assert frame_target(buf) == "rsu-mw-2"
        assert decode_telemetry(buf) == (
            "rsu-mw-2",
            0.725,
            42,
            b"\xc3" + b"z" * 70,
        )

    def test_transfer_round_trip(self):
        state = {"car_id": 7, "stats": [1.0, 2.0], "pool": "link"}
        buf = encode_transfer("rsu-mw-link", state)
        assert frame_target(buf) == "rsu-mw-link"
        target, decoded = decode_transfer(buf)
        assert target == "rsu-mw-link"
        assert decoded == state

    def test_target_peek_needs_no_body_decode(self):
        # The engine routes on the header prefix alone — same accessor
        # for all three kinds.
        for buf in (
            encode_summary("a", 0.0, b""),
            encode_telemetry("bb", 0.0, 1, b""),
            encode_transfer("ccc", {}),
        ):
            assert frame_target(buf) in ("a", "bb", "ccc")

    def test_overlong_rsu_name_rejected(self):
        with pytest.raises(ValueError):
            encode_summary("x" * 256, 0.0, b"")

    def test_kind_constant_is_stable(self):
        assert FRAME_SUMMARY == 1  # wire-compat: do not renumber
