"""ShardPlanner: deterministic, balanced, neighbour-aware cuts."""

import pytest

from repro.core.scenario import ScenarioSpec
from repro.core.topology import corridor_topology
from repro.parallel.plan import ShardPlanner


def _topology(n_vehicles=16, motorways=8, fraction=0.25):
    spec = ScenarioSpec(n_vehicles=n_vehicles, handover_fraction=fraction)
    return corridor_topology(spec, motorways)


class TestShardPlanner:
    def test_every_rsu_assigned_exactly_once(self):
        topology = _topology()
        plan = ShardPlanner().plan(topology, 4)
        assigned = [name for names in plan.assignments for name in names]
        assert sorted(assigned) == sorted(topology.rsu_names())
        for name in topology.rsu_names():
            assert plan.assignments[plan.shard_of(name)].count(name) == 1

    def test_deterministic(self):
        topology = _topology()
        first = ShardPlanner().plan(topology, 4)
        second = ShardPlanner().plan(topology, 4)
        assert first == second

    def test_loads_are_balanced(self):
        # 8 motorways x 16 vehicles + link (16 homed + 32 influx):
        # total weight 176, perfectly splittable into 4 x 44... the
        # greedy LPT bound guarantees max <= mean + max_item.
        topology = _topology()
        plan = ShardPlanner().plan(topology, 4)
        loads = plan.loads(topology)
        weight = topology.vehicle_load()
        mean = sum(weight.values()) / 4
        assert max(loads) <= mean + max(weight.values())
        assert min(loads) > 0

    def test_single_shard_owns_everything(self):
        topology = _topology()
        plan = ShardPlanner().plan(topology, 1)
        assert plan.n_shards == 1
        assert sorted(plan.assignments[0]) == sorted(topology.rsu_names())
        assert plan.cross_edges(topology) == []

    def test_more_shards_than_rsus_trims(self):
        topology = _topology(motorways=2)  # 3 RSUs
        plan = ShardPlanner().plan(topology, 8)
        assert plan.n_shards == 3
        assert all(len(names) == 1 for names in plan.assignments)

    def test_tiebreak_colocates_neighbours(self):
        # With 2 shards on a small corridor, the link RSU (heaviest)
        # seeds one shard; motorways tie on load, so the neighbour
        # tie-break pulls later motorways toward the link's shard when
        # loads allow.  At minimum, cross edges must not exceed the
        # motorway count (every edge points at the link).
        topology = _topology(motorways=4)
        plan = ShardPlanner().plan(topology, 2)
        assert len(plan.cross_edges(topology)) <= 4

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardPlanner().plan(_topology(), 0)

    def test_shard_of_unknown_rsu(self):
        plan = ShardPlanner().plan(_topology(), 2)
        with pytest.raises(KeyError):
            plan.shard_of("rsu-nope")


class TestRebalance:
    """Load-aware RSU migration between shards (pure decisions)."""

    def test_skew_triggers_migration_toward_light_shard(self):
        assignments = [["a", "b", "c"], ["d"]]
        loads = {"a": 100.0, "b": 90.0, "c": 80.0, "d": 10.0}
        decisions = ShardPlanner().rebalance(assignments, loads)
        assert decisions
        for decision in decisions:
            assert decision.from_shard == 0
            assert decision.to_shard == 1
            assert decision.rsu in assignments[0]

    def test_balanced_loads_are_left_alone(self):
        assignments = [["a", "b"], ["c", "d"]]
        loads = {"a": 50.0, "b": 51.0, "c": 49.0, "d": 50.0}
        assert ShardPlanner().rebalance(assignments, loads) == []

    def test_never_empties_a_shard(self):
        decisions = ShardPlanner().rebalance(
            [["a"], ["b"]], {"a": 1000.0, "b": 1.0}
        )
        assert decisions == []

    def test_moves_reduce_imbalance(self):
        assignments = [["a", "b", "c", "d"], ["e", "f"]]
        loads = {
            "a": 60.0, "b": 55.0, "c": 50.0, "d": 45.0,
            "e": 10.0, "f": 5.0,
        }

        def spread(plan):
            shard_loads = [
                sum(loads[name] for name in names) for names in plan
            ]
            return max(shard_loads) - min(shard_loads)

        before = [list(names) for names in assignments]
        decisions = ShardPlanner().rebalance(assignments, loads)
        assert decisions
        after = [list(names) for names in before]
        for decision in decisions:
            after[decision.from_shard].remove(decision.rsu)
            after[decision.to_shard].append(decision.rsu)
        assert spread(after) < spread(before)

    def test_deterministic(self):
        assignments = (("a", "b", "c"), ("d",))
        loads = {"a": 40.0, "b": 40.0, "c": 40.0, "d": 0.0}
        first = ShardPlanner().rebalance(assignments, loads)
        second = ShardPlanner().rebalance(assignments, loads)
        assert first == second

    def test_single_shard_is_a_no_op(self):
        assert ShardPlanner().rebalance([["a", "b"]], {"a": 9.0}) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ShardPlanner().rebalance([["a"], ["b"]], {}, threshold=-0.5)

    def test_single_rsu_shards_are_never_drained(self):
        # Every shard owns exactly one RSU: any move would empty its
        # source, so even extreme skew produces no decisions.
        decisions = ShardPlanner().rebalance(
            [["a"], ["b"], ["c"]], {"a": 900.0, "b": 5.0, "c": 1.0}
        )
        assert decisions == []

    def test_heaviest_single_rsu_shard_halts_rebalance(self):
        # The heavy shard's last RSU is pinned — and because moves only
        # ever leave the heaviest shard, the remaining (mutually
        # imbalanced) shards are left alone too.
        decisions = ShardPlanner().rebalance(
            [["a"], ["b", "c"], ["d"]],
            {"a": 1000.0, "b": 30.0, "c": 30.0, "d": 0.0},
        )
        assert decisions == []

    def test_spread_exactly_at_threshold_is_left_alone(self):
        # All-equal per-RSU loads, shard spread landing exactly on
        # threshold * mean (90 vs 70, mean 80, threshold 0.25): the
        # trigger is strictly greater-than, so nothing moves...
        heavy = [f"h{i}" for i in range(9)]
        light = [f"l{i}" for i in range(7)]
        loads = {name: 10.0 for name in heavy + light}
        assert ShardPlanner().rebalance([heavy, light], loads) == []
        # ...while one RSU fewer on the light side crosses it.
        assert ShardPlanner().rebalance([heavy, light[:-1]], loads)

    def test_overshooting_move_is_refused(self):
        # The lightest candidate (50) still exceeds the 40-point gap:
        # moving it would invert and *worsen* the imbalance, so the
        # planner must refuse rather than oscillate.
        decisions = ShardPlanner().rebalance(
            [["a", "b"], ["c", "d"]],
            {"a": 50.0, "b": 50.0, "c": 30.0, "d": 30.0},
        )
        assert decisions == []

    def test_max_moves_caps_decisions(self):
        assignments = [["a", "b", "c", "d", "e"], ["f"]]
        loads = {name: 50.0 for name in "abcde"}
        loads["f"] = 0.0
        decisions = ShardPlanner().rebalance(
            assignments, loads, max_moves=1
        )
        assert len(decisions) <= 1
