"""Golden equivalence: the sharded engine vs the single-process engine.

The parallel corridor must be *deterministic* and *warning-for-warning
identical* to ``shards=1`` — same warning tuples in the same order at
every RSU, same latency samples, same summary counts.  These tests run
the ``paper_corridor()`` preset (reduced sizes) both ways and compare
exactly, plus the gating rules for configurations sharding cannot
honour.
"""

import pytest

from repro.core.scenario import ScenarioBuilder, paper_corridor
from repro.parallel.engine import ParallelExecutionError, ShardedScenario


def _builder(dataset_seed_free=True):
    # paper_corridor() at test scale: enough vehicles that a quarter of
    # each motorway hands over mid-run, short enough to stay fast.
    return paper_corridor().vehicles(8).duration(2.0).serde("struct")


def _vehicle_signature(result):
    return {
        car: (
            stats.records_sent,
            stats.bytes_sent,
            stats.warnings_received,
            stats.e2e_latencies_s,
            stats.dissemination_latencies_s,
        )
        for car, stats in result.vehicle_stats.items()
    }


@pytest.fixture(scope="module")
def serial_run(labeled_dataset, audit_invariants):
    scenario = _builder().corridor(motorways=2, dataset=labeled_dataset)
    result = scenario.run()
    # The comparator itself must conserve records/warnings, or the
    # bit-identical assertions below prove equivalence to a broken run.
    audit_invariants(scenario)
    warnings = {name: rsu.warning_log() for name, rsu in scenario.rsus.items()}
    return result, warnings


@pytest.fixture(scope="module")
def parallel_run(labeled_dataset):
    scenario = _builder().shards(4).corridor(
        motorways=2, dataset=labeled_dataset
    )
    assert isinstance(scenario, ShardedScenario)
    result = scenario.run()
    return result, scenario


class TestGoldenParallel:
    def test_warnings_bit_identical(self, serial_run, parallel_run):
        _, serial_warnings = serial_run
        _, scenario = parallel_run
        assert scenario.warning_logs == serial_warnings
        assert sum(len(w) for w in serial_warnings.values()) > 0

    def test_vehicle_stats_identical(self, serial_run, parallel_run):
        serial_result, _ = serial_run
        parallel_result, _ = parallel_run
        assert _vehicle_signature(parallel_result) == _vehicle_signature(
            serial_result
        )

    def test_rsu_metrics_identical(self, serial_run, parallel_run):
        serial_result, _ = serial_run
        parallel_result, _ = parallel_run
        assert set(parallel_result.rsu_metrics) == set(
            serial_result.rsu_metrics
        )
        for name, serial_m in serial_result.rsu_metrics.items():
            parallel_m = parallel_result.rsu_metrics[name]
            assert parallel_m.n_events == serial_m.n_events
            assert parallel_m.warnings_issued == serial_m.warnings_issued
            assert parallel_m.summaries_sent == serial_m.summaries_sent
            assert (
                parallel_m.summaries_received == serial_m.summaries_received
            )
            assert parallel_m.mean_tx_ms == serial_m.mean_tx_ms
            assert parallel_m.mean_queuing_ms == serial_m.mean_queuing_ms
            assert parallel_m.bandwidth_in_bps == serial_m.bandwidth_in_bps

    def test_aggregate_latencies_identical(self, serial_run, parallel_run):
        serial_result, _ = serial_run
        parallel_result, _ = parallel_run
        assert parallel_result.mean_e2e_ms() == serial_result.mean_e2e_ms()
        assert (
            parallel_result.mean_dissemination_ms()
            == serial_result.mean_dissemination_ms()
        )

    def test_no_frames_lost(self, parallel_run):
        _, scenario = parallel_run
        assert scenario.undelivered_frames == 0
        assert len(scenario.window_timings) > 0
        assert scenario.critical_path_cpu_s() > 0

    def test_handover_actually_crossed_shards(self, parallel_run):
        """The run must exercise the cross-shard path, or this golden
        test proves nothing: the link RSU and at least one motorway
        must sit in different shards, and summaries must have moved."""
        result, scenario = parallel_run
        assert scenario.plan.cross_edges(scenario.topology)
        link = result.rsu_metrics["rsu-mw-link"]
        assert link.summaries_received > 0


class TestShardedObservability:
    def test_merged_snapshot_matches_serial_totals(self, labeled_dataset):
        """Per-shard registries merged at collect must total exactly
        what one serial registry sees: the merge is the whole story of
        cross-shard metrics, so every additive counter must agree."""
        serial = (
            _builder().observe().corridor(motorways=2, dataset=labeled_dataset)
        )
        serial_snap = serial.run().obs
        sharded = (
            _builder()
            .observe()
            .shards(4)
            .corridor(motorways=2, dataset=labeled_dataset)
        )
        merged = sharded.run().obs
        assert merged is not None
        for name in (
            "vehicle.records_sent",
            "vehicle.warnings_received",
            "rsu.records_detected",
            "rsu.warnings_emitted",
            "rsu.summaries_sent",
            "rsu.summaries_received",
            "broker.records_in",
        ):
            assert merged.counter_total(name) == serial_snap.counter_total(
                name
            ), name
        # Per-shard live snapshots flowed over the rings during the run.
        assert len(sharded.shard_snapshots) == sharded.n_shards


class TestShardingGates:
    def test_faults_rejected(self):
        from repro.faults.events import profile

        builder = _builder().shards(2).faults(profile("broker_crash"))
        with pytest.raises(ValueError, match="fault injection"):
            builder.corridor()

    def test_retry_rejected(self):
        from repro.streaming.producer import RetryPolicy

        builder = _builder().shards(2).retry(RetryPolicy())
        with pytest.raises(ValueError, match="retry"):
            builder.corridor()

    def test_non_corridor_topologies_rejected(self, labeled_dataset):
        with pytest.raises(ValueError, match="single_rsu"):
            ScenarioBuilder().shards(2).single_rsu(dataset=labeled_dataset)
        with pytest.raises(ValueError, match="chain"):
            ScenarioBuilder().shards(2).chain(dataset=labeled_dataset)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ScenarioBuilder().shards(0)

    def test_worker_failure_surfaces_traceback(self, labeled_dataset):
        scenario = _builder().shards(2).corridor(
            motorways=2, dataset=labeled_dataset
        )
        # Sabotage the bundle so every worker build blows up.
        scenario.bundle.detectors.clear()
        with pytest.raises(ParallelExecutionError, match="Traceback"):
            scenario.run()
