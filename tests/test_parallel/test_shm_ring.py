"""Property tests: struct serde round trips through the shm ring.

The sharded engine's cross-process traffic is framed bytes through
:class:`ShmRing`; these tests drive the ring through wrap-around and
partial-drain interleavings with hypothesis and check that the fixed
layout serdes survive the trip bit-exactly — including the magic-byte
JSON fallback that :meth:`FlatStructSerde.decode_batch` must reject and
:meth:`deserialize` must absorb.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wire import summary_struct_serde
from repro.parallel.barrier import summary_car_ids
from repro.streaming.serde import SerdeError
from repro.streaming.shm import RingFull, ShmRing
from tests.strategies import ring_frames, summary_dicts


@pytest.fixture
def ring():
    ring = ShmRing(capacity=256)
    yield ring
    ring.close()
    ring.unlink()


payloads_strategy = ring_frames


class TestRingProperties:
    @given(frames=payloads_strategy)
    @settings(max_examples=60, deadline=None)
    def test_interleaved_push_pop_round_trips(self, frames):
        """Push/pop interleaved so the cursors lap the 256-byte ring
        many times: every frame must come back intact and in order."""
        ring = ShmRing(capacity=256)
        try:
            popped = []
            for kind, payload in frames:
                ring.push(kind, payload)
                popped.append(ring.pop())
            assert popped == frames
            assert ring.pop() is None
        finally:
            ring.close()
            ring.unlink()

    @given(frames=payloads_strategy, keep=st.integers(min_value=0, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_partial_drain_preserves_order(self, frames, keep):
        """Drain only part of the backlog between pushes (the engine's
        n_frames-at-a-time consumption): order still holds."""
        ring = ShmRing(capacity=4096)
        try:
            popped = []
            pending = 0
            for index, (kind, payload) in enumerate(frames):
                ring.push(kind, payload)
                pending += 1
                while pending > keep:
                    popped.append(ring.pop())
                    pending -= 1
            popped.extend(ring.drain())
            assert popped == frames
        finally:
            ring.close()
            ring.unlink()

    def test_wrap_around_split_frame(self, ring):
        """A frame larger than the space left before the physical end
        must split across the boundary and reassemble."""
        ring.push(1, b"x" * 200)
        assert ring.pop() == (1, b"x" * 200)
        # Cursor now at 205; the next 200-byte frame wraps.
        ring.push(2, b"y" * 200)
        assert ring.pop() == (2, b"y" * 200)

    def test_full_ring_raises_instead_of_overwriting(self, ring):
        ring.push(1, b"a" * 120)
        ring.push(1, b"b" * 120)
        with pytest.raises(RingFull):
            ring.push(1, b"c" * 20)
        # The backlog is untouched by the failed push.
        assert ring.pop() == (1, b"a" * 120)
        ring.push(1, b"c" * 20)
        assert ring.drain() == [(1, b"b" * 120), (1, b"c" * 20)]

    def test_attach_by_name_shares_frames(self, ring):
        ring.push(7, b"hello")
        attached = ShmRing(ring.capacity, name=ring.name)
        try:
            assert attached.pop() == (7, b"hello")
            assert ring.pop() is None  # shared cursors
        finally:
            attached.close()


class TestZeroCopyViews:
    @given(frames=payloads_strategy)
    @settings(max_examples=60, deadline=None)
    def test_pop_view_round_trips_across_wrap(self, frames):
        """push/view/pop at random sizes: cursors lap the 256-byte ring,
        so frames land on both sides of (and across) the wrap boundary;
        every borrowed view must read back bit-exact, in order."""
        ring = ShmRing(capacity=256)
        try:
            for kind, payload in frames:
                ring.push(kind, payload)
                got_kind, view = ring.pop_view()
                assert (got_kind, bytes(view)) == (kind, payload)
                view.release()
            assert ring.pop_view() is None
        finally:
            ring.close()
            ring.unlink()

    @given(frames=payloads_strategy)
    @settings(max_examples=60, deadline=None)
    def test_drain_views_matches_drain(self, frames):
        """The bulk-frame view drain returns the same frames as the
        copying drain would, oldest first."""
        ring = ShmRing(capacity=4096)
        try:
            for kind, payload in frames:
                ring.push(kind, payload)
            views = ring.drain_views()
            materialized = [(kind, bytes(view)) for kind, view in views]
            for _, view in views:
                view.release()
            assert materialized == frames
            assert ring.drain_views() == []
        finally:
            ring.close()
            ring.unlink()

    def test_non_wrapping_view_aliases_the_segment(self, ring):
        """The fast path hands out a window into shared memory itself —
        writes to the segment are visible through the view (zero-copy)."""
        ring.push(3, b"abcdef")
        _, view = ring.pop_view()
        try:
            # Payload starts after the 16-byte ring header and the
            # 5-byte frame header.
            ring._shm.buf[16 + 5] = ord("Z")
            assert bytes(view) == b"Zbcdef"
        finally:
            view.release()

    def test_stale_view_after_pop_is_overwritten(self):
        """Popping frees the frame's bytes for reuse: a view retained
        across the next push aliases recycled storage and goes stale.
        Callers that keep a frame must copy it (``bytes(view)``) first."""
        ring = ShmRing(capacity=64)
        try:
            ring.push(1, b"a" * 32)
            _, view = ring.pop_view()
            keep = bytes(view)  # owned copy taken before the next push
            assert keep == b"a" * 32
            ring.push(2, b"b" * 32)  # wraps; recycles the popped region
            assert bytes(view) != b"a" * 32
            assert keep == b"a" * 32
            view.release()
        finally:
            ring.close()
            ring.unlink()


summaries_strategy = summary_dicts


class TestStructSerdeThroughRing:
    @given(values=summaries_strategy)
    @settings(max_examples=40, deadline=None)
    def test_summary_round_trip_and_batch_decode(self, values):
        serde = summary_struct_serde()
        ring = ShmRing(capacity=1024)
        try:
            for value in values:
                ring.push(1, serde.serialize(value))
            payloads = [payload for _, payload in ring.drain()]
            assert [serde.deserialize(p)["car"] for p in payloads] == [
                v["car"] for v in values
            ]
            batch = serde.decode_batch(payloads)
            assert batch["car"].tolist() == [v["car"] for v in values]
            assert batch["n"].tolist() == [v["n"] for v in values]
        finally:
            ring.close()
            ring.unlink()

    @given(values=summaries_strategy)
    @settings(max_examples=40, deadline=None)
    def test_magic_byte_json_fallback_through_ring(self, values):
        """A payload the struct layout cannot hold falls back to JSON;
        batch decode must reject the mixed batch, the per-payload path
        (and summary_car_ids) must absorb it."""
        serde = summary_struct_serde()
        odd = dict(values[0])
        odd["n"] = 2**70  # overflows the fixed field: JSON fallback
        wire = [serde.serialize(v) for v in values] + [serde.serialize(odd)]
        assert wire[-1][0:1] != bytes([0xC3])

        ring = ShmRing(capacity=8192)
        try:
            for payload in wire:
                ring.push(1, payload)
            payloads = [payload for _, payload in ring.drain()]
        finally:
            ring.close()
            ring.unlink()

        with pytest.raises(SerdeError):
            serde.decode_batch(payloads)
        expected = [v["car"] for v in values] + [odd["car"]]
        assert [serde.deserialize(p)["car"] for p in payloads] == expected
        # The barrier helper takes the same fallback path transparently.
        assert summary_car_ids(payloads, serde) == expected
