"""Shared fixtures: a labelled corridor dataset and trained detectors.

Session-scoped because generation + labelling is the expensive part of
the suite; tests must not mutate these objects.
"""

import pytest

from repro.core.collaborative import summaries_from_upstream
from repro.core.detector import AD3Detector
from repro.dataset import DatasetGenerator, GeneratorConfig, Preprocessor
from repro.fuzz.spec import GOLDEN_DATASET_SEED, GOLDEN_SCENARIO_SEED
from repro.geo import CityNetworkBuilder, RoadType


@pytest.fixture(scope="session")
def golden_seeds():
    """The canonical RNG seeds every golden suite derives from —
    single-sourced in :mod:`repro.fuzz.spec` so the fuzzer, the golden
    tests, and this fixture can never drift apart."""
    return {
        "scenario": GOLDEN_SCENARIO_SEED,
        "dataset": GOLDEN_DATASET_SEED,
    }


@pytest.fixture(scope="session")
def corridor_network():
    return CityNetworkBuilder(seed=1).build_corridor()


@pytest.fixture(scope="session")
def labeled_dataset(corridor_network, golden_seeds):
    generator = DatasetGenerator(
        corridor_network,
        GeneratorConfig(
            n_cars=120,
            trips_per_car=6,
            seed=golden_seeds["dataset"],
            erroneous_rate=0.0,
        ),
    )
    dataset = generator.generate()
    dataset.records = Preprocessor().run(dataset.records)
    return dataset


@pytest.fixture(scope="session")
def trip_split(labeled_dataset):
    return labeled_dataset.split_by_trip(0.8, seed=0)


@pytest.fixture(scope="session")
def motorway_detector(trip_split):
    train, _ = trip_split
    motorway = [r for r in train if r.road_type is RoadType.MOTORWAY]
    return AD3Detector(RoadType.MOTORWAY).fit(motorway)


@pytest.fixture(scope="session")
def link_records(trip_split):
    train, test = trip_split
    return (
        [r for r in train if r.road_type is RoadType.MOTORWAY_LINK],
        [r for r in test if r.road_type is RoadType.MOTORWAY_LINK],
    )


@pytest.fixture(scope="session")
def motorway_records(trip_split):
    train, test = trip_split
    return (
        [r for r in train if r.road_type is RoadType.MOTORWAY],
        [r for r in test if r.road_type is RoadType.MOTORWAY],
    )


@pytest.fixture(scope="session")
def audit_invariants():
    """The invariant audit as a fixture: call it on any finished
    *serial* scenario and the pipeline's conservation laws are checked
    (telemetry, detection, collaboration, warning accounting — see
    :mod:`repro.obs.audit`).  Raises ``AssertionError`` with every
    violated law when a record or warning went missing unaccounted.

    Session-scoped (it is stateless) so module-scoped scenario
    fixtures can use it too.
    """
    from repro.obs.audit import assert_invariants

    return assert_invariants


@pytest.fixture(scope="session")
def upstream_summaries(motorway_detector, motorway_records):
    train_mw, test_mw = motorway_records
    return (
        summaries_from_upstream(motorway_detector, train_mw),
        summaries_from_upstream(motorway_detector, test_mw),
    )
