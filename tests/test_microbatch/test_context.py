"""Tests for the streaming context and processing model."""

import numpy as np
import pytest

from repro.microbatch import DStream, ProcessingModel, StreamingContext
from repro.simkernel import Simulator
from repro.streaming import Broker, Consumer, Producer


def build_pipeline(interval_s=0.050, model=None):
    sim = Simulator()
    broker = Broker("rsu", clock=lambda: sim.now)
    broker.create_topic("IN-DATA", 1)
    consumer = Consumer(broker, group="pipeline")
    consumer.subscribe(["IN-DATA"])
    context = StreamingContext(
        sim, consumer, interval_s=interval_s, processing_model=model
    )
    producer = Producer(broker)
    return sim, context, producer


class TestProcessingModel:
    def test_paper_calibration(self):
        """Fig. 6a: ~7.3 ms at 8 vehicles (4 records / 50 ms batch),
        ~11.7 ms at 256 vehicles (128 records)."""
        model = ProcessingModel()
        assert model.duration(4) * 1e3 == pytest.approx(7.3, abs=0.5)
        assert model.duration(128) * 1e3 == pytest.approx(11.7, abs=0.7)

    def test_monotonic_in_records(self):
        model = ProcessingModel()
        durations = [model.duration(n) for n in (0, 10, 100, 1000)]
        assert durations == sorted(durations)

    def test_jitter_scales(self):
        model = ProcessingModel(jitter_fraction=0.1)
        base = model.duration(10)
        assert model.duration(10, jitter=1.0) == pytest.approx(base * 1.1)
        assert model.duration(10, jitter=-1.0) == pytest.approx(base * 0.9)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessingModel().duration(-1)


class TestStreamingContext:
    def test_ticks_at_interval(self):
        sim, context, producer = build_pipeline()
        context.start(until=0.20)
        sim.run()
        # Ticks at 0.05, 0.10, 0.15 (until is exclusive of 0.20).
        assert context.batches_processed == 3

    def test_records_flow_to_sink(self):
        sim, context, producer = build_pipeline()
        seen = []
        context.stream.map(lambda v: v["n"]).foreach_batch(
            lambda batch, t: seen.extend(batch.collect())
        )
        sim.at(0.01, lambda: producer.send("IN-DATA", {"n": 1}))
        sim.at(0.06, lambda: producer.send("IN-DATA", {"n": 2}))
        context.start(until=0.15)
        sim.run()
        assert seen == [1, 2]

    def test_batch_boundary_respected(self):
        """A record produced at t=0.06 is not in the t=0.05 batch."""
        sim, context, producer = build_pipeline()
        batches = []
        context.stream.foreach_batch(
            lambda batch, t: batches.append((batch.batch_time, len(batch)))
        )
        sim.at(0.06, lambda: producer.send("IN-DATA", {"n": 1}))
        context.start(until=0.15)
        sim.run()
        sizes = dict(
            (round(bt, 3), n) for bt, n in batches
        )
        assert sizes.get(0.05, 0) == 0
        assert sizes[0.1] == 1

    def test_completion_time_after_batch_time(self):
        sim, context, producer = build_pipeline()
        completions = []
        context.stream.foreach_batch(
            lambda batch, t: completions.append((batch.batch_time, t))
        )
        sim.at(0.01, lambda: producer.send("IN-DATA", {"n": 1}))
        context.start(until=0.10)
        sim.run()
        for batch_time, completion in completions:
            assert completion > batch_time

    def test_processing_latency_model_applied(self):
        model = ProcessingModel(base_s=0.005, per_record_s=0.0, jitter_fraction=0.0)
        sim, context, producer = build_pipeline(model=model)
        completions = []
        context.stream.foreach_batch(
            lambda batch, t: completions.append(t)
        )
        sim.at(0.01, lambda: producer.send("IN-DATA", {"n": 1}))
        context.start(until=0.10)
        sim.run()
        assert completions[0] == pytest.approx(0.055)

    def test_busy_pipeline_queues_batches(self):
        """If processing exceeds the interval, batches serialize."""
        model = ProcessingModel(base_s=0.120, per_record_s=0.0, jitter_fraction=0.0)
        sim, context, producer = build_pipeline(model=model)
        completions = []
        context.stream.foreach_batch(lambda batch, t: completions.append(t))
        for t in (0.01, 0.06, 0.11):
            sim.at(t, lambda: producer.send("IN-DATA", {"n": 0}))
        context.start(until=0.20)
        sim.run()
        # Batch 1 completes at 0.05+0.12=0.17; batch 2 starts at 0.17,
        # completes 0.29; batch 3 at 0.41.
        assert completions == pytest.approx([0.17, 0.29, 0.41])

    def test_mean_processing_skips_empty_batches(self):
        sim, context, producer = build_pipeline()
        sim.at(0.01, lambda: producer.send("IN-DATA", {"n": 1}))
        context.start(until=0.30)
        sim.run()
        non_empty = [m for m in context.metrics if m.n_records > 0]
        assert len(non_empty) == 1
        assert context.mean_processing_ms() == pytest.approx(
            non_empty[0].processing_ms
        )

    def test_double_start_rejected(self):
        sim, context, _ = build_pipeline()
        context.start(until=0.1)
        with pytest.raises(RuntimeError):
            context.start()

    def test_stop_halts_ticks(self):
        sim, context, _ = build_pipeline()
        context.start()
        sim.at(0.12, context.stop)
        sim.run_until(0.5)
        assert context.batches_processed == 2

    def test_invalid_interval(self):
        sim, context, _ = build_pipeline()
        with pytest.raises(ValueError):
            StreamingContext(sim, context.consumer, interval_s=0.0)

    def test_jitter_source_used(self):
        rng = np.random.default_rng(0)
        sim = Simulator()
        broker = Broker("b", clock=lambda: sim.now)
        broker.create_topic("IN-DATA", 1)
        consumer = Consumer(broker, group="g")
        consumer.subscribe(["IN-DATA"])
        context = StreamingContext(
            sim,
            consumer,
            processing_model=ProcessingModel(jitter_fraction=0.5),
            jitter_source=lambda: float(rng.uniform(-1, 1)),
        )
        producer = Producer(broker)
        for t in (0.01, 0.06, 0.11, 0.16):
            sim.at(t, lambda: producer.send("IN-DATA", {"n": 0}))
        context.start(until=0.25)
        sim.run()
        durations = {m.processing_s for m in context.metrics if m.n_records}
        assert len(durations) > 1  # jitter produced distinct durations


class TestDStream:
    def test_transform_chain_order(self):
        from repro.microbatch import Batch

        stream = DStream()
        collected = []
        stream.map(lambda x: x + 1).filter(lambda x: x > 2).foreach_batch(
            lambda batch, t: collected.extend(batch.collect())
        )
        stream.process(Batch([0, 1, 2, 3]), completion_time=1.0)
        assert collected == [3, 4]

    def test_multiple_sinks_at_different_stages(self):
        from repro.microbatch import Batch

        stream = DStream()
        raw, mapped = [], []
        stream.foreach_batch(lambda b, t: raw.extend(b.collect()))
        stream.map(lambda x: x * 10).foreach_batch(
            lambda b, t: mapped.extend(b.collect())
        )
        stream.process(Batch([1, 2]), completion_time=0.0)
        assert raw == [1, 2]
        assert mapped == [10, 20]
        assert stream.n_sinks == 2
