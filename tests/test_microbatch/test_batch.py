"""Tests for the Batch (RDD analogue)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.microbatch import Batch


class TestBatch:
    def test_immutability_via_new_batches(self):
        batch = Batch([1, 2, 3])
        doubled = batch.map(lambda x: x * 2)
        assert batch.collect() == [1, 2, 3]
        assert doubled.collect() == [2, 4, 6]

    def test_batch_time_propagates(self):
        batch = Batch([1], batch_time=2.5)
        assert batch.map(lambda x: x).batch_time == 2.5
        assert batch.filter(lambda x: True).batch_time == 2.5

    def test_filter(self):
        batch = Batch(range(10))
        assert batch.filter(lambda x: x % 2 == 0).collect() == [0, 2, 4, 6, 8]

    def test_flat_map(self):
        batch = Batch([1, 2])
        assert batch.flat_map(lambda x: [x] * x).collect() == [1, 2, 2]

    def test_map_partitions_sees_whole_list(self):
        batch = Batch([3, 1, 2])
        result = batch.map_partitions(sorted)
        assert result.collect() == [1, 2, 3]

    def test_reduce(self):
        assert Batch([1, 2, 3, 4]).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            Batch([]).reduce(lambda a, b: a + b)

    def test_group_by(self):
        batch = Batch(["aa", "ab", "bc"])
        groups = batch.group_by(lambda s: s[0])
        assert groups == {"a": ["aa", "ab"], "b": ["bc"]}

    def test_first(self):
        assert Batch([7, 8]).first() == 7
        with pytest.raises(IndexError):
            Batch([]).first()

    def test_emptiness(self):
        assert Batch([]).is_empty()
        assert not Batch([])
        assert Batch([1])
        assert len(Batch([1, 2])) == 2

    @given(st.lists(st.integers(), max_size=50))
    def test_map_then_filter_equals_filter_then_map(self, items):
        batch = Batch(items)
        a = batch.map(lambda x: x + 1).filter(lambda x: x % 2 == 0)
        b = batch.filter(lambda x: (x + 1) % 2 == 0).map(lambda x: x + 1)
        assert a.collect() == b.collect()

    @given(st.lists(st.integers(), max_size=50))
    def test_count_matches_len(self, items):
        assert Batch(items).count() == len(items)
