"""Tests for windowed DStream operations."""

import pytest

from repro.microbatch import Batch, DStream
from repro.microbatch.dstream import _WindowState


class TestWindowState:
    def test_validation(self):
        with pytest.raises(ValueError):
            _WindowState(0, 1, lambda b, t: None)
        with pytest.raises(ValueError):
            _WindowState(1, 0, lambda b, t: None)


class TestForeachWindow:
    def run_batches(self, stream, batches):
        for index, items in enumerate(batches):
            stream.process(Batch(items, batch_time=float(index)), float(index))

    def test_window_merges_last_n_batches(self):
        stream = DStream()
        windows = []
        stream.foreach_window(3, lambda b, t: windows.append(b.collect()))
        self.run_batches(stream, [[1], [2], [3], [4]])
        # Slide 1: a window per batch, containing up to the last 3.
        assert windows == [[1], [1, 2], [1, 2, 3], [2, 3, 4]]

    def test_slide_skips_batches(self):
        stream = DStream()
        windows = []
        stream.foreach_window(2, lambda b, t: windows.append(b.collect()), slide=2)
        self.run_batches(stream, [[1], [2], [3], [4], [5], [6]])
        assert windows == [[1, 2], [3, 4], [5, 6]]

    def test_transforms_apply_before_windowing(self):
        stream = DStream()
        windows = []
        stream.map(lambda x: x * 10).foreach_window(
            2, lambda b, t: windows.append(b.collect())
        )
        self.run_batches(stream, [[1], [2]])
        assert windows == [[10], [10, 20]]

    def test_window_batch_time_is_oldest(self):
        stream = DStream()
        times = []
        stream.foreach_window(3, lambda b, t: times.append(b.batch_time))
        self.run_batches(stream, [[1], [2], [3], [4]])
        assert times == [0.0, 0.0, 0.0, 1.0]

    def test_windowed_rolling_mean_use_case(self):
        """The RSU's rolling speed context: mean over last 4 batches."""
        stream = DStream()
        means = []
        stream.foreach_window(
            4,
            lambda b, t: means.append(sum(b.collect()) / len(b)),
        )
        self.run_batches(stream, [[100], [120], [140], [160], [180]])
        assert means[-1] == pytest.approx((120 + 140 + 160 + 180) / 4)

    def test_coexists_with_plain_sinks(self):
        stream = DStream()
        plain, windowed = [], []
        stream.foreach_batch(lambda b, t: plain.append(b.count()))
        stream.foreach_window(2, lambda b, t: windowed.append(b.count()))
        self.run_batches(stream, [[1], [2, 3]])
        assert plain == [1, 2]
        assert windowed == [1, 3]
