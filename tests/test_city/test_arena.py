"""SegmentArena invariants under random operation sequences.

A Python-side *model* — one ordered list of live ``(id, depart, leave)``
rows per segment — shadows every operation the fused kernel performs on
the arena (append, in-place hole stamping, compaction, reserve-driven
relocation, free, extract).  After every step the arena must (a) pass
its own structural :meth:`~repro.city.arena.SegmentArena.check` —
segments and free blocks exactly tile the pool, so the free list can
never alias a live segment — and (b) :meth:`extract` to exactly the
model's rows, which pins that no operation ever reorders a segment's
live rows (the order the detection digests index into).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.city.arena import (
    DEAD_DEPART,
    DEAD_LEAVE,
    MIN_SEGMENT,
    SegmentArena,
    segment_ranges,
)


class _Model:
    """Ordered live rows per handle, mirroring the arena's contract."""

    def __init__(self):
        self.segments = {}
        self.next_id = 0

    def rows(self, handle):
        return self.segments[handle]


def _assert_matches(arena, model):
    arena.check()
    for handle, rows in model.segments.items():
        ids, depart, leave = arena.extract(handle)
        assert list(ids) == [row[0] for row in rows]
        assert list(depart) == [row[1] for row in rows]
        assert list(leave) == [row[2] for row in rows]
        assert int(arena.live[handle]) == len(rows)


def _apply(arena, model, rng, op):
    handles = sorted(model.segments)
    if op == "alloc" or not handles:
        handle = arena.alloc(int(rng.integers(1, 3 * MIN_SEGMENT)))
        model.segments[handle] = []
        return
    handle = handles[int(rng.integers(len(handles)))]
    rows = model.segments[handle]
    if op == "append":
        k = int(rng.integers(1, 200))
        ids = np.arange(model.next_id, model.next_id + k, dtype=np.int64)
        model.next_id += k
        depart = rng.uniform(0.0, 1e6, k)
        leave = rng.uniform(0.0, 1e6, k)
        arena.append(handle, ids, depart, leave)
        rows.extend(zip(ids.tolist(), depart.tolist(), leave.tolist()))
    elif op == "stamp":
        # In-place retirement, exactly as the fused tick drops rows:
        # sentinel-stamp a subset of live rows, preserving the rest.
        if not rows:
            return
        k = int(rng.integers(1, len(rows) + 1))
        victims = set(rng.choice(len(rows), size=k, replace=False).tolist())
        lo = int(arena.off[handle])
        n = int(arena.length[handle])
        window = arena.leave[lo : lo + n]
        live_pos = np.flatnonzero(window != DEAD_LEAVE)
        drop = lo + live_pos[sorted(victims)]
        arena.leave[drop] = DEAD_LEAVE
        arena.depart[drop] = DEAD_DEPART
        arena.live[handle] -= k
        model.segments[handle] = [
            row for index, row in enumerate(rows) if index not in victims
        ]
    elif op == "compact":
        arena.compact_segment(handle)
    elif op == "reserve":
        arena.reserve(handle, int(rng.integers(1, 4 * MIN_SEGMENT)))
    elif op == "free":
        arena.free(handle)
        del model.segments[handle]
    elif op == "transfer":
        # The rebalance pack/unpack round trip: extract (holes elided),
        # free, re-alloc, append — rows must come back bit-identical.
        ids, depart, leave = arena.extract(handle)
        arena.free(handle)
        del model.segments[handle]
        new_handle = arena.alloc(len(ids))
        arena.append(new_handle, ids, depart, leave)
        model.segments[new_handle] = list(
            zip(ids.tolist(), depart.tolist(), leave.tolist())
        )


OPS = ("alloc", "append", "append", "stamp", "compact", "reserve", "free",
       "transfer")


class TestArenaInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        ops=st.lists(st.sampled_from(OPS), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_ops_hold_invariants(self, seed, ops):
        arena = SegmentArena(MIN_SEGMENT)
        model = _Model()
        rng = np.random.default_rng(seed)
        for op in ops:
            _apply(arena, model, rng, op)
            _assert_matches(arena, model)

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        k=st.integers(min_value=2, max_value=300),
    )
    @settings(max_examples=40, deadline=None)
    def test_compaction_preserves_live_row_order(self, seed, k):
        arena = SegmentArena(MIN_SEGMENT)
        model = _Model()
        rng = np.random.default_rng(seed)
        _apply(arena, model, rng, "alloc")
        handle = next(iter(model.segments))
        ids = np.arange(k, dtype=np.int64)
        depart = rng.uniform(0.0, 1e6, k)
        leave = rng.uniform(0.0, 1e6, k)
        arena.append(handle, ids, depart, leave)
        model.segments[handle] = list(
            zip(ids.tolist(), depart.tolist(), leave.tolist())
        )
        _apply(arena, model, rng, "stamp")
        survivors_before = arena.extract(handle)
        arena.compact_segment(handle)
        survivors_after = arena.extract(handle)
        for before, after in zip(survivors_before, survivors_after):
            np.testing.assert_array_equal(before, after)
        assert int(arena.length[handle]) == int(arena.live[handle])
        _assert_matches(arena, model)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_transfer_round_trip_is_bit_identical(self, seed):
        arena = SegmentArena(MIN_SEGMENT)
        model = _Model()
        rng = np.random.default_rng(seed)
        _apply(arena, model, rng, "alloc")
        for _ in range(3):
            _apply(arena, model, rng, "append")
        _apply(arena, model, rng, "stamp")
        handle = next(iter(model.segments))
        packed = arena.extract(handle)
        _apply(arena, model, rng, "transfer")
        new_handle = next(iter(model.segments))
        unpacked = arena.extract(new_handle)
        for left, right in zip(packed, unpacked):
            np.testing.assert_array_equal(left, right)
        _assert_matches(arena, model)


class TestSegmentRanges:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=50),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_construction(self, pairs):
        starts = np.asarray([p[0] for p in pairs], dtype=np.int64)
        counts = np.asarray([p[1] for p in pairs], dtype=np.int64)
        expected = np.concatenate(
            [np.arange(s, s + c, dtype=np.int64) for s, c in pairs]
        ) if counts.sum() else np.empty(0, dtype=np.int64)
        np.testing.assert_array_equal(
            segment_ranges(starts, counts), expected
        )


def test_grow_preserves_rows_and_sentinels():
    arena = SegmentArena(MIN_SEGMENT)
    handle = arena.alloc()
    k = 10 * MIN_SEGMENT  # forces repeated doubling relocations
    ids = np.arange(k, dtype=np.int64)
    arena.append(handle, ids, np.full(k, 5.0), np.full(k, 9.0))
    arena.check()
    out_ids, out_depart, out_leave = arena.extract(handle)
    np.testing.assert_array_equal(out_ids, ids)
    assert arena.grows >= 1 or arena.relocations >= 1
