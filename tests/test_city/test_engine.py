"""City engine: conservation, determinism across shard counts, rebalance."""

import pytest

from repro.city.engine import CityEngine, run_city
from repro.city.model import FLAT_WAVE, CitySpec
from repro.city.topology import build_city_topology
from repro.parallel.plan import ShardPlanner

#: Small and fast: ~60 RSUs, 10 mesoscopic ticks.
BASE = CitySpec(
    seed=11,
    count_scale=0.01,
    duration_s=600.0,
    demand_wave=FLAT_WAVE,
)


def skewed_assignments(spec, moves=6):
    """The planner's balanced split with the heaviest RSUs of every
    non-zero shard piled onto shard 0 (mirrors the benchmark harness)."""
    topology = build_city_topology(spec)
    weight = topology.vehicle_load()
    plan = [
        list(shard)
        for shard in ShardPlanner().plan(topology, spec.shards).assignments
    ]
    for shard in range(1, spec.shards):
        plan[shard].sort(key=lambda name: (weight[name], name))
        for _ in range(moves):
            if len(plan[shard]) > 1:
                plan[0].append(plan[shard].pop())
    return tuple(tuple(shard) for shard in plan)


@pytest.fixture(scope="module")
def serial_result():
    return run_city(BASE)


class TestSerialRun:
    def test_audit_green(self, serial_result):
        assert serial_result.audit() == []

    def test_churn_happened(self, serial_result):
        result = serial_result
        assert result.spawned > 0
        assert result.retired > 0
        assert result.migrations_applied > 0
        assert result.peak_concurrent >= result.mean_concurrent > 0

    def test_deterministic(self, serial_result):
        again = run_city(BASE)
        assert again.digest_signature() == serial_result.digest_signature()
        assert again.warnings == serial_result.warnings
        assert again.spawned == serial_result.spawned

    def test_seed_changes_digest(self, serial_result):
        other = run_city(BASE.replace(seed=12))
        assert other.digest_signature() != serial_result.digest_signature()


class TestShardedEquivalence:
    def test_two_shards_bit_identical(self, serial_result):
        sharded = run_city(BASE.replace(shards=2))
        assert sharded.n_shards == 2
        assert sharded.audit() == []
        assert sharded.digest_signature() == serial_result.digest_signature()
        assert sharded.warnings == serial_result.warnings

    def test_rebalance_preserves_digests(self, serial_result):
        """A skewed start plus aggressive rebalancing must exercise at
        least one migration and still reproduce the serial digests."""
        spec = BASE.replace(shards=2)
        spec = spec.replace(
            rebalance_interval_ticks=3,
            rebalance_threshold=0.05,
            initial_assignments=skewed_assignments(spec),
        )
        sharded = run_city(spec)
        assert sharded.rebalance_events
        assert sharded.audit() == []
        assert sharded.digest_signature() == serial_result.digest_signature()
        assert sharded.warnings == serial_result.warnings
        # Ownership only ever changes on a rebalance-decision boundary,
        # never mid-window.
        for event in sharded.rebalance_events:
            assert event["tick"] % spec.rebalance_interval_ticks == 0


class TestEngineValidation:
    def test_assignment_override_must_cover_fleet(self):
        spec = BASE.replace(
            shards=2, initial_assignments=(("motorway-0000",), ())
        )
        with pytest.raises(ValueError):
            CityEngine(spec)
