"""CitySpec and demand-wave validation."""

import pytest

from repro.city.model import COMMUTE_WAVE, FLAT_WAVE, CitySpec, DemandWave


class TestDemandWave:
    def test_needs_24_entries(self):
        with pytest.raises(ValueError):
            DemandWave((1.0,) * 23)

    def test_rejects_negative_multiplier(self):
        with pytest.raises(ValueError):
            DemandWave((1.0,) * 23 + (-0.1,))

    def test_multiplier_is_a_step_function(self):
        wave = COMMUTE_WAVE
        # Constant within an hour, regardless of where in the hour.
        assert wave.multiplier(8 * 3600.0) == wave.multiplier(8 * 3600.0 + 3599.0)
        assert wave.multiplier(8 * 3600.0) == wave.hourly[8]
        # Wraps past midnight.
        assert wave.multiplier(25 * 3600.0) == wave.hourly[1]

    def test_commute_wave_shape(self):
        # Double-peaked: the PM rush tops the AM rush, both above mean.
        assert COMMUTE_WAVE.peak == COMMUTE_WAVE.hourly[17]
        assert COMMUTE_WAVE.hourly[8] > COMMUTE_WAVE.mean
        assert COMMUTE_WAVE.hourly[3] < COMMUTE_WAVE.mean
        assert FLAT_WAVE.peak == FLAT_WAVE.mean == 1.0


class TestCitySpec:
    def test_defaults_valid(self):
        spec = CitySpec()
        assert spec.n_ticks == 1440  # one day of 60 s ticks

    @pytest.mark.parametrize(
        "overrides",
        [
            {"duration_s": 0.0},
            {"tick_s": 0.0},
            {"count_scale": 0.0},
            {"arrivals_per_rsu_hour": -1.0},
            {"mean_trip_s": 0.0},
            {"mean_residence_s": 0.0},
            {"abnormal_prob": 1.5},
            {"shards": 0},
            {"rebalance_interval_ticks": -1},
            {"rebalance_threshold": -0.1},
            {"rebalance_rsu_cost": -1.0},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            CitySpec(**overrides)

    def test_replace_revalidates(self):
        spec = CitySpec()
        assert spec.replace(shards=4).shards == 4
        with pytest.raises(ValueError):
            spec.replace(shards=0)

    def test_n_ticks_rounds(self):
        assert CitySpec(duration_s=90.0, tick_s=60.0).n_ticks == 2
