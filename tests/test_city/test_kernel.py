"""Fused-kernel golden equivalence and the _PickStream RNG fast path.

The fused arena kernel must be *bit-identical* to the reference per-RSU
engine: every RSU's rolling SHA-256 digest chain — which folds in the
exact flagged-vehicle identities drawn from that RSU's RNG stream —
must match, serially and under sharded runs with live rebalancing.
These are the golden differential tests; the fuzz oracle
(``city_kernel_equivalence``) explores the same property over random
configurations, and BENCH_8 asserts it on the full-day 274-RSU
benchmark config.
"""

import numpy as np
import pytest

from repro.city import COMMUTE_WAVE, CitySpec, run_city
from repro.city.kernel import _PickStream
from tests.test_city.test_engine import skewed_assignments

#: Small but real: ~60 RSUs, 30 ticks, commute wave for demand swings.
SMALL = dict(
    count_scale=0.01,
    duration_s=1800.0,
    demand_wave=COMMUTE_WAVE,
)


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", [11, 23])
    def test_serial_fused_matches_reference(self, seed):
        fused = run_city(CitySpec(seed=seed, kernel="fused", **SMALL))
        reference = run_city(CitySpec(seed=seed, kernel="reference", **SMALL))
        assert fused.digests == reference.digests
        assert fused.digest_signature() == reference.digest_signature()
        assert fused.warnings == reference.warnings
        assert fused.spawned == reference.spawned
        assert fused.retired == reference.retired
        assert fused.peak_concurrent == reference.peak_concurrent

    @pytest.mark.parametrize("seed", [11, 23])
    def test_four_shards_with_rebalancing_matches_reference(self, seed):
        reference = run_city(CitySpec(seed=seed, kernel="reference", **SMALL))
        spec = CitySpec(
            seed=seed,
            kernel="fused",
            shards=4,
            rebalance_interval_ticks=10,
            **SMALL,
        )
        spec = spec.replace(initial_assignments=skewed_assignments(spec))
        sharded = run_city(spec)
        # The skewed start must actually provoke RSU handovers, or the
        # detach/adopt path (arena extract + RNG state transfer) went
        # untested.
        assert sharded.rebalance_events
        assert sharded.audit() == []
        assert sharded.digest_signature() == reference.digest_signature()

    def test_reference_kernel_is_selectable_and_audited(self):
        result = run_city(
            CitySpec(seed=11, kernel="reference", count_scale=0.01,
                     duration_s=600.0)
        )
        assert result.audit() == []
        with pytest.raises(ValueError):
            CitySpec(kernel="vectorized")


def _canonical_state(bit_generator):
    """The observable bit-generator state: with ``has_uint32 == 0`` the
    ``uinteger`` field is dead storage numpy never reads, and the two
    engines park different stale values there."""
    state = dict(bit_generator.state)
    if not state["has_uint32"]:
        state["uinteger"] = 0
    return state


class TestPickStream:
    SIZES = [1, 2, 3, 1, 8, 5, 1, 2, 13, 4, 7, 1]

    @pytest.mark.parametrize(
        "n", [2, 3, 5, 7, 8, 100, 2**31 + 1, 2**32 - 5]
    )
    def test_matches_generator_integers_bitwise(self, n):
        # 2**31 + 1 rejects ~half of all candidate halves, driving the
        # _draw_slow sequential path and its advance() rewind hard.
        for seed in (0, 1, 7):
            mine = np.random.default_rng(seed)
            twin = np.random.default_rng(seed)
            pick = _PickStream(mine, n)
            dest = np.empty(sum(self.SIZES), dtype=np.int64)
            cursor = 0
            expected = []
            for size in self.SIZES:
                pick.draw_into(dest, cursor, cursor + size)
                cursor += size
                expected.append(twin.integers(0, n, size))
            np.testing.assert_array_equal(dest, np.concatenate(expected))
            pick.sync_out()
            assert _canonical_state(mine.bit_generator) == _canonical_state(
                twin.bit_generator
            )

    def test_interleaved_choice_stays_bit_identical(self):
        mine = np.random.default_rng(3)
        twin = np.random.default_rng(3)
        pick = _PickStream(mine, 5)
        dest = np.empty(64, dtype=np.int64)
        cursor = 0
        for size in (3, 1, 2, 5, 1, 4):
            pick.draw_into(dest, cursor, cursor + size)
            np.testing.assert_array_equal(
                dest[cursor : cursor + size], twin.integers(0, 5, size)
            )
            cursor += size
            # choice consumes buffered 32-bit halves inside the bit
            # generator, so the shadow must shuttle out and back.
            pick.sync_out()
            ours = mine.choice(10, size=2, replace=False)
            pick.sync_in()
            np.testing.assert_array_equal(
                ours, twin.choice(10, size=2, replace=False)
            )
        pick.sync_out()
        assert _canonical_state(mine.bit_generator) == _canonical_state(
            twin.bit_generator
        )

    def test_degenerate_ranges_fall_back(self):
        for n in (1, 2**32, 2**40):
            mine = np.random.default_rng(5)
            twin = np.random.default_rng(5)
            pick = _PickStream(mine, n)
            assert not pick.fast
            dest = np.empty(6, dtype=np.int64)
            pick.draw_into(dest, 0, 6)
            if n == 1:
                np.testing.assert_array_equal(dest, np.zeros(6))
            else:
                np.testing.assert_array_equal(dest, twin.integers(0, n, 6))


class TestProfile:
    def test_serial_profile_breakdown(self):
        result = run_city(
            CitySpec(seed=11, count_scale=0.005, duration_s=600.0,
                     profile=True)
        )
        assert result.profile is not None
        for phase in ("city.arrivals", "city.churn", "city.moves",
                      "city.detect"):
            assert phase in result.profile
            assert result.profile[phase]["count"] > 0
            assert result.profile[phase]["total_ms"] >= 0.0
