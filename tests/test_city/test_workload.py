"""The unified Workload protocol and the builder's city terminal."""

from repro.city.engine import CityEngine
from repro.city.model import CitySpec
from repro.core import ScenarioBuilder, ScenarioSpec
from repro.core.scenario import paper_city
from repro.core.workload import (
    ChainWorkload,
    CityWorkload,
    CorridorWorkload,
    SingleRsuCloudWorkload,
    SingleRsuWorkload,
    Workload,
)


class TestProtocol:
    def test_every_family_satisfies_workload(self):
        spec = ScenarioSpec(n_vehicles=4)
        workloads = [
            SingleRsuWorkload(spec),
            SingleRsuCloudWorkload(spec),
            ChainWorkload(spec),
            CorridorWorkload(spec),
            CityWorkload(CitySpec()),
        ]
        for workload in workloads:
            assert isinstance(workload, Workload)
            assert isinstance(workload.name, str)

    def test_city_workload_builds_engine(self):
        spec = CitySpec(count_scale=0.01, duration_s=120.0)
        engine = CityWorkload(spec).build()
        assert isinstance(engine, CityEngine)
        assert engine.spec is spec


class TestBuilderCityTerminal:
    def test_shared_knobs_carry_over(self):
        engine = (
            ScenarioBuilder()
            .seed(13)
            .shards(2)
            .city(count_scale=0.01, duration_s=300.0)
        )
        assert isinstance(engine, CityEngine)
        assert engine.spec.seed == 13
        assert engine.spec.shards == 2
        assert engine.spec.count_scale == 0.01
        assert engine.spec.duration_s == 300.0

    def test_default_duration_is_city_default(self):
        engine = ScenarioBuilder().city(count_scale=0.01)
        # No explicit .duration() call: the CitySpec default (a full
        # day) wins over the corridor spec's much shorter default.
        assert engine.spec.duration_s == CitySpec().duration_s

    def test_explicit_duration_carries(self):
        engine = ScenarioBuilder().duration(600.0).city(count_scale=0.01)
        assert engine.spec.duration_s == 600.0

    def test_paper_city_preset(self):
        engine = paper_city().city(count_scale=0.01)
        assert isinstance(engine, CityEngine)
        assert engine.spec.duration_s == CitySpec().duration_s
