"""City topology: determinism, density weighting, planner protocol."""

import pytest

from repro.city.model import CitySpec
from repro.city.topology import build_city_topology
from repro.geo.network_builder import TABLE_V_SPECS
from repro.geo.roadnet import RoadType
from repro.parallel.plan import ShardPlanner

SPEC = CitySpec(count_scale=0.01)


@pytest.fixture(scope="module")
def topology():
    return build_city_topology(SPEC)


class TestBuildDeterminism:
    def test_same_spec_same_topology(self, topology):
        again = build_city_topology(SPEC)
        assert again.rsu_names() == topology.rsu_names()
        assert again.vehicle_load() == topology.vehicle_load()
        assert again.edges() == topology.edges()

    def test_placement_backs_the_fleet(self, topology):
        assert len(topology) == topology.placement.total_rsus
        for row in topology.placement.rows:
            named = [
                r for r in topology.rsus if r.road_type is row.road_type
            ]
            assert len(named) == row.rsus_required


class TestDensityWeighting:
    def test_weights_normalised_to_unit_mean(self, topology):
        weights = topology.vehicle_load().values()
        assert sum(weights) / len(topology) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)

    def test_denser_class_gets_heavier_rsus(self, topology):
        """Per-RSU weight orders by traffic-density share per RSU, so
        the allocation is density-weighted, not uniform."""
        by_type = {}
        for rsu in topology.rsus:
            by_type.setdefault(rsu.road_type, rsu.arrival_weight)
        assert len(by_type) > 1
        for road_type, weight in by_type.items():
            row = topology.placement.row(road_type)
            share = row.traffic_density / row.rsus_required
            for other_type, other_weight in by_type.items():
                other_row = topology.placement.row(other_type)
                other_share = (
                    other_row.traffic_density / other_row.rsus_required
                )
                if share > other_share:
                    assert weight > other_weight

    def test_table_v_densities_are_the_source(self, topology):
        assert topology.placement.row(RoadType.MOTORWAY).traffic_density == (
            TABLE_V_SPECS[RoadType.MOTORWAY].traffic_density
        )


class TestMigrationGraph:
    def test_every_rsu_has_a_neighbour(self, topology):
        for rsu in topology.rsus:
            assert rsu.neighbours
            assert rsu.index not in rsu.neighbours

    def test_edges_are_symmetric(self, topology):
        edges = set(topology.edges())
        assert edges
        for src, dst in edges:
            assert (dst, src) in edges


class TestPlannerProtocol:
    def test_shard_planner_partitions_a_city(self, topology):
        plan = ShardPlanner().plan(topology, 4)
        assigned = sorted(
            name for names in plan.assignments for name in names
        )
        assert assigned == sorted(topology.rsu_names())
        loads = plan.loads(topology)
        weight = topology.vehicle_load()
        mean = sum(weight.values()) / len(plan.assignments)
        assert max(loads) <= mean + max(weight.values())
