"""Tests for city-boundary trip extraction."""

import pytest

from repro.dataset.schema import TrajectoryPoint, Trip
from repro.geo.coords import BoundingBox
from repro.dataset.extract import extract_trips

BBOX = BoundingBox(south=22.0, west=114.0, north=23.0, east=115.0)


def make_trip(object_id, points):
    trajectory = [
        TrajectoryPoint(
            object_id=object_id, lon=lon, lat=lat, gps_time=float(index)
        )
        for index, (lat, lon) in enumerate(points)
    ]
    return Trip(
        object_id=object_id,
        car_id=object_id,
        start_time=0.0,
        stop_time=float(len(points)),
        trajectory=trajectory,
    )


class TestExtractTrips:
    def test_fully_inside_kept_whole(self):
        trip = make_trip(1, [(22.5, 114.5), (22.6, 114.6)])
        kept, report = extract_trips([trip], BBOX)
        assert kept == [trip]
        assert report.trips_kept == 1
        assert report.trips_clipped == 0
        assert report.fix_retention == 1.0

    def test_fully_outside_dropped(self):
        trip = make_trip(1, [(30.0, 100.0), (30.1, 100.1)])
        kept, report = extract_trips([trip], BBOX)
        assert kept == []
        assert report.trips_dropped == 1
        assert report.fixes_kept == 0

    def test_crossing_trip_clipped(self):
        trip = make_trip(
            1,
            [(30.0, 100.0), (22.5, 114.5), (22.6, 114.6), (30.0, 100.0)],
        )
        kept, report = extract_trips([trip], BBOX)
        assert report.trips_clipped == 1
        clipped = kept[0]
        assert len(clipped.trajectory) == 2
        assert clipped.start_time == 1.0
        assert clipped.stop_time == 2.0
        assert clipped.start_lat == 22.5
        assert clipped.stop_lat == 22.6
        assert clipped.object_id == trip.object_id

    def test_mixed_population(self):
        trips = [
            make_trip(1, [(22.5, 114.5)]),
            make_trip(2, [(30.0, 100.0)]),
            make_trip(3, [(22.5, 114.5), (30.0, 100.0)]),
        ]
        kept, report = extract_trips(trips, BBOX)
        assert len(kept) == 2
        assert report.trips_in == 3
        assert report.trips_kept == 1
        assert report.trips_clipped == 1
        assert report.trips_dropped == 1
        assert report.fix_retention == pytest.approx(2 / 4)

    def test_empty_input(self):
        kept, report = extract_trips([], BBOX)
        assert kept == []
        assert report.fix_retention == 0.0

    def test_synthetic_trips_survive_their_own_bbox(self):
        """Trips generated inside Shenzhen's bbox must all be kept."""
        from repro.dataset import DatasetGenerator, GeneratorConfig
        from repro.geo import CityNetworkBuilder
        from repro.geo.coords import SHENZHEN_BBOX

        network = CityNetworkBuilder(seed=1).build_corridor()
        dataset = DatasetGenerator(
            network, GeneratorConfig(n_cars=5, trips_per_car=2, seed=2)
        ).generate(with_trajectories=True)
        kept, report = extract_trips(dataset.trips, SHENZHEN_BBOX)
        assert report.trips_dropped == 0
        assert len(kept) == len(dataset.trips)
