"""Tests for the synthetic dataset generator."""

import numpy as np
import pytest

from repro.dataset import DatasetGenerator, GeneratorConfig
from repro.geo import CityNetworkBuilder, RoadType


@pytest.fixture(scope="module")
def corridor():
    return CityNetworkBuilder(seed=1).build_corridor()


@pytest.fixture(scope="module")
def small_dataset(corridor):
    generator = DatasetGenerator(
        corridor, GeneratorConfig(n_cars=40, trips_per_car=4, seed=9)
    )
    return generator.generate()


class TestGeneratorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_cars=0)
        with pytest.raises(ValueError):
            GeneratorConfig(n_days=0)
        with pytest.raises(ValueError):
            GeneratorConfig(sample_period_s=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(erroneous_rate=1.0)
        with pytest.raises(ValueError):
            GeneratorConfig(route_plan="flying")


class TestGeneration:
    def test_produces_records(self, small_dataset):
        assert len(small_dataset.records) > 100

    def test_every_car_appears(self, small_dataset):
        cars = {record.car_id for record in small_dataset.records}
        assert cars == set(range(1, 41))

    def test_corridor_routes_cover_both_road_types(self, small_dataset):
        types = {record.road_type for record in small_dataset.records}
        assert types == {RoadType.MOTORWAY, RoadType.MOTORWAY_LINK}

    def test_deterministic(self, corridor):
        config = GeneratorConfig(n_cars=10, trips_per_car=3, seed=123)
        first = DatasetGenerator(corridor, config).generate()
        second = DatasetGenerator(corridor, config).generate()
        assert len(first.records) == len(second.records)
        assert all(
            a.speed_kmh == b.speed_kmh and a.car_id == b.car_id
            for a, b in zip(first.records, second.records)
        )

    def test_seed_changes_output(self, corridor):
        first = DatasetGenerator(
            corridor, GeneratorConfig(n_cars=10, seed=1)
        ).generate()
        second = DatasetGenerator(
            corridor, GeneratorConfig(n_cars=10, seed=2)
        ).generate()
        speeds_a = [r.speed_kmh for r in first.records[:50]]
        speeds_b = [r.speed_kmh for r in second.records[:50]]
        assert speeds_a != speeds_b

    def test_motorway_speeds_realistic(self, small_dataset):
        speeds = [
            r.speed_kmh
            for r in small_dataset.by_road_type(RoadType.MOTORWAY)
            if r.speed_kmh < 300
        ]
        assert 100.0 < np.mean(speeds) < 180.0

    def test_anomaly_kinds_present(self, small_dataset):
        kinds = {r.anomaly_kind.value for r in small_dataset.records}
        assert "none" in kinds
        assert len(kinds) >= 3  # at least two anomaly categories occur

    def test_trip_hours_bimodal_at_rush(self, corridor):
        dataset = DatasetGenerator(
            corridor, GeneratorConfig(n_cars=200, trips_per_car=5, seed=4)
        ).generate()
        hours = np.array([r.hour for r in dataset.records])
        rush = np.sum((np.abs(hours - 8) <= 2) | (np.abs(hours - 18) <= 2))
        assert rush / len(hours) > 0.4

    def test_with_trajectories(self, corridor):
        dataset = DatasetGenerator(
            corridor, GeneratorConfig(n_cars=5, trips_per_car=2, seed=6)
        ).generate(with_trajectories=True)
        assert dataset.trips
        for trip in dataset.trips:
            assert trip.trajectory
            times = [p.gps_time for p in trip.trajectory]
            assert times == sorted(times)
            assert trip.stop_time >= trip.start_time

    def test_erroneous_rate_injects_bad_records(self, corridor):
        dataset = DatasetGenerator(
            corridor,
            GeneratorConfig(n_cars=50, trips_per_car=5, seed=7, erroneous_rate=0.05),
        ).generate()
        absurd = [r for r in dataset.records if r.speed_kmh > 350.0]
        assert absurd

    def test_record_timestamps_increase_within_trip(self, small_dataset):
        by_trip = {}
        for record in small_dataset.records:
            by_trip.setdefault(record.trip_id, []).append(record.timestamp)
        for timestamps in by_trip.values():
            assert timestamps == sorted(timestamps)

    def test_trip_ids_belong_to_one_car(self, small_dataset):
        cars_per_trip = {}
        for record in small_dataset.records:
            cars_per_trip.setdefault(record.trip_id, set()).add(record.car_id)
        assert all(len(cars) == 1 for cars in cars_per_trip.values())


class TestSplits:
    def test_split_fractions(self, small_dataset):
        train, test = small_dataset.split(0.8, seed=0)
        total = len(small_dataset.records)
        assert len(train) + len(test) == total
        assert abs(len(train) - 0.8 * total) <= 1

    def test_split_validation(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.split(1.0)

    def test_split_by_trip_keeps_trips_together(self, small_dataset):
        train, test = small_dataset.split_by_trip(0.8, seed=0)
        train_trips = {r.trip_id for r in train}
        test_trips = {r.trip_id for r in test}
        assert not train_trips & test_trips
        assert len(train) + len(test) == len(small_dataset.records)

    def test_split_deterministic(self, small_dataset):
        a_train, _ = small_dataset.split(0.8, seed=5)
        b_train, _ = small_dataset.split(0.8, seed=5)
        assert [r.timestamp for r in a_train] == [r.timestamp for r in b_train]


class TestRandomRoutePlan:
    def test_random_walk_routes(self):
        network = CityNetworkBuilder(seed=2).build_corridor()
        dataset = DatasetGenerator(
            network,
            GeneratorConfig(n_cars=10, trips_per_car=3, seed=8, route_plan="random"),
        ).generate()
        assert dataset.records


class TestGoldenPins:
    """Bit-exact pins of the generator output.

    The per-sample loop was vectorized (batched normal draws in
    ``DriverModel.sample_batch``, block-drawn corruption gates in
    ``_corrupt_batch``); these hashes were captured from the scalar
    implementation and must never move.  A changed hash means the RNG
    substream consumption order changed — every downstream golden
    suite would silently shift with it.
    """

    PINS = {
        (): "33210f53953510ad",
        (("erroneous_rate", 0.05),): "b7d55871d2ee56e5",
        (("erroneous_rate", 0.0),): "592ae71fc3ecc12f",
        (("n_cars", 120), ("trips_per_car", 6)): "c32f27ed137861ff",
    }

    @staticmethod
    def fingerprint(corridor, **overrides):
        import hashlib

        dataset = DatasetGenerator(
            corridor, GeneratorConfig(**overrides)
        ).generate(with_trajectories=True)
        digest = hashlib.sha256()
        for record in dataset.records:
            digest.update(repr(record).encode())
        for trip in dataset.trips:
            digest.update(repr(trip).encode())
        return digest.hexdigest()[:16]

    @pytest.mark.parametrize("overrides", sorted(PINS, key=repr))
    def test_output_hash_is_pinned(self, corridor, overrides):
        assert self.fingerprint(corridor, **dict(overrides)) == self.PINS[
            overrides
        ]
