"""Tests for dataset record types."""

import pytest

from repro.dataset import ABNORMAL, NORMAL, AnomalyKind, TelemetryRecord, Trip
from repro.dataset.schema import TrajectoryPoint
from repro.geo import RoadType


def make_record(**overrides):
    defaults = dict(
        car_id=1,
        road_id=10,
        accel_ms2=0.2,
        speed_kmh=150.0,
        hour=8,
        day=4,
        road_type=RoadType.MOTORWAY,
        road_mean_speed_kmh=160.0,
    )
    defaults.update(overrides)
    return TelemetryRecord(**defaults)


class TestTelemetryRecord:
    def test_valid_record(self):
        record = make_record()
        assert record.speed_kmh == 150.0
        assert record.label is None

    def test_hour_out_of_range(self):
        with pytest.raises(ValueError):
            make_record(hour=24)

    def test_day_out_of_range(self):
        with pytest.raises(ValueError):
            make_record(day=0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            make_record(speed_kmh=-1.0)

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            make_record(label=2)

    def test_with_label_copies(self):
        record = make_record()
        labeled = record.with_label(ABNORMAL)
        assert labeled.label == ABNORMAL
        assert record.label is None
        assert labeled.speed_kmh == record.speed_kmh

    def test_weekend_calendar_july_2016(self):
        # 1 July 2016 was a Friday; 2-3 July the first weekend.
        assert not make_record(day=1).is_weekend
        assert make_record(day=2).is_weekend
        assert make_record(day=3).is_weekend
        assert not make_record(day=4).is_weekend
        assert make_record(day=9).is_weekend
        assert make_record(day=10).is_weekend
        assert not make_record(day=11).is_weekend

    def test_label_constants(self):
        assert NORMAL == 1
        assert ABNORMAL == 0


class TestTrip:
    def test_period(self):
        trip = Trip(object_id=1, car_id=2, start_time=100.0, stop_time=400.0)
        assert trip.period_s == 300.0

    def test_stop_before_start_rejected(self):
        with pytest.raises(ValueError):
            Trip(object_id=1, car_id=2, start_time=400.0, stop_time=100.0)

    def test_trajectory_points_validated(self):
        with pytest.raises(ValueError):
            TrajectoryPoint(object_id=1, lon=114.0, lat=22.5, gps_time=-1.0)

    def test_anomaly_kinds(self):
        assert AnomalyKind.NONE.value == "none"
        assert len(AnomalyKind) == 4
