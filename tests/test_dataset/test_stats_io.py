"""Tests for Table III statistics and CSV round-tripping."""

import pytest

from repro.dataset import (
    DatasetGenerator,
    GeneratorConfig,
    compute_statistics,
    read_telemetry_csv,
    read_trips_csv,
    write_telemetry_csv,
    write_trips_csv,
)
from repro.geo import CityNetworkBuilder, RoadType


@pytest.fixture(scope="module")
def dataset():
    network = CityNetworkBuilder(seed=1).build_corridor()
    return DatasetGenerator(
        network, GeneratorConfig(n_cars=20, trips_per_car=3, seed=2)
    ).generate(with_trajectories=True)


class TestStatistics:
    def test_overall_row(self, dataset):
        stats = compute_statistics(dataset.records)
        assert stats.overall.name == "Shenzhen"
        assert stats.overall.n_cars == 20
        assert stats.overall.n_trajectories == len(dataset.records)
        assert stats.overall.n_trips > 0

    def test_per_road_type_partition(self, dataset):
        stats = compute_statistics(dataset.records)
        per_type_total = sum(
            row.n_trajectories for row in stats.per_road_type.values()
        )
        assert per_type_total == stats.overall.n_trajectories

    def test_motorway_faster_than_link(self, dataset):
        stats = compute_statistics(dataset.records)
        motorway = stats.per_road_type[RoadType.MOTORWAY]
        link = stats.per_road_type[RoadType.MOTORWAY_LINK]
        assert motorway.mean_speed_kmh > link.mean_speed_kmh

    def test_format_table(self, dataset):
        text = compute_statistics(dataset.records).format_table()
        assert "Shenzhen" in text
        assert "Motorway" in text
        assert len(text.splitlines()) >= 3

    def test_empty_records(self):
        stats = compute_statistics([])
        assert stats.overall.n_trajectories == 0
        assert stats.overall.mean_speed_kmh == 0.0


class TestCsvRoundTrip:
    def test_telemetry_round_trip(self, dataset, tmp_path):
        path = tmp_path / "telemetry.csv"
        records = dataset.records[:200]
        write_telemetry_csv(path, records)
        loaded = read_telemetry_csv(path)
        assert len(loaded) == len(records)
        for original, restored in zip(records, loaded):
            assert restored == original

    def test_trips_round_trip(self, dataset, tmp_path):
        trips_path = tmp_path / "trips.csv"
        trajectories_path = tmp_path / "trajectories.csv"
        trips = dataset.trips[:10]
        write_trips_csv(trips_path, trajectories_path, trips)
        loaded = read_trips_csv(trips_path, trajectories_path)
        assert len(loaded) == len(trips)
        for original, restored in zip(trips, loaded):
            assert restored.object_id == original.object_id
            assert restored.start_time == original.start_time
            assert len(restored.trajectory) == len(original.trajectory)
            assert restored.trajectory[0].lon == original.trajectory[0].lon

    def test_trips_without_trajectories(self, dataset, tmp_path):
        trips_path = tmp_path / "trips.csv"
        trajectories_path = tmp_path / "trajectories.csv"
        write_trips_csv(trips_path, trajectories_path, dataset.trips[:5])
        loaded = read_trips_csv(trips_path)
        assert all(not trip.trajectory for trip in loaded)
