"""Tests for the driver behaviour model."""

import numpy as np
import pytest

from repro.dataset import DriverModel, DriverProfile
from repro.dataset.drivers import DriverState
from repro.dataset.schema import AnomalyKind


def make_model(aggressiveness=0.5, seed=0, **kwargs):
    profile = DriverProfile(
        car_id=1, aggressiveness=aggressiveness, speed_bias_kmh=0.0
    )
    return DriverModel(profile, np.random.default_rng(seed), **kwargs)


class TestDriverProfile:
    def test_aggressiveness_bounds(self):
        with pytest.raises(ValueError):
            DriverProfile(car_id=1, aggressiveness=1.5, speed_bias_kmh=0.0)


class TestDriverModel:
    def test_begins_trip_calm_or_anomalous(self):
        model = make_model()
        model.begin_trip()
        assert model.state in (DriverState.CALM, DriverState.ANOMALOUS)

    def test_episode_rate_scales_with_aggressiveness(self):
        def episode_fraction(aggressiveness):
            model = make_model(aggressiveness, seed=1)
            count = 0
            for _ in range(500):
                model.begin_trip()
                count += model.in_episode
            return count / 500

        assert episode_fraction(0.9) > episode_fraction(0.05)

    def test_episodes_persist_across_handover(self):
        """The property CAD3 exploits: episodes usually survive a
        segment change."""
        model = make_model(0.8, seed=2, episode_continue_prob=0.85)
        persisted = total = 0
        for _ in range(1000):
            model.begin_trip()
            if not model.in_episode:
                continue
            total += 1
            model.on_segment_change()
            persisted += model.in_episode
        assert total > 50
        assert persisted / total == pytest.approx(0.85, abs=0.06)

    def test_calm_driver_can_start_episode_mid_trip(self):
        model = make_model(0.9, seed=3, episode_start_prob=0.0, mid_trip_start_prob=0.5)
        started = 0
        for _ in range(500):
            model.begin_trip()
            assert not model.in_episode
            model.on_segment_change()
            started += model.in_episode
        assert started > 50

    def test_speeding_episode_raises_speed(self):
        model = make_model(0.9, seed=4)
        model._start_episode()
        model.anomaly_kind = AnomalyKind.SPEEDING
        speeds = [model.sample_speed(100.0, 10.0) for _ in range(200)]
        assert np.mean(speeds) > 105.0

    def test_slowing_episode_lowers_speed(self):
        model = make_model(0.9, seed=5)
        model._start_episode()
        model.anomaly_kind = AnomalyKind.SLOWING
        speeds = [model.sample_speed(100.0, 10.0) for _ in range(200)]
        assert np.mean(speeds) < 95.0

    def test_calm_speed_tracks_mean(self):
        model = make_model(0.3, seed=6, episode_start_prob=0.0)
        model.begin_trip()
        speeds = [model.sample_speed(100.0, 10.0) for _ in range(500)]
        assert np.mean(speeds) == pytest.approx(100.0, abs=2.0)

    def test_speed_never_negative(self):
        model = make_model(1.0, seed=7)
        model._start_episode()
        model.anomaly_kind = AnomalyKind.SLOWING
        for _ in range(200):
            assert model.sample_speed(5.0, 10.0) >= 0.0

    def test_sudden_acceleration_bursts(self):
        model = make_model(0.9, seed=8)
        model._start_episode()
        model.anomaly_kind = AnomalyKind.SUDDEN_ACCELERATION
        accels = [abs(model.sample_accel(10.0, 1.0)) for _ in range(100)]
        assert np.mean(accels) > 2.0

    def test_calm_accel_is_small(self):
        model = make_model(0.1, seed=9, episode_start_prob=0.0)
        model.begin_trip()
        accels = [abs(model.sample_accel(10.0, 1.0)) for _ in range(500)]
        assert np.mean(accels) < 1.0

    def test_episode_ends_eventually(self):
        model = make_model(0.9, seed=10, episode_continue_prob=0.2)
        model.begin_trip()
        model._start_episode()
        for _ in range(100):
            model.on_segment_change()
        assert not model.in_episode


class TestSampleBatch:
    """The vectorized draw must consume the RNG stream exactly as the
    interleaved scalar calls it replaces — same values, same stream
    position afterwards."""

    def _scalar_pairs(self, model, mean, sigma, n):
        return [
            (model.sample_speed(mean, sigma), model.sample_accel(sigma, 1.0))
            for _ in range(n)
        ]

    def _assert_equivalent(self, configure):
        scalar_model = make_model(0.7, seed=42)
        batch_model = make_model(0.7, seed=42)
        configure(scalar_model)
        configure(batch_model)
        expected = self._scalar_pairs(scalar_model, 90.0, 8.0, 50)
        speeds, accels = batch_model.sample_batch(90.0, 8.0, 50)
        assert list(zip(speeds.tolist(), accels.tolist())) == expected
        # Stream positions must agree afterwards too.
        assert scalar_model._rng.random() == batch_model._rng.random()

    def test_calm_matches_scalar_bitwise(self):
        def calm(model):
            model.state = DriverState.CALM

        self._assert_equivalent(calm)

    def test_speeding_matches_scalar_bitwise(self):
        def speeding(model):
            model.state = DriverState.ANOMALOUS
            model.anomaly_kind = AnomalyKind.SPEEDING
            model._episode_magnitude = 2.0

        self._assert_equivalent(speeding)

    def test_slowing_matches_scalar_bitwise(self):
        def slowing(model):
            model.state = DriverState.ANOMALOUS
            model.anomaly_kind = AnomalyKind.SLOWING
            model._episode_magnitude = 1.5

        self._assert_equivalent(slowing)

    def test_sudden_acceleration_refuses_batching(self):
        model = make_model(0.7, seed=3)
        model.state = DriverState.ANOMALOUS
        model.anomaly_kind = AnomalyKind.SUDDEN_ACCELERATION
        model._episode_magnitude = 2.0
        with pytest.raises(ValueError):
            model.sample_batch(90.0, 8.0, 10)
