"""Tests for the Fig. 2-style speed profiles."""

import pytest

from repro.dataset import SpeedProfileLibrary
from repro.geo import RoadType


class TestSpeedProfileLibrary:
    def setup_method(self):
        self.library = SpeedProfileLibrary()

    def test_motorway_faster_than_link(self):
        """Fig. 2: the motorway profile sits above the link profile."""
        for hour in range(24):
            motorway = self.library.profile(RoadType.MOTORWAY, hour, False)
            link = self.library.profile(RoadType.MOTORWAY_LINK, hour, False)
            assert motorway.mean_kmh > link.mean_kmh

    def test_weekday_rush_hour_dip(self):
        """Fig. 2: weekday speeds dip at the morning and evening rush."""
        rush = self.library.profile(RoadType.MOTORWAY, 8, False)
        night = self.library.profile(RoadType.MOTORWAY, 3, False)
        midday = self.library.profile(RoadType.MOTORWAY, 12, False)
        assert rush.mean_kmh < midday.mean_kmh < night.mean_kmh

    def test_evening_rush_also_dips(self):
        evening = self.library.profile(RoadType.MOTORWAY, 18, False)
        midday = self.library.profile(RoadType.MOTORWAY, 12, False)
        assert evening.mean_kmh < midday.mean_kmh

    def test_weekend_flatter_than_weekday(self):
        """Fig. 2: the weekend curve is flatter (no sharp rush dips)."""
        weekday = self.library.hourly_means(RoadType.MOTORWAY, weekend=False)
        weekend = self.library.hourly_means(RoadType.MOTORWAY, weekend=True)
        weekday_range = max(weekday) - min(weekday)
        weekend_range = max(weekend) - min(weekend)
        assert weekend_range < weekday_range

    def test_weekend_rush_hour_faster_than_weekday(self):
        weekday = self.library.profile(RoadType.MOTORWAY, 8, False)
        weekend = self.library.profile(RoadType.MOTORWAY, 8, True)
        assert weekend.mean_kmh > weekday.mean_kmh

    def test_base_means_follow_table3(self):
        assert self.library.base_mean(RoadType.MOTORWAY) == 160.0
        assert self.library.base_mean(RoadType.MOTORWAY_LINK) == 115.0

    def test_zscore(self):
        profile = self.library.profile(RoadType.MOTORWAY, 12, False)
        assert profile.zscore(profile.mean_kmh) == 0.0
        assert profile.zscore(profile.mean_kmh + profile.sigma_kmh) == pytest.approx(1.0)

    def test_invalid_hour(self):
        with pytest.raises(ValueError):
            self.library.modulation(24, False)

    def test_custom_base_means(self):
        library = SpeedProfileLibrary({RoadType.MOTORWAY: 100.0})
        assert library.base_mean(RoadType.MOTORWAY) == 100.0
        # Other types keep their defaults.
        assert library.base_mean(RoadType.MOTORWAY_LINK) == 115.0

    def test_hourly_means_has_24_entries(self):
        assert len(self.library.hourly_means(RoadType.PRIMARY, False)) == 24

    def test_sigma_positive_everywhere(self):
        for road_type in RoadType:
            profile = self.library.profile(road_type, 8, False)
            assert profile.sigma_kmh > 0
