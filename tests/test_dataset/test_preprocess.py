"""Tests for filtering, labelling, and Eq. 4 derivation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import (
    DatasetGenerator,
    FilterConfig,
    GeneratorConfig,
    Preprocessor,
    SigmaCutoffLabeler,
    derive_telemetry,
)
from repro.dataset.preprocess import road_mean_speeds
from repro.dataset.schema import ABNORMAL, NORMAL, TelemetryRecord
from repro.geo import CityNetworkBuilder, RoadType


def make_record(speed, accel=0.0, road_type=RoadType.MOTORWAY, **kw):
    defaults = dict(
        car_id=1,
        road_id=1,
        accel_ms2=accel,
        speed_kmh=speed,
        hour=8,
        day=4,
        road_type=road_type,
        road_mean_speed_kmh=160.0,
    )
    defaults.update(kw)
    return TelemetryRecord(**defaults)


class TestFilterConfig:
    def test_keeps_normal(self):
        assert FilterConfig().keep(make_record(150.0, 0.5))

    def test_drops_absurd_speed(self):
        assert not FilterConfig().keep(make_record(400.0))

    def test_drops_absurd_accel(self):
        assert not FilterConfig().keep(make_record(100.0, accel=30.0))

    def test_drops_stuck_sensor(self):
        assert not FilterConfig().keep(make_record(0.0, 0.0))

    def test_keeps_stuck_when_disabled(self):
        config = FilterConfig(drop_stuck=False)
        assert config.keep(make_record(0.0, 0.0))

    def test_drops_nan(self):
        assert not FilterConfig().keep(make_record(float("nan")))


class TestSigmaCutoffLabeler:
    def build_gaussian_records(self, n=2000, mu=160.0, sigma=20.0, seed=0):
        rng = np.random.default_rng(seed)
        return [
            make_record(max(0.0, float(s)), accel=float(a))
            for s, a in zip(
                rng.normal(mu, sigma, n), rng.normal(0.0, 0.6, n)
            )
        ]

    def test_gaussian_data_yields_about_one_third_abnormal(self):
        """With the 1-sigma cutoff on two near-independent Gaussian
        features, ~45 % of records fall outside at least one band
        (1 - 0.68^2); speed-only deviation alone is ~32 %.  The paper's
        500 K eval subset is 35 % abnormal — same regime."""
        records = self.build_gaussian_records()
        labeler = SigmaCutoffLabeler().fit(records)
        labels = [labeler.label(r) for r in records]
        abnormal_fraction = labels.count(ABNORMAL) / len(labels)
        assert 0.30 < abnormal_fraction < 0.55

    def test_mean_record_is_normal(self):
        records = self.build_gaussian_records()
        labeler = SigmaCutoffLabeler().fit(records)
        assert labeler.label(make_record(160.0, 0.0)) == NORMAL

    def test_extreme_speed_is_abnormal(self):
        records = self.build_gaussian_records()
        labeler = SigmaCutoffLabeler().fit(records)
        assert labeler.label(make_record(250.0, 0.0)) == ABNORMAL
        assert labeler.label(make_record(60.0, 0.0)) == ABNORMAL

    def test_extreme_accel_is_abnormal(self):
        records = self.build_gaussian_records()
        labeler = SigmaCutoffLabeler().fit(records)
        assert labeler.label(make_record(160.0, accel=5.0)) == ABNORMAL

    def test_bands_are_per_road_type(self):
        motorway = self.build_gaussian_records(mu=160.0)
        link = [
            make_record(s.speed_kmh * 115.0 / 160.0, s.accel_ms2,
                        road_type=RoadType.MOTORWAY_LINK)
            for s in self.build_gaussian_records(mu=160.0, seed=1)
        ]
        labeler = SigmaCutoffLabeler().fit(motorway + link)
        lo_m, hi_m = labeler.band(RoadType.MOTORWAY)
        lo_l, hi_l = labeler.band(RoadType.MOTORWAY_LINK)
        assert hi_l < hi_m
        # 130 km/h: normal on the motorway, abnormal on the link.
        assert labeler.label(make_record(150.0)) == NORMAL
        assert (
            labeler.label(make_record(150.0, road_type=RoadType.MOTORWAY_LINK))
            == ABNORMAL
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SigmaCutoffLabeler().label(make_record(100.0))

    def test_unknown_road_type_raises(self):
        labeler = SigmaCutoffLabeler().fit(self.build_gaussian_records())
        with pytest.raises(KeyError):
            labeler.label(make_record(30.0, road_type=RoadType.RESIDENTIAL))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            SigmaCutoffLabeler().fit([])

    def test_n_sigma_validation(self):
        with pytest.raises(ValueError):
            SigmaCutoffLabeler(n_sigma=0)

    @given(st.floats(min_value=1.0, max_value=3.0))
    @settings(max_examples=10, deadline=None)
    def test_wider_band_labels_fewer_abnormal(self, n_sigma):
        records = self.build_gaussian_records(n=500)
        narrow = SigmaCutoffLabeler(n_sigma=1.0).fit(records)
        wide = SigmaCutoffLabeler(n_sigma=n_sigma).fit(records)
        narrow_abnormal = sum(
            1 for r in records if narrow.label(r) == ABNORMAL
        )
        wide_abnormal = sum(1 for r in records if wide.label(r) == ABNORMAL)
        assert wide_abnormal <= narrow_abnormal


class TestPreprocessor:
    def test_end_to_end(self):
        network = CityNetworkBuilder(seed=1).build_corridor()
        dataset = DatasetGenerator(
            network,
            GeneratorConfig(n_cars=30, trips_per_car=4, seed=3, erroneous_rate=0.02),
        ).generate()
        labeled = Preprocessor().run(dataset.records)
        assert labeled
        assert len(labeled) < len(dataset.records)  # filtering removed some
        assert all(r.label in (NORMAL, ABNORMAL) for r in labeled)

    def test_empty_input(self):
        assert Preprocessor().run([]) == []


class TestDeriveTelemetry:
    def test_eq4_recovers_speed(self):
        """A synthetic trip driven at constant speed should yield
        Eq. 4 speeds near that speed after map matching."""
        network = CityNetworkBuilder(seed=1).build_corridor()
        dataset = DatasetGenerator(
            network,
            GeneratorConfig(
                n_cars=3, trips_per_car=2, seed=5, gps_noise_m=2.0,
                erroneous_rate=0.0,
            ),
        ).generate(with_trajectories=True)
        trip = max(dataset.trips, key=lambda t: len(t.trajectory))
        derived = derive_telemetry(trip, network)
        assert derived
        speeds = np.array([r.speed_kmh for r in derived])
        # Generated speeds are motorway-scale; derived ones should be too.
        assert 40.0 < np.median(speeds) < 250.0
        assert all(r.car_id == trip.car_id for r in derived)

    def test_short_trip_returns_empty(self):
        network = CityNetworkBuilder(seed=1).build_corridor()
        from repro.dataset.schema import Trip

        trip = Trip(object_id=1, car_id=1, start_time=0.0, stop_time=0.0)
        assert derive_telemetry(trip, network) == []

    def test_road_mean_speeds(self):
        records = [
            make_record(100.0, road_id=1),
            make_record(120.0, road_id=1),
            make_record(50.0, road_id=2),
        ]
        means = road_mean_speeds(records)
        assert means[1] == pytest.approx(110.0)
        assert means[2] == pytest.approx(50.0)
