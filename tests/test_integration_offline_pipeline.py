"""End-to-end offline pipeline: raw GPS to trained detectors.

Exercises the paper's complete offline stage in one flow, the way the
authors processed their real dataset:

  raw trips with GPS fixes
    -> city-boundary extraction (Sec. V)
    -> HMM map matching (Newson-Krumm)
    -> Eq. 4 speed/acceleration derivation
    -> erroneous-record filtering + sigma-cutoff labelling (Sec. IV-B)
    -> per-road-type model training
    -> detection on held-out records

Each stage's output feeds the next with no synthetic shortcuts, so a
regression anywhere in the chain fails here even if every unit test
still passes.
"""

import numpy as np
import pytest

from repro.core.detector import AD3Detector
from repro.dataset import (
    DatasetGenerator,
    GeneratorConfig,
    Preprocessor,
    extract_trips,
)
from repro.dataset.preprocess import derive_telemetry, road_mean_speeds
from repro.geo import CityNetworkBuilder, HmmMapMatcher, RoadType
from repro.geo.coords import SHENZHEN_BBOX


@pytest.fixture(scope="module")
def pipeline_output():
    # Raw data: GPS trajectories over the corridor network.
    network = CityNetworkBuilder(seed=1).build_corridor()
    dataset = DatasetGenerator(
        network,
        GeneratorConfig(
            n_cars=25,
            trips_per_car=4,
            seed=6,
            gps_noise_m=4.0,
            erroneous_rate=0.0,
        ),
    ).generate(with_trajectories=True)

    # Stage 1: city-boundary extraction.
    trips, extraction = extract_trips(dataset.trips, SHENZHEN_BBOX)

    # Stage 2+3: map matching and Eq. 4 derivation.
    matcher = HmmMapMatcher(network)
    derived = []
    for trip in trips:
        derived.extend(derive_telemetry(trip, network, matcher=matcher))

    # Refine v_r_bar with the measured per-road means and re-derive
    # context (the paper computes road speed from the data itself).
    means = road_mean_speeds(derived)

    # Stage 4: filter + label.
    labeled = Preprocessor().run(derived)
    return {
        "network": network,
        "extraction": extraction,
        "derived": derived,
        "means": means,
        "labeled": labeled,
    }


class TestOfflinePipeline:
    def test_extraction_kept_everything_inside(self, pipeline_output):
        extraction = pipeline_output["extraction"]
        assert extraction.trips_dropped == 0
        assert extraction.fix_retention == 1.0

    def test_derivation_produced_records(self, pipeline_output):
        derived = pipeline_output["derived"]
        assert len(derived) > 500
        # Eq. 4 speeds are physical.
        speeds = np.array([r.speed_kmh for r in derived])
        assert np.all(speeds >= 0)
        assert 40 < np.median(speeds) < 250

    def test_map_matching_recovered_both_road_types(self, pipeline_output):
        types = {r.road_type for r in pipeline_output["derived"]}
        assert RoadType.MOTORWAY in types
        assert RoadType.MOTORWAY_LINK in types

    def test_road_means_reflect_road_types(self, pipeline_output):
        network = pipeline_output["network"]
        means = pipeline_output["means"]
        motorway_means = [
            v
            for rid, v in means.items()
            if network.segment(rid).road_type is RoadType.MOTORWAY
        ]
        link_means = [
            v
            for rid, v in means.items()
            if network.segment(rid).road_type is RoadType.MOTORWAY_LINK
        ]
        assert motorway_means and link_means
        assert np.mean(motorway_means) > np.mean(link_means)

    def test_labelling_produced_both_classes(self, pipeline_output):
        labels = [r.label for r in pipeline_output["labeled"]]
        abnormal_fraction = labels.count(0) / len(labels)
        assert 0.1 < abnormal_fraction < 0.6

    def test_detector_trains_and_beats_chance(self, pipeline_output):
        labeled = pipeline_output["labeled"]
        motorway = [r for r in labeled if r.road_type is RoadType.MOTORWAY]
        assert len(motorway) > 200
        cut = int(len(motorway) * 0.8)
        train, test = motorway[:cut], motorway[cut:]
        detector = AD3Detector(RoadType.MOTORWAY).fit(train)
        y_true = np.array([r.label for r in test])
        accuracy = float(np.mean(detector.predict(test) == y_true))
        majority = max(np.mean(y_true), 1 - np.mean(y_true))
        assert accuracy > majority - 0.05
        assert accuracy > 0.6
