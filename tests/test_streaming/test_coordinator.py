"""Tests for consumer-group partition assignment."""

import pytest

from repro.streaming import Broker, Consumer, Producer
from repro.streaming.coordinator import GroupCoordinator


class TestGroupCoordinator:
    def test_single_member_gets_everything(self):
        coordinator = GroupCoordinator()
        coordinator.join("g", "a", {"t": 3})
        assert coordinator.assignment("g", "a") == [("t", 0), ("t", 1), ("t", 2)]

    def test_two_members_split(self):
        coordinator = GroupCoordinator()
        coordinator.join("g", "a", {"t": 3})
        coordinator.join("g", "b", {"t": 3})
        a = coordinator.assignment("g", "a")
        b = coordinator.assignment("g", "b")
        assert sorted(a + b) == [("t", 0), ("t", 1), ("t", 2)]
        assert not set(a) & set(b)
        assert abs(len(a) - len(b)) <= 1

    def test_generation_bumps_on_membership_change(self):
        coordinator = GroupCoordinator()
        g1 = coordinator.join("g", "a", {"t": 2})
        g2 = coordinator.join("g", "b", {"t": 2})
        g3 = coordinator.leave("g", "a")
        assert g1 < g2 < g3

    def test_leave_reassigns(self):
        coordinator = GroupCoordinator()
        coordinator.join("g", "a", {"t": 4})
        coordinator.join("g", "b", {"t": 4})
        coordinator.leave("g", "a")
        assert len(coordinator.assignment("g", "b")) == 4
        with pytest.raises(KeyError):
            coordinator.assignment("g", "a")

    def test_multiple_topics_combined(self):
        coordinator = GroupCoordinator()
        coordinator.join("g", "a", {"t1": 2, "t2": 2})
        assert len(coordinator.assignment("g", "a")) == 4

    def test_partition_count_conflict_rejected(self):
        coordinator = GroupCoordinator()
        coordinator.join("g", "a", {"t": 2})
        with pytest.raises(ValueError):
            coordinator.join("g", "b", {"t": 3})

    def test_leave_unknown_member(self):
        with pytest.raises(KeyError):
            GroupCoordinator().leave("g", "ghost")

    def test_assignment_deterministic(self):
        first = GroupCoordinator()
        second = GroupCoordinator()
        for coordinator in (first, second):
            coordinator.join("g", "b", {"t": 5})
            coordinator.join("g", "a", {"t": 5})
        assert first.assignment("g", "a") == second.assignment("g", "a")


class TestBalancedConsumers:
    def build(self):
        broker = Broker("b")
        broker.create_topic("t", 4)
        producer = Producer(broker)
        for n in range(20):
            producer.send("t", {"n": n}, partition=n % 4)
        return broker

    def test_balanced_consumers_partition_the_topic(self):
        broker = self.build()
        a = Consumer(broker, group="g", client_id="a")
        b = Consumer(broker, group="g", client_id="b")
        a.subscribe(["t"], balanced=True)
        b.subscribe(["t"], balanced=True)
        seen_a = {r.value["n"] for r in a.poll()}
        seen_b = {r.value["n"] for r in b.poll()}
        assert not seen_a & seen_b
        assert seen_a | seen_b == set(range(20))

    def test_rebalance_on_join(self):
        broker = self.build()
        a = Consumer(broker, group="g", client_id="a")
        a.subscribe(["t"], balanced=True)
        assert len(a.assigned_partitions) == 4
        b = Consumer(broker, group="g", client_id="b")
        b.subscribe(["t"], balanced=True)
        a.poll()  # picks up the rebalance
        assert len(a.assigned_partitions) == 2
        assert len(b.assigned_partitions) == 2

    def test_rebalance_on_leave_resumes_from_commit(self):
        broker = self.build()
        a = Consumer(broker, group="g", client_id="a")
        b = Consumer(broker, group="g", client_id="b")
        a.subscribe(["t"], balanced=True)
        b.subscribe(["t"], balanced=True)
        seen_a = {r.value["n"] for r in a.poll()}
        b.poll()
        b.close()
        # a inherits b's partitions; b's committed offsets mean no
        # record is seen twice.
        seen_after = {r.value["n"] for r in a.poll()}
        assert not seen_a & seen_after

    def test_balanced_requires_group(self):
        broker = self.build()
        consumer = Consumer(broker)
        with pytest.raises(ValueError):
            consumer.subscribe(["t"], balanced=True)

    def test_every_record_consumed_exactly_once_by_group(self):
        broker = self.build()
        consumers = [
            Consumer(broker, group="g", client_id=f"c{i}") for i in range(3)
        ]
        for consumer in consumers:
            consumer.subscribe(["t"], balanced=True)
        seen = []
        for consumer in consumers:
            seen.extend(r.value["n"] for r in consumer.poll())
        assert sorted(seen) == list(range(20))
