"""FlatStructSerde: fixed-layout binary encoding with JSON fallback."""

import struct

import pytest

from repro.streaming.serde import (
    FIELD_ENUM,
    FIELD_OPT_FLOAT,
    FIELD_OPT_INT,
    FIELD_PLAIN,
    FlatStructSerde,
    JsonSerde,
    STRUCT_MAGIC,
    SerdeError,
)

KINDS = ("alpha", "beta")


@pytest.fixture
def serde():
    return FlatStructSerde(
        [
            ("car", "q", FIELD_PLAIN, None),
            ("speed", "d", FIELD_PLAIN, None),
            ("kind", "B", FIELD_ENUM, KINDS),
            ("score", "d", FIELD_OPT_FLOAT, None),
            ("label", "b", FIELD_OPT_INT, None),
        ]
    )


def test_round_trip(serde):
    value = {
        "car": 42,
        "speed": 130.25,
        "kind": "beta",
        "score": 0.75,
        "label": 1,
    }
    payload = serde.serialize(value)
    assert payload[0] == STRUCT_MAGIC
    assert len(payload) == serde.wire_size
    assert serde.deserialize(payload) == value


def test_round_trip_none_fields(serde):
    value = {
        "car": 1,
        "speed": 0.0,
        "kind": "alpha",
        "score": None,
        "label": None,
    }
    assert serde.deserialize(serde.serialize(value)) == value


def test_round_trip_extreme_values(serde):
    for value in [
        {"car": 2**62, "speed": 1e308, "kind": "alpha", "score": -1e-300,
         "label": 127},
        {"car": -(2**62), "speed": -1e308, "kind": "beta", "score": 5e-324,
         "label": 0},
        {"car": 0, "speed": float("inf"), "kind": "alpha", "score": None,
         "label": None},
    ]:
        assert serde.deserialize(serde.serialize(value)) == value


def test_nan_round_trips_as_nan_for_plain_float(serde):
    value = {"car": 0, "speed": float("nan"), "kind": "alpha",
             "score": 1.0, "label": 0}
    out = serde.deserialize(serde.serialize(value))
    assert out["speed"] != out["speed"]  # NaN


def test_opt_float_nan_collapses_to_none(serde):
    # NaN is the wire sentinel for None: an optional-float field cannot
    # distinguish the two, by design.
    value = {"car": 0, "speed": 0.0, "kind": "alpha",
             "score": float("nan"), "label": 0}
    assert serde.deserialize(serde.serialize(value))["score"] is None


def test_unknown_enum_falls_back_to_json(serde):
    value = {"car": 1, "speed": 2.0, "kind": "gamma", "score": None,
             "label": None}
    payload = serde.serialize(value)
    assert payload[0] != STRUCT_MAGIC  # JSON, not struct
    assert serde.deserialize(payload) == value


def test_out_of_range_int_falls_back_to_json(serde):
    value = {"car": 2**70, "speed": 2.0, "kind": "alpha", "score": None,
             "label": None}
    payload = serde.serialize(value)
    assert payload[0] != STRUCT_MAGIC
    assert serde.deserialize(payload) == value


def test_missing_key_falls_back_to_json(serde):
    value = {"car": 1, "speed": 2.0}
    payload = serde.serialize(value)
    assert serde.deserialize(payload) == value


def test_non_dict_falls_back_to_json(serde):
    assert serde.deserialize(serde.serialize([1, 2, 3])) == [1, 2, 3]
    assert serde.deserialize(serde.serialize("hello")) == "hello"


def test_json_payload_interop(serde):
    # A plain-JSON producer on the same topic deserializes fine.
    value = {"car": 9, "speed": 1.5, "kind": "alpha", "score": 0.5,
             "label": 1}
    payload = JsonSerde().serialize(value)
    assert serde.deserialize(payload) == value


def test_truncated_struct_payload_raises(serde):
    good = serde.serialize(
        {"car": 1, "speed": 2.0, "kind": "alpha", "score": None,
         "label": None}
    )
    with pytest.raises(SerdeError):
        serde.deserialize(good[:-3])
    with pytest.raises(SerdeError):
        serde.deserialize(good + b"\x00")


def test_bad_version_raises(serde):
    good = bytearray(
        serde.serialize(
            {"car": 1, "speed": 2.0, "kind": "alpha", "score": None,
             "label": None}
        )
    )
    good[1] = 99  # version byte
    with pytest.raises(SerdeError, match="version"):
        serde.deserialize(bytes(good))


def test_garbage_payload_raises(serde):
    with pytest.raises(SerdeError):
        serde.deserialize(bytes([STRUCT_MAGIC]) + b"garbage")
    with pytest.raises(SerdeError):
        serde.deserialize(b"\x00\x01\x02")  # not magic, not JSON


def test_unknown_field_kind_rejected():
    with pytest.raises(ValueError, match="kind"):
        FlatStructSerde([("x", "q", "mystery", None)])


def test_wire_size_is_fixed_and_small(serde):
    expected = struct.calcsize("<BBqdBdb")
    assert serde.wire_size == expected
    value = {"car": 1, "speed": 2.0, "kind": "alpha", "score": 3.0,
             "label": 1}
    json_size = len(JsonSerde().serialize(value))
    assert serde.wire_size < json_size


def test_random_round_trip_sweep(serde):
    import numpy as np

    rng = np.random.default_rng(5)
    for _ in range(200):
        value = {
            "car": int(rng.integers(-(2**62), 2**62)),
            "speed": float(rng.normal(0, 1e6)),
            "kind": KINDS[int(rng.integers(0, len(KINDS)))],
            "score": (
                None if rng.random() < 0.2 else float(rng.random())
            ),
            "label": None if rng.random() < 0.2 else int(rng.integers(0, 2)),
        }
        assert serde.deserialize(serde.serialize(value)) == value
