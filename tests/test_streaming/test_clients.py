"""Tests for producer/consumer clients and the cluster."""

import pytest

from repro.streaming import (
    Broker,
    BrokerError,
    Cluster,
    Consumer,
    JsonSerde,
    Producer,
    RawSerde,
)
from repro.streaming.serde import SerdeError


@pytest.fixture
def broker():
    b = Broker("rsu")
    b.create_topic("IN-DATA")
    b.create_topic("OUT-DATA")
    return b


class TestSerde:
    def test_json_round_trip(self):
        serde = JsonSerde()
        value = {"car": 1, "speed": 120.5, "tags": ["a", "b"]}
        assert serde.deserialize(serde.serialize(value)) == value

    def test_json_deterministic(self):
        serde = JsonSerde()
        assert serde.serialize({"b": 1, "a": 2}) == serde.serialize(
            {"a": 2, "b": 1}
        )

    def test_json_rejects_unserializable(self):
        with pytest.raises(SerdeError):
            JsonSerde().serialize(object())

    def test_json_rejects_bad_payload(self):
        with pytest.raises(SerdeError):
            JsonSerde().deserialize(b"{not json")

    def test_raw_passthrough(self):
        serde = RawSerde()
        assert serde.serialize(b"abc") == b"abc"
        assert serde.serialize("abc") == b"abc"
        with pytest.raises(SerdeError):
            serde.serialize(42)

    def test_telemetry_payload_near_200_bytes(self):
        """The paper assumes ~200-byte packets; our serialized
        telemetry envelope must land in that ballpark."""
        from repro.core.features import record_to_payload
        from repro.dataset.schema import TelemetryRecord
        from repro.geo import RoadType

        record = TelemetryRecord(
            car_id=123,
            road_id=55636,
            accel_ms2=0.31,
            speed_kmh=163.25,
            hour=18,
            day=12,
            road_type=RoadType.MOTORWAY,
            road_mean_speed_kmh=158.7,
            timestamp=86_400.5,
        )
        envelope = {
            "data": record_to_payload(record),
            "generated_at": 12.345678,
            "arrived_at": 12.349876,
        }
        size = len(JsonSerde().serialize(envelope))
        assert 120 <= size <= 300


class TestProducer:
    def test_send_returns_metadata(self, broker):
        producer = Producer(broker)
        metadata = producer.send("IN-DATA", {"x": 1}, key="car-1")
        assert metadata.topic == "IN-DATA"
        assert metadata.offset == 0
        assert producer.records_sent == 1
        assert producer.bytes_sent == metadata.serialized_size

    def test_closed_producer_rejects(self, broker):
        producer = Producer(broker)
        producer.close()
        assert producer.closed
        with pytest.raises(RuntimeError):
            producer.send("IN-DATA", {"x": 1})


class TestConsumer:
    def test_poll_round_trip(self, broker):
        producer = Producer(broker)
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        producer.send("IN-DATA", {"n": 1})
        producer.send("IN-DATA", {"n": 2})
        values = [r.value for r in consumer.poll()]
        assert values == [{"n": 1}, {"n": 2}] or sorted(
            v["n"] for v in values
        ) == [1, 2]

    def test_poll_advances_position(self, broker):
        producer = Producer(broker)
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        producer.send("IN-DATA", {"n": 1})
        assert len(consumer.poll()) == 1
        assert consumer.poll() == []

    def test_group_resume_from_commit(self, broker):
        producer = Producer(broker)
        for n in range(4):
            producer.send("IN-DATA", {"n": n}, key="k")

        first = Consumer(broker, group="g")
        first.subscribe(["IN-DATA"])
        first.poll()

        # A replacement consumer in the same group sees nothing old.
        producer.send("IN-DATA", {"n": 99}, key="k")
        second = Consumer(broker, group="g")
        second.subscribe(["IN-DATA"])
        values = [r.value["n"] for r in second.poll()]
        assert values == [99]

    def test_groupless_consumers_each_see_everything(self, broker):
        producer = Producer(broker)
        producer.send("IN-DATA", {"n": 1})
        a = Consumer(broker)
        b = Consumer(broker)
        a.subscribe(["IN-DATA"])
        b.subscribe(["IN-DATA"])
        assert len(a.poll()) == 1
        assert len(b.poll()) == 1

    def test_seek_to_end_skips_history(self, broker):
        producer = Producer(broker)
        producer.send("IN-DATA", {"n": 1})
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        consumer.seek_to_end()
        assert consumer.poll() == []
        producer.send("IN-DATA", {"n": 2})
        assert [r.value["n"] for r in consumer.poll()] == [2]

    def test_seek_validation(self, broker):
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        with pytest.raises(KeyError):
            consumer.seek("OUT-DATA", 0, 0)
        with pytest.raises(ValueError):
            consumer.seek("IN-DATA", 0, -1)

    def test_lag(self, broker):
        producer = Producer(broker)
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        for _ in range(3):
            producer.send("IN-DATA", {"x": 0})
        assert consumer.lag() == 3
        consumer.poll()
        assert consumer.lag() == 0

    def test_manual_commit_requires_group(self, broker):
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        with pytest.raises(RuntimeError):
            consumer.commit()

    def test_max_records_respected(self, broker):
        producer = Producer(broker)
        for n in range(10):
            producer.send("IN-DATA", {"n": n}, partition=0)
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        assert len(consumer.poll(max_records=4)) == 4

    def test_subscribe_unknown_topic_raises(self, broker):
        consumer = Consumer(broker)
        with pytest.raises(Exception):
            consumer.subscribe(["NOPE"])


class TestCluster:
    def test_brokers_addressable_by_name(self):
        cluster = Cluster()
        cluster.add_broker("rsu-1")
        cluster.add_broker("rsu-2")
        assert cluster.broker_names() == ["rsu-1", "rsu-2"]
        assert len(cluster) == 2

    def test_duplicate_broker_rejected(self):
        cluster = Cluster()
        cluster.add_broker("rsu-1")
        with pytest.raises(BrokerError):
            cluster.add_broker("rsu-1")

    def test_broker_for_topic(self):
        cluster = Cluster()
        a = cluster.add_broker("rsu-1")
        cluster.add_broker("rsu-2")
        a.create_topic("IN-DATA")
        assert cluster.broker_for_topic("IN-DATA") is a

    def test_broker_for_missing_topic(self):
        cluster = Cluster()
        cluster.add_broker("rsu-1")
        with pytest.raises(BrokerError):
            cluster.broker_for_topic("IN-DATA")

    def test_ambiguous_topic_rejected(self):
        cluster = Cluster()
        cluster.add_broker("rsu-1").create_topic("IN-DATA")
        cluster.add_broker("rsu-2").create_topic("IN-DATA")
        with pytest.raises(BrokerError):
            cluster.broker_for_topic("IN-DATA")

    def test_total_stats(self):
        cluster = Cluster()
        a = cluster.add_broker("rsu-1")
        a.create_topic("t", 1)
        Producer(a).send("t", {"x": 1})
        assert cluster.total_stats()["records_in"] == 1
