"""Tests for the broker."""

import pytest

from repro.streaming import Broker, BrokerError, TopicNotFound


@pytest.fixture
def broker():
    b = Broker("rsu-1")
    b.create_topic("IN-DATA")
    return b


class TestTopics:
    def test_create_and_list(self, broker):
        broker.create_topic("OUT-DATA", 2)
        assert broker.topic_names() == ["IN-DATA", "OUT-DATA"]
        assert broker.has_topic("OUT-DATA")

    def test_duplicate_create_rejected(self, broker):
        with pytest.raises(BrokerError):
            broker.create_topic("IN-DATA")

    def test_ensure_topic_idempotent(self, broker):
        first = broker.ensure_topic("CO-DATA")
        second = broker.ensure_topic("CO-DATA")
        assert first is second

    def test_unknown_topic_raises(self, broker):
        with pytest.raises(TopicNotFound):
            broker.topic("NOPE")
        with pytest.raises(TopicNotFound):
            broker.produce("NOPE", b"x")


class TestProduceFetch:
    def test_round_trip(self, broker):
        metadata = broker.produce("IN-DATA", b"hello", key=b"car-1")
        records = broker.fetch("IN-DATA", metadata.partition, 0)
        assert records[-1].value == b"hello"
        assert records[-1].key == b"car-1"

    def test_explicit_partition(self, broker):
        metadata = broker.produce("IN-DATA", b"x", partition=2)
        assert metadata.partition == 2

    def test_timestamps_from_injected_clock(self):
        times = [1.5]
        broker = Broker("b", clock=lambda: times[0])
        broker.create_topic("t", 1)
        metadata = broker.produce("t", b"x")
        assert metadata.timestamp == 1.5

    def test_explicit_timestamp_wins(self, broker):
        metadata = broker.produce("IN-DATA", b"x", timestamp=9.0)
        assert metadata.timestamp == 9.0

    def test_byte_accounting(self, broker):
        broker.produce("IN-DATA", b"12345", key=b"abc")
        assert broker.bytes_in == 8
        assert broker.records_in == 1
        partition = broker.topic("IN-DATA").route(b"abc")
        broker.fetch("IN-DATA", partition, 0)
        assert broker.bytes_out == 8
        assert broker.records_out == 1

    def test_stats_snapshot(self, broker):
        broker.produce("IN-DATA", b"x")
        stats = broker.stats()
        assert stats["records_in"] == 1
        assert stats["bytes_in"] == 1


class TestCommittedOffsets:
    def test_commit_and_read_back(self, broker):
        broker.commit("group-a", "IN-DATA", 0, 5)
        assert broker.committed("group-a", "IN-DATA", 0) == 5

    def test_uncommitted_defaults_to_zero(self, broker):
        assert broker.committed("group-b", "IN-DATA", 1) == 0

    def test_groups_are_independent(self, broker):
        broker.commit("a", "IN-DATA", 0, 3)
        broker.commit("b", "IN-DATA", 0, 7)
        assert broker.committed("a", "IN-DATA", 0) == 3
        assert broker.committed("b", "IN-DATA", 0) == 7

    def test_negative_offset_rejected(self, broker):
        with pytest.raises(BrokerError):
            broker.commit("g", "IN-DATA", 0, -1)

    def test_commit_to_unknown_topic_rejected(self, broker):
        with pytest.raises(TopicNotFound):
            broker.commit("g", "NOPE", 0, 1)
