"""Tests for partition log retention."""

import pytest

from repro.streaming import Broker, Consumer, Partition, Producer


class TestPartitionRetention:
    def test_unbounded_by_default(self):
        partition = Partition("t", 0)
        for index in range(1000):
            partition.append(0.0, None, b"x")
        assert len(partition) == 1000
        assert partition.start_offset == 0

    def test_truncates_oldest(self):
        partition = Partition("t", 0, retention_records=5)
        for index in range(8):
            partition.append(0.0, None, str(index).encode())
        assert len(partition) == 5
        assert partition.start_offset == 3
        assert partition.records_truncated == 3
        assert [r.value for r in partition.read(3, 10)] == [
            b"3", b"4", b"5", b"6", b"7",
        ]

    def test_offsets_remain_durable(self):
        partition = Partition("t", 0, retention_records=3)
        offsets = [partition.append(0.0, None, b"v") for _ in range(6)]
        assert offsets == [0, 1, 2, 3, 4, 5]
        assert partition.end_offset == 6

    def test_read_below_start_resumes_at_earliest(self):
        partition = Partition("t", 0, retention_records=3)
        for index in range(6):
            partition.append(0.0, None, str(index).encode())
        records = partition.read(0, 10)
        assert [r.value for r in records] == [b"3", b"4", b"5"]
        assert records[0].offset == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition("t", 0, retention_records=0)


class TestConsumerOverRetention:
    def test_slow_consumer_skips_truncated_records(self):
        broker = Broker("b")
        broker.create_topic("t", 1, retention_records=4)
        producer = Producer(broker)
        consumer = Consumer(broker)
        consumer.subscribe(["t"])
        for n in range(10):
            producer.send("t", {"n": n})
        values = [r.value["n"] for r in consumer.poll()]
        # Only the retained tail is deliverable.
        assert values == [6, 7, 8, 9]
        # And the consumer is caught up afterwards.
        assert consumer.poll() == []

    def test_fast_consumer_unaffected(self):
        broker = Broker("b")
        broker.create_topic("t", 1, retention_records=4)
        producer = Producer(broker)
        consumer = Consumer(broker)
        consumer.subscribe(["t"])
        seen = []
        for n in range(10):
            producer.send("t", {"n": n})
            seen.extend(r.value["n"] for r in consumer.poll())
        assert seen == list(range(10))
