"""Delivery guarantees: retry/backoff, idempotence, offset restore.

These pin the producer/broker/consumer contract the resilience layer
rests on: telemetry buffered through an outage is delivered exactly
once in effect, and a restarted consumer resumes from its last
committed offset instead of re-reading (and re-detecting) history.
"""

import pytest

from repro.simkernel.simulator import Simulator
from repro.streaming.broker import Broker, BrokerUnavailable
from repro.streaming.consumer import Consumer
from repro.streaming.producer import Producer, RetryPolicy


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def broker(sim):
    b = Broker("rsu", clock=lambda: sim.now)
    b.create_topic("IN-DATA")
    return b


def _resilient_producer(broker, sim, **overrides):
    return Producer(
        broker,
        client_id="vehicle-1",
        sim=sim,
        retry=RetryPolicy(**overrides),
        idempotent=True,
    )


class TestRetryPolicy:
    def test_backoff_doubles_to_cap(self):
        policy = RetryPolicy(
            base_backoff_s=0.05, multiplier=2.0, max_backoff_s=0.8
        )
        delays = [policy.backoff_s(n) for n in range(6)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.8, 0.8]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=0.2, max_backoff_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(max_buffered=0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(-1)


class TestRetryBuffer:
    def test_no_policy_fails_fast(self, sim, broker):
        producer = Producer(broker, sim=sim)
        broker.shutdown()
        with pytest.raises(BrokerUnavailable):
            producer.send("IN-DATA", {"n": 1})

    def test_outage_buffers_then_flushes_in_order(self, sim, broker):
        producer = _resilient_producer(broker, sim)
        producer.send("IN-DATA", {"n": 0}, key="k")
        broker.shutdown()
        for n in (1, 2, 3):
            assert producer.send("IN-DATA", {"n": n}, key="k") is None
        assert producer.buffered == 3
        sim.at(0.5, broker.restart)
        sim.run_until(2.0)
        assert producer.buffered == 0
        assert producer.records_retried == 3
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        assert [r.value["n"] for r in consumer.poll()] == [0, 1, 2, 3]

    def test_full_buffer_drops_oldest(self, sim, broker):
        producer = _resilient_producer(broker, sim, max_buffered=2)
        broker.shutdown()
        for n in range(4):
            producer.send("IN-DATA", {"n": n}, key="k")
        assert producer.buffered == 2
        assert producer.records_dropped == 2
        broker.restart()
        sim.run_until(2.0)
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        assert [r.value["n"] for r in consumer.poll()] == [2, 3]

    def test_send_during_outage_respects_ordering(self, sim, broker):
        # New sends while a backlog exists must queue behind it, even
        # if the broker is back, or replay would reorder telemetry.
        producer = _resilient_producer(broker, sim)
        broker.shutdown()
        producer.send("IN-DATA", {"n": 0}, key="k")
        broker.restart()
        producer.send("IN-DATA", {"n": 1}, key="k")
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        assert [r.value["n"] for r in consumer.poll()] == [0, 1]


class TestIdempotence:
    def test_lost_ack_retry_is_deduplicated(self, sim, broker):
        producer = _resilient_producer(broker, sim)
        # Acks lost until t=0.2: the broker appends, the producer sees
        # a failure and buffers a retry of the *same* sequence.
        broker.drop_acks_until(0.2)
        assert producer.send("IN-DATA", {"n": 1}) is None
        assert producer.buffered == 1
        sim.run_until(1.0)
        assert producer.buffered == 0
        assert broker.duplicates_rejected == 1
        consumer = Consumer(broker)
        consumer.subscribe(["IN-DATA"])
        assert [r.value["n"] for r in consumer.poll()] == [1]

    def test_sequences_are_per_topic(self, sim, broker):
        broker.create_topic("OUT-DATA")
        producer = _resilient_producer(broker, sim)
        producer.send("IN-DATA", {"n": 1})
        producer.send("OUT-DATA", {"n": 1})
        producer.send("IN-DATA", {"n": 2})
        assert broker.duplicates_rejected == 0
        assert producer._sequences == {"IN-DATA": 2, "OUT-DATA": 1}


class TestRebind:
    def test_rebind_replays_backlog_to_new_broker(self, sim, broker):
        producer = _resilient_producer(broker, sim)
        broker.shutdown()
        producer.send("IN-DATA", {"n": 1})
        fallback = Broker("rsu-2", clock=lambda: sim.now)
        fallback.create_topic("IN-DATA")
        producer.rebind(fallback)
        sim.run_until(1.0)
        assert producer.buffered == 0
        consumer = Consumer(fallback)
        consumer.subscribe(["IN-DATA"])
        assert [r.value["n"] for r in consumer.poll()] == [1]

    def test_rebind_drop_pending_abandons_backlog(self, sim, broker):
        producer = _resilient_producer(broker, sim)
        broker.shutdown()
        producer.send("IN-DATA", {"n": 1})
        producer.send("IN-DATA", {"n": 2})
        fallback = Broker("rsu-2", clock=lambda: sim.now)
        fallback.create_topic("IN-DATA")
        producer.rebind(fallback, drop_pending=True)
        sim.run_until(1.0)
        assert producer.records_abandoned == 2
        assert fallback.end_offset("IN-DATA", 0) == 0


class TestOffsetRestore:
    def test_replacement_consumer_resumes_from_commit(self, broker):
        producer = Producer(broker)
        for n in range(3):
            producer.send("IN-DATA", {"n": n}, key="k")
        first = Consumer(broker, group="pipeline")
        first.subscribe(["IN-DATA"])
        assert len(first.poll()) == 3

        # The broker's durable state (log + committed offsets)
        # survives a crash; a replacement consumer under the same
        # group resumes exactly after the committed batch.
        broker.shutdown()
        broker.restart()
        producer.send("IN-DATA", {"n": 99}, key="k")
        second = Consumer(broker, group="pipeline")
        second.subscribe(["IN-DATA"])
        assert [r.value["n"] for r in second.poll()] == [99]
        # Nothing old was re-read: no double detection after restart.
        assert second.poll() == []
