"""Tests for partitions and topics."""

import pytest

from repro.streaming import Partition, Topic


class TestPartition:
    def test_offsets_are_sequential(self):
        partition = Partition("t", 0)
        assert partition.append(0.0, None, b"a") == 0
        assert partition.append(0.1, None, b"b") == 1
        assert partition.end_offset == 2

    def test_read_from_offset(self):
        partition = Partition("t", 0)
        for index in range(5):
            partition.append(float(index), None, str(index).encode())
        records = partition.read(2, 10)
        assert [r.value for r in records] == [b"2", b"3", b"4"]

    def test_read_respects_max_records(self):
        partition = Partition("t", 0)
        for index in range(5):
            partition.append(0.0, None, b"x")
        assert len(partition.read(0, 2)) == 2

    def test_read_past_end_is_empty(self):
        partition = Partition("t", 0)
        partition.append(0.0, None, b"x")
        assert partition.read(5, 10) == []

    def test_read_validation(self):
        partition = Partition("t", 0)
        with pytest.raises(ValueError):
            partition.read(-1, 10)
        with pytest.raises(ValueError):
            partition.read(0, 0)

    def test_bytes_accounting_includes_key(self):
        partition = Partition("t", 0)
        partition.append(0.0, b"key", b"value")
        assert partition.bytes_in == 8


class TestTopic:
    def test_paper_default_three_partitions(self):
        assert Topic("IN-DATA").num_partitions == 3

    def test_keyed_routing_is_sticky(self):
        topic = Topic("t", 3)
        first = topic.route(b"car-42")
        assert all(topic.route(b"car-42") == first for _ in range(10))

    def test_unkeyed_routing_round_robins(self):
        topic = Topic("t", 3)
        indices = [topic.route(None) for _ in range(6)]
        assert indices == [0, 1, 2, 0, 1, 2]

    def test_partition_index_bounds(self):
        topic = Topic("t", 2)
        with pytest.raises(IndexError):
            topic.partition(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            Topic("", 3)
        with pytest.raises(ValueError):
            Topic("t", 0)

    def test_total_records(self):
        topic = Topic("t", 2)
        topic.partition(0).append(0.0, None, b"a")
        topic.partition(1).append(0.0, None, b"b")
        assert topic.total_records == 2
