"""Shared hypothesis strategies for the test suites and the fuzzer.

Each strategy here used to live ad-hoc inside one test module; they are
single-sourced so the scenario fuzzer (:mod:`repro.fuzz.strategies`
builds on the same value spaces) and every property suite draw from
identical distributions.  Keep strategies *data-shaped* (JSON values,
wire frames, summary dicts) — scenario-level strategies belong in
:func:`repro.fuzz.strategies.fuzz_specs`.
"""

from hypothesis import strategies as st

#: Arbitrary JSON-able values — the serde round-trip surface.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=20,
)

#: (kind, payload) frame lists for shm-ring interleaving tests.
ring_frames = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),
        st.binary(min_size=0, max_size=48),
    ),
    min_size=1,
    max_size=40,
)

#: One wire-shaped prediction-summary dict — the struct-serde and
#: summary-frame codec surface.
summary_dict = st.fixed_dictionaries(
    {
        "car": st.integers(min_value=1, max_value=10_000),
        "p": st.floats(0.0, 1.0, allow_nan=False, width=32),
        "n": st.integers(min_value=0, max_value=100_000),
        "cls": st.integers(min_value=0, max_value=1),
        "rd": st.integers(min_value=0, max_value=500),
        "ts": st.floats(0.0, 1e4, allow_nan=False),
    }
)

summary_dicts = st.lists(summary_dict, min_size=1, max_size=20)

#: Summary-frame epochs are a u8 on the wire.
frame_epochs = st.integers(min_value=0, max_value=255)

#: (mean_normal_prob, n_predictions, timestamp) triples for the
#: PredictionSummary merge algebra.
summary_merge_entries = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=100),
        st.floats(min_value=0.0, max_value=1e6),
    ),
    min_size=1,
    max_size=8,
)

#: Metric instrument names and label sets for registry/snapshot tests.
metric_names = st.sampled_from(["a.b", "c", "rsu.batch", "x.y.z"])
metric_labels = st.dictionaries(
    st.sampled_from(["rsu", "shard", "kind"]),
    st.sampled_from(["1", "2", "north"]),
    max_size=2,
)
