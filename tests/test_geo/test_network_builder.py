"""Tests for synthetic city / corridor generation."""

import numpy as np
import pytest

from repro.geo import CityNetworkBuilder, NetworkSpec, RoadType
from repro.geo.network_builder import TABLE_V_SPECS


class TestCorridor:
    def test_default_topology(self):
        network = CityNetworkBuilder(seed=1).build_corridor()
        assert len(network) == 5
        link = network.segment(1)
        assert link.road_type is RoadType.MOTORWAY_LINK
        # Every motorway is adjacent to the link (Fig. 1 interchange).
        assert network.neighbors(1) == [2, 3, 4, 5]

    def test_motorway_count_configurable(self):
        network = CityNetworkBuilder(seed=1).build_corridor(motorways=2)
        assert len(network.by_road_type(RoadType.MOTORWAY)) == 2

    def test_segment_lengths(self):
        network = CityNetworkBuilder(seed=1).build_corridor(
            motorway_length_m=2000.0, link_length_m=400.0
        )
        assert network.segment(1).length_m == pytest.approx(400.0, rel=0.01)
        assert network.segment(2).length_m == pytest.approx(2000.0, rel=0.01)

    def test_zero_motorways_rejected(self):
        with pytest.raises(ValueError):
            CityNetworkBuilder(seed=1).build_corridor(motorways=0)

    def test_deterministic(self):
        a = CityNetworkBuilder(seed=5).build_corridor()
        b = CityNetworkBuilder(seed=5).build_corridor()
        assert [s.length_m for s in a.segments()] == [
            s.length_m for s in b.segments()
        ]


class TestCity:
    def test_scaled_counts(self):
        spec = NetworkSpec(count_scale=0.02)
        network = CityNetworkBuilder(seed=2).build_city(spec)
        assert len(network) == spec.total_roads()
        motorways = network.by_road_type(RoadType.MOTORWAY)
        assert len(motorways) == spec.scaled_count(RoadType.MOTORWAY)

    def test_length_distribution_calibration(self):
        """Mean length per class tracks Table V at full scale."""
        spec = NetworkSpec(count_scale=1.0)
        network = CityNetworkBuilder(seed=3).build_city(spec)
        for road_type in (RoadType.PRIMARY, RoadType.SECONDARY, RoadType.TERTIARY):
            lengths = np.array(
                [seg.length_m for seg in network.by_road_type(road_type)]
            )
            target = TABLE_V_SPECS[road_type].mean_length_m
            # Lognormal with high dispersion: allow 30 % sampling error.
            assert abs(lengths.mean() - target) / target < 0.30

    def test_inside_bounding_box(self):
        spec = NetworkSpec(count_scale=0.01)
        network = CityNetworkBuilder(seed=4).build_city(spec)
        for segment in network.segments():
            start = segment.start
            assert spec.bbox.south - 0.5 <= start.lat <= spec.bbox.north + 0.5
            assert spec.bbox.west - 0.5 <= start.lon <= spec.bbox.east + 0.5

    def test_minimum_length_enforced(self):
        spec = NetworkSpec(count_scale=0.05)
        network = CityNetworkBuilder(seed=5).build_city(spec)
        for segment in network.segments():
            assert segment.length_m >= CityNetworkBuilder.MIN_ROAD_LENGTH_M * 0.9

    def test_traffic_density_sums_to_about_one(self):
        total = sum(spec.traffic_density for spec in TABLE_V_SPECS.values())
        assert total == pytest.approx(1.0, abs=0.01)
