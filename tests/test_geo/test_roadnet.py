"""Tests for the road network graph."""

import pytest

from repro.geo import LatLon, RoadNetwork, RoadSegment, RoadType
from repro.geo.coords import destination_point

CENTER = LatLon(22.6, 114.2)


def straight_segment(segment_id, start, bearing, length_m, road_type=RoadType.MOTORWAY):
    end = destination_point(start, bearing, length_m)
    return RoadSegment(
        segment_id=segment_id, road_type=road_type, polyline=[start, end]
    )


class TestRoadSegment:
    def test_length_computed(self):
        segment = straight_segment(1, CENTER, 90.0, 1000.0)
        assert segment.length_m == pytest.approx(1000.0, rel=1e-3)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            RoadSegment(1, RoadType.MOTORWAY, [CENTER])

    def test_free_flow_defaults_by_type(self):
        motorway = straight_segment(1, CENTER, 0.0, 500.0)
        assert motorway.free_flow_kmh == 160.0
        link = straight_segment(
            2, CENTER, 0.0, 500.0, road_type=RoadType.MOTORWAY_LINK
        )
        assert link.free_flow_kmh == 115.0

    def test_point_at_interpolates(self):
        segment = straight_segment(1, CENTER, 90.0, 1000.0)
        midpoint = segment.point_at(500.0)
        from repro.geo import haversine_m

        off_start = haversine_m(
            segment.start.lat, segment.start.lon, midpoint.lat, midpoint.lon
        )
        assert off_start == pytest.approx(500.0, rel=0.01)

    def test_point_at_clamps(self):
        segment = straight_segment(1, CENTER, 90.0, 1000.0)
        assert segment.point_at(-5.0) == segment.start
        past_end = segment.point_at(5000.0)
        assert past_end.lat == pytest.approx(segment.end.lat)

    def test_lanes_validated(self):
        with pytest.raises(ValueError):
            RoadSegment(
                1,
                RoadType.MOTORWAY,
                [CENTER, destination_point(CENTER, 0, 100)],
                lanes=0,
            )

    def test_link_types_flagged(self):
        assert RoadType.MOTORWAY_LINK.is_link
        assert not RoadType.MOTORWAY.is_link


class TestRoadNetwork:
    def build_t_junction(self):
        """Two motorways meeting a link at a shared endpoint."""
        network = RoadNetwork()
        junction = CENTER
        network.add_segment(straight_segment(1, junction, 0.0, 2000.0))
        network.add_segment(straight_segment(2, junction, 120.0, 2000.0))
        network.add_segment(
            straight_segment(
                3, junction, 240.0, 500.0, road_type=RoadType.MOTORWAY_LINK
            )
        )
        return network

    def test_adjacency_via_shared_endpoint(self):
        network = self.build_t_junction()
        assert network.neighbors(3) == [1, 2]
        assert network.neighbors(1) == [2, 3]

    def test_disconnected_segments_have_no_neighbors(self):
        network = RoadNetwork()
        network.add_segment(straight_segment(1, CENTER, 0.0, 1000.0))
        far = destination_point(CENTER, 90.0, 50_000.0)
        network.add_segment(straight_segment(2, far, 0.0, 1000.0))
        assert network.neighbors(1) == []

    def test_duplicate_id_rejected(self):
        network = RoadNetwork()
        network.add_segment(straight_segment(1, CENTER, 0.0, 1000.0))
        with pytest.raises(ValueError):
            network.add_segment(straight_segment(1, CENTER, 90.0, 1000.0))

    def test_unknown_segment_raises(self):
        with pytest.raises(KeyError):
            RoadNetwork().segment(99)
        with pytest.raises(KeyError):
            RoadNetwork().neighbors(99)

    def test_by_road_type(self):
        network = self.build_t_junction()
        links = network.by_road_type(RoadType.MOTORWAY_LINK)
        assert [seg.segment_id for seg in links] == [3]

    def test_project_onto_segment(self):
        network = RoadNetwork()
        network.add_segment(straight_segment(1, CENTER, 90.0, 1000.0))
        # A point 30 m north of the midpoint should project near 500 m.
        midpoint = network.segment(1).point_at(500.0)
        off_road = destination_point(midpoint, 0.0, 30.0)
        distance, offset, snapped = network.project(1, off_road)
        assert distance == pytest.approx(30.0, rel=0.05)
        assert offset == pytest.approx(500.0, rel=0.05)

    def test_nearest_segments_orders_by_distance(self):
        network = self.build_t_junction()
        # A point on segment 1, away from the junction.
        on_segment_1 = network.segment(1).point_at(1500.0)
        nearest = network.nearest_segments(on_segment_1, k=3, max_distance_m=5000)
        assert nearest[0][0] == 1
        assert nearest[0][1] < nearest[-1][1] or len(nearest) == 1

    def test_nearest_segments_respects_radius(self):
        network = RoadNetwork()
        network.add_segment(straight_segment(1, CENTER, 0.0, 1000.0))
        far = destination_point(CENTER, 90.0, 10_000.0)
        assert network.nearest_segments(far, max_distance_m=100.0) == []

    def test_total_length(self):
        network = self.build_t_junction()
        assert network.total_length_m() == pytest.approx(4500.0, rel=0.01)

    def test_len_and_contains(self):
        network = self.build_t_junction()
        assert len(network) == 3
        assert 1 in network
        assert 99 not in network
