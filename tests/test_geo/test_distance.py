"""Tests for great-circle geometry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import bearing_deg, destination_point, haversine_m, path_length_m
from repro.geo.coords import LatLon

lat_strategy = st.floats(min_value=-85.0, max_value=85.0)
lon_strategy = st.floats(min_value=-179.0, max_value=179.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(22.5, 114.0, 22.5, 114.0) == 0.0

    def test_one_degree_latitude_is_about_111km(self):
        distance = haversine_m(22.0, 114.0, 23.0, 114.0)
        assert distance == pytest.approx(111_195, rel=0.01)

    def test_known_city_pair(self):
        # Shenzhen to Hong Kong centre, roughly 30 km.
        distance = haversine_m(22.543, 114.057, 22.319, 114.169)
        assert 25_000 < distance < 35_000

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        forward = haversine_m(lat1, lon1, lat2, lon2)
        backward = haversine_m(lat2, lon2, lat1, lon1)
        assert forward == pytest.approx(backward, rel=1e-9, abs=1e-6)

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    def test_non_negative(self, lat1, lon1, lat2, lon2):
        assert haversine_m(lat1, lon1, lat2, lon2) >= 0.0

    @given(lat_strategy, lon_strategy)
    def test_identity_is_zero(self, lat, lon):
        assert haversine_m(lat, lon, lat, lon) == 0.0


class TestBearing:
    def test_due_north(self):
        assert bearing_deg(22.0, 114.0, 23.0, 114.0) == pytest.approx(0.0, abs=0.01)

    def test_due_east(self):
        assert bearing_deg(0.0, 114.0, 0.0, 115.0) == pytest.approx(90.0, abs=0.01)

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    def test_range(self, lat1, lon1, lat2, lon2):
        bearing = bearing_deg(lat1, lon1, lat2, lon2)
        assert 0.0 <= bearing < 360.0


class TestDestinationPoint:
    @given(
        lat_strategy,
        lon_strategy,
        st.floats(min_value=0.0, max_value=359.9),
        st.floats(min_value=1.0, max_value=50_000.0),
    )
    def test_round_trip_distance(self, lat, lon, bearing, distance):
        origin = LatLon(lat, lon)
        target = destination_point(origin, bearing, distance)
        measured = haversine_m(origin.lat, origin.lon, target.lat, target.lon)
        assert measured == pytest.approx(distance, rel=1e-3)

    def test_zero_distance_is_same_point(self):
        origin = LatLon(22.5, 114.0)
        target = destination_point(origin, 45.0, 0.0)
        assert target.lat == pytest.approx(origin.lat)
        assert target.lon == pytest.approx(origin.lon)


class TestPathLength:
    def test_empty_path(self):
        assert path_length_m([]) == 0.0

    def test_single_point(self):
        assert path_length_m([(22.5, 114.0)]) == 0.0

    def test_two_legs_sum(self):
        a, b, c = (22.5, 114.0), (22.6, 114.0), (22.6, 114.1)
        total = path_length_m([a, b, c])
        expected = haversine_m(*a, *b) + haversine_m(*b, *c)
        assert total == pytest.approx(expected)


class TestLatLonValidation:
    def test_valid(self):
        point = LatLon(22.5, 114.0)
        assert point.as_tuple() == (22.5, 114.0)

    def test_bad_latitude(self):
        with pytest.raises(ValueError):
            LatLon(91.0, 0.0)

    def test_bad_longitude(self):
        with pytest.raises(ValueError):
            LatLon(0.0, 181.0)
