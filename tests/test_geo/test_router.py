"""Tests for the road-graph router and the grid city."""

import pytest

from repro.geo import CityNetworkBuilder, RoadType, RouteNotFound, Router
from repro.geo.coords import destination_point
from repro.geo.roadnet import RoadNetwork, RoadSegment
from repro.geo.coords import LatLon

CENTER = LatLon(22.6, 114.2)


@pytest.fixture(scope="module")
def grid():
    return CityNetworkBuilder(seed=1).build_grid(rows=4, cols=4)


class TestGridCity:
    def test_segment_count(self, grid):
        # 4x4 grid: 4 rows x 3 EW + 4 cols x 3 NS = 24 segments.
        assert len(grid) == 24

    def test_fully_connected(self, grid):
        router = Router(grid)
        assert router.reachable_from(1) == grid.segment_ids()

    def test_road_types(self, grid):
        assert len(grid.by_road_type(RoadType.PRIMARY)) == 12
        assert len(grid.by_road_type(RoadType.SECONDARY)) == 12

    def test_segment_lengths_match_spacing(self):
        grid = CityNetworkBuilder(seed=1).build_grid(3, 3, spacing_m=500.0)
        for segment in grid.segments():
            assert segment.length_m == pytest.approx(500.0, rel=0.01)

    def test_validation(self):
        builder = CityNetworkBuilder(seed=1)
        with pytest.raises(ValueError):
            builder.build_grid(rows=1, cols=3)
        with pytest.raises(ValueError):
            builder.build_grid(rows=3, cols=3, spacing_m=0.0)


class TestRouter:
    def test_trivial_route(self, grid):
        assert Router(grid).route(5, 5) == [5]

    def test_adjacent_route(self, grid):
        router = Router(grid)
        neighbor = grid.neighbors(1)[0]
        assert router.route(1, neighbor) == [1, neighbor]

    def test_route_is_connected_path(self, grid):
        router = Router(grid)
        path = router.route(1, len(grid))
        assert path[0] == 1
        assert path[-1] == len(grid)
        for a, b in zip(path, path[1:]):
            assert b in grid.neighbors(a)

    def test_route_is_shortest_on_known_grid(self):
        # 2x3 grid: going corner to corner must traverse >= 3 segments.
        grid = CityNetworkBuilder(seed=1).build_grid(2, 3)
        router = Router(grid)
        ids = grid.segment_ids()
        path = router.route(ids[0], ids[-1])
        assert 2 <= len(path) <= 5

    def test_unknown_segment_raises(self, grid):
        router = Router(grid)
        with pytest.raises(KeyError):
            router.route(1, 999)
        with pytest.raises(KeyError):
            router.reachable_from(999)

    def test_disconnected_raises(self):
        network = RoadNetwork()
        network.add_segment(
            RoadSegment(1, RoadType.PRIMARY,
                        [CENTER, destination_point(CENTER, 0.0, 500.0)])
        )
        far = destination_point(CENTER, 90.0, 50_000.0)
        network.add_segment(
            RoadSegment(2, RoadType.PRIMARY,
                        [far, destination_point(far, 0.0, 500.0)])
        )
        with pytest.raises(RouteNotFound):
            Router(network).route(1, 2)

    def test_route_length(self, grid):
        router = Router(grid)
        path = router.route(1, grid.neighbors(1)[0])
        expected = sum(grid.segment(sid).length_m for sid in path)
        assert router.route_length_m(path) == pytest.approx(expected)


class TestRoutedTrips:
    def test_generator_routed_plan(self, grid):
        from repro.dataset import DatasetGenerator, GeneratorConfig

        dataset = DatasetGenerator(
            grid,
            GeneratorConfig(
                n_cars=10, trips_per_car=3, seed=2, route_plan="routed"
            ),
        ).generate()
        assert dataset.records
        # Routed trips traverse multiple segments of the grid.
        segments_per_trip = {}
        for record in dataset.records:
            segments_per_trip.setdefault(record.trip_id, set()).add(
                record.road_id
            )
        multi_hop = [s for s in segments_per_trip.values() if len(s) >= 2]
        assert len(multi_hop) > len(segments_per_trip) / 2
