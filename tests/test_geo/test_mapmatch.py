"""Tests for HMM map matching."""

import numpy as np
import pytest

from repro.geo import HmmMapMatcher, LatLon, RoadNetwork, RoadSegment, RoadType
from repro.geo.coords import destination_point

CENTER = LatLon(22.6, 114.2)


def build_junction_network():
    """Motorway (id 1) flowing into a link (id 2) at CENTER."""
    network = RoadNetwork()
    motorway_start = destination_point(CENTER, 270.0, 3000.0)
    network.add_segment(
        RoadSegment(1, RoadType.MOTORWAY, [motorway_start, CENTER])
    )
    link_end = destination_point(CENTER, 45.0, 600.0)
    network.add_segment(
        RoadSegment(2, RoadType.MOTORWAY_LINK, [CENTER, link_end])
    )
    # A parallel motorway 500 m north: a decoy candidate.
    decoy_start = destination_point(motorway_start, 0.0, 500.0)
    decoy_end = destination_point(CENTER, 0.0, 500.0)
    network.add_segment(
        RoadSegment(3, RoadType.MOTORWAY, [decoy_start, decoy_end])
    )
    return network


def noisy_trace(segment, offsets_m, noise_m, seed=0):
    rng = np.random.default_rng(seed)
    fixes = []
    for offset in offsets_m:
        point = segment.point_at(offset)
        fixes.append(
            LatLon(
                point.lat + rng.normal(0, noise_m * 1e-5),
                point.lon + rng.normal(0, noise_m * 1e-5),
            )
        )
    return fixes


class TestHmmMapMatcher:
    def test_clean_trace_matches_own_segment(self):
        network = build_junction_network()
        segment = network.segment(1)
        fixes = [segment.point_at(o) for o in (100, 500, 1000, 1500, 2000)]
        result = HmmMapMatcher(network).match(fixes)
        assert result.segment_ids == [1, 1, 1, 1, 1]
        assert result.matched_fraction == 1.0

    def test_noisy_trace_still_matches(self):
        network = build_junction_network()
        segment = network.segment(1)
        fixes = noisy_trace(segment, range(100, 2100, 200), noise_m=8.0)
        result = HmmMapMatcher(network).match(fixes)
        matched = [s for s in result.segment_ids if s is not None]
        assert matched.count(1) >= len(matched) * 0.8

    def test_transition_across_junction(self):
        network = build_junction_network()
        motorway = network.segment(1)
        link = network.segment(2)
        fixes = [motorway.point_at(o) for o in (2000, 2400, 2800)] + [
            link.point_at(o) for o in (100, 300, 500)
        ]
        result = HmmMapMatcher(network).match(fixes)
        assert result.segment_ids[:2] == [1, 1]
        assert result.segment_ids[-2:] == [2, 2]

    def test_offroad_fixes_left_unmatched(self):
        network = build_junction_network()
        nowhere = destination_point(CENTER, 180.0, 20_000.0)
        result = HmmMapMatcher(network).match([nowhere, nowhere])
        assert result.segment_ids == [None, None]
        assert result.matched_fraction == 0.0

    def test_chain_restarts_after_gap(self):
        network = build_junction_network()
        segment = network.segment(1)
        nowhere = destination_point(CENTER, 180.0, 20_000.0)
        fixes = [segment.point_at(500), nowhere, segment.point_at(700)]
        result = HmmMapMatcher(network).match(fixes)
        assert result.segment_ids[0] == 1
        assert result.segment_ids[1] is None
        assert result.segment_ids[2] == 1

    def test_empty_trace(self):
        network = build_junction_network()
        result = HmmMapMatcher(network).match([])
        assert result.points == []
        assert result.matched_fraction == 0.0

    def test_parameter_validation(self):
        network = build_junction_network()
        with pytest.raises(ValueError):
            HmmMapMatcher(network, sigma_z_m=0.0)
        with pytest.raises(ValueError):
            HmmMapMatcher(network, beta_m=-1.0)

    def test_prefers_adjacent_over_decoy(self):
        """After the junction the trace should hop to the adjacent
        link, not teleport to the non-adjacent decoy road."""
        network = build_junction_network()
        motorway = network.segment(1)
        link = network.segment(2)
        fixes = [motorway.point_at(2900)] + [
            link.point_at(o) for o in (50, 150, 250)
        ]
        result = HmmMapMatcher(network).match(fixes)
        assert 3 not in result.segment_ids
