"""Tests for Gaussian Naive Bayes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import EstimatorError, GaussianNaiveBayes, NotFittedError


def gaussian_blobs(n=400, separation=3.0, seed=0, n_features=2):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(0.0, 1.0, (n, n_features))
    X1 = rng.normal(separation, 1.0, (n, n_features))
    X = np.vstack([X0, X1])
    y = np.array([0] * n + [1] * n)
    return X, y


class TestFit:
    def test_learns_means(self):
        X, y = gaussian_blobs(seed=1)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.theta_[0] == pytest.approx([0.0, 0.0], abs=0.2)
        assert model.theta_[1] == pytest.approx([3.0, 3.0], abs=0.2)

    def test_learned_priors_match_frequencies(self):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (100, 2))
        X[:25] += 5.0
        y = np.array([1] * 25 + [0] * 75)
        model = GaussianNaiveBayes().fit(X, y)
        # classes_ sorted: [0, 1]
        assert np.exp(model.class_log_prior_) == pytest.approx([0.75, 0.25])

    def test_fixed_priors(self):
        X, y = gaussian_blobs(seed=3)
        model = GaussianNaiveBayes(priors=np.array([0.9, 0.1])).fit(X, y)
        assert np.exp(model.class_log_prior_) == pytest.approx([0.9, 0.1])

    def test_bad_priors_rejected(self):
        X, y = gaussian_blobs()
        with pytest.raises(ValueError):
            GaussianNaiveBayes(priors=np.array([0.9, 0.2])).fit(X, y)
        with pytest.raises(ValueError):
            GaussianNaiveBayes(priors=np.array([1.0])).fit(X, y)

    def test_single_class_rejected(self):
        X = np.zeros((10, 2))
        y = np.zeros(10)
        with pytest.raises(ValueError, match="single class"):
            GaussianNaiveBayes().fit(X, y)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EstimatorError):
            GaussianNaiveBayes().fit(np.zeros((5, 2)), np.zeros(4))

    def test_nan_rejected(self):
        X, y = gaussian_blobs(n=10)
        X[0, 0] = np.nan
        with pytest.raises(EstimatorError):
            GaussianNaiveBayes().fit(X, y)

    def test_zero_variance_feature_survives(self):
        """A constant feature must not produce division by zero."""
        rng = np.random.default_rng(4)
        X = np.column_stack([rng.normal(0, 1, 100), np.full(100, 7.0)])
        y = (X[:, 0] > 0).astype(int)
        model = GaussianNaiveBayes().fit(X, y)
        predictions = model.predict(X)
        assert np.mean(predictions == y) > 0.9


class TestPredict:
    def test_separable_blobs_high_accuracy(self):
        X, y = gaussian_blobs(separation=4.0, seed=5)
        model = GaussianNaiveBayes().fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.97

    def test_proba_rows_sum_to_one(self):
        X, y = gaussian_blobs(seed=6)
        model = GaussianNaiveBayes().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert proba.sum(axis=1) == pytest.approx(np.ones(len(X)))

    def test_proba_of_selects_class_column(self):
        X, y = gaussian_blobs(seed=7)
        model = GaussianNaiveBayes().fit(X, y)
        p1 = model.proba_of(X, 1)
        assert p1 == pytest.approx(model.predict_proba(X)[:, 1])

    def test_proba_of_unknown_class(self):
        X, y = gaussian_blobs(n=20)
        model = GaussianNaiveBayes().fit(X, y)
        with pytest.raises(ValueError):
            model.proba_of(X, 99)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GaussianNaiveBayes().predict(np.zeros((2, 2)))

    def test_feature_count_mismatch(self):
        X, y = gaussian_blobs(n=20)
        model = GaussianNaiveBayes().fit(X, y)
        with pytest.raises(EstimatorError):
            model.predict(np.zeros((3, 5)))

    def test_extreme_values_stay_finite(self):
        """Log-space arithmetic must not overflow on far-out points."""
        X, y = gaussian_blobs(n=50)
        model = GaussianNaiveBayes().fit(X, y)
        proba = model.predict_proba(np.array([[1e6, -1e6]]))
        assert np.all(np.isfinite(proba))
        assert proba.sum() == pytest.approx(1.0)

    def test_string_class_labels(self):
        X, y = gaussian_blobs(n=50)
        labels = np.where(y == 0, "calm", "wild")
        model = GaussianNaiveBayes().fit(X, labels)
        assert set(model.predict(X)) <= {"calm", "wild"}
        assert model.proba_of(X, "wild").shape == (100,)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_prediction_is_argmax_of_proba(self, seed):
        X, y = gaussian_blobs(n=30, separation=1.0, seed=seed)
        model = GaussianNaiveBayes().fit(X, y)
        proba = model.predict_proba(X)
        assert np.array_equal(
            model.predict(X), model.classes_[np.argmax(proba, axis=1)]
        )

    def test_decision_boundary_midpoint(self):
        """With equal priors and symmetric blobs, the midpoint between
        the class means classifies near 50/50."""
        X, y = gaussian_blobs(separation=4.0, seed=8, n=2000)
        model = GaussianNaiveBayes().fit(X, y)
        proba = model.predict_proba(np.array([[2.0, 2.0]]))
        assert proba[0, 0] == pytest.approx(0.5, abs=0.1)
