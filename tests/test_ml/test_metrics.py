"""Tests for classification metrics (abnormal = positive convention)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy_score,
    confusion_matrix,
    evaluate_binary,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.base import EstimatorError

# abnormal = 0 is the positive class throughout (paper convention).
Y_TRUE = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1, 1])
Y_PRED = np.array([0, 0, 1, 1, 1, 1, 1, 1, 0, 1])
# TP=2 (abnormal called abnormal), FN=2, FP=1, TN=5


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix(Y_TRUE, Y_PRED)
        assert matrix.tolist() == [[2, 2], [1, 5]]

    def test_perfect_prediction(self):
        matrix = confusion_matrix(Y_TRUE, Y_TRUE)
        assert matrix.tolist() == [[4, 0], [0, 6]]

    def test_positive_class_configurable(self):
        matrix = confusion_matrix(Y_TRUE, Y_PRED, positive=1)
        # For positive=1: TP=5, FN=1, FP=2, TN=2
        assert matrix.tolist() == [[5, 1], [2, 2]]

    def test_shape_mismatch(self):
        with pytest.raises(EstimatorError):
            confusion_matrix([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(EstimatorError):
            accuracy_score([], [])


class TestScores:
    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(0.7)

    def test_precision(self):
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)

    def test_recall(self):
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(0.5)

    def test_f1_harmonic_mean(self):
        precision, recall = 2 / 3, 0.5
        expected = 2 * precision * recall / (precision + recall)
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(expected)

    def test_degenerate_no_positive_predictions(self):
        y_true = np.array([0, 1, 1])
        y_pred = np.array([1, 1, 1])
        assert precision_score(y_true, y_pred) == 0.0
        assert recall_score(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_accuracy_bounds(self, bits):
        y = np.array(bits, dtype=int)
        rng = np.random.default_rng(0)
        predictions = rng.integers(0, 2, len(y))
        assert 0.0 <= accuracy_score(y, predictions) <= 1.0


class TestEvaluateBinary:
    def test_report_fields(self):
        report = evaluate_binary(Y_TRUE, Y_PRED)
        assert report.tp == 2
        assert report.fn == 2
        assert report.fp == 1
        assert report.tn == 5
        assert report.n_samples == 10
        assert report.tp_rate == pytest.approx(0.2)
        assert report.fn_rate == pytest.approx(0.2)

    def test_rates_sum_to_abnormal_fraction(self):
        """Table IV convention: TP rate + FN rate equals the abnormal
        share of the evaluation set."""
        report = evaluate_binary(Y_TRUE, Y_PRED)
        abnormal_fraction = np.mean(Y_TRUE == 0)
        assert report.tp_rate + report.fn_rate == pytest.approx(
            abnormal_fraction
        )

    def test_format_row(self):
        text = evaluate_binary(Y_TRUE, Y_PRED).format_row("CAD3")
        assert "CAD3" in text
        assert "f1=" in text
