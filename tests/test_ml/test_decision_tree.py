"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, EstimatorError, NotFittedError


def xor_dataset(n=400, seed=0):
    """XOR: linearly inseparable, trivially tree-separable."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestFit:
    def test_learns_xor(self):
        """XOR is linearly inseparable; a greedy tree needs a little
        extra depth (early splits have ~zero gain) but gets there."""
        X, y = xor_dataset()
        model = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.95

    def test_pure_node_stops_splitting(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 0, 0])
        # Single class is invalid for NB but fine for a tree? No:
        # classifier semantics require >= 1 class; a pure dataset
        # yields a single leaf predicting that class.
        model = DecisionTreeClassifier().fit(X, y)
        assert model.n_leaves == 1
        assert np.array_equal(model.predict(X), y)

    def test_max_depth_respected(self):
        X, y = xor_dataset(n=1000, seed=1)
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth <= 2

    def test_min_samples_leaf(self):
        X, y = xor_dataset(n=100, seed=2)
        model = DecisionTreeClassifier(min_samples_leaf=40).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert all(size >= 40 for size in leaf_sizes(model.root_))

    def test_min_samples_split(self):
        X, y = xor_dataset(n=100, seed=3)
        model = DecisionTreeClassifier(min_samples_split=200).fit(X, y)
        assert model.n_leaves == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_thresholds=0)

    def test_input_validation(self):
        with pytest.raises(EstimatorError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))

    def test_constant_features_yield_single_leaf(self):
        X = np.ones((50, 3))
        y = np.array([0, 1] * 25)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.n_leaves == 1


class TestPredict:
    def test_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_proba_shape_and_sum(self):
        X, y = xor_dataset(seed=4)
        model = DecisionTreeClassifier().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert proba.sum(axis=1) == pytest.approx(np.ones(len(X)))

    def test_proba_of_column(self):
        X, y = xor_dataset(seed=5)
        model = DecisionTreeClassifier().fit(X, y)
        assert model.proba_of(X, 1) == pytest.approx(model.predict_proba(X)[:, 1])

    def test_feature_mismatch_raises(self):
        X, y = xor_dataset(n=50)
        model = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(EstimatorError):
            model.predict(np.zeros((2, 3)))

    def test_deterministic(self):
        X, y = xor_dataset(seed=6)
        a = DecisionTreeClassifier().fit(X, y).predict(X)
        b = DecisionTreeClassifier().fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_binned_thresholds_still_accurate(self):
        X, y = xor_dataset(n=2000, seed=7)
        model = DecisionTreeClassifier(max_thresholds=4).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9


class TestExplainability:
    def test_export_text_contains_rules(self):
        X, y = xor_dataset(seed=8)
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        text = model.export_text(["speed", "hour"])
        assert "if speed <=" in text or "if hour <=" in text
        assert "predict" in text

    def test_export_text_validates_names(self):
        X, y = xor_dataset(n=50)
        model = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(ValueError):
            model.export_text(["only_one_name"])

    def test_single_informative_feature_selected(self):
        rng = np.random.default_rng(9)
        informative = rng.uniform(-1, 1, 300)
        noise = rng.uniform(-1, 1, 300)
        X = np.column_stack([noise, informative])
        y = (informative > 0.1).astype(int)
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert model.root_.feature == 1
        assert model.root_.threshold == pytest.approx(0.1, abs=0.1)
