"""Tests for the random forest."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, RandomForestClassifier


def xor(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestRandomForest:
    def test_learns_xor(self):
        X, y = xor()
        model = RandomForestClassifier(
            n_trees=30, max_depth=8, max_features=2, seed=1
        ).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_proba_rows_sum_to_one(self):
        X, y = xor(n=100)
        model = RandomForestClassifier(n_trees=10, seed=2).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.sum(axis=1) == pytest.approx(np.ones(len(X)))

    def test_deterministic_given_seed(self):
        X, y = xor(n=100)
        a = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict(X)
        b = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_seed_changes_ensemble(self):
        X, y = xor(n=200, seed=4)
        a = RandomForestClassifier(n_trees=5, seed=1).fit(X, y)
        b = RandomForestClassifier(n_trees=5, seed=2).fit(X, y)
        assert not np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_ensemble_beats_single_stump(self):
        """On noisy data a forest should beat one shallow tree."""
        rng = np.random.default_rng(5)
        X = rng.normal(0, 1, (600, 6))
        y = ((X[:, 0] + X[:, 1] + 0.5 * X[:, 2]) > 0).astype(int)
        noise = rng.random(600) < 0.1
        y_noisy = np.where(noise, 1 - y, y)
        X_test = rng.normal(0, 1, (400, 6))
        y_test = ((X_test[:, 0] + X_test[:, 1] + 0.5 * X_test[:, 2]) > 0).astype(int)

        stump = DecisionTreeClassifier(max_depth=2).fit(X, y_noisy)
        forest = RandomForestClassifier(n_trees=40, max_depth=6, seed=6).fit(
            X, y_noisy
        )
        stump_accuracy = np.mean(stump.predict(X_test) == y_test)
        forest_accuracy = np.mean(forest.predict(X_test) == y_test)
        assert forest_accuracy > stump_accuracy

    def test_max_features_validation(self):
        X, y = xor(n=50)
        with pytest.raises(ValueError):
            RandomForestClassifier(max_features=5).fit(X, y)
        with pytest.raises(ValueError):
            RandomForestClassifier(n_trees=0)

    def test_proba_of(self):
        X, y = xor(n=100)
        model = RandomForestClassifier(n_trees=5, seed=7).fit(X, y)
        assert model.proba_of(X, 1) == pytest.approx(
            model.predict_proba(X)[:, 1]
        )
        with pytest.raises(ValueError):
            model.proba_of(X, 9)

    def test_works_as_ad3_model(self):
        """The future-work hook: a forest inside AD3Detector."""
        from repro.core.detector import AD3Detector
        from repro.dataset.schema import TelemetryRecord
        from repro.geo import RoadType

        rng = np.random.default_rng(8)
        records = []
        for _ in range(300):
            normal = rng.random() < 0.6
            speed = rng.normal(160 if normal else 220, 10)
            records.append(
                TelemetryRecord(
                    car_id=1,
                    road_id=1,
                    accel_ms2=float(rng.normal(0, 0.5)),
                    speed_kmh=max(0.0, float(speed)),
                    hour=8,
                    day=4,
                    road_type=RoadType.MOTORWAY,
                    road_mean_speed_kmh=160.0,
                    label=1 if normal else 0,
                )
            )
        detector = AD3Detector(
            RoadType.MOTORWAY,
            model=RandomForestClassifier(n_trees=15, max_features=3, seed=9),
        ).fit(records)
        accuracy = np.mean(
            detector.predict(records) == np.array([r.label for r in records])
        )
        assert accuracy > 0.9
