"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.ml import LogisticRegression, NotFittedError
from repro.ml.base import EstimatorError


def blobs(n=300, separation=3.0, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(0, 1, (n, 2)), rng.normal(separation, 1, (n, 2))]
    )
    y = np.array([0] * n + [1] * n)
    return X, y


class TestLogisticRegression:
    def test_separable_blobs(self):
        X, y = blobs()
        model = LogisticRegression().fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.95

    def test_proba_rows_sum_to_one(self):
        X, y = blobs(n=100)
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.sum(axis=1) == pytest.approx(np.ones(len(X)))

    def test_proba_of_column(self):
        X, y = blobs(n=100)
        model = LogisticRegression().fit(X, y)
        assert model.proba_of(X, 1) == pytest.approx(model.predict_proba(X)[:, 1])
        with pytest.raises(ValueError):
            model.proba_of(X, 7)

    def test_unscaled_features_handled(self):
        """Speed (~150) and accel (~0.5) scales differ by 300x; the
        internal standardisation must cope."""
        rng = np.random.default_rng(1)
        speed = np.concatenate([rng.normal(160, 15, 200), rng.normal(220, 15, 200)])
        accel = rng.normal(0, 0.6, 400)
        X = np.column_stack([speed, accel])
        y = np.array([1] * 200 + [0] * 200)
        model = LogisticRegression().fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_multiclass_rejected(self):
        X = np.zeros((9, 2))
        X[3:6] += 1
        X[6:] += 2
        y = np.array([0] * 3 + [1] * 3 + [2] * 3)
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(X, y)

    def test_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_feature_mismatch(self):
        X, y = blobs(n=50)
        model = LogisticRegression().fit(X, y)
        with pytest.raises(EstimatorError):
            model.predict(np.zeros((2, 5)))

    def test_constant_feature_survives(self):
        rng = np.random.default_rng(2)
        X = np.column_stack([rng.normal(0, 1, 200), np.full(200, 3.0)])
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_explain_mentions_features(self):
        X, y = blobs(n=50)
        model = LogisticRegression().fit(X, y)
        text = model.explain(["speed", "accel"])
        assert "speed" in text and "accel" in text
        with pytest.raises(ValueError):
            model.explain(["just_one"])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(n_iterations=0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_informative_feature_gets_larger_weight(self):
        rng = np.random.default_rng(3)
        informative = np.concatenate(
            [rng.normal(-1, 0.5, 200), rng.normal(1, 0.5, 200)]
        )
        noise = rng.normal(0, 1, 400)
        X = np.column_stack([informative, noise])
        y = np.array([0] * 200 + [1] * 200)
        model = LogisticRegression().fit(X, y)
        assert abs(model.coef_[0]) > 3 * abs(model.coef_[1])
