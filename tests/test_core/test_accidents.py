"""Tests for the Nilsson potential-accident estimator (Eq. 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    expected_accidents,
    nilsson_accident_ratio,
    speed_deviation_delta,
)
from repro.dataset.schema import ABNORMAL, NORMAL, TelemetryRecord
from repro.geo import RoadType


def make_record(speed, road_mean=100.0):
    return TelemetryRecord(
        car_id=1,
        road_id=1,
        accel_ms2=0.0,
        speed_kmh=speed,
        hour=8,
        day=4,
        road_type=RoadType.MOTORWAY,
        road_mean_speed_kmh=road_mean,
    )


class TestNilssonRatio:
    def test_normal_speed_gives_one(self):
        assert nilsson_accident_ratio(100.0, 100.0) == pytest.approx(1.0)

    def test_speeding_reduces_ratio(self):
        # Eq. 2: driving 120 where normal is 100: (100/120)^2.
        assert nilsson_accident_ratio(100.0, 120.0) == pytest.approx(
            (100 / 120) ** 2
        )

    def test_slowing_mirrors(self):
        # Driving 80 where normal is 100: mirrored speed 120.
        assert nilsson_accident_ratio(100.0, 80.0) == pytest.approx(
            (100 / 120) ** 2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            nilsson_accident_ratio(0.0, 50.0)
        with pytest.raises(ValueError):
            nilsson_accident_ratio(100.0, -1.0)

    @given(st.floats(min_value=1.0, max_value=300.0))
    @settings(max_examples=50, deadline=None)
    def test_ratio_in_unit_interval(self, speed):
        ratio = nilsson_accident_ratio(100.0, speed)
        assert 0.0 < ratio <= 1.0


class TestDelta:
    def test_zero_at_normal_speed(self):
        assert speed_deviation_delta(100.0, 100.0) == pytest.approx(0.0)

    def test_grows_with_deviation(self):
        mild = speed_deviation_delta(100.0, 110.0)
        severe = speed_deviation_delta(100.0, 160.0)
        assert 0.0 < mild < severe < 1.0

    def test_symmetric_tendency(self):
        """Speeding by X and slowing by X give the same delta (the
        paper's mirrored construction)."""
        assert speed_deviation_delta(100.0, 130.0) == pytest.approx(
            speed_deviation_delta(100.0, 70.0)
        )

    @given(st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=50, deadline=None)
    def test_delta_bounds(self, speed):
        delta = speed_deviation_delta(100.0, speed)
        assert 0.0 <= delta < 1.0


class TestExpectedAccidents:
    def test_no_false_negatives_means_zero(self):
        records = [make_record(160.0), make_record(40.0)]
        y_true = [ABNORMAL, ABNORMAL]
        y_pred = [ABNORMAL, ABNORMAL]  # all detected
        estimate = expected_accidents(records, y_true, y_pred)
        assert estimate.expected_accidents == 0.0
        assert estimate.n_false_negatives == 0
        assert estimate.n_abnormal == 2
        assert estimate.fn_fraction == 0.0

    def test_each_fn_contributes_its_delta(self):
        records = [make_record(160.0), make_record(40.0), make_record(100.0)]
        y_true = [ABNORMAL, ABNORMAL, NORMAL]
        y_pred = [NORMAL, ABNORMAL, NORMAL]  # first one missed
        estimate = expected_accidents(records, y_true, y_pred)
        assert estimate.n_false_negatives == 1
        assert estimate.expected_accidents == pytest.approx(
            speed_deviation_delta(100.0, 160.0)
        )
        assert estimate.mean_delta_of_fn == pytest.approx(
            speed_deviation_delta(100.0, 160.0)
        )

    def test_severe_misses_cost_more(self):
        mild = expected_accidents(
            [make_record(115.0)], [ABNORMAL], [NORMAL]
        ).expected_accidents
        severe = expected_accidents(
            [make_record(190.0)], [ABNORMAL], [NORMAL]
        ).expected_accidents
        assert severe > mild

    def test_normal_records_never_contribute(self):
        records = [make_record(100.0)] * 5
        estimate = expected_accidents(
            records, [NORMAL] * 5, [ABNORMAL] * 5
        )
        assert estimate.expected_accidents == 0.0
        assert estimate.n_abnormal == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expected_accidents([make_record(100.0)], [0, 1], [0])

    def test_better_detector_fewer_expected_accidents(self):
        """The Table IV mechanism: lower FN rate => lower E(Lambda)."""
        rng = np.random.default_rng(0)
        speeds = rng.uniform(130.0, 200.0, 200)
        records = [make_record(float(s)) for s in speeds]
        y_true = [ABNORMAL] * 200
        good = [ABNORMAL if rng.random() < 0.9 else NORMAL for _ in range(200)]
        bad = [ABNORMAL if rng.random() < 0.5 else NORMAL for _ in range(200)]
        good_estimate = expected_accidents(records, y_true, good)
        bad_estimate = expected_accidents(records, y_true, bad)
        assert good_estimate.expected_accidents < bad_estimate.expected_accidents
