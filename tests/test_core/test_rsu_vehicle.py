"""Tests for RSU and vehicle nodes (unit level)."""

import numpy as np
import pytest

from repro.core import CO_DATA, IN_DATA, OUT_DATA, RsuConfig, RsuNode
from repro.core.detector import AD3Detector
from repro.core.features import PredictionSummary
from repro.core.vehicle import VehicleNode
from repro.geo import RoadType
from repro.microbatch import ProcessingModel
from repro.net.dsrc import DsrcChannel
from repro.net.link import WiredLink
from repro.simkernel import Simulator
from repro.streaming import Consumer, JsonSerde


@pytest.fixture
def motorway_ad3(motorway_records):
    train, _ = motorway_records
    return AD3Detector(RoadType.MOTORWAY).fit(train)


def build_rsu(sim, detector, name="rsu-test"):
    return RsuNode(
        sim,
        name,
        detector,
        config=RsuConfig(
            processing_model=ProcessingModel(jitter_fraction=0.0)
        ),
    )


class TestRsuNode:
    def test_creates_paper_topics(self, motorway_ad3):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        assert rsu.broker.topic_names() == sorted([IN_DATA, OUT_DATA, CO_DATA])
        for name in (IN_DATA, OUT_DATA, CO_DATA):
            assert rsu.broker.topic(name).num_partitions == 3

    def test_detects_and_warns(self, motorway_ad3, motorway_records):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        channel = DsrcChannel(sim, rng=np.random.default_rng(0))
        _, test = motorway_records
        # Replay a stream with known abnormal records so warnings fire.
        abnormal = [r for r in test if r.label == 0][:25]
        normal = [r for r in test if r.label == 1][:25]
        vehicle = VehicleNode(
            sim, 1, abnormal + normal, rsu, channel, rng=np.random.default_rng(1)
        )
        rsu.start(until=3.0)
        vehicle.start(until=3.0)
        sim.run_until(3.5)
        assert rsu.events
        assert rsu.warnings_issued > 0
        assert vehicle.stats.warnings_received > 0
        # Latency ordering per event: generated <= arrived <= detected.
        for event in rsu.events:
            assert event.generated_at <= event.arrived_at <= event.detected_at

    def test_handover_transfers_summary(self, motorway_ad3, motorway_records):
        sim = Simulator()
        source = build_rsu(sim, motorway_ad3, "rsu-a")
        target = build_rsu(sim, motorway_ad3, "rsu-b")
        source.connect(target, WiredLink(sim))
        channel = DsrcChannel(sim, rng=np.random.default_rng(0))
        _, test = motorway_records
        vehicle = VehicleNode(
            sim, 42, test[:50], source, channel, rng=np.random.default_rng(2)
        )
        source.start(until=2.0)
        target.start(until=2.0)
        vehicle.start(until=2.0)
        sim.run_until(1.0)
        assert source.handover(42, "rsu-b") is True
        # History handed off: immediately after, nothing left to send
        # (the vehicle keeps beaconing, so it would repopulate later).
        assert source.build_summary(42) is None
        sim.run_until(2.5)
        assert source.summaries_sent == 1
        assert target.summaries_received == 1
        assert 42 in target.summaries

    def test_handover_to_unconnected_rsu_raises(self, motorway_ad3):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        with pytest.raises(KeyError):
            rsu.handover(1, "rsu-nowhere")

    def test_duplicate_connect_rejected(self, motorway_ad3):
        sim = Simulator()
        a = build_rsu(sim, motorway_ad3, "a")
        b = build_rsu(sim, motorway_ad3, "b")
        a.connect(b, WiredLink(sim))
        with pytest.raises(ValueError):
            a.connect(b, WiredLink(sim))

    def test_summary_merge_on_repeated_co_data(self, motorway_ad3):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        serde = JsonSerde()
        for prob, n in ((0.9, 10), (0.1, 30)):
            summary = PredictionSummary(
                car_id=5,
                mean_normal_prob=prob,
                n_predictions=n,
                last_class=1,
                from_road_id=2,
                timestamp=sim.now,
            )
            rsu.broker.produce(CO_DATA, serde.serialize(summary.to_payload()))
        rsu._drain_co_data()
        merged = rsu.summaries[5]
        assert merged.n_predictions == 40
        assert merged.mean_normal_prob == pytest.approx(0.3)

    def test_bandwidth_accounting(self, motorway_ad3, motorway_records):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        channel = DsrcChannel(sim, rng=np.random.default_rng(0))
        _, test = motorway_records
        vehicle = VehicleNode(
            sim, 1, test[:50], rsu, channel, rng=np.random.default_rng(3)
        )
        rsu.start(until=2.0)
        vehicle.start(until=2.0)
        sim.run_until(2.2)
        bandwidth = rsu.bandwidth_in_bps(2.0)
        # One vehicle at 10 Hz with ~230 B packets: 15-25 Kb/s.
        assert 8_000 < bandwidth < 40_000
        with pytest.raises(ValueError):
            rsu.bandwidth_in_bps(0.0)


class TestVehicleNode:
    def test_transmits_at_update_rate(self, motorway_ad3, motorway_records):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        channel = DsrcChannel(sim, rng=np.random.default_rng(0))
        _, test = motorway_records
        vehicle = VehicleNode(
            sim,
            1,
            test[:20],
            rsu,
            channel,
            update_rate_hz=10.0,
            rng=np.random.default_rng(4),
        )
        vehicle.start(until=2.0)
        sim.run_until(2.2)
        assert vehicle.stats.records_sent == pytest.approx(20, abs=2)

    def test_validation(self, motorway_ad3, motorway_records):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        channel = DsrcChannel(sim)
        _, test = motorway_records
        with pytest.raises(ValueError):
            VehicleNode(sim, 1, test[:5], rsu, channel, update_rate_hz=0.0)
        with pytest.raises(ValueError):
            VehicleNode(sim, 1, test[:5], rsu, channel, poll_interval_s=0.0)

    def test_double_start_rejected(self, motorway_ad3, motorway_records):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        channel = DsrcChannel(sim)
        _, test = motorway_records
        vehicle = VehicleNode(sim, 1, test[:5], rsu, channel)
        vehicle.start()
        with pytest.raises(RuntimeError):
            vehicle.start()

    def test_set_records_validates(self, motorway_ad3, motorway_records):
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        channel = DsrcChannel(sim)
        _, test = motorway_records
        vehicle = VehicleNode(sim, 1, test[:5], rsu, channel)
        with pytest.raises(ValueError):
            vehicle.set_records([])

    def test_outgoing_identity_is_vehicle(self, motorway_ad3, motorway_records):
        """Replayed records must carry the vehicle's car id, not the
        dataset car id (regression test for the handover-keying bug)."""
        sim = Simulator()
        rsu = build_rsu(sim, motorway_ad3)
        channel = DsrcChannel(sim, rng=np.random.default_rng(0))
        _, test = motorway_records
        vehicle = VehicleNode(
            sim, 777, test[:20], rsu, channel, rng=np.random.default_rng(5)
        )
        vehicle.start(until=0.5)
        sim.run_until(0.6)
        consumer = Consumer(rsu.broker)
        consumer.subscribe([IN_DATA])
        cars = {r.value["data"]["car"] for r in consumer.poll()}
        assert cars == {777}
