"""Tests for RSU failure and vehicle failover."""

import pytest

from repro.core import ScenarioSpec, TestbedScenario
from repro.core.system import default_training_dataset
from repro.geo import RoadType


@pytest.fixture(scope="module")
def training_dataset():
    return default_training_dataset(seed=11, n_cars=60)


class TestRsuFailure:
    def test_failed_rsu_stops_detecting(self, training_dataset):
        config = ScenarioSpec(n_vehicles=8, duration_s=3.0, seed=5)
        scenario = TestbedScenario.single_rsu(config, dataset=training_dataset)
        rsu = scenario.rsus["rsu-motorway"]
        scenario.sim.at(1.5, rsu.fail)
        scenario.run()
        assert rsu.failed
        # No detections after the failure instant.
        assert all(e.detected_at <= 1.6 for e in rsu.events)

    def test_failed_rsu_refuses_handover(self, training_dataset):
        config = ScenarioSpec(n_vehicles=8, duration_s=2.0, seed=5)
        scenario = TestbedScenario.corridor(
            config, motorways=2, dataset=training_dataset
        )
        rsu = scenario.rsus["rsu-mw-1"]
        scenario.sim.run_until(1.0)
        rsu.fail()
        # Handover silently yields False (history is lost with the node).
        assert rsu.handover(1, "rsu-mw-link") is False

    def test_failover_rehomes_vehicles(self, training_dataset):
        config = ScenarioSpec(n_vehicles=8, duration_s=4.0, seed=5)
        scenario = TestbedScenario.corridor(
            config, motorways=2, dataset=training_dataset
        )
        scenario.schedule_failover("rsu-mw-1", "rsu-mw-2", at_s=2.0)
        result = scenario.run()

        failed = scenario.rsus["rsu-mw-1"]
        fallback = scenario.rsus["rsu-mw-2"]
        assert failed.failed
        # The fallback RSU processed roughly double traffic after t=2.
        assert (
            result.rsu_metrics["rsu-mw-2"].n_events
            > result.rsu_metrics["rsu-mw-1"].n_events
        )
        # All original rsu-mw-1 vehicles now point at rsu-mw-2.
        assert all(v.rsu is not failed for v in scenario.vehicles)
        # Detection continued: fallback kept issuing events past t=2.
        assert any(e.detected_at > 3.0 for e in fallback.events)

    def test_failover_to_self_rejected(self, training_dataset):
        config = ScenarioSpec(n_vehicles=4, duration_s=1.0, seed=5)
        scenario = TestbedScenario.corridor(
            config, motorways=2, dataset=training_dataset
        )
        with pytest.raises(ValueError):
            scenario.schedule_failover("rsu-mw-1", "rsu-mw-1", at_s=0.5)

    def test_warnings_continue_after_failover(self, training_dataset):
        """End-to-end resilience: drivers keep receiving warnings."""
        config = ScenarioSpec(n_vehicles=16, duration_s=4.0, seed=5)
        scenario = TestbedScenario.corridor(
            config, motorways=2, dataset=training_dataset
        )
        scenario.schedule_failover("rsu-mw-1", "rsu-mw-2", at_s=2.0)
        scenario.run()
        late_warnings = 0
        for vehicle in scenario.vehicles:
            late_warnings += sum(
                1
                for latency, received in zip(
                    vehicle.stats.e2e_latencies_s,
                    vehicle.stats.dissemination_latencies_s,
                )
                if latency > 0  # any received warning counts
            )
        assert late_warnings > 0
