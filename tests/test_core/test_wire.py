"""Schema-aware serdes for the three topics and the batch decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import TelemetryBlock
from repro.core.features import (
    CO_DATA,
    IN_DATA,
    OUT_DATA,
    PredictionSummary,
    WarningMessage,
    record_to_payload,
)
from repro.core.collab import SummaryRxCache
from repro.core.wire import (
    SERDE_PROFILES,
    SUMMARY_DELTA,
    SUMMARY_FULL,
    TelemetryStructSerde,
    apply_summary_delta,
    decode_summary_frame,
    decode_telemetry_block,
    encode_summary_delta,
    encode_summary_full,
    quantize_summary,
    summary_payload_from_units,
    summary_struct_serde,
    topic_serdes,
    warning_struct_serde,
)
from repro.dataset.schema import AnomalyKind, TelemetryRecord
from repro.geo.roadnet import RoadType
from repro.streaming.serde import JsonSerde, STRUCT_MAGIC, SerdeError
from tests.strategies import frame_epochs, summary_dict


def _record(car=7, label=1, kind=AnomalyKind.NONE):
    return TelemetryRecord(
        car_id=car,
        road_id=12,
        accel_ms2=-3.456,
        speed_kmh=123.45,
        hour=17,
        day=3,
        road_type=RoadType.MOTORWAY,
        road_mean_speed_kmh=110.5,
        timestamp=42.125,
        anomaly_kind=kind,
        label=label,
    )


def _envelope(record, generated_at=1.5, arrived_at=1.625):
    return {
        "data": record_to_payload(record),
        "generated_at": generated_at,
        "arrived_at": arrived_at,
    }


class TestTelemetryStructSerde:
    def test_round_trip(self):
        serde = TelemetryStructSerde()
        envelope = _envelope(_record())
        payload = serde.serialize(envelope)
        assert payload[0] == STRUCT_MAGIC
        assert len(payload) == serde.wire_size == 71
        assert serde.deserialize(payload) == envelope

    def test_round_trip_all_road_types_and_kinds(self):
        serde = TelemetryStructSerde()
        for road_type in RoadType:
            for kind in AnomalyKind:
                record = TelemetryRecord(
                    car_id=1, road_id=2, accel_ms2=0.0, speed_kmh=50.0,
                    hour=0, day=1, road_type=road_type,
                    road_mean_speed_kmh=45.0, timestamp=0.0,
                    anomaly_kind=kind, label=0,
                )
                envelope = _envelope(record)
                assert serde.deserialize(serde.serialize(envelope)) == envelope

    def test_none_label_and_arrival_round_trip(self):
        serde = TelemetryStructSerde()
        envelope = _envelope(_record(label=None), arrived_at=None)
        out = serde.deserialize(serde.serialize(envelope))
        assert out["data"]["lbl"] is None
        assert out["arrived_at"] is None
        assert out == envelope

    def test_much_smaller_than_json(self):
        envelope = _envelope(_record())
        struct_size = len(TelemetryStructSerde().serialize(envelope))
        json_size = len(JsonSerde().serialize(envelope))
        assert struct_size * 2 <= json_size

    def test_foreign_schema_falls_back_to_json(self):
        serde = TelemetryStructSerde()
        for value in [
            {"not": "telemetry"},
            {"data": {"car": 1}, "generated_at": 0.0, "arrived_at": None},
            [1, 2, 3],
        ]:
            payload = serde.serialize(value)
            assert payload[0] != STRUCT_MAGIC
            assert serde.deserialize(payload) == value

    def test_json_payload_interop(self):
        envelope = _envelope(_record())
        assert (
            TelemetryStructSerde().deserialize(JsonSerde().serialize(envelope))
            == envelope
        )

    def test_truncated_payload_raises(self):
        serde = TelemetryStructSerde()
        payload = serde.serialize(_envelope(_record()))
        with pytest.raises(SerdeError):
            serde.deserialize(payload[:-1])

    def test_bad_version_raises(self):
        serde = TelemetryStructSerde()
        payload = bytearray(serde.serialize(_envelope(_record())))
        payload[1] = 42
        with pytest.raises(SerdeError, match="version"):
            serde.deserialize(bytes(payload))


class TestTopicSerdes:
    def test_profiles(self):
        assert set(SERDE_PROFILES) == {"json", "struct"}
        assert topic_serdes("json") == {}
        struct_map = topic_serdes("struct")
        assert set(struct_map) == {IN_DATA, OUT_DATA, CO_DATA}
        with pytest.raises(ValueError, match="profile"):
            topic_serdes("protobuf")

    def test_warning_round_trip(self):
        serde = warning_struct_serde()
        warning = WarningMessage(
            car_id=9, road_id=4, detected_at=3.5, speed_kmh=160.0
        )
        out = dict(warning.to_payload())
        out["generated_at"] = 3.25
        decoded = serde.deserialize(serde.serialize(out))
        assert decoded == out
        assert WarningMessage.from_payload(decoded) == warning

    def test_summary_round_trip(self):
        serde = summary_struct_serde()
        summary = PredictionSummary(
            car_id=5,
            mean_normal_prob=0.875,
            n_predictions=40,
            last_class=1,
            from_road_id=2,
            timestamp=9.5,
        )
        decoded = serde.deserialize(serde.serialize(summary.to_payload()))
        assert PredictionSummary.from_payload(decoded) == summary


class TestDecodeTelemetryBlock:
    def _payloads(self, n=64):
        return [
            _envelope(_record(car=i % 7, label=i % 2), generated_at=0.1 * i,
                      arrived_at=0.1 * i + 0.01)
            for i in range(n)
        ]

    def test_fast_path_equals_slow_path(self):
        serde = TelemetryStructSerde()
        envelopes = self._payloads()
        raw = [serde.serialize(e) for e in envelopes]
        fast = decode_telemetry_block(raw, serde=serde)
        slow = TelemetryBlock.from_payloads(envelopes)
        for column in TelemetryBlock.__slots__:
            assert np.array_equal(
                getattr(fast, column), getattr(slow, column)
            ), column

    def test_json_payloads_decode(self):
        serde = JsonSerde()
        envelopes = self._payloads(8)
        raw = [serde.serialize(e) for e in envelopes]
        block = decode_telemetry_block(raw, serde=serde)
        assert len(block) == 8
        assert block.car_id.tolist() == [e["data"]["car"] for e in envelopes]

    def test_mixed_payloads_decode_via_serde(self):
        struct_serde = TelemetryStructSerde()
        envelopes = self._payloads(6)
        raw = [struct_serde.serialize(e) for e in envelopes[:3]]
        raw += [JsonSerde().serialize(e) for e in envelopes[3:]]
        block = decode_telemetry_block(raw, serde=struct_serde)
        assert len(block) == 6
        assert block.speed_kmh.tolist() == [
            e["data"]["spd"] for e in envelopes
        ]

    def test_empty(self):
        assert len(decode_telemetry_block([])) == 0


#: Units whose pairwise deltas span nearly the full signed-64-bit range
#: the ZigZag varint must carry.
_extreme_units = st.integers(min_value=-(2**62), max_value=2**62)


class TestSummaryFrameProperties:
    """Hypothesis round-trips for the PR-8 summary-frame codec."""

    @given(body=st.binary(max_size=64), epoch=frame_epochs)
    @settings(max_examples=100, deadline=None)
    def test_full_frame_round_trips_any_body(self, body, epoch):
        """A full frame is pure framing: the body must come back
        bit-exact for any serde output, and the epoch intact."""
        frame = decode_summary_frame(encode_summary_full(body, epoch))
        assert frame.kind == SUMMARY_FULL
        assert frame.epoch == epoch
        assert frame.body == body

    @given(old=summary_dict, new=summary_dict, epoch=frame_epochs)
    @settings(max_examples=100, deadline=None)
    def test_delta_round_trips_any_payload_pair(self, old, new, epoch):
        new = {**new, "car": old["car"]}
        base = quantize_summary(old)
        target = quantize_summary(new)
        frame = decode_summary_frame(encode_summary_delta(epoch, base, target))
        assert frame.kind == SUMMARY_DELTA
        assert frame.epoch == epoch
        assert frame.car == old["car"]
        assert apply_summary_delta(base, frame.deltas) == target
        assert summary_payload_from_units(
            apply_summary_delta(base, frame.deltas)
        ) == summary_payload_from_units(target)

    @given(
        base=st.tuples(*([_extreme_units] * 5)),
        new=st.tuples(*([_extreme_units] * 5)),
        car=st.integers(min_value=-(2**63), max_value=2**63 - 1),
        epoch=frame_epochs,
    )
    @settings(max_examples=100, deadline=None)
    def test_extreme_zigzag_varint_deltas_survive(self, base, new, car, epoch):
        """Field deltas near ±2^63 (and an i64 boundary car id) must
        round-trip through the ZigZag varint encoding."""
        base_units = (car,) + base
        new_units = (car,) + new
        frame = decode_summary_frame(
            encode_summary_delta(epoch, base_units, new_units)
        )
        assert frame.car == car
        assert apply_summary_delta(base_units, frame.deltas) == new_units

    @given(
        old=summary_dict,
        new=summary_dict,
        epoch=frame_epochs,
        stale_epoch=frame_epochs,
    )
    @settings(max_examples=60, deadline=None)
    def test_epoch_mismatch_makes_delta_stale(
        self, old, new, epoch, stale_epoch
    ):
        """The receiver cache must drop a delta whose epoch does not
        match the baseline's, and resolve it once the epochs agree."""
        # The cache resolves into PredictionSummary, which demands at
        # least one prediction.
        old = {**old, "n": max(1, old["n"])}
        new = {**new, "car": old["car"], "n": max(1, new["n"])}
        serde = JsonSerde()
        cache = SummaryRxCache(serde)
        cache.resolve(
            decode_summary_frame(
                encode_summary_full(serde.serialize(old), epoch)
            )
        )
        delta = encode_summary_delta(
            stale_epoch, quantize_summary(old), quantize_summary(new)
        )
        resolved = cache.resolve(decode_summary_frame(delta))
        if stale_epoch != epoch:
            assert resolved is None
        else:
            assert resolved is not None
            assert resolved.to_payload() == summary_payload_from_units(
                quantize_summary(new)
            )
