"""Tests for online profiles, labelling, and the online detector."""

import numpy as np
import pytest

from repro.core.online import OnlineAD3Detector, OnlineLabeler, RollingProfile
from repro.dataset.schema import ABNORMAL, NORMAL, TelemetryRecord
from repro.geo import RoadType


def make_record(speed, accel=0.0, hour=8):
    return TelemetryRecord(
        car_id=1,
        road_id=1,
        accel_ms2=accel,
        speed_kmh=speed,
        hour=hour,
        day=4,
        road_type=RoadType.MOTORWAY,
        road_mean_speed_kmh=160.0,
    )


class TestRollingProfile:
    def test_tracks_stationary_mean(self):
        rng = np.random.default_rng(0)
        profile = RollingProfile(half_life=100)
        for value in rng.normal(160, 15, 2000):
            profile.update(float(value))
        assert profile.mean == pytest.approx(160.0, abs=5.0)
        assert profile.std == pytest.approx(15.0, rel=0.3)

    def test_forgets_old_regime(self):
        rng = np.random.default_rng(1)
        profile = RollingProfile(half_life=100)
        for value in rng.normal(160, 10, 1000):
            profile.update(float(value))
        for value in rng.normal(100, 10, 1000):
            profile.update(float(value))
        # After 10 half-lives the old regime's weight is ~1/1000.
        assert profile.mean == pytest.approx(100.0, abs=5.0)

    def test_empty_profile_raises(self):
        with pytest.raises(RuntimeError):
            RollingProfile().mean

    def test_half_life_validation(self):
        with pytest.raises(ValueError):
            RollingProfile(half_life=0.0)

    def test_ready_needs_data_and_variance(self):
        profile = RollingProfile()
        assert not profile.ready
        for _ in range(20):
            profile.update(5.0)
        assert not profile.ready  # zero variance
        profile.update(6.0)
        assert profile.ready


class TestOnlineLabeler:
    def warm_labeler(self, mu=160.0, sigma=15.0, n=1000, seed=2):
        rng = np.random.default_rng(seed)
        labeler = OnlineLabeler(half_life=200)
        for speed, accel in zip(
            rng.normal(mu, sigma, n), rng.normal(0, 0.6, n)
        ):
            labeler.observe(make_record(max(0.0, float(speed)), float(accel)))
        return labeler

    def test_warmup_returns_none(self):
        labeler = OnlineLabeler()
        assert labeler.label(make_record(160.0)) is None

    def test_labels_against_current_band(self):
        labeler = self.warm_labeler()
        assert labeler.label(make_record(160.0)) == NORMAL
        assert labeler.label(make_record(240.0)) == ABNORMAL
        assert labeler.label(make_record(80.0)) == ABNORMAL

    def test_band_follows_drift(self):
        labeler = self.warm_labeler(mu=160.0)
        lo_before, hi_before = labeler.speed_band()
        rng = np.random.default_rng(3)
        for speed in rng.normal(100.0, 10.0, 3000):
            labeler.observe(make_record(max(0.0, float(speed))))
        lo_after, hi_after = labeler.speed_band()
        assert hi_after < hi_before
        # 160 was normal before the drift, abnormal after.
        assert labeler.label(make_record(160.0)) == ABNORMAL

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineLabeler(n_sigma=0.0)


class TestOnlineAD3Detector:
    def stream(self, mu, n, seed):
        rng = np.random.default_rng(seed)
        records = []
        for speed, accel in zip(
            rng.normal(mu, 15.0, n), rng.normal(0, 0.6, n)
        ):
            records.append(make_record(max(0.0, float(speed)), float(accel)))
        return records

    def test_becomes_ready_and_predicts(self):
        detector = OnlineAD3Detector(RoadType.MOTORWAY, refit_every=100)
        detector.observe(self.stream(160.0, 1500, seed=4))
        assert detector.ready
        test = self.stream(160.0, 200, seed=5)
        predictions = detector.predict(test)
        assert set(np.unique(predictions)) <= {NORMAL, ABNORMAL}
        probs = detector.predict_normal_proba(test)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_predict_before_ready_raises(self):
        detector = OnlineAD3Detector(RoadType.MOTORWAY)
        with pytest.raises(RuntimeError):
            detector.predict([make_record(100.0)])

    def test_wrong_road_type_rejected(self):
        detector = OnlineAD3Detector(RoadType.MOTORWAY_LINK)
        with pytest.raises(ValueError):
            detector.observe([make_record(100.0)])

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            OnlineAD3Detector(RoadType.MOTORWAY, mode="telepathy")

    def test_window_mode_adapts_to_drift(self):
        detector = OnlineAD3Detector(
            RoadType.MOTORWAY, mode="window", window=2000, refit_every=200
        )
        detector.observe(self.stream(160.0, 2500, seed=6))
        detector.observe(self.stream(100.0, 4000, seed=7))
        # Post-drift, a 160 km/h record is abnormal; 100 km/h normal.
        test_fast = [make_record(160.0) for _ in range(50)]
        test_mid = [make_record(100.0) for _ in range(50)]
        assert np.mean(detector.predict(test_fast) == ABNORMAL) > 0.8
        assert np.mean(detector.predict(test_mid) == NORMAL) > 0.8

    def test_cumulative_mode_learns(self):
        detector = OnlineAD3Detector(RoadType.MOTORWAY, mode="cumulative")
        detector.observe(self.stream(160.0, 2000, seed=8))
        assert detector.ready
        accuracy = np.mean(
            detector.predict([make_record(160.0)] * 20) == NORMAL
        )
        assert accuracy > 0.8

    def test_empty_observe_and_predict(self):
        detector = OnlineAD3Detector(RoadType.MOTORWAY)
        detector.observe([])
        assert detector.predict([]).size == 0

    def test_detect_during_warmup_is_all_normal(self):
        detector = OnlineAD3Detector(RoadType.MOTORWAY)
        classes, probs = detector.detect([make_record(500.0)] * 3)
        assert classes.tolist() == [NORMAL] * 3
        assert probs.tolist() == [1.0] * 3

    def test_rsu_with_online_detector_warms_up_and_detects(self):
        """End-to-end: an RSU running an online detector issues no
        warnings during warm-up, then starts detecting."""
        from repro.core import RsuConfig, RsuNode
        from repro.core.vehicle import VehicleNode
        from repro.microbatch import ProcessingModel
        from repro.net.dsrc import DsrcChannel
        from repro.simkernel import Simulator

        detector = OnlineAD3Detector(
            RoadType.MOTORWAY, mode="window", window=2000, refit_every=100,
            half_life=100,
        )
        sim = Simulator()
        rsu = RsuNode(
            sim,
            "rsu-online",
            detector,
            config=RsuConfig(
                processing_model=ProcessingModel(jitter_fraction=0.0)
            ),
        )
        channel = DsrcChannel(sim, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        stream = [
            make_record(max(0.0, float(s)), float(a))
            for s, a in zip(rng.normal(160, 15, 400), rng.normal(0, 0.6, 400))
        ]
        # 8 vehicles at 10 Hz feed ~80 records/s; warm-up needs ~100+.
        vehicles = [
            VehicleNode(
                sim, i + 1, stream[i::8], rsu, channel,
                rng=np.random.default_rng(10 + i),
            )
            for i in range(8)
        ]
        rsu.start(until=20.0)
        for vehicle in vehicles:
            vehicle.start(until=20.0)
        sim.run_until(20.5)
        assert detector.ready
        assert detector.observations > 100
        # Warnings only fire once the model came online.
        assert rsu.warnings_issued > 0
        first_warning = min(
            (e.detected_at for e in rsu.events if e.abnormal),
            default=None,
        )
        assert first_warning is not None and first_warning > 0.5
