"""Tests for the cloud-offloaded detection baseline."""

import numpy as np
import pytest

from repro.core import ScenarioSpec, TestbedScenario
from repro.core.cloud import CloudProfile, CloudRelayRsu
from repro.core.detector import AD3Detector
from repro.core.system import default_training_dataset
from repro.core.vehicle import VehicleNode
from repro.geo import RoadType
from repro.net.dsrc import DsrcChannel
from repro.simkernel import Simulator


@pytest.fixture(scope="module")
def training_dataset():
    return default_training_dataset(seed=11, n_cars=50)


class TestCloudProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            CloudProfile(uplink_latency_s=-1.0)
        with pytest.raises(ValueError):
            CloudProfile(processing_base_s=-0.1)


class TestCloudRelayRsu:
    def test_detection_delayed_by_round_trip(self, training_dataset):
        sim = Simulator()
        motorway = training_dataset.by_road_type(RoadType.MOTORWAY)
        detector = AD3Detector(RoadType.MOTORWAY).fit(motorway)
        rsu = CloudRelayRsu(
            sim,
            "cloud-rsu",
            detector,
            cloud=CloudProfile(jitter_fraction=0.0),
        )
        channel = DsrcChannel(sim, rng=np.random.default_rng(0))
        vehicle = VehicleNode(
            sim, 1, motorway[:30], rsu, channel, rng=np.random.default_rng(1)
        )
        rsu.start(until=2.0)
        vehicle.start(until=2.0)
        sim.run_until(3.0)
        assert rsu.batches_offloaded > 0
        assert rsu.events
        # Every detection waited at least the WAN round trip.
        for event in rsu.events:
            assert event.detected_at - event.arrived_at >= 0.24

    def test_scenario_latency_in_paper_regime(self, training_dataset):
        config = ScenarioSpec(n_vehicles=16, duration_s=3.0, seed=7)
        result = TestbedScenario.single_rsu_cloud(
            config, dataset=training_dataset
        ).run()
        assert result.mean_e2e_ms() > 250.0

    def test_faster_cloud_is_faster(self, training_dataset):
        def run(profile):
            config = ScenarioSpec(n_vehicles=8, duration_s=2.0, seed=7)
            return (
                TestbedScenario.single_rsu_cloud(
                    config, dataset=training_dataset, cloud=profile
                )
                .run()
                .mean_e2e_ms()
            )

        near = run(CloudProfile(uplink_latency_s=0.02, downlink_latency_s=0.02))
        far = run(CloudProfile(uplink_latency_s=0.2, downlink_latency_s=0.2))
        assert near < far
