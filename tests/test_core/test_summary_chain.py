"""Tests for multi-hop summary chaining (Sec. I: "the former RSU
passes a prediction summary to the next, the process which is carried
on")."""

import numpy as np
import pytest

from repro.core import RsuConfig, RsuNode
from repro.core.detector import AD3Detector
from repro.core.vehicle import VehicleNode
from repro.geo import RoadType
from repro.microbatch import ProcessingModel
from repro.net.dsrc import DsrcChannel
from repro.net.link import WiredLink
from repro.simkernel import Simulator


@pytest.fixture
def chain(motorway_records):
    """Three RSUs in a line A -> B -> C with one vehicle on A."""
    train, test = motorway_records
    detector = AD3Detector(RoadType.MOTORWAY).fit(train)
    sim = Simulator()
    config = RsuConfig(processing_model=ProcessingModel(jitter_fraction=0.0))
    nodes = {
        name: RsuNode(sim, name, detector, config=config)
        for name in ("rsu-a", "rsu-b", "rsu-c")
    }
    nodes["rsu-a"].connect(nodes["rsu-b"], WiredLink(sim))
    nodes["rsu-b"].connect(nodes["rsu-c"], WiredLink(sim))
    channel = DsrcChannel(sim, rng=np.random.default_rng(0))
    vehicle = VehicleNode(
        sim, 7, test[:60], nodes["rsu-a"], channel,
        rng=np.random.default_rng(1),
    )
    return sim, nodes, vehicle, channel


class TestSummaryChain:
    def test_history_accumulates_across_hops(self, chain):
        sim, nodes, vehicle, channel = chain
        for node in nodes.values():
            node.start(until=4.0)
        vehicle.start(until=4.0)

        # A serves the car for 1.5 s, then hands over to B.
        sim.run_until(1.5)
        n_at_a = len(nodes["rsu-a"]._history[7])
        assert nodes["rsu-a"].handover(7, "rsu-b")
        vehicle.migrate(nodes["rsu-b"], channel)

        # B serves for another 1.5 s, then hands over to C.
        sim.run_until(3.0)
        n_at_b = len(nodes["rsu-b"]._history[7])
        assert n_at_b > 0
        assert nodes["rsu-b"].handover(7, "rsu-c")
        sim.run_until(3.5)

        summary = nodes["rsu-c"].summaries[7]
        # The carried-on summary merges A's and B's prediction counts.
        assert summary.n_predictions == n_at_a + n_at_b
        assert 0.0 <= summary.mean_normal_prob <= 1.0

    def test_forwarding_clears_inherited_summary(self, chain):
        sim, nodes, vehicle, channel = chain
        for node in nodes.values():
            node.start(until=4.0)
        vehicle.start(until=4.0)
        sim.run_until(1.0)
        nodes["rsu-a"].handover(7, "rsu-b")
        vehicle.migrate(nodes["rsu-b"], channel)
        sim.run_until(2.0)
        nodes["rsu-b"].handover(7, "rsu-c")
        # B forwarded everything: nothing remains to forward twice.
        assert 7 not in nodes["rsu-b"].summaries
        assert nodes["rsu-b"].build_summary(7) is None

    def test_inherited_summary_forwarded_even_without_local_history(
        self, chain
    ):
        """A car that crosses B without transmitting still has its A
        summary carried on to C."""
        sim, nodes, vehicle, channel = chain
        for node in nodes.values():
            node.start(until=4.0)
        vehicle.start(until=4.0)
        sim.run_until(1.0)
        nodes["rsu-a"].handover(7, "rsu-b")
        vehicle.stop()  # radio silence while crossing B
        sim.run_until(2.0)
        assert nodes["rsu-b"].handover(7, "rsu-c") is True
        sim.run_until(2.5)
        assert 7 in nodes["rsu-c"].summaries
