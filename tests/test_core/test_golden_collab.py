"""Golden equivalence: a disabled collaboration plane changes nothing.

The bandwidth-adaptive CO-DATA plane (:mod:`repro.core.collab`) is
opt-in: a :class:`CollabConfig` whose gating, delta-encoding, and
priority features are all off (and whose mode is the seed's
handover-only forwarding) must leave every engine bit-for-bit on the
PR 6/PR 7 baseline path — the RSU constructs no plane, the CO-DATA
serde stays unframed, and no refresh recurrence is scheduled.

These tests run the same seeded corridor with *no* collab config and
with an explicitly *disabled* one, and compare exactly — per-event and
batched data planes, the shards=4 engine against serial, and the city
engine — the same shape of check ``test_golden_dataplane.py`` applies
to the batched data plane.
"""

import pytest

from repro.core.collab import CollabConfig
from repro.core.scenario import ScenarioBuilder, paper_corridor
from repro.core.system import TestbedScenario


def _builder(collab, dataplane="event"):
    builder = (
        ScenarioBuilder()
        .vehicles(4)
        .duration(2.0)
        .seed(7)
        .handover(0.5)
        .serde("struct")
        .dataplane(dataplane)
    )
    if collab is not None:
        builder = builder.collab(collab)
    return builder


def _run_corridor(dataset, collab, dataplane="event"):
    scenario = _builder(collab, dataplane).corridor(
        motorways=2, dataset=dataset
    )
    return scenario.run(), scenario


def _event_stream(scenario):
    return {
        name: [
            (
                e.car_id,
                e.generated_at,
                e.arrived_at,
                e.detected_at,
                e.abnormal,
                e.true_label,
            )
            for e in rsu.events
        ]
        for name, rsu in scenario.rsus.items()
    }


def _vehicle_signature(result):
    return {
        car: (
            stats.records_sent,
            stats.bytes_sent,
            stats.warnings_received,
            stats.records_lost,
            stats.poll_failures,
            stats.e2e_latencies_s,
            stats.dissemination_latencies_s,
        )
        for car, stats in result.vehicle_stats.items()
    }


def _assert_bit_identical(baseline_run, collab_run):
    baseline_result, baseline_scenario = baseline_run
    collab_result, collab_scenario = collab_run
    assert _event_stream(baseline_scenario) == _event_stream(collab_scenario)
    assert _vehicle_signature(baseline_result) == _vehicle_signature(
        collab_result
    )
    for name in baseline_result.rsu_metrics:
        baseline_m = baseline_result.rsu_metrics[name]
        collab_m = collab_result.rsu_metrics[name]
        assert collab_m.warnings_issued == baseline_m.warnings_issued
        assert collab_m.n_events == baseline_m.n_events
        assert collab_m.summaries_sent == baseline_m.summaries_sent
        assert collab_m.summaries_received == baseline_m.summaries_received
        assert collab_m.bandwidth_in_bps == baseline_m.bandwidth_in_bps
        assert collab_m.mean_tx_ms == baseline_m.mean_tx_ms
        assert collab_m.mean_queuing_ms == baseline_m.mean_queuing_ms
        # A disabled plane must not even *account* — the co counters
        # stay zero, exactly as on main before the plane existed.
        assert collab_m.co_bytes_sent == 0
        assert collab_m.co_bytes_suppressed == 0
        assert collab_m.co_msgs_gated == 0
        assert collab_m.co_stale_dropped == 0
    assert (
        sum(
            stats.warnings_received
            for stats in collab_result.vehicle_stats.values()
        )
        > 0
    )


class TestDisabledPlaneIsInert:
    def test_default_config_is_disabled(self):
        assert not CollabConfig().enabled

    def test_rsu_constructs_no_plane(self, labeled_dataset):
        _, scenario = _run_corridor(labeled_dataset, CollabConfig())
        for rsu in scenario.rsus.values():
            assert rsu.collab is None

    @pytest.mark.parametrize("dataplane", ["event", "batched"])
    def test_corridor_bit_identical(
        self, labeled_dataset, dataplane, audit_invariants
    ):
        """No-config vs disabled-config, per data plane: every event,
        warning, latency sample, and bandwidth counter agrees."""
        baseline_run = _run_corridor(labeled_dataset, None, dataplane)
        collab_run = _run_corridor(labeled_dataset, CollabConfig(), dataplane)
        audit_invariants(baseline_run[1])
        audit_invariants(collab_run[1])
        _assert_bit_identical(baseline_run, collab_run)

    def test_sharded_bit_identical_to_serial(self, labeled_dataset):
        """shards=4 with a disabled config must reproduce the serial
        no-config run warning-for-warning."""
        serial_scenario = (
            paper_corridor()
            .vehicles(8)
            .duration(2.0)
            .serde("struct")
            .corridor(motorways=2, dataset=labeled_dataset)
        )
        serial_result = serial_scenario.run()
        serial_warnings = {
            name: rsu.warning_log()
            for name, rsu in serial_scenario.rsus.items()
        }
        sharded_scenario = (
            paper_corridor()
            .vehicles(8)
            .duration(2.0)
            .serde("struct")
            .collab(CollabConfig())
            .shards(4)
            .corridor(motorways=2, dataset=labeled_dataset)
        )
        sharded_result = sharded_scenario.run()
        assert sharded_scenario.warning_logs == serial_warnings
        assert sum(len(w) for w in serial_warnings.values()) > 0
        assert _vehicle_signature(sharded_result) == _vehicle_signature(
            serial_result
        )

    def test_city_digest_unaffected(self):
        """The city engine ignores the collab field today; pin that a
        disabled config in the builder leaves its digest untouched."""
        baseline = (
            TestbedScenario.builder()
            .seed(3)
            .duration(300.0)
            .city(count_scale=0.01)
            .run()
        )
        with_config = (
            TestbedScenario.builder()
            .seed(3)
            .duration(300.0)
            .collab(CollabConfig())
            .city(count_scale=0.01)
            .run()
        )
        assert with_config.digest_signature() == baseline.digest_signature()
        assert with_config.warnings_total == baseline.warnings_total
        assert baseline.audit() == []


class TestEnabledSpecValidation:
    def test_enabled_plane_rejects_faults(self):
        from repro.core.scenario import ScenarioSpec
        from repro.faults.events import FaultProfile

        with pytest.raises(ValueError, match="fault-free"):
            ScenarioSpec(
                n_vehicles=4,
                duration_s=2.0,
                collab=CollabConfig(mode="refresh"),
                faults=FaultProfile(name="noop", events=()),
            )

    def test_priority_requires_htb(self):
        from repro.core.scenario import ScenarioSpec

        with pytest.raises(ValueError, match="use_htb"):
            ScenarioSpec(
                n_vehicles=4,
                duration_s=2.0,
                use_htb=False,
                collab=CollabConfig(mode="refresh", priority=True),
            )
