"""Golden equivalence: the columnar hot path vs the per-record path.

The perf refactor (TelemetryBlock / detect_block / DetectionEventLog /
struct serdes) must be behaviour-preserving, not just approximately
right: same verdicts, same warning stream, same handover summaries,
same latency statistics, bit for bit.  These tests run the same seeded
scenario through every (columnar, serde) combination and compare the
outputs exactly.
"""

import numpy as np
import pytest

from repro.core.block import NO_LABEL, DetectionEventLog, TelemetryBlock
from repro.core.collaborative import CollaborativeDetector
from repro.core.detector import AD3Detector
from repro.core.online import OnlineAD3Detector
from repro.core.rsu import DetectionEvent
from repro.core.scenario import ScenarioSpec
from repro.core.system import TestbedScenario
from repro.geo.roadnet import RoadType


# ----------------------------------------------------------------------
# Detector-level equivalence (block path vs record path)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def motorway_split(trip_split):
    train, test = trip_split
    return (
        [r for r in train if r.road_type is RoadType.MOTORWAY],
        [r for r in test if r.road_type is RoadType.MOTORWAY][:400],
    )


def test_block_round_trips_records(motorway_split):
    import dataclasses

    _, test = motorway_split
    block = TelemetryBlock.from_records(test)
    # trip_id is not a wire field (record_to_payload drops it too), so
    # the block round-trips every field the wire carries, exactly.
    expected = [dataclasses.replace(r, trip_id=0) for r in test]
    assert block.records() == expected
    assert len(block) == len(test)


def test_ad3_detect_block_bit_identical(motorway_split):
    train, test = motorway_split
    detector = AD3Detector(RoadType.MOTORWAY).fit(train)
    classes, probs = detector.detect(test)
    block_classes, block_probs = detector.detect_block(
        TelemetryBlock.from_records(test)
    )
    assert np.array_equal(classes, block_classes)
    assert np.array_equal(probs, block_probs)  # exact, not allclose


def test_collaborative_detect_block_bit_identical(
    motorway_split, motorway_detector, link_records
):
    from repro.core.collaborative import summaries_from_upstream

    train_mw, test_mw = motorway_split
    link_train, link_test = link_records
    summaries = summaries_from_upstream(motorway_detector, train_mw)
    detector = CollaborativeDetector(RoadType.MOTORWAY_LINK).fit(
        link_train, summaries
    )
    test = link_test[:300]
    classes, probs = detector.detect(test, summaries)
    block_classes, block_probs = detector.detect_block(
        TelemetryBlock.from_records(test), summaries
    )
    assert np.array_equal(classes, block_classes)
    assert np.array_equal(probs, block_probs)


def test_online_detector_block_path_bit_identical(motorway_split):
    _, test = motorway_split
    by_record = OnlineAD3Detector(RoadType.MOTORWAY, refit_every=60)
    by_block = OnlineAD3Detector(RoadType.MOTORWAY, refit_every=60)
    for start in range(0, len(test), 31):
        chunk = test[start : start + 31]
        block = TelemetryBlock.from_records(chunk)
        classes, probs = by_record.detect(chunk)
        block_classes, block_probs = by_block.detect_block(block)
        assert np.array_equal(classes, block_classes)
        assert np.array_equal(probs, block_probs)
        by_record.observe(chunk)
        by_block.observe_block(block)
    assert by_record.observations == by_block.observations
    assert by_record.ready == by_block.ready


def test_block_road_type_check_matches_record_check(motorway_split):
    train, _ = motorway_split
    detector = AD3Detector(RoadType.MOTORWAY_LINK)
    block = TelemetryBlock.from_records(train[:5])
    with pytest.raises(ValueError, match="motorway"):
        detector._check_block_road_type(block)


# ----------------------------------------------------------------------
# Event-log equivalence
# ----------------------------------------------------------------------
def test_event_log_matches_list_semantics():
    log = DetectionEventLog()
    event = DetectionEvent(
        car_id=3,
        generated_at=1.0,
        arrived_at=1.1,
        detected_at=1.2,
        abnormal=True,
        true_label=0,
    )
    log.append(event)
    log.append_block(
        car_ids=np.array([4, 5]),
        generated_at=np.array([2.0, 2.1]),
        arrived_at=np.array([2.2, 2.3]),
        detected_at=2.5,
        abnormal=np.array([False, True]),
        labels=np.array([1, NO_LABEL], dtype=np.int8),
    )
    assert len(log) == 3
    events = list(log)
    assert events[0] == event
    assert events[1] == DetectionEvent(4, 2.0, 2.2, 2.5, False, 1)
    assert events[2] == DetectionEvent(5, 2.1, 2.3, 2.5, True, None)
    # materialized values are plain python types, like the legacy path
    assert isinstance(events[1].car_id, int)
    assert isinstance(events[1].generated_at, float)
    assert isinstance(events[2].abnormal, bool)
    # vectorized accessors agree with the materialized objects
    assert log.tx_s().tolist() == [e.tx_s for e in events]
    assert log.queuing_s().tolist() == [e.queuing_s for e in events]
    assert log.abnormal().tolist() == [True, False, True]


# ----------------------------------------------------------------------
# Full-scenario equivalence (the golden test)
# ----------------------------------------------------------------------
def _run_corridor(dataset, columnar, serde_profile):
    config = ScenarioSpec(
        n_vehicles=4,
        duration_s=2.0,
        seed=7,
        handover_fraction=0.5,
        columnar=columnar,
        serde_profile=serde_profile,
    )
    scenario = TestbedScenario.corridor(config, motorways=2, dataset=dataset)
    return scenario.run(), scenario


def _event_stream(scenario):
    return {
        name: [
            (
                e.car_id,
                e.generated_at,
                e.arrived_at,
                e.detected_at,
                e.abnormal,
                e.true_label,
            )
            for e in rsu.events
        ]
        for name, rsu in scenario.rsus.items()
    }


def _vehicle_signature(result):
    return {
        car: (
            stats.records_sent,
            stats.warnings_received,
            stats.e2e_latencies_s,
            stats.dissemination_latencies_s,
        )
        for car, stats in result.vehicle_stats.items()
    }


@pytest.mark.parametrize("serde_profile", ["json", "struct"])
def test_columnar_pipeline_is_bit_identical(
    labeled_dataset, serde_profile, audit_invariants
):
    """Same seeds, same serde: columnar and per-record runs must agree
    on every event, warning, summary count, and latency sample."""
    legacy_result, legacy_scenario = _run_corridor(
        labeled_dataset, columnar=False, serde_profile=serde_profile
    )
    columnar_result, columnar_scenario = _run_corridor(
        labeled_dataset, columnar=True, serde_profile=serde_profile
    )
    # Both engines must also conserve every record and warning.
    audit_invariants(legacy_scenario)
    audit_invariants(columnar_scenario)
    assert _event_stream(legacy_scenario) == _event_stream(columnar_scenario)
    assert _vehicle_signature(legacy_result) == _vehicle_signature(
        columnar_result
    )
    for name in legacy_result.rsu_metrics:
        legacy_m = legacy_result.rsu_metrics[name]
        columnar_m = columnar_result.rsu_metrics[name]
        assert legacy_m.warnings_issued == columnar_m.warnings_issued
        assert legacy_m.summaries_sent == columnar_m.summaries_sent
        assert legacy_m.summaries_received == columnar_m.summaries_received
        assert legacy_m.mean_tx_ms == columnar_m.mean_tx_ms
        assert legacy_m.mean_queuing_ms == columnar_m.mean_queuing_ms
    # detection quality reports agree too
    for name, rsu in legacy_scenario.rsus.items():
        legacy_report = rsu.detection_report()
        columnar_report = columnar_scenario.rsus[name].detection_report()
        if legacy_report is None:
            assert columnar_report is None
        else:
            assert legacy_report.accuracy == columnar_report.accuracy
            assert legacy_report.f1 == columnar_report.f1


def test_struct_profile_preserves_verdicts(labeled_dataset):
    """Across serdes the wire format changes (sizes, hence tx times),
    but every verdict, warning, and summary count must match: both
    formats round-trip the Table II values exactly."""
    json_result, json_scenario = _run_corridor(
        labeled_dataset, columnar=True, serde_profile="json"
    )
    struct_result, struct_scenario = _run_corridor(
        labeled_dataset, columnar=True, serde_profile="struct"
    )
    for name, rsu in json_scenario.rsus.items():
        other = struct_scenario.rsus[name]
        assert [e.car_id for e in rsu.events] == [
            e.car_id for e in other.events
        ]
        assert [e.abnormal for e in rsu.events] == [
            e.abnormal for e in other.events
        ]
        assert rsu.warnings_issued == other.warnings_issued
        assert rsu.summaries_sent == other.summaries_sent
    # struct telemetry is well under half the JSON size on the wire
    json_bw = json_result.total_bandwidth_bps()
    struct_bw = struct_result.total_bandwidth_bps()
    assert struct_bw < 0.5 * json_bw


def test_warning_threshold_streak_equivalence(labeled_dataset):
    """The vectorized streak recurrence must debounce exactly like the
    per-record loop when warning_threshold > 1."""
    from repro.core.rsu import RsuConfig, RsuNode
    from repro.core.system import default_training_dataset  # noqa: F401

    results = {}
    for columnar in (False, True):
        config = ScenarioSpec(
            n_vehicles=6, duration_s=2.0, seed=11, columnar=columnar
        )
        scenario = TestbedScenario.single_rsu(config, dataset=labeled_dataset)
        for rsu in scenario.rsus.values():
            rsu.config.warning_threshold = 3
        result = scenario.run()
        results[columnar] = (
            {n: m.warnings_issued for n, m in result.rsu_metrics.items()},
            _event_stream(scenario),
        )
    assert results[False] == results[True]
