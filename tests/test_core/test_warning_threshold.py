"""Tests for warning debouncing and hour-aware labelling granularity."""

import numpy as np
import pytest

from repro.core import RsuConfig, RsuNode
from repro.core.detector import AD3Detector
from repro.core.vehicle import VehicleNode
from repro.dataset.preprocess import SigmaCutoffLabeler
from repro.dataset.schema import ABNORMAL, NORMAL, TelemetryRecord
from repro.geo import RoadType
from repro.microbatch import ProcessingModel
from repro.net.dsrc import DsrcChannel
from repro.simkernel import Simulator


def run_with_threshold(threshold, records, motorway_records):
    train, _ = motorway_records
    detector = AD3Detector(RoadType.MOTORWAY).fit(train)
    sim = Simulator()
    rsu = RsuNode(
        sim,
        f"rsu-t{threshold}",
        detector,
        config=RsuConfig(
            processing_model=ProcessingModel(jitter_fraction=0.0),
            warning_threshold=threshold,
        ),
    )
    channel = DsrcChannel(sim, rng=np.random.default_rng(0))
    vehicle = VehicleNode(
        sim, 1, records, rsu, channel, rng=np.random.default_rng(1)
    )
    rsu.start(until=6.0)
    vehicle.start(until=6.0)
    sim.run_until(6.5)
    return rsu


class TestWarningThreshold:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RsuConfig(warning_threshold=0)

    def test_higher_threshold_fewer_warnings(self, motorway_records):
        _, test = motorway_records
        # Alternate normal/abnormal so streaks rarely reach 2.
        abnormal = [r for r in test if r.label == 0]
        normal = [r for r in test if r.label == 1]
        interleaved = [
            record
            for pair in zip(abnormal[:30], normal[:30])
            for record in pair
        ]
        eager = run_with_threshold(1, interleaved, motorway_records)
        debounced = run_with_threshold(3, interleaved, motorway_records)
        assert eager.warnings_issued > 0
        assert debounced.warnings_issued < eager.warnings_issued
        # Same detections either way: only the warning policy changed.
        assert len(eager.events) == len(debounced.events)

    def test_sustained_abnormality_still_warns(self, motorway_records):
        _, test = motorway_records
        sustained = [r for r in test if r.label == 0][:40]
        debounced = run_with_threshold(3, sustained, motorway_records)
        assert debounced.warnings_issued > 0


class TestLabelingGranularity:
    def build_hourly_records(self, n_per_hour=300, seed=0):
        """Speeds whose mean shifts with the hour (Fig. 2's pattern)."""
        rng = np.random.default_rng(seed)
        records = []
        for hour in (3, 8, 12):  # night / rush / midday
            mean = {3: 170.0, 8: 110.0, 12: 160.0}[hour]
            for speed in rng.normal(mean, 12.0, n_per_hour):
                records.append(
                    TelemetryRecord(
                        car_id=1,
                        road_id=1,
                        accel_ms2=float(rng.normal(0, 0.5)),
                        speed_kmh=max(0.0, float(speed)),
                        hour=hour,
                        day=4,
                        road_type=RoadType.MOTORWAY,
                        road_mean_speed_kmh=mean,
                    )
                )
        return records

    def test_validation(self):
        with pytest.raises(ValueError):
            SigmaCutoffLabeler(granularity="by-vibes")

    def test_hour_aware_bands_differ_by_hour(self):
        records = self.build_hourly_records()
        labeler = SigmaCutoffLabeler(granularity="type_hour").fit(records)
        # 160 km/h at rush hour (mean 110) is abnormal; at midday
        # (mean 160) it is normal.  The type-level labeler cannot tell.
        make = lambda hour, speed: TelemetryRecord(
            car_id=1, road_id=1, accel_ms2=0.0, speed_kmh=speed, hour=hour,
            day=4, road_type=RoadType.MOTORWAY, road_mean_speed_kmh=100.0,
        )
        assert labeler.label(make(8, 160.0)) == ABNORMAL
        assert labeler.label(make(12, 160.0)) == NORMAL

    def test_type_level_labeler_is_hour_blind(self):
        records = self.build_hourly_records()
        labeler = SigmaCutoffLabeler(granularity="type").fit(records)
        make = lambda hour, speed: TelemetryRecord(
            car_id=1, road_id=1, accel_ms2=0.0, speed_kmh=speed, hour=hour,
            day=4, road_type=RoadType.MOTORWAY, road_mean_speed_kmh=100.0,
        )
        assert labeler.label(make(8, 160.0)) == labeler.label(make(12, 160.0))

    def test_sparse_hour_falls_back_to_type_band(self):
        records = self.build_hourly_records(n_per_hour=300)
        # Add a handful of records at an unseen-ish hour.
        extra = TelemetryRecord(
            car_id=1, road_id=1, accel_ms2=0.0, speed_kmh=150.0, hour=22,
            day=4, road_type=RoadType.MOTORWAY, road_mean_speed_kmh=150.0,
        )
        labeler = SigmaCutoffLabeler(granularity="type_hour").fit(
            records + [extra] * 5
        )
        # Hour 22 had < MIN_CELL_SAMPLES: falls back without KeyError.
        assert labeler.label(extra) in (NORMAL, ABNORMAL)

    def test_unknown_road_type_still_raises(self):
        records = self.build_hourly_records(n_per_hour=100)
        labeler = SigmaCutoffLabeler(granularity="type_hour").fit(records)
        stray = TelemetryRecord(
            car_id=1, road_id=1, accel_ms2=0.0, speed_kmh=30.0, hour=8,
            day=4, road_type=RoadType.RESIDENTIAL, road_mean_speed_kmh=30.0,
        )
        with pytest.raises(KeyError):
            labeler.label(stray)
