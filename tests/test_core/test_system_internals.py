"""Unit tests for TestbedScenario wiring details."""

import pytest

from repro.core import ScenarioSpec, TestbedScenario
from repro.core.detector import AD3Detector
from repro.core.system import default_training_dataset
from repro.geo import RoadType


@pytest.fixture(scope="module")
def training_dataset():
    return default_training_dataset(seed=11, n_cars=50)


@pytest.fixture(scope="module")
def motorway_detector(training_dataset):
    motorway = training_dataset.by_road_type(RoadType.MOTORWAY)
    return AD3Detector(RoadType.MOTORWAY).fit(motorway)


class TestConstruction:
    def test_add_vehicles_stripes_records(
        self, training_dataset, motorway_detector
    ):
        scenario = TestbedScenario(ScenarioSpec(n_vehicles=4, duration_s=1.0))
        scenario.add_rsu("rsu", motorway_detector)
        records = training_dataset.by_road_type(RoadType.MOTORWAY)[:40]
        vehicles = scenario.add_vehicles("rsu", 4, records)
        assert len(vehicles) == 4
        # Distinct car ids, monotonically assigned.
        ids = [v.car_id for v in vehicles]
        assert ids == sorted(set(ids))

    def test_add_vehicles_empty_pool_rejected(self, motorway_detector):
        scenario = TestbedScenario(ScenarioSpec(n_vehicles=1, duration_s=1.0))
        scenario.add_rsu("rsu", motorway_detector)
        with pytest.raises(ValueError):
            scenario.add_vehicles("rsu", 2, [])

    def test_htb_leaves_created_per_vehicle(
        self, training_dataset, motorway_detector
    ):
        scenario = TestbedScenario(ScenarioSpec(n_vehicles=3, duration_s=1.0))
        scenario.add_rsu("rsu", motorway_detector)
        records = training_dataset.by_road_type(RoadType.MOTORWAY)[:30]
        vehicles = scenario.add_vehicles("rsu", 3, records)
        shaper = scenario.shapers["rsu"]
        for vehicle in vehicles:
            assert shaper.leaf(f"vehicle-{vehicle.car_id}")

    def test_htb_disabled(self, training_dataset, motorway_detector):
        scenario = TestbedScenario(
            ScenarioSpec(n_vehicles=2, duration_s=1.0, use_htb=False)
        )
        scenario.add_rsu("rsu", motorway_detector)
        records = training_dataset.by_road_type(RoadType.MOTORWAY)[:20]
        vehicles = scenario.add_vehicles("rsu", 2, records)
        assert all(v.shaper is None for v in vehicles)
        assert "rsu" not in scenario.shapers

    def test_corridor_link_detector_kind_validated(self, training_dataset):
        with pytest.raises(ValueError):
            TestbedScenario.corridor(
                ScenarioSpec(n_vehicles=2, duration_s=1.0),
                dataset=training_dataset,
                link_detector_kind="psychic",
            )

    def test_replay_uses_held_out_trips(self, training_dataset):
        """Vehicles must replay the 20 % test split, not training data
        (the paper's online-testing protocol)."""
        scenario = TestbedScenario.single_rsu(
            ScenarioSpec(n_vehicles=4, duration_s=1.0),
            dataset=training_dataset,
        )
        train, replay = TestbedScenario._train_replay_split(training_dataset)
        replay_trips = {r.trip_id for r in replay}
        train_trips = {r.trip_id for r in train}
        for vehicle in scenario.vehicles:
            stream_sample = vehicle._stripe[:5]
            for record in stream_sample:
                assert record.trip_id in replay_trips
                assert record.trip_id not in train_trips


class TestRunSemantics:
    def test_result_detection_report_present(self, training_dataset):
        scenario = TestbedScenario.single_rsu(
            ScenarioSpec(n_vehicles=8, duration_s=2.0, seed=3),
            dataset=training_dataset,
        )
        result = scenario.run()
        report = result.rsu_metrics["rsu-motorway"].detection
        assert report is not None
        assert report.n_samples == result.rsu_metrics["rsu-motorway"].n_events
        assert 0.0 <= report.accuracy <= 1.0

    def test_two_runs_same_seed_identical_reports(self, training_dataset):
        def run():
            scenario = TestbedScenario.single_rsu(
                ScenarioSpec(n_vehicles=8, duration_s=2.0, seed=3),
                dataset=training_dataset,
            )
            return scenario.run().rsu_metrics["rsu-motorway"].detection

        first, second = run(), run()
        assert first.accuracy == second.accuracy
        assert first.tp == second.tp
