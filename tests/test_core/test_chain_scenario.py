"""Tests for the online chain topology (carried-on summaries, live)."""

import json

import pytest

from repro.core import ScenarioSpec, TestbedScenario
from repro.core.system import default_training_dataset


@pytest.fixture(scope="module")
def training_dataset():
    return default_training_dataset(seed=11, n_cars=60)


@pytest.fixture(scope="module")
def chain_result(training_dataset):
    config = ScenarioSpec(n_vehicles=12, duration_s=6.0, seed=5)
    scenario = TestbedScenario.chain(config, hops=3, dataset=training_dataset)
    return scenario, scenario.run()


class TestChainScenario:
    def test_topology(self, chain_result):
        scenario, result = chain_result
        assert sorted(result.rsu_metrics) == [
            "rsu-hop-1", "rsu-hop-2", "rsu-hop-3",
        ]
        assert scenario.rsus["rsu-hop-1"].neighbor_names == ["rsu-hop-2"]
        assert scenario.rsus["rsu-hop-2"].neighbor_names == ["rsu-hop-3"]

    def test_every_hop_saw_traffic(self, chain_result):
        _, result = chain_result
        for metrics in result.rsu_metrics.values():
            assert metrics.n_events > 0

    def test_summaries_carried_through_both_handovers(self, chain_result):
        scenario, result = chain_result
        assert result.rsu_metrics["rsu-hop-1"].summaries_sent == 12
        assert result.rsu_metrics["rsu-hop-2"].summaries_received == 12
        assert result.rsu_metrics["rsu-hop-2"].summaries_sent == 12
        assert result.rsu_metrics["rsu-hop-3"].summaries_received == 12
        # Hop 3's summaries merge hop 1's and hop 2's histories.
        hop3 = scenario.rsus["rsu-hop-3"]
        sample = next(iter(hop3.summaries.values()))
        # ~10 Hz for ~2 s at hop 1 plus ~2 s at hop 2.
        assert sample.n_predictions >= 20

    def test_detection_quality_reported_per_hop(self, chain_result):
        _, result = chain_result
        for metrics in result.rsu_metrics.values():
            assert metrics.detection is not None
            assert 0.0 <= metrics.detection.accuracy <= 1.0

    def test_validation(self, training_dataset):
        with pytest.raises(ValueError):
            TestbedScenario.chain(
                ScenarioSpec(n_vehicles=2, duration_s=1.0),
                hops=1,
                dataset=training_dataset,
            )

    def test_result_serialises_to_json(self, chain_result):
        _, result = chain_result
        payload = json.dumps(result.to_dict())
        restored = json.loads(payload)
        assert restored["n_vehicles"] == 12
        assert set(restored["rsus"]) == set(result.rsu_metrics)
        assert restored["rsus"]["rsu-hop-3"]["detection"]["f1"] >= 0.0
