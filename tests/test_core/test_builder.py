"""The scenario builder and its presets.

The redesign contract: fault-free ``ScenarioBuilder`` runs are
bit-identical to direct ``ScenarioSpec`` construction, so fluent and
explicit callers share one code path.
"""

import pytest

from repro.core import (
    ScenarioBuilder,
    ScenarioSpec,
    TestbedScenario,
    paper_corridor,
    paper_single_rsu,
)
from repro.core.scenario import DEFAULT_UPSTREAM_TIMEOUT_S
from repro.core.system import default_training_dataset
from repro.faults import BurstLoss, FaultProfile
from repro.streaming.producer import RetryPolicy


@pytest.fixture(scope="module")
def training_dataset():
    return default_training_dataset(seed=11, n_cars=60)


def make_profile():
    return FaultProfile(
        "p", (BurstLoss("rsu-mw-1", at_s=1.0, duration_s=0.5),)
    )


class TestBuilder:
    def test_defaults_match_spec_defaults(self):
        assert TestbedScenario.builder().build() == ScenarioSpec()

    def test_setters_land_in_the_spec(self):
        spec = (
            ScenarioBuilder()
            .vehicles(32)
            .duration(5.0)
            .update_rate(20.0)
            .batch_interval(0.1)
            .poll_interval(0.02)
            .seed(13)
            .htb(False)
            .loss(0.05)
            .handover(0.5, at_s=2.5)
            .serde("struct")
            .dissemination("notify")
            .columnar(False)
            .build()
        )
        assert spec.n_vehicles == 32
        assert spec.duration_s == 5.0
        assert spec.update_rate_hz == 20.0
        assert spec.batch_interval_s == 0.1
        assert spec.poll_interval_s == 0.02
        assert spec.seed == 13
        assert spec.use_htb is False
        assert spec.loss_prob == 0.05
        assert spec.handover_fraction == 0.5
        assert spec.handover_at_s == 2.5
        assert spec.serde_profile == "struct"
        assert spec.dissemination == "notify"
        assert spec.columnar is False

    def test_spec_validation_fires_on_set(self):
        with pytest.raises(ValueError):
            ScenarioBuilder().vehicles(0)
        with pytest.raises(ValueError):
            ScenarioBuilder().serde("protobuf")
        with pytest.raises(ValueError):
            ScenarioBuilder().upstream_timeout(-1.0)

    def test_faults_enable_delivery_guarantees(self):
        spec = ScenarioBuilder().faults(make_profile()).build()
        assert spec.faults is not None
        assert spec.producer_retry == RetryPolicy()
        assert spec.upstream_timeout_s == DEFAULT_UPSTREAM_TIMEOUT_S

    def test_explicit_retry_wins_over_fault_default(self):
        spec = (
            ScenarioBuilder()
            .retry(None)
            .faults(make_profile())
            .build()
        )
        assert spec.producer_retry is None
        custom = RetryPolicy(max_buffered=16)
        spec = (
            ScenarioBuilder()
            .faults(make_profile())
            .retry(custom)
            .build()
        )
        assert spec.producer_retry == custom

    def test_explicit_timeout_wins_over_fault_default(self):
        spec = (
            ScenarioBuilder()
            .upstream_timeout(None)
            .faults(make_profile())
            .build()
        )
        assert spec.upstream_timeout_s is None

    def test_fault_free_spec_has_no_resilience_machinery(self):
        # The golden-equivalence precondition: building without
        # .faults() must leave every resilience knob at the seed
        # default, or fault-free runs would diverge from legacy ones.
        spec = ScenarioBuilder().vehicles(16).serde("struct").build()
        assert spec.faults is None
        assert spec.producer_retry is None
        assert spec.upstream_timeout_s is None


class TestPresets:
    def test_paper_single_rsu(self):
        spec = paper_single_rsu().build()
        assert spec.n_vehicles == 8
        assert spec.duration_s == 10.0

    def test_paper_corridor(self):
        spec = paper_corridor().build()
        assert spec.n_vehicles == 128
        assert spec.duration_s == 10.0
        assert spec.handover_fraction == 0.25


class TestGoldenEquivalence:
    """Fault-free builder runs replay explicit-spec runs bit for bit."""

    def test_single_rsu_run_is_bit_identical(self, training_dataset):
        config = ScenarioSpec(n_vehicles=4, duration_s=1.5)
        legacy = TestbedScenario.single_rsu(
            config, dataset=training_dataset
        ).run()
        modern = (
            TestbedScenario.builder()
            .vehicles(4)
            .duration(1.5)
            .single_rsu(dataset=training_dataset)
            .run()
        )
        assert modern.to_dict() == legacy.to_dict()
        for car_id, stats in legacy.vehicle_stats.items():
            assert (
                modern.vehicle_stats[car_id].e2e_latencies_s
                == stats.e2e_latencies_s
            )

    def test_corridor_run_is_bit_identical(self, training_dataset):
        config = ScenarioSpec(
            n_vehicles=4,
            duration_s=1.5,
            handover_fraction=0.5,
            serde_profile="struct",
        )
        legacy = TestbedScenario.corridor(
            config, motorways=2, dataset=training_dataset
        ).run()
        modern = (
            TestbedScenario.builder()
            .vehicles(4)
            .duration(1.5)
            .handover(0.5)
            .serde("struct")
            .corridor(motorways=2, dataset=training_dataset)
            .run()
        )
        assert modern.to_dict() == legacy.to_dict()
