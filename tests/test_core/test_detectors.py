"""Tests for AD3, centralized, and CAD3 detectors — including the
paper's headline ordering (Fig. 7 / Table IV)."""

import numpy as np
import pytest

from repro.core import AD3Detector, CentralizedDetector, CollaborativeDetector
from repro.core.collaborative import NEUTRAL_PRIOR, summaries_from_upstream
from repro.dataset.schema import ABNORMAL, NORMAL
from repro.geo import RoadType
from repro.ml import evaluate_binary


class TestAD3Detector:
    def test_rejects_wrong_road_type(self, link_records):
        train, _ = link_records
        detector = AD3Detector(RoadType.MOTORWAY)
        with pytest.raises(ValueError, match="received a"):
            detector.fit(train)

    def test_fit_predict_labels(self, link_records):
        train, test = link_records
        detector = AD3Detector(RoadType.MOTORWAY_LINK).fit(train)
        predictions = detector.predict(test)
        assert set(np.unique(predictions)) <= {NORMAL, ABNORMAL}
        assert detector.fitted

    def test_better_than_chance(self, link_records):
        train, test = link_records
        detector = AD3Detector(RoadType.MOTORWAY_LINK).fit(train)
        y_true = np.array([r.label for r in test])
        accuracy = np.mean(detector.predict(test) == y_true)
        assert accuracy > 0.7

    def test_normal_proba_in_unit_interval(self, link_records):
        train, test = link_records
        detector = AD3Detector(RoadType.MOTORWAY_LINK).fit(train)
        probs = detector.predict_normal_proba(test)
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_detect_consistency(self, link_records):
        """predict() and the probability column must agree: class is
        normal iff P(normal) >= 0.5 (binary NB)."""
        train, test = link_records
        detector = AD3Detector(RoadType.MOTORWAY_LINK).fit(train)
        classes, probs = detector.detect(test[:500])
        agree = (classes == NORMAL) == (probs >= 0.5)
        assert np.mean(agree) > 0.999

    def test_empty_input(self, link_records):
        train, _ = link_records
        detector = AD3Detector(RoadType.MOTORWAY_LINK).fit(train)
        assert detector.predict([]).size == 0
        assert detector.predict_normal_proba([]).size == 0

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            AD3Detector(RoadType.MOTORWAY).fit([])


class TestCentralizedDetector:
    def test_onehot_encoding_does_not_rescue_it(self, trip_split, link_records):
        """The centralized gap is structural, not an encoding artefact:
        one-hot road types perform about the same as ordinal codes, and
        both stay far below the per-road AD3 model."""
        train, _ = trip_split
        link_train, link_test = link_records
        y_true = np.array([r.label for r in link_test])
        ordinal = CentralizedDetector(encoding="ordinal").fit(train)
        onehot = CentralizedDetector(encoding="onehot").fit(train)
        ad3 = AD3Detector(RoadType.MOTORWAY_LINK).fit(link_train)
        f1 = lambda model, *args: evaluate_binary(
            y_true, model.predict(link_test, *args)
        ).f1
        assert abs(f1(ordinal) - f1(onehot)) < 0.08
        assert f1(ad3) > f1(onehot) + 0.08
        assert f1(ad3) > f1(ordinal) + 0.08

    def test_unknown_encoding_rejected(self, trip_split):
        train, _ = trip_split
        with pytest.raises(ValueError):
            CentralizedDetector(encoding="phrenology").fit(train)

    def test_fits_mixed_road_types(self, trip_split):
        train, test = trip_split
        detector = CentralizedDetector().fit(train)
        predictions = detector.predict(test)
        assert len(predictions) == len(test)

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            CentralizedDetector().fit([])

    def test_empty_predict(self, trip_split):
        train, _ = trip_split
        detector = CentralizedDetector().fit(train)
        assert detector.predict([]).size == 0


class TestCollaborativeDetector:
    def test_eq1_fusion(self):
        p_nb = np.array([0.8, 0.2])
        p_prev = np.array([0.4, 0.6])
        fused = CollaborativeDetector.fuse(p_nb, p_prev)
        assert fused == pytest.approx([0.6, 0.4])

    def test_fit_and_predict(self, link_records, upstream_summaries):
        train, test = link_records
        train_summaries, test_summaries = upstream_summaries
        detector = CollaborativeDetector(RoadType.MOTORWAY_LINK).fit(
            train, train_summaries
        )
        predictions = detector.predict(test, test_summaries)
        assert len(predictions) == len(test)
        assert detector.fitted

    def test_predict_before_fit_raises(self, link_records):
        _, test = link_records
        with pytest.raises(RuntimeError):
            CollaborativeDetector(RoadType.MOTORWAY_LINK).predict(test, {})

    def test_missing_history_uses_neutral_prior(self, link_records):
        train, test = link_records
        detector = CollaborativeDetector(RoadType.MOTORWAY_LINK)
        history = detector._history_vector(test[:3], {})
        assert history.tolist() == [NEUTRAL_PRIOR] * 3

    def test_explain_mentions_fusion_features(
        self, link_records, upstream_summaries
    ):
        train, _ = link_records
        train_summaries, _ = upstream_summaries
        detector = CollaborativeDetector(RoadType.MOTORWAY_LINK).fit(
            train, train_summaries
        )
        text = detector.explain()
        assert "P_X" in text or "Class_NB" in text or "Hour" in text


class TestSummariesFromUpstream:
    def test_one_summary_per_car(self, motorway_detector, motorway_records):
        _, test_mw = motorway_records
        summaries = summaries_from_upstream(motorway_detector, test_mw)
        cars = {r.car_id for r in test_mw}
        assert set(summaries) == cars

    def test_mean_prob_in_unit_interval(
        self, motorway_detector, motorway_records
    ):
        _, test_mw = motorway_records
        for summary in summaries_from_upstream(
            motorway_detector, test_mw
        ).values():
            assert 0.0 <= summary.mean_normal_prob <= 1.0
            assert summary.n_predictions >= 1

    def test_empty_records(self, motorway_detector):
        assert summaries_from_upstream(motorway_detector, []) == {}


class TestPaperOrdering:
    """The headline result: CAD3 > AD3 > centralized (Fig. 7, Table IV)."""

    @pytest.fixture(scope="class")
    def reports(
        self, trip_split, link_records, upstream_summaries, motorway_detector
    ):
        train, _ = trip_split
        link_train, link_test = link_records
        train_summaries, test_summaries = upstream_summaries

        centralized = CentralizedDetector().fit(train)
        ad3 = AD3Detector(RoadType.MOTORWAY_LINK).fit(link_train)
        cad3 = CollaborativeDetector(
            RoadType.MOTORWAY_LINK, nb=ad3
        ).fit(link_train, train_summaries, refit_nb=False)

        y_true = np.array([r.label for r in link_test])
        return {
            "centralized": evaluate_binary(y_true, centralized.predict(link_test)),
            "ad3": evaluate_binary(y_true, ad3.predict(link_test)),
            "cad3": evaluate_binary(
                y_true, cad3.predict(link_test, test_summaries)
            ),
        }

    def test_f1_ordering(self, reports):
        assert reports["cad3"].f1 > reports["ad3"].f1 > reports["centralized"].f1

    def test_accuracy_ordering(self, reports):
        assert (
            reports["cad3"].accuracy
            > reports["ad3"].accuracy
            > reports["centralized"].accuracy
        )

    def test_fn_rate_ordering(self, reports):
        """Table IV: CAD3 has the fewest dangerous missed detections."""
        assert (
            reports["cad3"].fn_rate
            < reports["ad3"].fn_rate
            < reports["centralized"].fn_rate
        )

    def test_tp_rate_ordering(self, reports):
        assert reports["cad3"].tp_rate > reports["centralized"].tp_rate
