"""Golden equivalence: the batched data plane vs the per-event path.

The batched data plane replaces per-frame DSRC transmit events, HTB
refills, and 10 ms warning-poll events with deferred micro-batches
(contention resolved at RSU pre-poll ticks, lazy root-bucket accrual, a
virtual poll grid, and block-segment warning scans).  The claim is not
"approximately the same" but **bit-identical**: the per-frame RNG draw
order is preserved, so every counter and every latency sample must
match the event data plane exactly under the same configuration.

These tests run the same seeded corridor through both dataplanes — with
and without a mid-run handover — and compare the outputs exactly, the
same shape of check as ``test_golden_equivalence.py`` applies to the
columnar refactor.
"""

import pytest

from repro.core.scenario import ScenarioSpec
from repro.core.system import TestbedScenario


def _run_corridor(dataset, dataplane, serde_profile, handover_fraction=0.0):
    config = ScenarioSpec(
        n_vehicles=4,
        duration_s=2.0,
        seed=7,
        handover_fraction=handover_fraction,
        columnar=True,
        serde_profile=serde_profile,
        dataplane=dataplane,
    )
    scenario = TestbedScenario.corridor(config, motorways=2, dataset=dataset)
    return scenario.run(), scenario


def _event_stream(scenario):
    return {
        name: [
            (
                e.car_id,
                e.generated_at,
                e.arrived_at,
                e.detected_at,
                e.abnormal,
                e.true_label,
            )
            for e in rsu.events
        ]
        for name, rsu in scenario.rsus.items()
    }


def _vehicle_signature(result):
    return {
        car: (
            stats.records_sent,
            stats.bytes_sent,
            stats.warnings_received,
            stats.records_lost,
            stats.poll_failures,
            stats.e2e_latencies_s,
            stats.dissemination_latencies_s,
        )
        for car, stats in result.vehicle_stats.items()
    }


def _assert_bit_identical(event_run, batched_run):
    event_result, event_scenario = event_run
    batched_result, batched_scenario = batched_run
    assert _event_stream(event_scenario) == _event_stream(batched_scenario)
    assert _vehicle_signature(event_result) == _vehicle_signature(
        batched_result
    )
    for name in event_result.rsu_metrics:
        event_m = event_result.rsu_metrics[name]
        batched_m = batched_result.rsu_metrics[name]
        assert event_m.warnings_issued == batched_m.warnings_issued
        assert event_m.n_events == batched_m.n_events
        assert event_m.summaries_sent == batched_m.summaries_sent
        assert event_m.summaries_received == batched_m.summaries_received
        assert event_m.bandwidth_in_bps == batched_m.bandwidth_in_bps
        assert event_m.mean_tx_ms == batched_m.mean_tx_ms
        assert event_m.mean_queuing_ms == batched_m.mean_queuing_ms
        assert event_m.mean_processing_ms == batched_m.mean_processing_ms
    # the batched run delivered actual warnings, not a trivially empty
    # trajectory that would make the comparison vacuous
    assert (
        sum(
            stats.warnings_received
            for stats in batched_result.vehicle_stats.values()
        )
        > 0
    )


@pytest.mark.parametrize("serde_profile", ["json", "struct"])
def test_batched_dataplane_is_bit_identical(
    labeled_dataset, serde_profile, audit_invariants
):
    """Same seeds, same serde: batched and per-event runs must agree on
    every event, warning, latency sample, and bandwidth counter —
    including the JSON profile, where template struct sends fall back to
    generic per-record serialization."""
    event_run = _run_corridor(labeled_dataset, "event", serde_profile)
    batched_run = _run_corridor(labeled_dataset, "batched", serde_profile)
    audit_invariants(event_run[1])
    audit_invariants(batched_run[1])
    _assert_bit_identical(event_run, batched_run)


def test_batched_dataplane_survives_handover(labeled_dataset):
    """A mid-run handover migrates vehicles across RSUs: deferred frames
    must flush on the old channel (or carry, if not yet effective) and
    the virtual poll grid must re-anchor, still bit-identically."""
    event_run = _run_corridor(
        labeled_dataset, "event", "struct", handover_fraction=0.5
    )
    batched_run = _run_corridor(
        labeled_dataset, "batched", "struct", handover_fraction=0.5
    )
    _assert_bit_identical(event_run, batched_run)
    # the handover actually happened (summaries crossed RSUs)
    assert any(
        m.summaries_received > 0
        for m in batched_run[0].rsu_metrics.values()
    )


def test_batched_dataplane_rejects_unsupported_configs():
    """The batched plane is explicit about what it does not model."""
    with pytest.raises(ValueError, match="batched dataplane"):
        ScenarioSpec(n_vehicles=2, duration_s=1.0, dataplane="batched", shards=2)
    with pytest.raises(ValueError, match="unknown dataplane"):
        ScenarioSpec(n_vehicles=2, duration_s=1.0, dataplane="turbo")
