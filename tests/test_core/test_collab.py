"""Unit tests for the bandwidth-adaptive CO-DATA plane.

Covers the three layers in isolation — gating decisions against the
last-sent baseline, the quantized delta codec (bit-exact round trips,
epoch discipline, stale drops), and priority banding — plus a small
refresh-mode corridor run exercising them together.
"""

import math

import pytest

from repro.core.collab import (
    BAND_REFRESH,
    BAND_URGENT,
    CollabConfig,
    CollabPlane,
    SummaryRxCache,
)
from repro.core.collaborative import prior_logit_shift
from repro.core.features import PredictionSummary
from repro.core.wire import (
    SUMMARY_DELTA,
    SUMMARY_FULL,
    SUMMARY_FRAME_MAGIC,
    SummaryFrameSerde,
    decode_summary_frame,
    encode_summary_delta,
    encode_summary_full,
    quantize_summary,
    apply_summary_delta,
    summary_frame_car,
    summary_payload_from_units,
    summary_struct_serde,
)
from repro.dataset.schema import ABNORMAL, NORMAL
from repro.streaming.serde import SerdeError


def summary(car=5, p=0.9, n=4, cls=NORMAL, rd=3, ts=1.25):
    return PredictionSummary(
        car_id=car,
        mean_normal_prob=p,
        n_predictions=n,
        last_class=cls,
        from_road_id=rd,
        timestamp=ts,
    )


class TestCollabConfig:
    def test_default_is_disabled(self):
        assert not CollabConfig().enabled

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "refresh"},
            {"gate_threshold": 0.2},
            {"delta_encoding": True},
            {"priority": True},
        ],
    )
    def test_any_adaptive_feature_enables(self, overrides):
        assert CollabConfig(**overrides).enabled

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode": "broadcast"},
            {"refresh_interval_s": 0.0},
            {"gate_threshold": -0.1},
            {"max_silence_s": 0.0},
            {"urgent_rate_bps": 0.0},
            {"refresh_rate_bps": -1.0},
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            CollabConfig(**overrides)

    def test_max_silence_resolution_ladder(self):
        explicit = CollabConfig(max_silence_s=3.0)
        assert explicit.resolved_max_silence_s(10.0) == 3.0
        derived = CollabConfig(refresh_interval_s=0.5)
        assert derived.resolved_max_silence_s(10.0) == pytest.approx(8.0)
        assert derived.resolved_max_silence_s(None) == pytest.approx(2.0)


class TestPriorLogitShift:
    def test_zero_at_no_movement(self):
        assert prior_logit_shift(0.7, 0.7) == 0.0

    def test_symmetric_and_positive(self):
        up = prior_logit_shift(0.5, 0.9)
        down = prior_logit_shift(0.9, 0.5)
        assert up == pytest.approx(down)
        assert up > 0.0

    def test_scales_with_history_weight(self):
        full = prior_logit_shift(0.4, 0.8, history_weight=1.0)
        half = prior_logit_shift(0.4, 0.8, history_weight=0.5)
        assert half == pytest.approx(full / 2.0)

    def test_extreme_probabilities_finite(self):
        assert math.isfinite(prior_logit_shift(0.0, 1.0))


class TestDeltaCodec:
    def test_quantized_round_trip_is_exact(self):
        payload = summary(p=0.123457, ts=98.765).to_payload()
        units = quantize_summary(payload)
        assert summary_payload_from_units(units) == payload

    def test_delta_reconstructs_bit_exactly(self):
        old = summary(p=0.911111, n=4, ts=1.0).to_payload()
        new = summary(p=0.122222, n=9, cls=ABNORMAL, rd=8, ts=2.5).to_payload()
        frame = decode_summary_frame(
            encode_summary_delta(3, quantize_summary(old), quantize_summary(new))
        )
        assert frame.kind == SUMMARY_DELTA
        assert frame.epoch == 3
        assert frame.car == new["car"]
        rebuilt = apply_summary_delta(quantize_summary(old), frame.deltas)
        assert summary_payload_from_units(rebuilt) == new

    def test_negative_deltas_survive(self):
        old = summary(p=0.9, rd=100, ts=50.0).to_payload()
        new = summary(p=0.1, rd=2, ts=0.001).to_payload()
        frame = decode_summary_frame(
            encode_summary_delta(0, quantize_summary(old), quantize_summary(new))
        )
        rebuilt = apply_summary_delta(quantize_summary(old), frame.deltas)
        assert summary_payload_from_units(rebuilt) == new

    def test_unchanged_summary_is_header_plus_car_only(self):
        units = quantize_summary(summary().to_payload())
        payload = encode_summary_delta(0, units, units)
        frame = decode_summary_frame(payload)
        assert all(delta is None for delta in frame.deltas)
        # header (4) + car i64 (8) + empty bitmap (1)
        assert len(payload) == 13

    def test_delta_smaller_than_full(self):
        serde = summary_struct_serde()
        old = summary(p=0.5, ts=1.0).to_payload()
        new = summary(p=0.52, ts=1.5).to_payload()
        delta = encode_summary_delta(
            0, quantize_summary(old), quantize_summary(new)
        )
        full = encode_summary_full(serde.serialize(new), 0)
        assert len(delta) < len(full)

    def test_car_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_summary_delta(
                0,
                quantize_summary(summary(car=1).to_payload()),
                quantize_summary(summary(car=2).to_payload()),
            )

    def test_truncated_frame_raises_serde_error(self):
        units = quantize_summary(summary(p=0.2).to_payload())
        changed = quantize_summary(summary(p=0.8).to_payload())
        payload = encode_summary_delta(0, units, changed)
        with pytest.raises(SerdeError):
            decode_summary_frame(payload[:-1])

    def test_frame_serde_passes_raw_payloads_through(self):
        serde = SummaryFrameSerde(summary_struct_serde())
        payload_dict = summary().to_payload()
        raw = summary_struct_serde().serialize(payload_dict)
        assert raw[0] != SUMMARY_FRAME_MAGIC
        assert serde.deserialize(raw) == payload_dict
        framed = encode_summary_full(raw, 7)
        frame = serde.deserialize(framed)
        assert frame.kind == SUMMARY_FULL
        assert frame.epoch == 7

    def test_summary_frame_car_all_wire_forms(self):
        serde = summary_struct_serde()
        payload_dict = summary(car=42).to_payload()
        raw = serde.serialize(payload_dict)
        framed_full = encode_summary_full(raw, 0)
        units = quantize_summary(payload_dict)
        changed = quantize_summary(summary(car=42, p=0.1).to_payload())
        framed_delta = encode_summary_delta(0, units, changed)
        for wire in (raw, framed_full, framed_delta):
            assert summary_frame_car(wire, serde) == 42


def make_plane(**overrides):
    defaults = dict(mode="refresh", gate_threshold=0.3, delta_encoding=True)
    defaults.update(overrides)
    return CollabPlane(
        CollabConfig(**defaults), summary_struct_serde(), history_weight=0.5
    )


class TestGating:
    def test_first_contact_always_sends_full(self):
        plane = make_plane()
        plan = plane.prepare("peer", summary(), now=0.0)
        assert plan is not None
        assert plan.kind == "full"

    def test_small_move_is_gated(self):
        plane = make_plane()
        plane.prepare("peer", summary(p=0.9), now=0.0)
        plan = plane.prepare("peer", summary(p=0.901), now=0.5)
        assert plan is None
        assert plane.msgs_gated == 1
        assert plane.bytes_suppressed > 0

    def test_large_move_sends_delta_as_urgent(self):
        plane = make_plane()
        plane.prepare("peer", summary(p=0.9), now=0.0)
        plan = plane.prepare("peer", summary(p=0.2), now=0.5)
        assert plan is not None
        assert plan.kind == "delta"
        assert plan.band == BAND_URGENT

    def test_class_flip_bypasses_threshold(self):
        plane = make_plane(gate_threshold=1e9)
        plane.prepare("peer", summary(cls=NORMAL), now=0.0)
        plan = plane.prepare("peer", summary(cls=ABNORMAL), now=0.5)
        assert plan is not None
        assert plan.band == BAND_URGENT

    def test_staleness_override_sends_refresh_band(self):
        plane = make_plane(max_silence_s=2.0)
        plane.prepare("peer", summary(p=0.9), now=0.0)
        assert plane.prepare("peer", summary(p=0.9), now=1.0) is None
        plan = plane.prepare("peer", summary(p=0.9), now=2.5)
        assert plan is not None
        assert plan.band == BAND_REFRESH

    def test_zero_threshold_sends_everything(self):
        plane = make_plane(gate_threshold=0.0)
        plane.prepare("peer", summary(p=0.9), now=0.0)
        assert plane.prepare("peer", summary(p=0.9000001), now=0.1) is not None
        assert plane.msgs_gated == 0

    def test_handover_never_gated_and_resyncs(self):
        plane = make_plane(gate_threshold=1e9)
        plane.prepare("peer", summary(p=0.9), now=0.0)
        plan = plane.prepare("peer", summary(p=0.9), now=0.1, handover=True)
        assert plan is not None
        assert plan.kind == "full"
        assert plan.band == BAND_URGENT

    def test_mark_lost_forces_full_resync(self):
        plane = make_plane(gate_threshold=0.0)
        plane.prepare("peer", summary(p=0.9), now=0.0)
        plane.mark_lost("peer", 5)
        plan = plane.prepare("peer", summary(p=0.8), now=0.5)
        assert plan.kind == "full"
        follow_up = plane.prepare("peer", summary(p=0.7), now=1.0)
        assert follow_up.kind == "delta"

    def test_forget_car_restarts_the_stream(self):
        plane = make_plane(gate_threshold=0.0)
        plane.prepare("peer", summary(), now=0.0)
        plane.forget_car(5)
        plan = plane.prepare("peer", summary(), now=0.5)
        assert plan.kind == "full"

    def test_streams_are_per_peer(self):
        plane = make_plane(gate_threshold=1e9)
        plane.prepare("a", summary(p=0.9), now=0.0)
        # Peer b has no baseline yet: first contact sends despite the
        # absurd threshold.
        assert plane.prepare("b", summary(p=0.9), now=0.0) is not None

    def test_gating_only_config_stays_unframed(self):
        plane = make_plane(delta_encoding=False)
        plan = plane.prepare("peer", summary(), now=0.0)
        assert plan.kind == "raw"
        assert plan.payload[0] != SUMMARY_FRAME_MAGIC

    def test_byte_accounting(self):
        plane = make_plane(gate_threshold=0.0)
        first = plane.prepare("peer", summary(p=0.9), now=0.0)
        second = plane.prepare("peer", summary(p=0.5), now=0.5)
        assert plane.bytes_sent == len(first.payload) + len(second.payload)
        assert plane.msgs_sent_total == 2
        assert plane.fulls_sent == 1
        assert plane.deltas_sent == 1
        assert sum(plane.frame_size_counts.values()) == 2


class TestSummaryRxCache:
    def _frames(self, plane, *plans):
        serde = SummaryFrameSerde(summary_struct_serde())
        return [decode_summary_frame(plan.payload) for plan in plans]

    def test_full_then_delta_resolves(self):
        plane = make_plane(gate_threshold=0.0)
        cache = SummaryRxCache(summary_struct_serde())
        full = plane.prepare("peer", summary(p=0.9, ts=1.0), now=0.0)
        delta = plane.prepare("peer", summary(p=0.5, ts=2.0), now=0.5)
        assert cache.resolve(decode_summary_frame(full.payload)) is not None
        resolved = cache.resolve(decode_summary_frame(delta.payload))
        assert resolved is not None
        assert resolved.mean_normal_prob == 0.5
        assert resolved.timestamp == 2.0

    def test_delta_without_baseline_is_stale(self):
        plane = make_plane(gate_threshold=0.0)
        cache = SummaryRxCache(summary_struct_serde())
        plane.prepare("peer", summary(p=0.9), now=0.0)
        delta = plane.prepare("peer", summary(p=0.5), now=0.5)
        assert cache.resolve(decode_summary_frame(delta.payload)) is None

    def test_epoch_mismatch_is_stale_until_resync(self):
        plane = make_plane(gate_threshold=0.0)
        cache = SummaryRxCache(summary_struct_serde())
        full = plane.prepare("peer", summary(p=0.9), now=0.0)
        cache.resolve(decode_summary_frame(full.payload))
        # Loss bumps the sender to a new epoch full; an old-epoch delta
        # hand-built against the stale baseline must not apply after it.
        plane.mark_lost("peer", 5)
        resync = plane.prepare("peer", summary(p=0.8), now=0.5)
        assert resync.kind == "full"
        new_epoch = decode_summary_frame(resync.payload).epoch
        cache.resolve(decode_summary_frame(resync.payload))
        old_units = quantize_summary(summary(p=0.8).to_payload())
        new_units = quantize_summary(summary(p=0.3).to_payload())
        wrong_epoch = (new_epoch + 1) % 256
        stale = decode_summary_frame(
            encode_summary_delta(wrong_epoch, old_units, new_units)
        )
        assert cache.resolve(stale) is None
        good = decode_summary_frame(
            encode_summary_delta(new_epoch, old_units, new_units)
        )
        assert cache.resolve(good) is not None


class TestRefreshCorridor:
    @pytest.fixture(scope="class")
    def refresh_run(self, labeled_dataset):
        from repro.core.scenario import ScenarioBuilder

        scenario = (
            ScenarioBuilder()
            .vehicles(6)
            .duration(3.0)
            .seed(7)
            .handover(0.25)
            .serde("struct")
            .observe()
            .collab(
                CollabConfig(
                    mode="refresh",
                    gate_threshold=0.3,
                    delta_encoding=True,
                    priority=True,
                )
            )
            .corridor(motorways=2, dataset=labeled_dataset)
        )
        result = scenario.run()
        return result, scenario

    def test_link_receives_refresh_summaries(self, refresh_run, audit_invariants):
        result, scenario = refresh_run
        audit_invariants(scenario)
        link = result.rsu_metrics["rsu-mw-link"]
        assert link.summaries_received > 0

    def test_plane_metered(self, refresh_run):
        result, scenario = refresh_run
        total_sent = sum(
            m.co_bytes_sent for m in result.rsu_metrics.values()
        )
        total_gated = sum(
            m.co_msgs_gated for m in result.rsu_metrics.values()
        )
        assert total_sent > 0
        assert total_gated > 0

    def test_both_priority_bands_used(self, refresh_run):
        _, scenario = refresh_run
        bands = {BAND_URGENT: 0, BAND_REFRESH: 0}
        for rsu in scenario.rsus.values():
            if rsu.collab is not None:
                for band, count in rsu.collab.msgs_sent.items():
                    bands[band] += count
        assert bands[BAND_URGENT] > 0
        assert bands[BAND_REFRESH] > 0

    def test_co_shaper_attached_to_motorways(self, refresh_run):
        _, scenario = refresh_run
        for name, rsu in scenario.rsus.items():
            if name == "rsu-mw-link":
                continue
            assert rsu.co_shaper is not None

    def test_obs_counters_folded(self, refresh_run):
        result, _ = refresh_run
        snapshot = result.obs
        assert snapshot is not None
        # Snapshot keys are (name, ((label, value), ...)) tuples.
        assert any(
            key[0] == "rsu.co_bytes_sent" and value > 0
            for key, value in snapshot.counters.items()
        )
        assert any(
            key[0] == "rsu.co_msgs_gated" and value > 0
            for key, value in snapshot.counters.items()
        )
        assert any(
            key[0] == "rsu.co_frame_bytes" for key in snapshot.histograms
        )
