"""Integration tests: full testbed scenarios."""

import numpy as np
import pytest

from repro.core import ScenarioSpec, TestbedScenario
from repro.core.system import default_training_dataset


@pytest.fixture(scope="module")
def training_dataset():
    return default_training_dataset(seed=11, n_cars=60)


@pytest.fixture(scope="module")
def small_single_result(training_dataset):
    config = ScenarioSpec(n_vehicles=16, duration_s=3.0, seed=7)
    scenario = TestbedScenario.single_rsu(config, dataset=training_dataset)
    return scenario.run()


class TestScenarioSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(n_vehicles=0)
        with pytest.raises(ValueError):
            ScenarioSpec(duration_s=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(handover_fraction=1.5)


class TestSingleRsu:
    def test_end_to_end_latency_under_50ms(self, small_single_result):
        """The paper's headline scalability claim at the small end."""
        assert 0.0 < small_single_result.mean_e2e_ms() < 55.0

    def test_latency_components_positive(self, small_single_result):
        assert small_single_result.mean_tx_ms() > 0.0
        assert small_single_result.mean_processing_ms() > 0.0
        assert small_single_result.mean_dissemination_ms() > 0.0

    def test_component_ordering(self, small_single_result):
        """Tx latency is small relative to processing + dissemination."""
        result = small_single_result
        assert result.mean_tx_ms() < result.mean_processing_ms()
        assert result.mean_e2e_ms() > result.mean_dissemination_ms()

    def test_per_vehicle_bandwidth_near_20kbps(self, small_single_result):
        """Fig. 6c: each vehicle uses ~20 Kb/s."""
        bandwidth = small_single_result.per_vehicle_bandwidth_bps()
        assert 10_000 < bandwidth < 30_000

    def test_every_vehicle_transmitted(self, small_single_result):
        for stats in small_single_result.vehicle_stats.values():
            assert stats.records_sent > 0

    def test_warnings_were_delivered(self, small_single_result):
        total = sum(
            s.warnings_received
            for s in small_single_result.vehicle_stats.values()
        )
        assert total > 0

    def test_deterministic_given_seed(self, training_dataset):
        def run():
            config = ScenarioSpec(n_vehicles=8, duration_s=2.0, seed=99)
            return TestbedScenario.single_rsu(
                config, dataset=training_dataset
            ).run()

        first, second = run(), run()
        assert first.mean_e2e_ms() == second.mean_e2e_ms()
        assert first.total_bandwidth_bps() == second.total_bandwidth_bps()

    def test_latency_grows_gently_with_vehicles(self, training_dataset):
        """Fig. 6a shape: 8 -> 64 vehicles adds only a few ms."""

        def mean_e2e(n):
            config = ScenarioSpec(n_vehicles=n, duration_s=3.0, seed=7)
            return (
                TestbedScenario.single_rsu(config, dataset=training_dataset)
                .run()
                .mean_e2e_ms()
            )

        small, large = mean_e2e(8), mean_e2e(64)
        assert large < small + 15.0
        assert large < 55.0


class TestCorridor:
    @pytest.fixture(scope="class")
    def corridor_result(self, training_dataset):
        config = ScenarioSpec(
            n_vehicles=16, duration_s=3.0, seed=7, handover_fraction=0.25
        )
        scenario = TestbedScenario.corridor(
            config, motorways=4, dataset=training_dataset
        )
        return scenario.run()

    def test_five_rsus(self, corridor_result):
        assert len(corridor_result.rsu_metrics) == 5
        assert "rsu-mw-link" in corridor_result.rsu_metrics

    def test_summaries_flowed_on_handover(self, corridor_result):
        sent = sum(
            m.summaries_sent for m in corridor_result.rsu_metrics.values()
        )
        received = corridor_result.rsu_metrics["rsu-mw-link"].summaries_received
        expected = 4 * int(16 * 0.25)
        assert sent == expected
        assert received == expected

    def test_link_rsu_sees_more_traffic(self, corridor_result):
        """Fig. 6d: the collaborating link RSU's bandwidth is higher
        than each motorway RSU's (CO-DATA + migrated vehicles)."""
        link = corridor_result.rsu_metrics["rsu-mw-link"].bandwidth_in_bps
        for name, metrics in corridor_result.rsu_metrics.items():
            if name != "rsu-mw-link":
                assert link > metrics.bandwidth_in_bps

    def test_dissemination_latency_in_paper_range(self, corridor_result):
        """Fig. 6b: dissemination is poll (10 ms mean 5) + handling
        (~7 ms) — of order 10-20 ms."""
        dissemination = corridor_result.mean_dissemination_ms()
        assert 6.0 < dissemination < 25.0

    def test_bandwidth_far_below_dsrc_limit(self, corridor_result):
        for metrics in corridor_result.rsu_metrics.values():
            assert metrics.bandwidth_in_bps < 27e6


class TestTripChurn:
    """Mid-run spawn/retire: the building blocks the city workload's
    trip-churn model maps onto at testbed scale."""

    @pytest.fixture(scope="class")
    def churn_result(self, training_dataset):
        from repro.geo import RoadType

        config = ScenarioSpec(n_vehicles=4, duration_s=3.0, seed=7)
        scenario = TestbedScenario.single_rsu(
            config, dataset=training_dataset
        )
        _, replay = TestbedScenario._train_replay_split(training_dataset)
        records = [r for r in replay if r.road_type is RoadType.MOTORWAY]
        scenario.spawn_vehicles(
            "rsu-motorway", 2, at_s=1.0, records=records
        )
        scenario.schedule_retire([1, 2], at_s=1.5)
        result = scenario.run()
        return scenario, result

    def test_spawned_vehicles_join_and_report(self, churn_result):
        scenario, result = churn_result
        # Ids 5 and 6 are assigned when the spawn fires, after the
        # four build-time vehicles (ids start at 1).
        assert set(result.vehicle_stats) == {1, 2, 3, 4, 5, 6}
        for car_id in (5, 6):
            assert result.vehicle_stats[car_id].records_sent > 0

    def test_retired_vehicles_stop_producing(self, churn_result):
        scenario, result = churn_result
        by_id = {v.car_id: v for v in scenario.vehicles}
        assert by_id[1].retired and by_id[2].retired
        assert not by_id[3].retired
        # Retired at 1.5 s of 3.0 s: roughly half the sends of a
        # vehicle that ran the full scenario.
        assert (
            result.vehicle_stats[1].records_sent
            < result.vehicle_stats[3].records_sent
        )

    def test_late_spawn_sends_less_than_full_run(self, churn_result):
        _, result = churn_result
        # Spawned at 1.0 s, so it had 2/3 of the runtime.
        assert (
            result.vehicle_stats[5].records_sent
            < result.vehicle_stats[3].records_sent
        )

    def test_retire_unknown_id_raises(self, training_dataset):
        config = ScenarioSpec(n_vehicles=2, duration_s=1.0, seed=7)
        scenario = TestbedScenario.single_rsu(
            config, dataset=training_dataset
        )
        scenario.schedule_retire([99], at_s=0.5)
        with pytest.raises(KeyError):
            scenario.run()

    def test_spawn_count_validated(self, training_dataset):
        config = ScenarioSpec(n_vehicles=2, duration_s=1.0, seed=7)
        scenario = TestbedScenario.single_rsu(
            config, dataset=training_dataset
        )
        with pytest.raises(ValueError):
            scenario.spawn_vehicles("rsu-motorway", 0, at_s=0.5, records=[])
