"""Tests for feature encoding and wire messages."""

import numpy as np
import pytest

from repro.core import PredictionSummary, WarningMessage, payload_to_record, record_to_payload
from repro.core.features import base_features, centralized_features, labels_of
from repro.dataset.schema import TelemetryRecord
from repro.geo import RoadType


def make_record(**overrides):
    defaults = dict(
        car_id=7,
        road_id=3,
        accel_ms2=-0.4,
        speed_kmh=98.6,
        hour=17,
        day=12,
        road_type=RoadType.MOTORWAY_LINK,
        road_mean_speed_kmh=110.0,
        label=1,
        timestamp=123.456,
    )
    defaults.update(overrides)
    return TelemetryRecord(**defaults)


class TestFeatureMatrices:
    def test_base_features_columns(self):
        X = base_features([make_record()])
        assert X.shape == (1, 3)
        assert X[0].tolist() == [98.6, -0.4, 17.0]

    def test_centralized_adds_road_type_code(self):
        X = centralized_features([make_record()])
        assert X.shape == (1, 4)
        motorway = centralized_features(
            [make_record(road_type=RoadType.MOTORWAY)]
        )
        assert X[0, 3] != motorway[0, 3]

    def test_labels_of(self):
        labels = labels_of([make_record(label=0), make_record(label=1)])
        assert labels.tolist() == [0, 1]

    def test_labels_of_unlabelled_raises(self):
        with pytest.raises(ValueError, match="no label"):
            labels_of([make_record(label=None)])


class TestTelemetryWireFormat:
    def test_round_trip(self):
        record = make_record()
        restored = payload_to_record(record_to_payload(record))
        assert restored.car_id == record.car_id
        assert restored.road_type is record.road_type
        assert restored.speed_kmh == pytest.approx(record.speed_kmh, abs=0.01)
        assert restored.label == record.label

    def test_unlabelled_round_trip(self):
        record = make_record(label=None)
        assert payload_to_record(record_to_payload(record)).label is None


class TestPredictionSummary:
    def test_round_trip(self):
        summary = PredictionSummary(
            car_id=1,
            mean_normal_prob=0.75,
            n_predictions=10,
            last_class=1,
            from_road_id=5,
            timestamp=2.5,
        )
        assert PredictionSummary.from_payload(summary.to_payload()) == summary

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictionSummary(1, 1.5, 10, 1, 5, 0.0)
        with pytest.raises(ValueError):
            PredictionSummary(1, 0.5, 0, 1, 5, 0.0)

    def test_merge_weights_by_count(self):
        a = PredictionSummary(1, 0.8, 30, 1, 5, 1.0)
        b = PredictionSummary(1, 0.2, 10, 0, 6, 2.0)
        merged = PredictionSummary.merge([a, b])
        assert merged.mean_normal_prob == pytest.approx(0.65)
        assert merged.n_predictions == 40
        assert merged.last_class == 0  # from the later summary
        assert merged.from_road_id == 6

    def test_merge_empty_returns_none(self):
        assert PredictionSummary.merge([]) is None

    def test_merge_different_cars_rejected(self):
        a = PredictionSummary(1, 0.5, 1, 1, 5, 0.0)
        b = PredictionSummary(2, 0.5, 1, 1, 5, 0.0)
        with pytest.raises(ValueError):
            PredictionSummary.merge([a, b])


class TestWarningMessage:
    def test_round_trip(self):
        warning = WarningMessage(
            car_id=3, road_id=9, detected_at=1.25, speed_kmh=180.0
        )
        assert WarningMessage.from_payload(warning.to_payload()) == warning

    def test_default_kind(self):
        warning = WarningMessage(1, 2, 0.0, 100.0)
        assert warning.kind == "aggressive_driving"


class TestRoadHourContextMemo:
    def test_matches_direct_computation(self):
        from repro.core.features import ROAD_TYPE_CODE, road_hour_context

        for road_type in RoadType:
            for hour in (0, 7, 23):
                assert road_hour_context(road_type, hour) == (
                    float(hour),
                    float(ROAD_TYPE_CODE[road_type]),
                )

    def test_cache_hits_on_repeats(self):
        from repro.core.features import road_hour_context

        road_hour_context.cache_clear()
        road_hour_context(RoadType.MOTORWAY, 8)
        before = road_hour_context.cache_info()
        for _ in range(5):
            road_hour_context(RoadType.MOTORWAY, 8)
        after = road_hour_context.cache_info()
        assert after.hits == before.hits + 5
        assert after.misses == before.misses

    def test_feature_columns_unchanged_by_memo(self):
        from repro.core.features import base_features

        records = [
            make_record(hour=h, road_type=rt, speed_kmh=60.0 + h)
            for h in range(24)
            for rt in (RoadType.MOTORWAY, RoadType.MOTORWAY_LINK)
        ]
        columns = base_features(records)
        assert columns.shape == (48, 3)
        assert columns[:, 2].tolist() == [float(r.hour) for r in records]
