"""Registry semantics plus the snapshot merge algebra.

The sharded engine merges per-worker snapshots in arbitrary arrival
order and starts the fold from an empty snapshot, so merge must be a
commutative monoid — pinned here with hypothesis over generated
snapshot triples.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    BATCH_SIZE_EDGES,
    MetricsRegistry,
    RegistrySnapshot,
    active,
    disable,
    enable,
    format_key,
)
from tests.strategies import metric_labels, metric_names


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("events", rsu="a")
    counter.inc()
    counter.inc(5)
    assert registry.snapshot().counter_value("events", rsu="a") == 6
    with pytest.raises(ValueError, match=">= 0"):
        counter.inc(-1)
    assert counter.value == 6


def test_counter_identity_by_name_and_labels():
    registry = MetricsRegistry()
    registry.counter("x", rsu="a").inc()
    registry.counter("x", rsu="b").inc(2)
    registry.counter("x", rsu="a").inc()  # same instrument as the first
    snap = registry.snapshot()
    assert snap.counter_value("x", rsu="a") == 2
    assert snap.counter_value("x", rsu="b") == 2
    assert snap.counter_total("x") == 4


def test_gauge_aggregations():
    registry = MetricsRegistry()
    registry.gauge("peak", agg="max").set(3.0)
    registry.gauge("peak", agg="max").set(1.0)
    registry.gauge("floor", agg="min").set(3.0)
    registry.gauge("floor", agg="min").set(1.0)
    registry.gauge("total", agg="sum").set(3.0)
    registry.gauge("total", agg="sum").set(1.0)
    snap = registry.snapshot()
    assert snap.gauge_value("peak") == 3.0
    assert snap.gauge_value("floor") == 1.0
    assert snap.gauge_value("total") == 4.0


def test_gauge_agg_conflict_rejected():
    registry = MetricsRegistry()
    registry.gauge("g", agg="max")
    with pytest.raises(ValueError, match="agg"):
        registry.gauge("g", agg="sum")
    with pytest.raises(ValueError, match="one of"):
        registry.gauge("h", agg="mean")


def test_unset_gauge_absent_from_snapshot():
    registry = MetricsRegistry()
    registry.gauge("never_set", agg="max")
    assert registry.snapshot().gauge_value("never_set") is None


def test_histogram_bucket_edges_are_le_semantics():
    registry = MetricsRegistry()
    hist = registry.histogram("size", BATCH_SIZE_EDGES)
    # Exactly on an edge falls in that bucket (le semantics), just
    # above falls in the next, above the last edge overflows.
    hist.observe(0.0)
    hist.observe(1.0)
    hist.observe(1.0001)
    hist.observe(500.0)
    hist.observe(500.0001)
    assert hist.counts[0] == 1  # <= 0
    assert hist.counts[1] == 1  # <= 1
    assert hist.counts[2] == 1  # <= 2
    assert hist.counts[-2] == 1  # <= 500
    assert hist.counts[-1] == 1  # overflow
    assert hist.count == 5
    assert hist.mean() == pytest.approx(1002.0002 / 5)


def test_histogram_rejects_bad_edges():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="strictly increase"):
        registry.histogram("h", (1.0, 1.0))
    with pytest.raises(ValueError, match="strictly increase"):
        registry.histogram("h2", (2.0, 1.0))
    with pytest.raises(ValueError, match="at least one"):
        registry.histogram("h3", ())


def test_histogram_edge_conflict_rejected():
    registry = MetricsRegistry()
    registry.histogram("h", (1.0, 2.0))
    with pytest.raises(ValueError, match="edges"):
        registry.histogram("h", (1.0, 3.0))


def test_format_key():
    assert format_key(("plain", ())) == "plain"
    assert format_key(("x", (("a", "1"), ("b", "2")))) == "x{a=1,b=2}"


# ----------------------------------------------------------------------
# Module-level activation
# ----------------------------------------------------------------------
def test_enable_disable_roundtrip():
    assert active() is None
    registry = enable()
    try:
        assert active() is registry
        own = MetricsRegistry()
        assert enable(own) is own
        assert active() is own
    finally:
        disable()
    assert active() is None


# ----------------------------------------------------------------------
# Merge algebra (hypothesis)
# ----------------------------------------------------------------------
_names = metric_names
_labels = metric_labels
_EDGE_SETS = [(1.0, 5.0), (0.5, 2.0, 8.0)]


@st.composite
def snapshots(draw):
    registry = MetricsRegistry()
    for _ in range(draw(st.integers(0, 4))):
        registry.counter(draw(_names), **draw(_labels)).inc(
            draw(st.integers(0, 1000))
        )
    for agg in draw(
        st.lists(st.sampled_from(["sum", "max", "min"]), max_size=2)
    ):
        # Name encodes the agg so generated snapshots never conflict.
        registry.gauge(f"gauge.{agg}", agg=agg).set(
            draw(st.floats(-100, 100, allow_nan=False))
        )
    for edge_index in draw(
        st.lists(st.integers(0, len(_EDGE_SETS) - 1), max_size=2)
    ):
        hist = registry.histogram(
            f"hist.{edge_index}", _EDGE_SETS[edge_index]
        )
        for value in draw(
            st.lists(st.floats(0, 20, allow_nan=False), max_size=5)
        ):
            hist.observe(value)
    return registry.snapshot()


@settings(max_examples=60, deadline=None)
@given(snapshots(), snapshots())
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@settings(max_examples=60, deadline=None)
@given(snapshots(), snapshots(), snapshots())
def test_merge_associative(a, b, c):
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.counters == right.counters
    assert set(left.histograms) == set(right.histograms)
    for key in left.histograms:
        l_edges, l_counts, l_sum, l_count = left.histograms[key]
        r_edges, r_counts, r_sum, r_count = right.histograms[key]
        assert (l_edges, l_counts, l_count) == (r_edges, r_counts, r_count)
        # float addition is not exactly associative for the sums
        assert l_sum == pytest.approx(r_sum, abs=1e-9)
    for key in left.gauges:
        agg, lv = left.gauges[key]
        _, rv = right.gauges[key]
        assert lv == pytest.approx(rv, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(snapshots())
def test_merge_empty_identity(snap):
    empty = RegistrySnapshot()
    assert empty.merge(snap) == snap
    assert snap.merge(empty) == snap


@settings(max_examples=60, deadline=None)
@given(snapshots())
def test_encode_decode_roundtrip(snap):
    assert RegistrySnapshot.decode(snap.encode()) == snap


def test_merge_conflicting_gauge_aggs_rejected():
    a = RegistrySnapshot(gauges={("g", ()): ("max", 1.0)})
    b = RegistrySnapshot(gauges={("g", ()): ("sum", 1.0)})
    with pytest.raises(ValueError, match="conflicting"):
        a.merge(b)


def test_merge_conflicting_histogram_edges_rejected():
    a = RegistrySnapshot(histograms={("h", ()): ((1.0,), (0, 0), 0.0, 0)})
    b = RegistrySnapshot(histograms={("h", ()): ((2.0,), (0, 0), 0.0, 0)})
    with pytest.raises(ValueError, match="conflicting"):
        a.merge(b)


def test_decode_rejects_garbage():
    with pytest.raises(ValueError, match="magic"):
        RegistrySnapshot.decode(b"\x00" * 32)
    with pytest.raises(ValueError, match="version"):
        RegistrySnapshot.decode(
            bytes([0xB5, 99]) + b"\x00" * 12
        )
