"""Snapshot transport over the shard shm rings.

The sharded engine publishes FRAME_METRICS frames (an encoded
:class:`RegistrySnapshot`, no routing header) on the same SPSC rings
that carry routed summary/telemetry/transfer frames; the drain loop
must dispatch on kind *before* peeking a routing target.
"""

from repro.obs.metrics import MetricsRegistry, RegistrySnapshot
from repro.parallel.barrier import (
    FRAME_METRICS,
    FRAME_SUMMARY,
    encode_summary,
    frame_target,
)
from repro.streaming.shm import ShmRing


def _sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("rsu.records_detected", rsu="rsu-mw-1").inc(42)
    registry.gauge("producer.retry_buffer_peak", agg="max").set(7)
    registry.histogram("microbatch.batch_size", (1.0, 10.0), rsu="a").observe(
        3.0
    )
    return registry.snapshot()


def test_snapshot_round_trips_through_ring():
    ring = ShmRing(1 << 16)
    try:
        snap = _sample_snapshot()
        ring.push(FRAME_METRICS, snap.encode())
        kind, buf = ring.pop()
        assert kind == FRAME_METRICS
        assert RegistrySnapshot.decode(buf) == snap
    finally:
        ring.close()
        ring.unlink()


def test_metrics_frames_interleave_with_routed_frames():
    """A drain that dispatches on kind first must recover both the
    snapshot and the routed frame's target, in order."""
    ring = ShmRing(1 << 16)
    try:
        snap = _sample_snapshot()
        ring.push(FRAME_SUMMARY, encode_summary("rsu-mw-2", 1.5, b"payload"))
        ring.push(FRAME_METRICS, snap.encode())
        frames = ring.drain()
        assert [kind for kind, _ in frames] == [FRAME_SUMMARY, FRAME_METRICS]
        assert frame_target(frames[0][1]) == "rsu-mw-2"
        assert RegistrySnapshot.decode(frames[1][1]) == snap
    finally:
        ring.close()
        ring.unlink()


def test_cumulative_snapshots_replace_not_accumulate():
    """The engine keeps the *latest* snapshot per shard; pushing a
    newer cumulative snapshot must fully supersede the older one."""
    registry = MetricsRegistry()
    counter = registry.counter("x")
    counter.inc(5)
    first = registry.snapshot()
    counter.inc(3)
    second = registry.snapshot()

    ring = ShmRing(1 << 16)
    try:
        ring.push(FRAME_METRICS, first.encode())
        ring.push(FRAME_METRICS, second.encode())
        latest = {}
        for kind, buf in ring.drain():
            assert kind == FRAME_METRICS
            latest[0] = RegistrySnapshot.decode(buf)
        assert latest[0].counter_value("x") == 8
    finally:
        ring.close()
        ring.unlink()
