"""Observer-effect golden test: instrumentation must never change results.

Every metric site reads simulation state; none may mutate it, consume
a record, or draw from a seeded RNG stream.  The proof: the same
seeded corridor with observability on and off produces bit-identical
warnings, events, and latency samples.
"""

from repro.core.scenario import paper_corridor


def _run(labeled_dataset, observe):
    builder = paper_corridor().vehicles(6).duration(2.0).serde("struct")
    if observe:
        builder = builder.observe()
    scenario = builder.corridor(motorways=2, dataset=labeled_dataset)
    result = scenario.run()
    return scenario, result


def _signature(scenario, result):
    return {
        "warnings": {
            name: rsu.warning_log() for name, rsu in scenario.rsus.items()
        },
        "events": {
            name: [
                (e.car_id, e.generated_at, e.arrived_at, e.detected_at, e.abnormal)
                for e in rsu.events
            ]
            for name, rsu in scenario.rsus.items()
        },
        "vehicles": {
            car: (
                stats.records_sent,
                stats.bytes_sent,
                stats.warnings_received,
                stats.e2e_latencies_s,
                stats.dissemination_latencies_s,
            )
            for car, stats in result.vehicle_stats.items()
        },
    }


def test_observability_is_bit_identical_to_off(labeled_dataset):
    plain_scenario, plain_result = _run(labeled_dataset, observe=False)
    observed_scenario, observed_result = _run(labeled_dataset, observe=True)
    assert _signature(plain_scenario, plain_result) == _signature(
        observed_scenario, observed_result
    )
    # And the observed run actually observed something.
    snap = observed_result.obs
    assert snap is not None
    assert snap.counter_total("rsu.records_detected") > 0
    assert plain_result.obs is None


def test_observability_disabled_after_run(labeled_dataset):
    from repro.obs.metrics import active
    from repro.obs.trace import active_recorder

    _run(labeled_dataset, observe=True)
    # run() must tear the module globals down even though it enabled them.
    assert active() is None
    assert active_recorder() is None
