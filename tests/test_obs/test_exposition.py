"""Prometheus text-format rendering."""

from repro.obs.expo import render_prometheus, write_prometheus
from repro.obs.metrics import MetricsRegistry


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("rsu.records_detected", rsu="rsu-mw-1").inc(10)
    registry.counter("rsu.records_detected", rsu="rsu-mw-2").inc(20)
    registry.gauge("rsu.co_staleness_s", agg="max", rsu="rsu-link").set(0.25)
    hist = registry.histogram("microbatch.batch_size", (1.0, 5.0), rsu="a")
    hist.observe(1.0)
    hist.observe(3.0)
    hist.observe(99.0)
    return registry.snapshot()


def test_counter_rendering():
    text = render_prometheus(_snapshot())
    assert "# TYPE repro_rsu_records_detected_total counter" in text
    assert 'repro_rsu_records_detected_total{rsu="rsu-mw-1"} 10' in text
    assert 'repro_rsu_records_detected_total{rsu="rsu-mw-2"} 20' in text
    # one TYPE header per metric name, not per label set
    assert text.count("# TYPE repro_rsu_records_detected_total") == 1


def test_gauge_rendering():
    text = render_prometheus(_snapshot())
    assert "# TYPE repro_rsu_co_staleness_s gauge" in text
    assert 'repro_rsu_co_staleness_s{rsu="rsu-link"} 0.25' in text


def test_histogram_cumulative_buckets():
    lines = render_prometheus(_snapshot()).splitlines()
    bucket_lines = [
        line for line in lines if line.startswith("repro_microbatch_batch_size_bucket")
    ]
    # le buckets are cumulative and end at +Inf == count
    assert bucket_lines == [
        'repro_microbatch_batch_size_bucket{rsu="a",le="1"} 1',
        'repro_microbatch_batch_size_bucket{rsu="a",le="5"} 2',
        'repro_microbatch_batch_size_bucket{rsu="a",le="+Inf"} 3',
    ]
    assert 'repro_microbatch_batch_size_sum{rsu="a"} 103' in lines
    assert 'repro_microbatch_batch_size_count{rsu="a"} 3' in lines


def test_empty_snapshot_renders_empty():
    assert render_prometheus(MetricsRegistry().snapshot()) == ""


def test_write_prometheus(tmp_path):
    path = tmp_path / "metrics.prom"
    write_prometheus(_snapshot(), path)
    content = path.read_text()
    assert content.endswith("\n")
    assert "repro_rsu_records_detected_total" in content
