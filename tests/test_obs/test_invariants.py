"""The invariant audit itself: conservation on clean runs, violation
detection when the books are cooked, report plumbing."""

import pytest

from repro.core.system import TestbedScenario
from repro.obs.audit import InvariantReport, assert_invariants, audit_scenario


def _small_corridor(**overrides):
    builder = (
        TestbedScenario.builder()
        .vehicles(overrides.pop("n_vehicles", 4))
        .duration(overrides.pop("duration_s", 2.0))
        .seed(5)
        .serde("struct")
    )
    for name, value in overrides.items():
        builder = getattr(builder, name)(value)
    return builder.corridor(motorways=2)


def test_clean_run_conserves_everything():
    scenario = _small_corridor()
    scenario.run()
    report = audit_scenario(scenario)
    assert report.ok
    assert report.failures == []
    terms = report.terms
    assert terms["telemetry"]["records_sent"] == sum(
        v.stats.records_sent for v in scenario.vehicles
    )
    # every named invariant produced terms
    assert "warnings" in terms
    assert any(name.startswith("detection[") for name in terms)
    assert any(name.startswith("collaboration[") for name in terms)


def test_handover_run_classifies_departed_warnings():
    scenario = _small_corridor(handover=0.5, duration_s=3.0)
    scenario.run()
    report = assert_invariants(scenario)
    # Handover happened: departures were recorded for the audit.
    assert any(v._departures for v in scenario.vehicles)
    warning_terms = report.terms["warnings"]
    assert warning_terms["warnings_emitted"] == (
        warning_terms["warnings_delivered"]
        + warning_terms["warnings_orphaned"]
        + warning_terms["warnings_late"]
        + warning_terms["warnings_pending"]
    )


def test_cooked_books_are_caught():
    scenario = _small_corridor()
    scenario.run()
    # Claim one extra warning was issued: conservation must fail loudly.
    rsu = next(iter(scenario.rsus.values()))
    rsu.warnings_issued += 1
    report = audit_scenario(scenario)
    assert not report.ok
    assert any("warning" in failure for failure in report.failures)
    with pytest.raises(AssertionError, match="warning"):
        report.check()
    with pytest.raises(AssertionError):
        assert_invariants(scenario)
    rsu.warnings_issued -= 1  # restore (scenario objects are cheap, but be tidy)


def test_telemetry_violation_caught():
    scenario = _small_corridor()
    scenario.run()
    vehicle = scenario.vehicles[0]
    vehicle.stats.records_sent += 7
    report = audit_scenario(scenario)
    assert not report.ok
    assert any("telemetry" in failure for failure in report.failures)


def test_report_to_dict_shape():
    report = InvariantReport(
        terms={"telemetry": {"a": 1}}, failures=["broken"]
    )
    as_dict = report.to_dict()
    assert as_dict == {
        "ok": False,
        "terms": {"telemetry": {"a": 1}},
        "failures": ["broken"],
    }
