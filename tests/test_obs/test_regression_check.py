"""The throughput-regression gate must not pass silently when a ratio
metric vanishes from the candidate artifact.

Historically ``regression_check.py`` intersected baseline and
candidate metric names, so a harness change that *stopped measuring*
a guaranteed ratio (e.g. the serde decode ratio) sailed through the
gate.  Missing ratio metrics must now fail with the metric named;
missing absolute throughputs stay skippable (host-dependent, and old
artifacts legitimately lack new ones).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def regression_check():
    spec = importlib.util.spec_from_file_location(
        "regression_check", REPO_ROOT / "benchmarks" / "regression_check.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("regression_check", module)
    spec.loader.exec_module(module)
    return module


def _bench1_report(
    speedup=4.0,
    decode_ratio=8.0,
    obs_ratio=0.995,
    records_per_s=500_000,
    include_obs=True,
):
    report = {
        "bench": "BENCH_1",
        "mode": "full",
        "pass": True,
        "rsu_micro_batch": {
            "speedup": speedup,
            "variants": {
                "columnar+struct": {"records_per_s": records_per_s}
            },
        },
        "serde": {
            "decode_throughput_ratio": decode_ratio,
            "struct": {"batch_decode_records_per_s": records_per_s * 2},
        },
    }
    if include_obs:
        report["obs_overhead"] = {"ratio": obs_ratio}
    return report


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return path


class TestMissingMetrics:
    def test_missing_ratio_metric_fails(
        self, regression_check, tmp_path, capsys
    ):
        baseline = _write(tmp_path, "baseline.json", _bench1_report())
        candidate = _write(
            tmp_path, "candidate.json", _bench1_report(include_obs=False)
        )
        rc = regression_check.main(
            ["--candidate", str(candidate), "--baseline", str(baseline)]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "obs_overhead_ratio" in captured.out
        assert "MISSING" in captured.out
        assert "obs_overhead_ratio (missing)" in captured.err

    def test_missing_absolute_metric_is_skipped(
        self, regression_check, tmp_path, capsys
    ):
        # BENCH_3 carries a free-form regression_metrics dict, so a
        # candidate can legitimately lack an absolute metric the
        # baseline has — that stays a skip, not a failure.
        baseline = _write(
            tmp_path,
            "baseline.json",
            {
                "bench": "BENCH_3",
                "pass": True,
                "full": {
                    "regression_metrics": {
                        "window_speedup": 4.0,
                        "window_records_per_s": 100_000,
                    }
                },
            },
        )
        candidate = _write(
            tmp_path,
            "candidate.json",
            {
                "bench": "BENCH_3",
                "mode": "full",
                "full": {"regression_metrics": {"window_speedup": 4.0}},
            },
        )
        rc = regression_check.main(
            ["--candidate", str(candidate), "--baseline", str(baseline)]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "missing from candidate (absolute; skipped)" in captured.out

    def test_missing_obs_in_old_baseline_still_passes(
        self, regression_check, tmp_path
    ):
        """Old committed baselines predate obs_overhead; a candidate
        that *adds* the metric must not fail against them."""
        baseline = _write(
            tmp_path, "baseline.json", _bench1_report(include_obs=False)
        )
        candidate = _write(tmp_path, "candidate.json", _bench1_report())
        rc = regression_check.main(
            ["--candidate", str(candidate), "--baseline", str(baseline)]
        )
        assert rc == 0


class TestRegressionStillCaught:
    def test_regressed_ratio_fails(self, regression_check, tmp_path, capsys):
        baseline = _write(tmp_path, "baseline.json", _bench1_report())
        candidate = _write(
            tmp_path, "candidate.json", _bench1_report(decode_ratio=2.0)
        )
        rc = regression_check.main(
            ["--candidate", str(candidate), "--baseline", str(baseline)]
        )
        assert rc == 1
        assert "serde_decode_ratio" in capsys.readouterr().err

    def test_healthy_candidate_passes(self, regression_check, tmp_path):
        baseline = _write(tmp_path, "baseline.json", _bench1_report())
        candidate = _write(
            tmp_path,
            "candidate.json",
            _bench1_report(speedup=4.2, decode_ratio=8.5, obs_ratio=1.0),
        )
        rc = regression_check.main(
            ["--candidate", str(candidate), "--baseline", str(baseline)]
        )
        assert rc == 0

    def test_obs_overhead_regression_fails(
        self, regression_check, tmp_path, capsys
    ):
        baseline = _write(tmp_path, "baseline.json", _bench1_report())
        candidate = _write(
            tmp_path, "candidate.json", _bench1_report(obs_ratio=0.5)
        )
        rc = regression_check.main(
            ["--candidate", str(candidate), "--baseline", str(baseline)]
        )
        assert rc == 1
        assert "obs_overhead_ratio" in capsys.readouterr().err
