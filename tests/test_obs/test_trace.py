"""Span recorder: nesting, ring bounds, registry folding, no-op path."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    SpanRecorder,
    active_recorder,
    disable_tracing,
    enable_tracing,
    span,
)


def test_span_nesting_depth_and_parent():
    recorder = SpanRecorder()
    with recorder.span("outer"):
        with recorder.span("inner"):
            with recorder.span("leaf"):
                pass
    # Completion order: leaf, inner, outer.
    leaf, inner, outer = recorder.spans()
    assert (leaf.name, leaf.depth, leaf.parent) == ("leaf", 2, "inner")
    assert (inner.name, inner.depth, inner.parent) == ("inner", 1, "outer")
    assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)
    assert all(record.duration_s >= 0 for record in recorder.spans())


def test_span_stack_unwinds_on_exception():
    recorder = SpanRecorder()
    with pytest.raises(RuntimeError):
        with recorder.span("outer"):
            with recorder.span("inner"):
                raise RuntimeError("boom")
    assert recorder._stack == []
    assert recorder.names() == ["inner", "outer"]


def test_span_labels_sorted():
    recorder = SpanRecorder()
    with recorder.span("s", rsu="north", shard=1):
        pass
    (record,) = recorder.spans("s")
    assert record.labels == (("rsu", "north"), ("shard", "1"))


def test_ring_bounded_and_counts_drops():
    recorder = SpanRecorder(capacity=2)
    for index in range(5):
        with recorder.span(f"s{index}"):
            pass
    assert len(recorder) == 2
    assert recorder.dropped == 3
    assert recorder.names() == ["s3", "s4"]


def test_summary_shape():
    recorder = SpanRecorder()
    for _ in range(3):
        with recorder.span("a"):
            pass
    summary = recorder.summary()
    assert summary["a"]["count"] == 3
    assert summary["a"]["total_ms"] >= summary["a"]["max_ms"]
    assert summary["a"]["mean_ms"] == pytest.approx(
        summary["a"]["total_ms"] / 3
    )


def test_fold_into_registry():
    recorder = SpanRecorder()
    with recorder.span("rsu.detect"):
        pass
    registry = MetricsRegistry()
    recorder.fold_into(registry)
    stats = registry.snapshot().histogram_stats("span.rsu.detect_ms")
    assert stats["count"] == 1


def test_module_level_span_noop_when_disabled():
    assert active_recorder() is None
    context = span("anything")
    with context:
        pass  # must not raise, records nothing anywhere
    # The no-op context is a shared singleton — zero allocation per site.
    assert span("other") is context


def test_module_level_span_records_when_enabled():
    recorder = enable_tracing()
    try:
        assert active_recorder() is recorder
        with span("rsu.batch", rsu="x"):
            pass
        assert recorder.names() == ["rsu.batch"]
    finally:
        disable_tracing()
    assert active_recorder() is None


def test_capacity_validation():
    with pytest.raises(ValueError, match=">= 1"):
        SpanRecorder(capacity=0)
