"""Tests for generator-based processes."""

import pytest

from repro.simkernel import Process, ProcessState, Simulator


class TestProcess:
    def test_yields_advance_time(self):
        sim = Simulator()
        ticks = []

        def beacon():
            for _ in range(3):
                ticks.append(round(sim.now, 6))
                yield 0.1

        Process(sim, beacon())
        sim.run()
        assert ticks == [0.0, 0.1, 0.2]

    def test_result_captured_on_finish(self):
        sim = Simulator()

        def worker():
            yield 0.1
            return 42

        process = Process(sim, worker())
        sim.run()
        assert process.state is ProcessState.FINISHED
        assert process.result == 42
        assert not process.alive

    def test_start_at_delays_first_resume(self):
        sim = Simulator()
        times = []

        def worker():
            times.append(sim.now)
            yield 0.0

        Process(sim, worker(), start_at=2.0)
        sim.run()
        assert times == [2.0]

    def test_interrupt_stops_process(self):
        sim = Simulator()
        ticks = []

        def worker():
            while True:
                ticks.append(sim.now)
                yield 0.1

        process = Process(sim, worker())
        sim.at(0.25, process.interrupt)
        sim.run()
        assert process.state is ProcessState.INTERRUPTED
        assert len(ticks) == 3  # t=0, 0.1, 0.2

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()

        def worker():
            yield 0.1

        process = Process(sim, worker())
        sim.run()
        process.interrupt()
        assert process.state is ProcessState.FINISHED

    def test_negative_yield_fails_process(self):
        sim = Simulator()

        def worker():
            yield -1.0

        process = Process(sim, worker())
        with pytest.raises(ValueError):
            sim.run()
        assert process.state is ProcessState.FAILED

    def test_exception_in_body_is_surfaced(self):
        sim = Simulator()

        def worker():
            yield 0.1
            raise RuntimeError("boom")

        process = Process(sim, worker())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert process.state is ProcessState.FAILED

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def worker(name, period):
            for _ in range(2):
                trace.append((name, round(sim.now, 6)))
                yield period

        Process(sim, worker("fast", 0.1), name="fast")
        Process(sim, worker("slow", 0.3), name="slow")
        sim.run()
        assert trace == [
            ("fast", 0.0),
            ("slow", 0.0),
            ("fast", 0.1),
            ("slow", 0.3),
        ]
