"""Tests for named random streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.simkernel import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "dataset") == derive_seed(42, "dataset")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=30))
    def test_fits_in_63_bits(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**63


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_independent_of_creation_order(self):
        first = RngRegistry(7)
        a1 = first.stream("a").random(5).tolist()

        second = RngRegistry(7)
        second.stream("b").random(100)  # consume another stream first
        a2 = second.stream("a").random(5).tolist()
        assert a1 == a2

    def test_reset_replays_stream(self):
        registry = RngRegistry(7)
        before = registry.stream("a").random(3).tolist()
        after = registry.reset("a").random(3).tolist()
        assert before == after

    def test_contains(self):
        registry = RngRegistry(0)
        assert "a" not in registry
        registry.stream("a")
        assert "a" in registry

    def test_different_roots_differ(self):
        a = RngRegistry(1).stream("x").random(4).tolist()
        b = RngRegistry(2).stream("x").random(4).tolist()
        assert a != b


class TestSubstreamState:
    """Mid-stream capture/restore: what a cross-shard vehicle transfer
    uses to continue the exact same draw sequence on another process."""

    def test_substream_name_joins_parts(self):
        from repro.simkernel.rng import substream_name

        assert substream_name("vehicle", 42) == "vehicle.42"
        assert substream_name("shard", 1, "dsrc") == "shard.1.dsrc"

    def test_state_round_trip_continues_sequence(self):
        source = RngRegistry(7)
        stream = source.stream("vehicle.9")
        stream.random(13)  # advance mid-stream
        state = source.state_of("vehicle.9")
        expected = stream.random(5).tolist()

        other = RngRegistry(7)  # fresh registry, as in a worker process
        other.stream("vehicle.9").random(99)  # position differs
        restored = other.restore("vehicle.9", state)
        assert restored.random(5).tolist() == expected
        assert restored is other.stream("vehicle.9")  # same cached object

    def test_state_survives_pickle(self):
        import pickle

        registry = RngRegistry(3)
        registry.stream("x").random(7)
        state = pickle.loads(pickle.dumps(registry.state_of("x")))
        expected = registry.stream("x").random(4).tolist()
        fresh = RngRegistry(3)
        assert fresh.restore("x", state).random(4).tolist() == expected

    def test_shard_count_does_not_change_streams(self):
        """Per-actor draws depend only on (root seed, stream name) —
        never on which process owns the actor or how many exist."""
        whole = RngRegistry(11)
        draws = {
            name: whole.stream(name).random(3).tolist()
            for name in ("vehicle.1", "vehicle.5", "jitter.rsu-mw-2")
        }
        # Simulate two shards, each creating only its own streams.
        shard_a = RngRegistry(11)
        shard_b = RngRegistry(11)
        assert shard_a.stream("vehicle.1").random(3).tolist() == draws["vehicle.1"]
        assert shard_b.stream("jitter.rsu-mw-2").random(3).tolist() == (
            draws["jitter.rsu-mw-2"]
        )
        assert shard_b.stream("vehicle.5").random(3).tolist() == draws["vehicle.5"]
