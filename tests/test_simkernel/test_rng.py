"""Tests for named random streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.simkernel import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "dataset") == derive_seed(42, "dataset")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=30))
    def test_fits_in_63_bits(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**63


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_are_independent_of_creation_order(self):
        first = RngRegistry(7)
        a1 = first.stream("a").random(5).tolist()

        second = RngRegistry(7)
        second.stream("b").random(100)  # consume another stream first
        a2 = second.stream("a").random(5).tolist()
        assert a1 == a2

    def test_reset_replays_stream(self):
        registry = RngRegistry(7)
        before = registry.stream("a").random(3).tolist()
        after = registry.reset("a").random(3).tolist()
        assert before == after

    def test_contains(self):
        registry = RngRegistry(0)
        assert "a" not in registry
        registry.stream("a")
        assert "a" in registry

    def test_different_roots_differ(self):
        a = RngRegistry(1).stream("x").random(4).tolist()
        b = RngRegistry(2).stream("x").random(4).tolist()
        assert a != b
