"""Tests for the simulated clock."""

import pytest

from repro.simkernel import SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_raises(self):
        clock = SimClock(3.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(2.9)

    def test_now_ms_converts(self):
        clock = SimClock(0.050)
        assert clock.now_ms == pytest.approx(50.0)

    def test_repr_contains_time(self):
        assert "1.5" in repr(SimClock(1.5))
