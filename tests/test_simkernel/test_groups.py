"""Coalesced tick groups (:meth:`Simulator.every_group`).

The contract under test: a coalesced recurrence fires on exactly the
same float grid, in exactly the same order, as the independent
:meth:`Simulator.every` recurrences it replaces — bit-for-bit, so that
switching the vehicle/RSU loops onto group ticks cannot move a single
trajectory.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Simulator


class TestGroupGrid:
    def test_single_member_matches_every(self):
        a, b = Simulator(), Simulator()
        fired_a, fired_b = [], []
        a.every(0.1, lambda: fired_a.append(a.now), start=0.05, until=2.0)
        b.every_group(0.1, lambda: fired_b.append(b.now), start=0.05, until=2.0)
        a.run()
        b.run()
        assert fired_b == fired_a  # exact float equality

    def test_members_fire_in_registration_order(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.every_group(
                0.1,
                lambda tag=tag: order.append((sim.now, tag)),
                start=0.1,
                until=0.35,
            )
        sim.run()
        assert order == [
            (0.1, "first"),
            (0.1, "second"),
            (0.1, "third"),
            (0.2, "first"),
            (0.2, "second"),
            (0.2, "third"),
            (0.30000000000000004, "first"),
            (0.30000000000000004, "second"),
            (0.30000000000000004, "third"),
        ]

    def test_distinct_phases_do_not_coalesce(self):
        sim = Simulator()
        sim.every_group(0.1, lambda: None, start=0.1)
        sim.every_group(0.1, lambda: None, start=0.15)
        assert len(sim._groups[0.1]) == 2

    def test_same_phase_coalesces_into_one_queue_entry(self):
        sim = Simulator()
        for _ in range(10):
            sim.every_group(0.1, lambda: None, start=0.1, until=1.0)
        assert len(sim._groups[0.1]) == 1
        assert len(sim.queue) == 1

    def test_group_firing_counts_as_one_event(self):
        # Documented contract difference: N members, one events_fired.
        sim = Simulator()
        for _ in range(5):
            sim.every_group(0.1, lambda: None, start=0.1, until=0.15)
        sim.run()
        assert sim.events_fired == 1


class TestCancellation:
    def test_recurrence_cancel_from_inside_callback(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            recurrence.cancel()

        recurrence = sim.every(0.1, tick)
        sim.run()
        assert fired == [pytest.approx(0.1)]
        assert recurrence.next_time is None

    def test_group_member_cancel_from_inside_own_callback(self):
        sim = Simulator()
        fired = []

        def tick():
            fired.append(sim.now)
            handle.cancel()

        handle = sim.every_group(0.1, tick)
        sim.every_group(0.1, lambda: fired.append("other"), until=0.35)
        sim.run()
        assert fired == [pytest.approx(0.1), "other", "other", "other"]
        assert handle.next_time is None

    def test_member_cancelled_mid_dispatch_does_not_fire(self):
        # A member cancelling a *later* member in the same instant must
        # suppress that firing — exactly as cancelling an independent
        # ``every``'s pending event at the same instant would.
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            third.cancel()

        first_h = sim.every_group(0.1, first, start=0.1, until=0.15)
        second = sim.every_group(
            0.1, lambda: order.append("second"), start=0.1, until=0.15
        )
        third = sim.every_group(
            0.1, lambda: order.append("third"), start=0.1, until=0.15
        )
        sim.run()
        assert order == ["first", "second"]
        assert third.next_time is None

    def test_cancelling_all_members_drops_the_group(self):
        sim = Simulator()
        handles = [
            sim.every_group(0.1, lambda: None, start=0.1) for _ in range(3)
        ]
        for handle in handles:
            handle.cancel()
        assert sim._groups == {}
        assert not sim.queue
        sim.run()  # nothing fires, nothing breaks

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        a = sim.every_group(0.1, lambda: None, start=0.1)
        b = sim.every_group(0.1, lambda: None, start=0.1)
        a.cancel()
        a.cancel()
        group = b._member.group
        assert group.live == 1
        b.cancel()
        assert sim._groups == {}


class TestNextTime:
    def test_next_time_tracks_the_grid(self):
        sim = Simulator()
        seen = []
        handle = None

        def tick():
            seen.append((sim.now, handle.next_time))

        handle = sim.every_group(0.1, tick, start=0.1, until=0.45)
        sim.run()
        # Mid-dispatch the group still shows the instant being fired
        # (the documented contract caveat); settled state advances.
        assert [now for now, _ in seen] == [inside for _, inside in seen]

    def test_next_time_none_after_final_firing(self):
        sim = Simulator()
        recurrence = sim.every(0.1, lambda: None, until=0.35)
        group = sim.every_group(0.1, lambda: None, until=0.35)
        sim.run()
        assert recurrence.next_time is None
        assert group.next_time is None

    def test_next_time_none_when_never_scheduled(self):
        sim = Simulator()
        handle = sim.every_group(0.1, lambda: None, start=0.5, until=0.4)
        assert handle.next_time is None
        sim.run()
        assert sim.events_fired == 0

    def test_resume_from_next_time_continues_the_grid(self):
        # The sharded engine detaches at next_time and resumes with
        # ``start=`` on another simulator; the grids must agree.
        straight = Simulator()
        expected = []
        straight.every_group(0.1, lambda: expected.append(straight.now), until=2.0)
        straight.run()

        sim = Simulator()
        out = []
        handle = sim.every_group(0.1, lambda: out.append(sim.now), until=2.0)
        sim.run_until(0.95)
        resume_at = handle.next_time
        handle.cancel()
        sim.every_group(0.1, lambda: out.append(sim.now), start=resume_at, until=2.0)
        sim.run()
        assert out == expected


class TestDynamicMembership:
    def test_join_between_ticks_fires_after_existing_members(self):
        sim = Simulator()
        order = []
        sim.every_group(0.1, lambda: order.append("old"), start=0.1, until=0.25)

        def join():
            sim.every_group(
                0.1, lambda: order.append("new"), start=0.2, until=0.25
            )

        sim.at(0.15, join)
        sim.run()
        assert order == ["old", "old", "new"]

    def test_same_instant_join_mid_dispatch_fires_this_tick(self):
        sim = Simulator()
        order = []

        def spawn():
            order.append("spawner")
            sim.every_group(
                0.1, lambda: order.append("spawned"), start=sim.now, until=0.15
            )

        sim.every_group(0.1, spawn, start=0.1, until=0.15)
        sim.run()
        assert order == ["spawner", "spawned"]

    def test_phase_aligned_group_created_mid_dispatch_merges(self):
        # The RSU-restart-inside-a-fault-callback shape: a member
        # callback creates a recurrence aligned with the group's *next*
        # tick.  The groups must merge (one queue entry), with the new
        # registration's members fired first at the merged tick — the
        # earlier-sequence order independent ``every`` events have.
        sim = Simulator()
        order = []
        created = []

        def spawn():
            order.append(("spawner", sim.now))
            if not created:
                created.append(
                    sim.every_group(
                        0.1,
                        lambda: order.append(("spawned", sim.now)),
                        start=sim.now + 0.1,
                        until=0.35,
                    )
                )

        sim.every_group(0.1, spawn, start=0.1, until=0.35)
        sim.run()
        assert len(sim.queue) == 0
        times = [t for _, t in order]
        assert times == sorted(times)
        assert [tag for tag, t in order if t == pytest.approx(0.2)] == [
            "spawned",
            "spawner",
        ]


class TestIndexedBucket:
    """Churn-scale buckets: many phase-split groups on one interval."""

    def test_bucket_converts_past_threshold_and_still_coalesces(self):
        from repro.simkernel.simulator import INDEX_THRESHOLD

        sim = Simulator()
        fired = []
        n = INDEX_THRESHOLD + 4
        for k in range(n):
            start = 0.1 + k * 0.001  # distinct phases: one group each
            sim.every_group(
                1.0, lambda k=k: fired.append(k), start=start, until=1.0
            )
        bucket = sim._groups[1.0]
        assert bucket.by_time is not None
        assert bucket.groups == []
        assert len(bucket) == n
        # A registration phase-aligned with an indexed group must still
        # coalesce into it rather than spawn a duplicate.
        sim.every_group(
            1.0, lambda: fired.append("joined"), start=0.1, until=1.0
        )
        assert len(bucket) == n
        sim.run()
        assert fired[:2] == [0, "joined"]
        assert [f for f in fired if f != "joined"] == list(range(n))

    def test_indexed_bucket_drains_as_groups_finish(self):
        from repro.simkernel.simulator import INDEX_THRESHOLD

        sim = Simulator()
        n = INDEX_THRESHOLD + 2
        for k in range(n):
            sim.every_group(
                1.0, lambda: None, start=0.1 + k * 0.001, until=1.0
            )
        assert sim._groups[1.0].by_time is not None
        sim.run()
        # Every group fired its last tick and deregistered; the empty
        # bucket itself is dropped from the interval registry.
        assert 1.0 not in sim._groups

    def test_cancel_removes_indexed_entry(self):
        from repro.simkernel.simulator import INDEX_THRESHOLD

        sim = Simulator()
        handles = []
        n = INDEX_THRESHOLD + 2
        for k in range(n):
            handles.append(
                sim.every_group(1.0, lambda: None, start=0.1 + k * 0.001)
            )
        bucket = sim._groups[1.0]
        assert bucket.by_time is not None
        for handle in handles:
            handle.cancel()
        assert 1.0 not in sim._groups

    def test_reschedule_keeps_index_consistent(self):
        from repro.simkernel.simulator import INDEX_THRESHOLD

        sim = Simulator()
        fired = []
        n = INDEX_THRESHOLD + 2
        for k in range(n):
            sim.every_group(
                0.5,
                lambda k=k: fired.append((k, round(sim.now, 6))),
                start=0.1 + k * 0.01,
                until=2.0,
            )
        sim.run()
        bucket_absent = 0.5 not in sim._groups
        assert bucket_absent
        # Each recurrence fired its full grid — a stale index entry
        # after a reschedule would have dropped or duplicated ticks.
        for k in range(n):
            ticks = [t for kk, t in fired if kk == k]
            assert len(ticks) == 4  # 0.1+δ, 0.6+δ, 1.1+δ, 1.6+δ
            assert ticks == sorted(ticks)


INTERVALS = (0.01, 0.05, 0.1, 0.25)
PHASES = (0.0, 0.005, 0.01, 0.05, 0.1)


@st.composite
def recurrence_specs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    specs = []
    for _ in range(n):
        interval = draw(st.sampled_from(INTERVALS))
        phase = draw(st.sampled_from(PHASES))
        until = draw(st.sampled_from((0.5, 1.0, None)))
        specs.append((interval, phase, until))
    return specs


class TestEveryGroupEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(specs=recurrence_specs())
    def test_group_grids_bit_identical_to_independent_every(self, specs):
        """The tentpole invariant: every ``every_group`` recurrence fires
        at exactly the instants (bit-for-bit floats) its independent
        ``every`` twin would, and members coalesced into one group keep
        their registration order at every shared instant.

        Total cross-recurrence order is *not* asserted when recurrences
        of different intervals collide on an exact float instant — the
        one documented contract relaxation (a measure-zero event for
        the RNG-phased production loops; the corridor golden suites
        arbitrate it end to end).
        """
        horizon = 1.2

        def run(schedule):
            sim = Simulator()
            fired = []
            for index, (interval, phase, until) in enumerate(specs):
                schedule(sim)(
                    interval,
                    lambda index=index, sim=sim: fired.append((sim.now, index)),
                    start=phase if phase > 0.0 else None,
                    until=until,
                )
            sim.run_until(horizon)
            return fired

        independent = run(lambda sim: sim.every)
        grouped = run(lambda sim: sim.every_group)

        for index in range(len(specs)):
            assert [t for t, i in grouped if i == index] == [
                t for t, i in independent if i == index
            ]

        # Same (interval, first-instant) -> same group: registration
        # order must survive at every shared instant, in both modes.
        def combo(index):
            interval, phase, _ = specs[index]
            return (interval, phase if phase > 0.0 else interval)

        for fired in (independent, grouped):
            by_instant = {}
            for t, i in fired:
                by_instant.setdefault(t, []).append(i)
            for t, indices in by_instant.items():
                for key in {combo(i) for i in indices}:
                    members = [i for i in indices if combo(i) == key]
                    assert members == sorted(members)
