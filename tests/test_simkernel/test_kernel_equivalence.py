"""End-to-end kernel equivalence: calendar queue + group ticks vs the
reference heap with independent recurrences.

The event-kernel overhaul must be invisible to the system above it —
same warnings, same summary chain, same latency statistics, bit for
bit, on a real corridor scenario.  The legacy perf-baseline switches
(seed-faithful vehicle tick / broker fetch / consumer poll / run loop)
must be equally invisible: they exist so the perf harness can measure
the pre-overhaul baseline in-tree, not to change behaviour.
"""

import pytest

from repro.core.scenario import ScenarioSpec
from repro.core.system import TestbedScenario
from repro.core.vehicle import VehicleNode
from repro.simkernel import Simulator
from repro.simkernel.events import EventQueue
from repro.simkernel.reference import ReferenceEventQueue
from repro.streaming.broker import Broker
from repro.streaming.consumer import Consumer


def run_corridor():
    spec = ScenarioSpec(n_vehicles=4, duration_s=2.0, seed=5)
    result = TestbedScenario.corridor(spec).run()
    signature = tuple(
        (
            name,
            metrics.warnings_issued,
            metrics.n_events,
            metrics.summaries_sent,
            metrics.summaries_received,
        )
        for name, metrics in sorted(result.rsu_metrics.items())
    )
    return signature, result.mean_e2e_ms()


@pytest.fixture(scope="module")
def new_kernel_result():
    return run_corridor()


def test_reference_heap_without_coalescing_matches(
    monkeypatch, new_kernel_result
):
    monkeypatch.setattr(Simulator, "queue_factory", ReferenceEventQueue)
    monkeypatch.setattr(Simulator, "coalesce_ticks", False)
    assert run_corridor() == new_kernel_result


def test_calendar_queue_without_coalescing_matches(
    monkeypatch, new_kernel_result
):
    monkeypatch.setattr(Simulator, "coalesce_ticks", False)
    assert run_corridor() == new_kernel_result


def test_legacy_baseline_switches_match(monkeypatch, new_kernel_result):
    monkeypatch.setattr(Simulator, "queue_factory", ReferenceEventQueue)
    monkeypatch.setattr(Simulator, "coalesce_ticks", False)
    monkeypatch.setattr(Simulator, "legacy_loop", True)
    monkeypatch.setattr(VehicleNode, "legacy_tick", True)
    monkeypatch.setattr(Broker, "legacy_fetch", True)
    monkeypatch.setattr(Consumer, "legacy_poll", True)
    assert run_corridor() == new_kernel_result
