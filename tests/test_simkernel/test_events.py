"""Tests for the event queue."""

import pytest

from repro.simkernel import EventQueue


class TestEventQueue:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0

    def test_pop_returns_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_preserves_insertion_order(self):
        queue = EventQueue()
        order = []
        for tag in range(5):
            queue.push(1.0, lambda t=tag: order.append(t))
        while queue:
            queue.pop().callback()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("low"), priority=5)
        queue.push(1.0, lambda: order.append("high"), priority=-5)
        while queue:
            queue.pop().callback()
        assert order == ["high", "low"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(0.5, lambda: fired.append("drop"))
        queue.cancel(drop)
        assert len(queue) == 1
        event = queue.pop()
        event.callback()
        assert fired == ["keep"]
        assert event is keep

    def test_double_cancel_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 2.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
