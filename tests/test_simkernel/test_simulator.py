"""Tests for the discrete-event simulator."""

import pytest

from repro.simkernel import SimulationError, Simulator


class TestScheduling:
    def test_at_schedules_absolute(self):
        sim = Simulator()
        times = []
        sim.at(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0]

    def test_after_schedules_relative(self):
        sim = Simulator()
        times = []
        sim.at(1.0, lambda: sim.after(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.5]

    def test_at_in_the_past_raises(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().after(-0.1, lambda: None)

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        event = sim.at(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []


class TestPeriodic:
    def test_every_fires_at_interval(self):
        sim = Simulator()
        times = []
        sim.every(0.1, lambda: times.append(round(sim.now, 6)), until=0.35)
        sim.run()
        assert times == [0.1, 0.2, 0.3]

    def test_every_with_start(self):
        sim = Simulator()
        times = []
        sim.every(0.1, lambda: times.append(round(sim.now, 6)), start=0.05, until=0.3)
        sim.run()
        assert times == [0.05, pytest.approx(0.15), pytest.approx(0.25)]

    def test_every_cancel_stops_recurrence(self):
        sim = Simulator()
        times = []
        cancel = sim.every(0.1, lambda: times.append(sim.now))
        sim.at(0.25, cancel)
        sim.run()
        assert len(times) == 2

    def test_nonpositive_interval_raises(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)


class TestRunning:
    def test_run_returns_final_time(self):
        sim = Simulator()
        sim.at(2.5, lambda: None)
        assert sim.run() == 2.5

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(5.0, lambda: fired.append(5))
        assert sim.run_until(2.0) == 2.0
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_then_run_processes_rest(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(5.0, lambda: fired.append(5))
        sim.run_until(2.0)
        sim.run()
        assert fired == [1, 5]

    def test_run_until_past_deadline_raises(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_fired == 3

    def test_runaway_loop_detected(self):
        sim = Simulator(max_events=100)

        def reschedule():
            sim.after(0.001, reschedule)

        sim.at(0.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()

    def test_deterministic_across_runs(self):
        def build_and_run():
            sim = Simulator()
            trace = []
            sim.every(0.1, lambda: trace.append(("a", sim.now)), until=1.0)
            sim.every(0.15, lambda: trace.append(("b", sim.now)), until=1.0)
            sim.run()
            return trace

        assert build_and_run() == build_and_run()


class TestRunBefore:
    """The sharded engine's conservative-synchronization primitive."""

    def test_events_at_deadline_do_not_fire(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1.0))
        sim.at(2.0, lambda: fired.append(2.0))
        sim.run_before(2.0)
        assert fired == [1.0]
        assert sim.now == 2.0  # clock advances TO the barrier
        sim.run()
        assert fired == [1.0, 2.0]  # the deadline event fires later

    def test_injection_between_barriers_lands_before_tick(self):
        """An event *scheduled* at the barrier instant sorts after the
        already-pending tick there (insertion order) — which is why the
        sharded engine applies cross-shard frames synchronously at the
        barrier clock instead of scheduling them as events."""
        sim = Simulator()
        order = []
        sim.every(0.05, lambda: order.append(("tick", sim.now)), until=0.2)
        sim.run_before(0.05)
        sim.at(0.05, lambda: order.append(("inject", sim.now)))
        sim.run_before(0.1)
        assert order[0] == ("tick", 0.05)  # tick was scheduled first
        assert order[1] == ("inject", 0.05)

    def test_windowed_run_equals_straight_run(self):
        def trace(windowed):
            sim = Simulator()
            out = []
            sim.every(0.05, lambda: out.append(round(sim.now, 9)), until=1.0)
            sim.every(0.03, lambda: out.append(-round(sim.now, 9)), until=1.0)
            if windowed:
                barrier = 0.05
                while barrier < 1.0:
                    sim.run_before(barrier)
                    barrier += 0.05
                sim.run_until(1.5)
            else:
                sim.run_until(1.5)
            return out

        assert trace(windowed=True) == trace(windowed=False)


class TestRecurrence:
    def test_next_time_tracks_the_pending_event(self):
        sim = Simulator()
        recurrence = sim.every(0.1, lambda: None, start=0.3, until=1.0)
        assert recurrence.next_time == 0.3
        sim.run_until(0.35)
        assert recurrence.next_time == pytest.approx(0.4)

    def test_next_time_none_after_cancel(self):
        sim = Simulator()
        recurrence = sim.every(0.1, lambda: None)
        recurrence.cancel()
        assert recurrence.next_time is None

    def test_next_time_none_after_until(self):
        sim = Simulator()
        recurrence = sim.every(0.1, lambda: None, until=0.25)
        sim.run()
        assert recurrence.next_time is None

    def test_call_still_cancels(self):
        # Legacy callers treat the return of every() as a cancel thunk.
        sim = Simulator()
        fired = []
        cancel = sim.every(0.1, lambda: fired.append(sim.now), until=1.0)
        sim.run_until(0.15)
        cancel()
        sim.run()
        assert len(fired) == 1

    def test_resume_from_next_time_continues_the_grid(self):
        """Detach/resume round trip: restarting a recurrence at its
        captured next_time reproduces the original drifted grid."""
        straight = Simulator()
        expected = []
        straight.every(0.1, lambda: expected.append(straight.now), until=2.0)
        straight.run()

        sim = Simulator()
        out = []
        recurrence = sim.every(0.1, lambda: out.append(sim.now), until=2.0)
        sim.run_until(0.95)
        resume_at = recurrence.next_time
        recurrence.cancel()
        sim.every(0.1, lambda: out.append(sim.now), start=resume_at, until=2.0)
        sim.run()
        assert out == expected
