"""Tests for RSU placement planning (Table V logic)."""

import pytest

from repro.deploy import RsuPlacementPlanner
from repro.geo import LatLon, RoadNetwork, RoadSegment, RoadType
from repro.geo.coords import destination_point

CENTER = LatLon(22.6, 114.2)


def build_network(lengths_by_type):
    network = RoadNetwork()
    segment_id = 1
    offset = 0.0
    for road_type, lengths in lengths_by_type.items():
        for length in lengths:
            # Spread origins out so endpoints never snap together.
            origin = destination_point(CENTER, 90.0, offset)
            offset += length + 1000.0
            network.add_segment(
                RoadSegment(
                    segment_id,
                    road_type,
                    [origin, destination_point(origin, 0.0, length)],
                )
            )
            segment_id += 1
    return network


class TestRsuPlacementPlanner:
    def test_one_rsu_per_km_rule(self):
        network = build_network({RoadType.MOTORWAY: [5000.0, 3000.0]})
        plan = RsuPlacementPlanner().plan(
            network, {RoadType.MOTORWAY: 0.5}
        )
        row = plan.row(RoadType.MOTORWAY)
        # Total 8 km -> 8 RSUs (within geodesic rounding).
        assert row.rsus_required == pytest.approx(8, abs=1)
        assert row.n_roads == 2

    def test_minimum_one_rsu_per_class(self):
        network = build_network({RoadType.RESIDENTIAL: [100.0]})
        plan = RsuPlacementPlanner().plan(
            network, {RoadType.RESIDENTIAL: 0.01}
        )
        assert plan.row(RoadType.RESIDENTIAL).rsus_required == 1

    def test_density_filter_skips_unused_types(self):
        network = build_network(
            {RoadType.MOTORWAY: [2000.0], RoadType.RESIDENTIAL: [2000.0]}
        )
        planner = RsuPlacementPlanner(min_traffic_density=0.05)
        plan = planner.plan(
            network,
            {RoadType.MOTORWAY: 0.5, RoadType.RESIDENTIAL: 0.01},
        )
        assert len(plan.rows) == 1
        assert plan.rows[0].road_type is RoadType.MOTORWAY

    def test_types_absent_from_network_skipped(self):
        network = build_network({RoadType.MOTORWAY: [2000.0]})
        plan = RsuPlacementPlanner().plan(
            network, {RoadType.MOTORWAY: 0.5, RoadType.TRUNK: 0.5}
        )
        assert len(plan.rows) == 1

    def test_totals(self):
        network = build_network(
            {RoadType.MOTORWAY: [3000.0], RoadType.TRUNK: [2000.0]}
        )
        plan = RsuPlacementPlanner(vehicles_per_rsu=256).plan(
            network, {RoadType.MOTORWAY: 0.5, RoadType.TRUNK: 0.5}
        )
        assert plan.total_rsus == sum(r.rsus_required for r in plan.rows)
        assert plan.total_vehicle_capacity == plan.total_rsus * 256

    def test_row_lookup_missing_raises(self):
        network = build_network({RoadType.MOTORWAY: [2000.0]})
        plan = RsuPlacementPlanner().plan(network, {RoadType.MOTORWAY: 0.5})
        with pytest.raises(KeyError):
            plan.row(RoadType.TRUNK)

    def test_rsus_for_road_ceils(self):
        planner = RsuPlacementPlanner(rsu_spacing_m=1000.0)
        assert planner.rsus_for_road(500.0) == 1
        assert planner.rsus_for_road(1000.0) == 1
        assert planner.rsus_for_road(1001.0) == 2
        with pytest.raises(ValueError):
            planner.rsus_for_road(0.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RsuPlacementPlanner(rsu_spacing_m=0.0)
        with pytest.raises(ValueError):
            RsuPlacementPlanner(vehicles_per_rsu=0)

    def test_allocation_scales_with_length_not_density(self):
        # RSU counts follow road length / spacing (Table V's one-per-km
        # rule); the density share is carried through untouched so the
        # city layer can weight per-RSU demand by it.
        network = build_network(
            {RoadType.MOTORWAY: [4000.0], RoadType.TRUNK: [2000.0]}
        )
        plan = RsuPlacementPlanner().plan(
            network, {RoadType.MOTORWAY: 0.2, RoadType.TRUNK: 0.4}
        )
        assert plan.row(RoadType.MOTORWAY).rsus_required == pytest.approx(
            4, abs=1
        )
        assert plan.row(RoadType.TRUNK).rsus_required == pytest.approx(
            2, abs=1
        )
        assert plan.row(RoadType.TRUNK).traffic_density == 0.4

    def test_format_table(self):
        network = build_network({RoadType.MOTORWAY: [2000.0]})
        plan = RsuPlacementPlanner().plan(network, {RoadType.MOTORWAY: 0.077})
        text = plan.format_table()
        assert "motorway" in text
        assert "TOTAL" in text
