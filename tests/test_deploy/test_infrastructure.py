"""Tests for synthetic roadside infrastructure (Table VI logic)."""

import numpy as np
import pytest

from repro.deploy import (
    InfrastructureKind,
    RoadsideInfrastructure,
    SpacingSpec,
    SyntheticInfrastructure,
    format_table_vi,
)
from repro.geo import CityNetworkBuilder, NetworkSpec


@pytest.fixture(scope="module")
def small_city():
    return CityNetworkBuilder(seed=4).build_city(NetworkSpec(count_scale=0.05))


class TestRoadsideInfrastructure:
    def test_spacings_computed_per_road(self):
        infrastructure = RoadsideInfrastructure(
            kind=InfrastructureKind.LAMP_POLE,
            positions=[(1, 0.0), (1, 50.0), (1, 120.0), (2, 10.0)],
        )
        assert sorted(infrastructure.spacings()) == [50.0, 70.0]

    def test_on_road(self):
        infrastructure = RoadsideInfrastructure(
            kind=InfrastructureKind.LAMP_POLE,
            positions=[(1, 30.0), (1, 10.0), (2, 5.0)],
        )
        assert infrastructure.on_road(1) == [10.0, 30.0]
        assert infrastructure.on_road(3) == []

    def test_statistics(self):
        infrastructure = RoadsideInfrastructure(
            kind=InfrastructureKind.TRAFFIC_LIGHT,
            positions=[(1, 0.0), (1, 100.0), (1, 300.0)],
        )
        stats = infrastructure.spacing_statistics()
        assert stats.count == 3
        assert stats.avg_m == pytest.approx(150.0)
        assert stats.max_m == 200.0

    def test_statistics_with_no_gaps(self):
        infrastructure = RoadsideInfrastructure(
            kind=InfrastructureKind.TRAFFIC_LIGHT, positions=[(1, 0.0)]
        )
        stats = infrastructure.spacing_statistics()
        assert stats.count == 1
        assert stats.avg_m == 0


class TestSyntheticInfrastructure:
    def test_target_count_placed(self, small_city):
        spec = SpacingSpec(count=100, mean_m=200.0, std_m=150.0, max_m=900.0)
        placed = SyntheticInfrastructure(seed=1).generate(
            small_city, InfrastructureKind.TRAFFIC_LIGHT, spec=spec
        )
        assert len(placed.positions) == 100

    def test_spacing_calibration(self, small_city):
        spec = SpacingSpec(count=400, mean_m=200.0, std_m=150.0, max_m=900.0)
        placed = SyntheticInfrastructure(seed=2).generate(
            small_city, InfrastructureKind.TRAFFIC_LIGHT, spec=spec
        )
        stats = placed.spacing_statistics()
        assert stats.avg_m == pytest.approx(200.0, rel=0.15)
        assert stats.max_m <= 900.0

    def test_positions_within_roads(self, small_city):
        spec = SpacingSpec(count=50, mean_m=100.0, std_m=50.0, max_m=400.0)
        placed = SyntheticInfrastructure(seed=3).generate(
            small_city, InfrastructureKind.LAMP_POLE, spec=spec
        )
        for road_id, offset in placed.positions:
            assert 0.0 <= offset <= small_city.segment(road_id).length_m

    def test_deterministic(self, small_city):
        spec = SpacingSpec(count=30, mean_m=100.0, std_m=50.0, max_m=400.0)
        a = SyntheticInfrastructure(seed=5).generate(
            small_city, InfrastructureKind.LAMP_POLE, spec=spec
        )
        b = SyntheticInfrastructure(seed=5).generate(
            small_city, InfrastructureKind.LAMP_POLE, spec=spec
        )
        assert a.positions == b.positions

    def test_empty_network_rejected(self):
        from repro.geo import RoadNetwork

        with pytest.raises(ValueError):
            SyntheticInfrastructure().generate(
                RoadNetwork(), InfrastructureKind.LAMP_POLE
            )

    def test_format_table(self, small_city):
        spec = SpacingSpec(count=20, mean_m=100.0, std_m=50.0, max_m=400.0)
        placed = SyntheticInfrastructure(seed=6).generate(
            small_city, InfrastructureKind.TRAFFIC_LIGHT, spec=spec
        )
        text = format_table_vi([placed.spacing_statistics()])
        assert "traffic_light" in text
        assert "AVG" in text
