"""Tests for the Fig. 9 coverage assessment."""

import pytest

from repro.deploy import InfrastructureKind, RoadsideInfrastructure, assess_coverage
from repro.deploy.coverage import _covered_length
from repro.geo import LatLon, RoadNetwork, RoadSegment, RoadType
from repro.geo.coords import destination_point

CENTER = LatLon(22.6, 114.2)


def simple_network(lengths=(1000.0, 2000.0)):
    network = RoadNetwork()
    offset = 0.0
    for index, length in enumerate(lengths, start=1):
        origin = destination_point(CENTER, 90.0, offset)
        offset += length + 2000.0
        network.add_segment(
            RoadSegment(
                index,
                RoadType.PRIMARY,
                [origin, destination_point(origin, 0.0, length)],
            )
        )
    return network


class TestCoveredLength:
    def test_single_unit_mid_road(self):
        assert _covered_length(1000.0, [500.0], 100.0) == pytest.approx(200.0)

    def test_unit_at_edge_clamped(self):
        assert _covered_length(1000.0, [0.0], 100.0) == pytest.approx(100.0)

    def test_overlapping_units_merge(self):
        covered = _covered_length(1000.0, [400.0, 450.0], 100.0)
        assert covered == pytest.approx(250.0)

    def test_disjoint_units_sum(self):
        covered = _covered_length(1000.0, [100.0, 800.0], 50.0)
        assert covered == pytest.approx(200.0)

    def test_full_coverage_caps_at_length(self):
        covered = _covered_length(300.0, [150.0], 500.0)
        assert covered == pytest.approx(300.0)

    def test_no_units(self):
        assert _covered_length(1000.0, [], 100.0) == 0.0


class TestAssessCoverage:
    def test_uncovered_roads_flagged(self):
        network = simple_network()
        infrastructure = RoadsideInfrastructure(
            kind=InfrastructureKind.TRAFFIC_LIGHT,
            positions=[(1, 500.0)],  # only road 1 has a unit
        )
        report = assess_coverage(network, [infrastructure], dsrc_range_m=300.0)
        assert report.uncovered_road_ids == [2]
        assert report.per_road_coverage[1] > 0.0
        assert report.per_road_coverage[2] == 0.0

    def test_multiple_infrastructures_combine(self):
        network = simple_network()
        lights = RoadsideInfrastructure(
            kind=InfrastructureKind.TRAFFIC_LIGHT, positions=[(1, 500.0)]
        )
        poles = RoadsideInfrastructure(
            kind=InfrastructureKind.LAMP_POLE, positions=[(2, 1000.0)]
        )
        report = assess_coverage(network, [lights, poles], dsrc_range_m=300.0)
        assert report.uncovered_road_ids == []
        assert report.covered_fraction > 0.0

    def test_totals_consistent(self):
        network = simple_network()
        lights = RoadsideInfrastructure(
            kind=InfrastructureKind.TRAFFIC_LIGHT,
            positions=[(1, 500.0), (2, 500.0), (2, 1500.0)],
        )
        report = assess_coverage(network, [lights], dsrc_range_m=200.0)
        assert report.total_length_m == pytest.approx(
            network.total_length_m(), rel=0.01
        )
        assert 0.0 < report.covered_fraction < 1.0

    def test_wider_range_more_coverage(self):
        network = simple_network()
        lights = RoadsideInfrastructure(
            kind=InfrastructureKind.TRAFFIC_LIGHT, positions=[(1, 500.0)]
        )
        narrow = assess_coverage(network, [lights], dsrc_range_m=100.0)
        wide = assess_coverage(network, [lights], dsrc_range_m=500.0)
        assert wide.covered_fraction > narrow.covered_fraction

    def test_validation(self):
        with pytest.raises(ValueError):
            assess_coverage(simple_network(), [], dsrc_range_m=0.0)

    def test_format_summary(self):
        report = assess_coverage(simple_network(), [], dsrc_range_m=300.0)
        assert "coverage" in report.format_summary()
