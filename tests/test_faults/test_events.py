"""Fault-event dataclasses and the named corridor profiles."""

import pytest

from repro.faults import (
    BrokerCrash,
    BurstLoss,
    FaultProfile,
    LinkPartition,
    RsuKill,
    corridor_profiles,
    profile,
)


class TestFaultProfile:
    def test_events_coerced_to_tuple(self):
        prof = FaultProfile("p", [BrokerCrash("rsu-mw-1", at_s=1.0)])
        assert isinstance(prof.events, tuple)
        assert len(prof.events) == 1

    def test_profiles_are_hashable(self):
        a = FaultProfile("p", (BrokerCrash("rsu-mw-1", at_s=1.0),))
        b = FaultProfile("p", (BrokerCrash("rsu-mw-1", at_s=1.0),))
        assert a == b
        assert hash(a) == hash(b)


class TestCorridorProfiles:
    def test_known_names(self):
        names = set(corridor_profiles())
        assert names == {
            "broker_crash",
            "rsu_kill",
            "partition",
            "burst_loss",
            "chaos",
        }

    def test_events_scale_with_duration(self):
        short = profile("chaos", duration_s=4.0)
        long = profile("chaos", duration_s=10.0)
        crash_short = short.events[0]
        crash_long = long.events[0]
        assert crash_short.at_s == pytest.approx(1.6)
        assert crash_long.at_s == pytest.approx(4.0)
        # Restart stays within the run even on short corridors.
        assert crash_short.at_s + crash_short.restart_after_s < 4.0

    def test_chaos_overlaps_crash_and_burst(self):
        chaos = profile("chaos", duration_s=6.0)
        kinds = {type(e) for e in chaos.events}
        assert kinds == {BrokerCrash, BurstLoss}
        crash = next(e for e in chaos.events if isinstance(e, BrokerCrash))
        burst = next(e for e in chaos.events if isinstance(e, BurstLoss))
        assert burst.at_s <= crash.at_s + crash.restart_after_s
        assert burst.at_s + burst.duration_s > crash.at_s

    def test_unknown_profile_lists_known_names(self):
        with pytest.raises(KeyError, match="broker_crash"):
            profile("no-such-profile")

    def test_partition_targets_an_existing_link(self):
        part = profile("partition").events[0]
        assert isinstance(part, LinkPartition)
        assert (part.src, part.dst) == ("rsu-mw-1", "rsu-mw-link")

    def test_rsu_kill_names_a_fallback(self):
        kill = profile("rsu_kill").events[0]
        assert isinstance(kill, RsuKill)
        assert kill.failover_to == "rsu-mw-2"
