"""Fault injection against wired-up corridor scenarios.

Each test builds a small corridor, injects one fault kind, and checks
the system's absorbed response: recovery after a broker restart,
vehicle failover with state replay, partition healing, burst-loss
restoration, and CO-DATA degradation with re-merge on recovery.
"""

import pytest

from repro.core.system import TestbedScenario, default_training_dataset
from repro.experiments.resilience import count_duplicate_detections
from repro.faults import (
    BrokerCrash,
    BurstLoss,
    FaultInjector,
    FaultProfile,
    LinkPartition,
    RsuKill,
    profile,
)


@pytest.fixture(scope="module")
def training_dataset():
    return default_training_dataset(seed=11, n_cars=60)


def corridor(training_dataset, fault_profile=None, **overrides):
    builder = (
        TestbedScenario.builder()
        .vehicles(overrides.pop("n_vehicles", 4))
        .duration(overrides.pop("duration_s", 3.0))
        .seed(3)
    )
    if fault_profile is not None:
        builder = builder.faults(fault_profile)
    return builder.corridor(
        motorways=overrides.pop("motorways", 2), dataset=training_dataset
    )


class TestBrokerCrash:
    def test_crash_restart_resumes_detection(self, training_dataset):
        scenario = corridor(
            training_dataset, profile("broker_crash", 3.0), duration_s=3.0
        )
        result = scenario.run()
        res = result.resilience
        assert res.broker_crashes == 1
        kinds = [e.kind for e in res.fault_log]
        assert kinds == ["broker_crash", "broker_restart"]
        # The restarted pipeline picks up after its last committed
        # micro-batch and keeps detecting.
        restarted = res.restarted_at_s["rsu-mw-1"]
        detected = scenario.rsus["rsu-mw-1"].events.detected_at()
        assert (detected >= restarted).any()
        # Retries through the outage and the ack-loss window never
        # double-detect: broker-side sequence dedupe caught them all.
        assert count_duplicate_detections(scenario) == 0
        assert res.records_lost == 0
        assert res.records_retried > 0
        assert res.duplicates_rejected > 0

    def test_crash_without_retry_policy_loses_telemetry(
        self, training_dataset
    ):
        # The same fault on a legacy-configured corridor (no retry):
        # telemetry refused during the outage is gone for good.
        prof = FaultProfile(
            "crash", (BrokerCrash("rsu-mw-1", at_s=1.2, restart_after_s=0.3),)
        )
        scenario = (
            TestbedScenario.builder()
            .vehicles(4)
            .duration(3.0)
            .seed(3)
            .faults(prof)
            .retry(None)
            .corridor(motorways=2, dataset=training_dataset)
        )
        result = scenario.run()
        assert result.resilience.records_lost > 0
        assert result.resilience.records_retried == 0


class TestRsuKill:
    def test_vehicles_fail_over_with_replayed_state(self, training_dataset):
        scenario = corridor(
            training_dataset, profile("rsu_kill", 3.0), duration_s=3.0
        )
        scenario.run()
        failed = scenario.rsus["rsu-mw-1"]
        fallback = scenario.rsus["rsu-mw-2"]
        assert failed.failed
        for vehicle in scenario.vehicles:
            assert vehicle.rsu is not failed
        entry = next(
            e for e in scenario._injector.log if e.kind == "rsu_kill"
        )
        assert "failover_to=rsu-mw-2" in entry.detail
        assert "replayed=4" in entry.detail
        # The survivor keeps detecting for the migrated vehicles.
        migrated = {
            v.car_id for v in scenario.vehicles if v.rsu is fallback
        }
        assert migrated & set(fallback.events.car_ids().tolist())

    def test_kill_requires_fallback(self, training_dataset):
        scenario = corridor(training_dataset)
        injector = FaultInjector(scenario)
        with pytest.raises(ValueError, match="failover_to"):
            injector.install(
                FaultProfile("bad", (RsuKill("rsu-mw-1", at_s=1.0),))
            )


class TestLinkPartition:
    def test_partition_heals(self, training_dataset):
        scenario = corridor(
            training_dataset, profile("partition", 3.0), duration_s=3.0
        )
        scenario.run()
        kinds = [e.kind for e in scenario._injector.log]
        assert kinds == ["partition", "partition_heal"]
        link = scenario.rsus["rsu-mw-1"]._links["rsu-mw-link"]
        assert link.up

    def test_unknown_link_fails_at_install(self, training_dataset):
        scenario = corridor(training_dataset)
        injector = FaultInjector(scenario)
        with pytest.raises(KeyError, match="no link"):
            injector.install(
                FaultProfile(
                    "bad",
                    (
                        LinkPartition(
                            "rsu-mw-1", "rsu-mw-2", at_s=1.0, duration_s=0.5
                        ),
                    ),
                )
            )


class TestBurstLoss:
    def test_loss_prob_restored_after_burst(self, training_dataset):
        scenario = corridor(
            training_dataset, profile("burst_loss", 3.0), duration_s=3.0
        )
        scenario.run()
        assert scenario.channels["rsu-mw-1"].loss_prob == 0.0
        kinds = [e.kind for e in scenario._injector.log]
        assert kinds == ["burst_loss", "burst_loss_end"]


class TestDegradation:
    def test_link_rsu_degrades_and_recovers(self, training_dataset):
        # CO-DATA reaches the link RSU only on handover, so feed its
        # CO-DATA topic directly: one summary arms the silence
        # timeout, a second (after the degradation) re-merges.
        from repro.core.features import CO_DATA, PredictionSummary

        scenario = (
            TestbedScenario.builder()
            .vehicles(2)
            .duration(4.0)
            .seed(3)
            .upstream_timeout(1.0)
            .corridor(motorways=1, dataset=training_dataset)
        )
        link = scenario.rsus["rsu-mw-link"]

        def summary_at(car_id):
            def produce():
                payload = PredictionSummary(
                    car_id=car_id,
                    mean_normal_prob=0.9,
                    n_predictions=5,
                    last_class=0,
                    from_road_id=1,
                    timestamp=scenario.sim.now,
                ).to_payload()
                link.broker.produce(
                    CO_DATA,
                    link._serde_for(CO_DATA).serialize(payload),
                    timestamp=scenario.sim.now,
                )

            return produce

        scenario.sim.at(0.5, summary_at(1))
        scenario.sim.at(3.0, summary_at(2))
        result = scenario.run()
        kinds = [
            kind
            for _, kind in result.resilience.degradation_events[
                "rsu-mw-link"
            ]
        ]
        # (a further "degraded" may follow if silence resumes before
        # the run ends; the first two transitions are the contract)
        assert kinds[:2] == ["degraded", "recovered"]
        # The silence timeout tripped ~1s after the last arrival, and
        # the re-merge happened on the t=3.0 arrival.
        events = result.resilience.degradation_events["rsu-mw-link"]
        assert 1.5 <= events[0][0] <= 2.0
        assert events[1][0] == pytest.approx(3.0, abs=0.1)


class TestInstall:
    def test_double_install_rejected(self, training_dataset):
        scenario = corridor(training_dataset)
        injector = FaultInjector(scenario)
        prof = FaultProfile(
            "p", (BurstLoss("rsu-mw-1", at_s=1.0, duration_s=0.5),)
        )
        injector.install(prof)
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install(prof)

    def test_unknown_event_type_rejected(self, training_dataset):
        scenario = corridor(training_dataset)
        injector = FaultInjector(scenario)
        with pytest.raises(TypeError, match="unknown fault event"):
            injector.install(FaultProfile("p", ("not-an-event",)))

    def test_unknown_target_fails_at_install(self, training_dataset):
        scenario = corridor(training_dataset)
        injector = FaultInjector(scenario)
        with pytest.raises(KeyError):
            injector.install(
                FaultProfile("p", (BrokerCrash("rsu-nope", at_s=1.0),))
            )


class TestChaosInvariants:
    def test_chaos_profile_conserves_every_record(
        self, training_dataset, audit_invariants
    ):
        """The acceptance fault profile (crash + kill + partition +
        burst loss, overlapping) must not lose a single record or
        warning unaccounted: everything sent is detected, dead on a
        crashed broker, still queued, or explicitly counted lost."""
        scenario = corridor(
            training_dataset,
            profile("chaos", 6.0),
            duration_s=6.0,
            n_vehicles=8,
        )
        scenario.run()
        report = audit_invariants(scenario)
        assert report.ok
        # The profile actually exercised the loss paths being audited.
        assert report.terms["telemetry"]["lost_on_air"] > 0
        assert any(
            terms["records_dead_on_crash"] > 0
            or terms["unconsumed"] > 0
            for name, terms in report.terms.items()
            if name.startswith("detection[")
        )

    def test_fault_counters_track_injector_log(self, training_dataset):
        """With observability on, every injected fault shows up in the
        faults.injected{kind} counters, one per log entry."""
        from repro.obs.metrics import active, disable, enable

        scenario = corridor(
            training_dataset, profile("chaos", 4.0), duration_s=4.0
        )
        registry = enable()
        try:
            result = scenario.run()
        finally:
            disable()
        assert active() is None
        snap = registry.snapshot()
        by_kind = {}
        for entry in result.resilience.fault_log:
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
        assert by_kind, "chaos profile injected nothing"
        for kind, count in by_kind.items():
            assert snap.counter_value("faults.injected", kind=kind) == count
