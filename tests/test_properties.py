"""Cross-cutting property-based tests (hypothesis).

Each class pins an invariant a substrate must hold for *any* input,
not just the examples unit tests chose.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accidents import speed_deviation_delta
from repro.ml import GaussianNaiveBayes
from repro.net import HtbClass, HtbShaper
from repro.net.dsrc import DsrcMacModel, PAPER_MCS_8
from repro.simkernel import EventQueue, Simulator
from repro.streaming import JsonSerde
from repro.streaming.topic import Topic
from tests.strategies import json_values, summary_merge_entries


class TestEventQueueOrdering:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(times)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_cancellation_never_fires(self, entries):
        queue = EventQueue()
        fired = []
        cancelled_tags = set()
        for tag, (time, cancel) in enumerate(entries):
            event = queue.push(time, lambda t=tag: fired.append(t))
            if cancel:
                queue.cancel(event)
                cancelled_tags.add(tag)
        while queue:
            queue.pop().callback()
        assert not (set(fired) & cancelled_tags)
        assert len(fired) == len(entries) - len(cancelled_tags)


class TestSimulatorTimeMonotonicity:
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_observed_time_never_decreases(self, delays):
        sim = Simulator()
        observed = []

        def chain(remaining):
            observed.append(sim.now)
            if remaining:
                sim.after(remaining[0], lambda: chain(remaining[1:]))

        sim.at(0.0, lambda: chain(delays))
        sim.run()
        assert observed == sorted(observed)


class TestSerdeRoundTrip:
    @given(json_values)
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, value):
        serde = JsonSerde()
        assert serde.deserialize(serde.serialize(value)) == value


class TestTopicRouting:
    @given(st.binary(min_size=1, max_size=30), st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_keyed_routing_stable_and_in_range(self, key, partitions):
        topic = Topic("t", partitions)
        first = topic.route(key)
        assert 0 <= first < partitions
        assert topic.route(key) == first


class TestHtbConservation:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=5000), min_size=1, max_size=100
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bytes_sent_accounting(self, packet_sizes):
        root = HtbClass("root", 27e6, 27e6)
        shaper = HtbShaper(root)
        shaper.add_leaf(HtbClass("v", 100e3, 27e6))
        now = 0.0
        for size in packet_sizes:
            delay = shaper.send("v", size, now)
            assert delay >= 0.0
            now += 0.01 + delay
        assert shaper.leaf("v").bytes_sent == sum(packet_sizes)

    @given(st.floats(min_value=0.001, max_value=10.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_tokens_never_exceed_burst(self, elapsed):
        leaf = HtbClass("v", 1e6, 1e6, burst_bytes=1000.0)
        leaf.refill(elapsed)
        assert leaf.tokens <= 1000.0


class TestMacModelProperties:
    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_access_time_positive_and_linear(self, n):
        model = DsrcMacModel()
        single = model.channel_access_time_s(1, PAPER_MCS_8)
        assert model.channel_access_time_s(n, PAPER_MCS_8) == pytest.approx(
            n * single
        )

    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=50, max_value=1500),
    )
    @settings(max_examples=50, deadline=None)
    def test_bigger_payloads_never_faster(self, n, payload):
        model = DsrcMacModel()
        small = model.channel_access_time_s(n, PAPER_MCS_8, payload)
        large = model.channel_access_time_s(n, PAPER_MCS_8, payload + 100)
        assert large > small


class TestAccidentDeltaProperties:
    @given(
        st.floats(min_value=1.0, max_value=300.0),
        st.floats(min_value=0.0, max_value=600.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_delta_bounded(self, road_speed, vehicle_speed):
        delta = speed_deviation_delta(road_speed, vehicle_speed)
        assert 0.0 <= delta < 1.0

    @given(
        st.floats(min_value=10.0, max_value=200.0),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_delta_monotone_in_speeding(self, road_speed, excess, more):
        mild = speed_deviation_delta(road_speed, road_speed + excess)
        severe = speed_deviation_delta(road_speed, road_speed + excess + more)
        assert severe >= mild


class TestSummaryMerge:
    summaries = summary_merge_entries

    @staticmethod
    def build(entries):
        from repro.core.features import PredictionSummary

        return [
            PredictionSummary(
                car_id=1,
                mean_normal_prob=prob,
                n_predictions=n,
                last_class=1,
                from_road_id=0,
                timestamp=ts,
            )
            for prob, n, ts in entries
        ]

    @given(summaries)
    @settings(max_examples=100, deadline=None)
    def test_merge_preserves_weighted_mean(self, entries):
        from repro.core.features import PredictionSummary

        items = self.build(entries)
        merged = PredictionSummary.merge(items)
        total = sum(s.n_predictions for s in items)
        expected = (
            sum(s.mean_normal_prob * s.n_predictions for s in items) / total
        )
        assert merged.n_predictions == total
        assert merged.mean_normal_prob == pytest.approx(expected, abs=1e-9)
        assert 0.0 <= merged.mean_normal_prob <= 1.0

    @given(summaries)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_fold_associative(self, entries):
        """Merging all at once equals chaining pairwise merges — the
        property the multi-hop summary chain relies on."""
        from repro.core.features import PredictionSummary

        items = self.build(entries)
        merged_all = PredictionSummary.merge(items)
        folded = items[0]
        for item in items[1:]:
            folded = PredictionSummary.merge([folded, item])
        assert folded.n_predictions == merged_all.n_predictions
        assert folded.mean_normal_prob == pytest.approx(
            merged_all.mean_normal_prob, abs=1e-9
        )


class TestIncrementalNaiveBayes:
    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_partial_fit_equals_fit(self, seed, n_chunks):
        rng = np.random.default_rng(seed)
        X = np.vstack(
            [rng.normal(0, 1, (60, 2)), rng.normal(2.5, 1, (60, 2))]
        )
        y = np.array([0] * 60 + [1] * 60)
        order = rng.permutation(len(y))
        X, y = X[order], y[order]

        full = GaussianNaiveBayes().fit(X, y)
        incremental = GaussianNaiveBayes()
        for chunk_X, chunk_y in zip(
            np.array_split(X, n_chunks), np.array_split(y, n_chunks)
        ):
            if len(chunk_y) == 0:
                continue
            incremental.partial_fit(chunk_X, chunk_y, classes=[0, 1])
        assert np.allclose(full.theta_, incremental.theta_, atol=1e-9)
        assert np.allclose(full.var_, incremental.var_, atol=1e-7)
        assert np.array_equal(full.predict(X), incremental.predict(X))
