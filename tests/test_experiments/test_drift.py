"""Tests for the drift-adaptation harness (plumbing-level)."""

import pytest

from repro.experiments.drift import DriftResult, drift_adaptation, _regime_records


class TestRegimeRecords:
    def test_scaled_regime_is_slower(self):
        fast = _regime_records(1.0, n_cars=40, seed=3)
        slow = _regime_records(0.7, n_cars=40, seed=3)
        mean = lambda records: sum(r.speed_kmh for r in records) / len(records)
        assert mean(slow) < 0.8 * mean(fast)

    def test_records_are_labelled(self):
        records = _regime_records(1.0, n_cars=20, seed=4)
        assert all(r.label in (0, 1) for r in records)

    def test_label_mixture_reasonable(self):
        records = _regime_records(0.7, n_cars=40, seed=5)
        abnormal = sum(1 for r in records if r.label == 0) / len(records)
        # The sigma-cutoff is applied per regime: mixture stays ~1/3.
        assert 0.2 < abnormal < 0.55


class TestDriftAdaptation:
    @pytest.fixture(scope="class")
    def result(self):
        return drift_adaptation(n_cars=60, bucket_size=1500)

    def test_bucket_structure(self, result):
        assert result.buckets
        indices = [b.index for b in result.buckets]
        assert indices == sorted(indices)
        phases = [b.post_drift for b in result.buckets]
        # Once post-drift, always post-drift.
        assert phases == sorted(phases)

    def test_all_models_scored_after_warmup(self, result):
        late_buckets = result.buckets[2:]
        for bucket in late_buckets:
            assert set(bucket.accuracy) >= {"static", "cumulative", "window"}

    def test_static_degrades_after_drift(self, result):
        before = result.mean_accuracy("static", post_drift=False)
        after = result.mean_accuracy("static", post_drift=True)
        assert after < before - 0.2

    def test_window_recovers_best(self, result):
        window = result.mean_accuracy("window", post_drift=True)
        static = result.mean_accuracy("static", post_drift=True)
        assert window > static + 0.2

    def test_format_series(self, result):
        text = result.format_series()
        assert "static" in text
        assert "window" in text
        assert len(text.splitlines()) == len(result.buckets) + 1

    def test_empty_result_accuracy_zero(self):
        assert DriftResult().mean_accuracy("static", post_drift=True) == 0.0
