"""Tests for the ablation harnesses (plumbing-level, small scale)."""

import pytest

from repro.experiments.ablations import (
    AblationPoint,
    ablate_batch_interval,
    ablate_collaboration_link,
    ablate_detector_complexity,
    ablate_history_weight,
    ablate_poll_interval,
    format_ablation,
)
from repro.experiments.datasets import corridor_dataset


@pytest.fixture(scope="module")
def small_dataset():
    return corridor_dataset(n_cars=100, trips_per_car=5, seed=4)


class TestAblationPlumbing:
    def test_history_weight_sweep_shape(self, small_dataset):
        points = ablate_history_weight(small_dataset, weights=(0.0, 0.5))
        assert len(points) == 2
        assert all(0.0 <= p.value <= 1.0 for p in points)

    def test_detector_complexity_names(self, small_dataset):
        points = ablate_detector_complexity(small_dataset)
        names = {p.setting for p in points}
        assert names == {"naive_bayes", "logistic", "random_forest"}

    def test_collaboration_link_ordering(self):
        points = ablate_collaboration_link(n_summaries=50)
        values = {p.setting: p.value for p in points}
        assert values["wired"] < values["5g"] < values["lte"]

    def test_batch_interval_monotonic(self):
        points = ablate_batch_interval(
            intervals_s=(0.05, 0.2), n_vehicles=8, duration_s=2.0
        )
        assert points[0].value < points[1].value

    def test_poll_interval_monotonic(self):
        points = ablate_poll_interval(
            intervals_s=(0.01, 0.05), n_vehicles=8, duration_s=2.0
        )
        assert points[0].value < points[1].value

    def test_format_ablation(self):
        text = format_ablation(
            [AblationPoint("setting=x", 1.2345, "metric")]
        )
        assert "setting=x" in text
        assert "1.2345" in text

    def test_invalid_history_weight_rejected(self):
        from repro.core.collaborative import CollaborativeDetector
        from repro.geo import RoadType

        with pytest.raises(ValueError):
            CollaborativeDetector(RoadType.MOTORWAY_LINK, history_weight=1.5)

    def test_packet_loss_points(self):
        from repro.experiments.ablations import ablate_packet_loss

        points = ablate_packet_loss(
            loss_levels=(0.0, 0.3), n_vehicles=8, duration_s=2.0
        )
        ratios = {p.setting: p.value for p in points}
        assert ratios["loss=0%"] > ratios["loss=30%"]
        assert 0.0 <= ratios["loss=30%"] <= 1.0

    def test_warning_threshold_points(self):
        from repro.experiments.ablations import ablate_warning_threshold

        points = ablate_warning_threshold(
            thresholds=(1, 2), n_vehicles=8, duration_s=3.0
        )
        warnings = {
            p.setting: p.value for p in points if p.metric == "warnings"
        }
        assert warnings["threshold=1"] >= warnings["threshold=2"]

    def test_labeling_granularity_structure(self):
        from repro.experiments.ablations import ablate_labeling_granularity

        results = ablate_labeling_granularity(n_cars=80)
        assert set(results) == {"type", "type_hour"}
        for points in results.values():
            assert len(points) == 3
            assert all(0.0 <= p.value <= 1.0 for p in points)
