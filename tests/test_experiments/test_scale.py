"""Tests for the peak-hour scale analysis."""

import pytest

from repro.deploy.placement import RsuPlacementPlanner
from repro.experiments.scale import (
    max_supported_vehicles,
    peak_hour_feasibility,
)
from repro.geo import LatLon, RoadNetwork, RoadSegment, RoadType
from repro.geo.coords import destination_point

CENTER = LatLon(22.6, 114.2)


@pytest.fixture(scope="module")
def two_class_plan():
    network = RoadNetwork()
    origin = CENTER
    # 10 km of motorway, 1 km of link.
    network.add_segment(
        RoadSegment(1, RoadType.MOTORWAY,
                    [origin, destination_point(origin, 0.0, 10_000.0)])
    )
    far = destination_point(origin, 90.0, 30_000.0)
    network.add_segment(
        RoadSegment(2, RoadType.MOTORWAY_LINK,
                    [far, destination_point(far, 0.0, 1_000.0)])
    )
    density = {RoadType.MOTORWAY: 0.5, RoadType.MOTORWAY_LINK: 0.5}
    return RsuPlacementPlanner().plan(network, density), network, density


class TestPeakHourFeasibility:
    def test_light_load_is_feasible(self, two_class_plan):
        plan, _, _ = two_class_plan
        assessment = peak_hour_feasibility(100, plan=plan)
        assert assessment.feasible
        assert assessment.total_vehicles == 100

    def test_binding_class_is_the_link(self, two_class_plan):
        """Half the traffic on 1/10 the RSUs: the link saturates first."""
        plan, _, _ = two_class_plan
        heavy = peak_hour_feasibility(3000, plan=plan)
        link_row = next(
            row for row in heavy.rows
            if row.road_type is RoadType.MOTORWAY_LINK
        )
        motorway_row = next(
            row for row in heavy.rows
            if row.road_type is RoadType.MOTORWAY
        )
        assert link_row.vehicles_per_rsu > motorway_row.vehicles_per_rsu
        assert not link_row.within_capacity

    def test_max_supported_matches_feasibility_edge(self, two_class_plan):
        plan, _, _ = two_class_plan
        limit = max_supported_vehicles(plan=plan)
        assert peak_hour_feasibility(limit, plan=plan).feasible
        assert not peak_hour_feasibility(
            int(limit * 1.1) + 10, plan=plan
        ).feasible

    def test_format_table(self, two_class_plan):
        plan, _, _ = two_class_plan
        text = peak_hour_feasibility(500, plan=plan).format_table()
        assert "motorway" in text


class TestPlanForDemand:
    def test_meets_demand_by_construction(self, two_class_plan):
        _, network, density = two_class_plan
        planner = RsuPlacementPlanner()
        demand_plan = planner.plan_for_demand(network, density, 5000)
        assert peak_hour_feasibility(5000, plan=demand_plan).feasible

    def test_never_below_coverage_plan(self, two_class_plan):
        plan, network, density = two_class_plan
        demand_plan = RsuPlacementPlanner().plan_for_demand(
            network, density, 10
        )
        for row in plan.rows:
            assert (
                demand_plan.row(row.road_type).rsus_required
                >= row.rsus_required
            )

    def test_zero_demand_equals_coverage(self, two_class_plan):
        plan, network, density = two_class_plan
        demand_plan = RsuPlacementPlanner().plan_for_demand(
            network, density, 0
        )
        assert demand_plan.total_rsus == plan.total_rsus

    def test_negative_demand_rejected(self, two_class_plan):
        _, network, density = two_class_plan
        with pytest.raises(ValueError):
            RsuPlacementPlanner().plan_for_demand(network, density, -1)
