"""Tests for the mesoscopic-chain harness."""

import pytest

from repro.experiments.mesochain import (
    _split_trip_by_segment,
    grid_dataset,
    mesoscopic_chain,
)
from repro.dataset.schema import TelemetryRecord
from repro.geo import RoadType


def make_record(road_id, timestamp, road_type=RoadType.PRIMARY):
    return TelemetryRecord(
        car_id=1,
        road_id=road_id,
        accel_ms2=0.0,
        speed_kmh=60.0,
        hour=8,
        day=4,
        road_type=road_type,
        road_mean_speed_kmh=60.0,
        timestamp=timestamp,
        label=1,
    )


class TestSplitTripBySegment:
    def test_contiguous_legs(self):
        records = [
            make_record(1, 0.0),
            make_record(1, 1.0),
            make_record(2, 2.0),
            make_record(3, 3.0),
            make_record(3, 4.0),
        ]
        legs = _split_trip_by_segment(records)
        assert [leg[0].road_id for leg in legs] == [1, 2, 3]
        assert [len(leg) for leg in legs] == [2, 1, 2]

    def test_revisited_segment_is_a_new_leg(self):
        records = [
            make_record(1, 0.0),
            make_record(2, 1.0),
            make_record(1, 2.0),
        ]
        legs = _split_trip_by_segment(records)
        assert [leg[0].road_id for leg in legs] == [1, 2, 1]

    def test_orders_by_timestamp(self):
        records = [make_record(2, 5.0), make_record(1, 1.0)]
        legs = _split_trip_by_segment(records)
        assert [leg[0].road_id for leg in legs] == [1, 2]


@pytest.fixture(scope="module")
def small_chain_result():
    dataset = grid_dataset(n_cars=80, trips_per_car=4, seed=10, rows=3, cols=3)
    return mesoscopic_chain(dataset)


class TestMesoscopicChain:
    def test_hop_structure(self, small_chain_result):
        assert small_chain_result.hops
        hops = [h.hop for h in small_chain_result.hops]
        assert hops == sorted(hops)
        for hop in small_chain_result.hops:
            assert set(hop.f1) == {"ad3", "chain"}
            assert hop.n_records > 0

    def test_overall_weighting(self, small_chain_result):
        overall = small_chain_result.overall("ad3", "f1")
        values = [h.f1["ad3"] for h in small_chain_result.hops]
        assert min(values) <= overall <= max(values)

    def test_format_table(self, small_chain_result):
        text = small_chain_result.format_table()
        assert "hop 0" in text
        assert "chain" in text
