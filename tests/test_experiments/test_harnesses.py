"""Tests for the experiment harnesses (small-scale runs).

The benchmarks assert the paper's claims at full scale; these tests
check the harness plumbing itself — result shapes, formatting,
determinism — at test-suite speed.
"""

import math

import numpy as np
import pytest

from repro.dataset.schema import AnomalyKind
from repro.experiments import (
    corridor_dataset,
    eq5_access_times,
    fig2_speed_profiles,
    fig7_table4_comparison,
    fig8_mesoscopic,
    table3_statistics,
)
from repro.experiments.deployment import (
    build_city,
    city_scale_capacity,
    fig9_coverage,
    table5_placement,
    table6_infrastructure,
)
from repro.experiments.models import MODEL_NAMES
from repro.geo import RoadType


@pytest.fixture(scope="module")
def small_dataset():
    return corridor_dataset(n_cars=120, trips_per_car=6, seed=2)


@pytest.fixture(scope="module")
def small_city():
    return build_city(seed=5, count_scale=0.05)


class TestFig2:
    def test_library_series(self):
        result = fig2_speed_profiles()
        assert len(result.series) == 4
        for series in result.series:
            assert len(series.hourly_mean_kmh) == 24
            assert all(v > 0 for v in series.hourly_mean_kmh)

    def test_empirical_series(self, small_dataset):
        result = fig2_speed_profiles(small_dataset.records)
        motorway = result.get(RoadType.MOTORWAY, weekend=False)
        observed = [v for v in motorway.hourly_mean_kmh if not math.isnan(v)]
        assert observed
        assert 80 < np.mean(observed) < 200

    def test_get_missing_raises(self):
        result = fig2_speed_profiles()
        with pytest.raises(KeyError):
            result.get(RoadType.RESIDENTIAL, weekend=False)

    def test_format_table(self):
        text = fig2_speed_profiles().format_table()
        assert len(text.splitlines()) == 25


class TestTable3:
    def test_statistics(self, small_dataset):
        stats = table3_statistics(small_dataset)
        assert stats.overall.n_trajectories == len(small_dataset.records)


class TestFig7Table4:
    def test_result_structure(self, small_dataset):
        result = fig7_table4_comparison(small_dataset)
        assert set(result.reports) == set(MODEL_NAMES)
        assert set(result.accidents) == set(MODEL_NAMES)
        assert result.n_eval > 0
        assert 0.0 < result.abnormal_fraction < 1.0

    def test_formatting(self, small_dataset):
        result = fig7_table4_comparison(small_dataset)
        assert "cad3" in result.format_fig7()
        assert "E(Lambda)" in result.format_table4()

    def test_deterministic(self, small_dataset):
        a = fig7_table4_comparison(small_dataset)
        b = fig7_table4_comparison(small_dataset)
        assert a.reports["cad3"].f1 == b.reports["cad3"].f1


class TestFig8:
    def test_result_structure(self, small_dataset):
        result = fig8_mesoscopic(small_dataset, anomaly=AnomalyKind.SLOWING)
        assert result.points
        assert set(result.aggregate) == set(MODEL_NAMES)
        for stats in result.aggregate.values():
            assert 0.0 <= stats.mean_accuracy <= 1.0
            assert stats.n_trips > 0
        assert result.anomaly_kind == "slowing"

    def test_timeline_format(self, small_dataset):
        result = fig8_mesoscopic(small_dataset)
        text = result.format_timeline()
        assert "truth" in text
        assert "cad3" in text

    def test_speeding_episodes_also_work(self, small_dataset):
        result = fig8_mesoscopic(small_dataset, anomaly=AnomalyKind.SPEEDING)
        assert result.aggregate["cad3"].n_trips > 0


class TestDeploymentHarnesses:
    def test_table5_scaled_city(self, small_city):
        plan = table5_placement(network=small_city)
        assert plan.total_rsus > 0
        assert len(plan.rows) == 10

    def test_city_scale_capacity(self):
        assert city_scale_capacity(256) == 51_129 * 256

    def test_table6_scaled(self, small_city):
        rows, placements = table6_infrastructure(
            network=small_city, count_scale=0.05
        )
        assert len(rows) == 2
        assert all(row.count > 0 for row in rows)
        assert len(placements) == 2

    def test_fig9_scaled(self, small_city):
        report = fig9_coverage(network=small_city, infrastructure_scale=0.2)
        assert 0.0 <= report.covered_fraction <= 1.0


class TestEq5:
    def test_grid_shape(self):
        rows = eq5_access_times(vehicle_counts=(8, 16))
        assert len(rows) == 4  # 2 counts x 2 schemes

    def test_format(self):
        rows = eq5_access_times(vehicle_counts=(8,))
        text = "\n".join(row.format_row() for row in rows)
        assert "MCS" in text
