"""Unit tests for the latency and multi-RSU harnesses (small scale)."""

import pytest

from repro.core.system import default_training_dataset
from repro.experiments.latency import Fig6aRow, fig6a_latency_sweep, format_fig6a
from repro.experiments.multirsu import fig6bd_corridor


@pytest.fixture(scope="module")
def tiny_dataset():
    return default_training_dataset(seed=11, n_cars=40)


class TestFig6aSweep:
    @pytest.fixture(scope="class")
    def rows(self, tiny_dataset):
        return fig6a_latency_sweep((8, 16), duration_s=2.0, dataset=tiny_dataset)

    def test_one_row_per_count(self, rows):
        assert [row.n_vehicles for row in rows] == [8, 16]

    def test_components_positive(self, rows):
        for row in rows:
            assert row.tx_ms > 0
            assert row.processing_ms > 0
            assert row.total_ms > 0
            assert row.queuing_dissemination_ms >= 0
            assert row.per_vehicle_bandwidth_kbps > 0

    def test_components_sum_to_total(self, rows):
        for row in rows:
            reconstructed = (
                row.tx_ms + row.processing_ms + row.queuing_dissemination_ms
            )
            assert reconstructed == pytest.approx(row.total_ms, abs=1e-6)

    def test_format(self, rows):
        text = format_fig6a(rows)
        assert "total=" in text
        assert len(text.splitlines()) == 2

    def test_row_format(self):
        row = Fig6aRow(8, 0.3, 7.5, 30.0, 37.8, 10.0, 15.0, 0.15)
        assert "8" in row.format_row()


class TestCorridorHarness:
    @pytest.fixture(scope="class")
    def corridor(self, tiny_dataset):
        return fig6bd_corridor(
            n_vehicles_per_rsu=8,
            duration_s=2.0,
            handover_fraction=0.25,
            motorways=2,
            dataset=tiny_dataset,
        )

    def test_row_per_rsu(self, corridor):
        assert len(corridor.rows) == 3  # 2 motorways + link

    def test_link_row_accessor(self, corridor):
        assert corridor.link_row.name == "rsu-mw-link"
        assert len(corridor.motorway_rows) == 2

    def test_missing_row_raises(self, corridor):
        with pytest.raises(KeyError):
            corridor.row("rsu-nowhere")

    def test_summary_flow_consistent(self, corridor):
        sent = sum(r.summaries_sent for r in corridor.motorway_rows)
        assert corridor.link_row.summaries_received == sent == 2 * 2

    def test_format_table(self, corridor):
        text = corridor.format_table()
        assert "rsu-mw-link" in text
