"""Tests for terminal rendering helpers."""

import math

import pytest

from repro.experiments.reporting import horizontal_bars, series_with_axis, sparkline


class TestSparkline:
    def test_monotonic_series_monotonic_blocks(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_nan_renders_space(self):
        line = sparkline([1.0, math.nan, 8.0])
        assert line[1] == " "
        assert line[0] != " " and line[2] != " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_pinned_scale(self):
        line = sparkline([5.0], minimum=0.0, maximum=10.0)
        assert line in "▄▅"

    def test_length_matches_input(self):
        assert len(sparkline(list(range(17)))) == 17


class TestHorizontalBars:
    def test_proportions(self):
        text = horizontal_bars(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        text = horizontal_bars(["short", "longer-label"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[0].index("│") == lines[1].index("│")

    def test_unit_appended(self):
        text = horizontal_bars(["x"], [3.5], unit="ms")
        assert "3.5ms" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            horizontal_bars(["a"], [1.0, 2.0])

    def test_empty(self):
        assert horizontal_bars([], []) == ""


class TestSeriesWithAxis:
    def test_includes_range(self):
        text = series_with_axis([1.0, 2.0, 3.0], label="speed", unit="km/h")
        assert "speed" in text
        assert "[1..3km/h]" in text

    def test_no_data(self):
        assert "no data" in series_with_axis([math.nan], label="x")
