"""Smoke tests: every example script must run clean.

Examples are the quickstart surface of the repository; a broken one is
a broken front door.  Each runs in-process via ``runpy`` with argv
pinned (quick flags where supported).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, argv) — quick variants where the script supports them.
FAST_EXAMPLES = [
    ("streaming_pipeline.py", []),
    ("channel_planning.py", []),
    ("city_deployment.py", []),
    ("rsu_failover.py", []),
]

SLOW_EXAMPLES = [
    ("quickstart.py", []),
    ("testbed_latency.py", ["--quick"]),
    ("drift_adaptation.py", []),
    ("mesoscopic_trip.py", []),
]


def run_example(name: str, argv: list, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example: {path}"
    old_argv = sys.argv
    sys.argv = [str(path)] + argv
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.parametrize("name,argv", FAST_EXAMPLES)
def test_fast_example_runs(name, argv, capsys):
    output = run_example(name, argv, capsys)
    assert output.strip(), f"{name} produced no output"


@pytest.mark.parametrize("name,argv", SLOW_EXAMPLES)
def test_slow_example_runs(name, argv, capsys):
    output = run_example(name, argv, capsys)
    assert output.strip(), f"{name} produced no output"


def test_quickstart_shows_model_ordering(capsys):
    output = run_example("quickstart.py", [], capsys)
    assert "CAD3" in output
    assert "E(potential accidents)" in output


def test_failover_example_reports_absorption(capsys):
    output = run_example("rsu_failover.py", [], capsys)
    assert "FAILED" in output
    assert "absorbed" in output
