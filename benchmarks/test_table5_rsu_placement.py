"""Table V: RSUs required per road type on the synthetic Shenzhen.

Paper claims reproduced here:
- per-road-type road counts match Table V exactly (the synthetic city
  is calibrated to them);
- per-road-type mean lengths land near Table V (lognormal sampling
  noise allowed);
- RSU counts land near Table V's (the planner's one-RSU-per-km rule
  applied to sampled lengths);
- total deployment is of order ~5,000 RSUs (paper: 4,998).
"""

import pytest

from repro.experiments.deployment import (
    SHENZHEN_ROAD_TRUNKS,
    city_scale_capacity,
    table5_placement,
)
from repro.geo import RoadType
from repro.geo.network_builder import TABLE_V_SPECS

#: The paper's Table V RSUs column.
PAPER_RSUS = {
    RoadType.MOTORWAY: 1460,
    RoadType.MOTORWAY_LINK: 94,
    RoadType.TRUNK: 1064,
    RoadType.TRUNK_LINK: 83,
    RoadType.PRIMARY: 956,
    RoadType.PRIMARY_LINK: 40,
    RoadType.SECONDARY: 639,
    RoadType.SECONDARY_LINK: 6,
    RoadType.TERTIARY: 555,
    RoadType.RESIDENTIAL: 101,
}


def test_table5_rsu_placement(benchmark, city_network):
    plan = benchmark.pedantic(
        lambda: table5_placement(network=city_network),
        rounds=1,
        iterations=1,
    )
    print("\n" + plan.format_table())

    for road_type, spec in TABLE_V_SPECS.items():
        row = plan.row(road_type)
        # Road counts: exact (calibrated).
        assert row.n_roads == spec.count
        # Mean lengths: within lognormal sampling error.
        assert row.mean_length_m == pytest.approx(
            spec.mean_length_m, rel=0.40
        )
        # Densities pass through.
        assert row.traffic_density == pytest.approx(spec.traffic_density)

    # RSU counts: same order as the paper per class, and ~5K total.
    for road_type, paper_count in PAPER_RSUS.items():
        measured = plan.row(road_type).rsus_required
        assert measured == pytest.approx(paper_count, rel=0.6), road_type
    assert plan.total_rsus == pytest.approx(4998, rel=0.25)


def test_table5_city_scale_capacity(benchmark):
    """Paper: 51,129 trunks x 256 vehicles ~= 13 M concurrent users."""
    capacity = benchmark.pedantic(
        lambda: city_scale_capacity(vehicles_per_rsu=256),
        rounds=1,
        iterations=1,
    )
    print(f"\ncity-scale capacity: {capacity:,} concurrent vehicles")
    assert capacity == SHENZHEN_ROAD_TRUNKS * 256
    assert 12_000_000 < capacity < 14_000_000
