"""Fig. 6d: per-RSU received bandwidth in the 5-RSU topology.

Paper claims reproduced here:
- every RSU's received bandwidth is far below the 27 Mb/s DSRC
  capacity;
- the motorway-link RSU receives slightly more than the motorway RSUs
  (CO-DATA collaboration traffic plus migrated vehicles);
- the four motorway RSUs receive near-identical bandwidth.
"""

from repro.experiments.multirsu import fig6bd_corridor


def test_fig6d_rsu_bandwidth(benchmark, scenario_training_dataset):
    corridor = benchmark.pedantic(
        lambda: fig6bd_corridor(
            n_vehicles_per_rsu=128,
            duration_s=4.0,
            handover_fraction=0.125,
            dataset=scenario_training_dataset,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + corridor.format_table())

    link = corridor.link_row
    motorway_bandwidths = [r.bandwidth_mbps for r in corridor.motorway_rows]

    # All far below DSRC capacity.
    for row in corridor.rows:
        assert row.bandwidth_mbps < 27.0 / 4

    # Link RSU slightly higher than every motorway RSU.
    assert link.bandwidth_mbps > max(motorway_bandwidths)

    # Motorway RSUs near-identical (within 10 % of each other).
    spread = max(motorway_bandwidths) - min(motorway_bandwidths)
    assert spread / max(motorway_bandwidths) < 0.10

    # Collaboration actually happened.
    assert link.summaries_received > 0
    assert sum(r.summaries_sent for r in corridor.motorway_rows) == (
        link.summaries_received
    )
