"""Full-system online Fig. 7: CAD3 vs. AD3 through the live pipeline.

The offline Fig. 7 bench evaluates the detectors on arrays; this one
closes the loop the way the paper's testbed does: vehicles replay the
held-out 20 % of trips over DSRC, motorway RSUs accumulate per-car
prediction histories *online*, handovers ship CO-DATA summaries over
the wire, and the link RSU's in-situ detections are scored against the
records' labels.

Claims asserted:
- the link RSU running CAD3 beats the same RSU running AD3 on F1;
- CAD3's online FN rate is a fraction of AD3's (the Table IV safety
  mechanism survives end-to-end, including real summary transport);
- both variants see identical traffic (same seed => same events).
"""

import pytest

from repro.core import TestbedScenario
from repro.core.system import default_training_dataset


@pytest.fixture(scope="module")
def online_dataset():
    """Bigger than the latency-bench dataset: the DT fusion stage
    needs enough link training trips to learn stable rules."""
    return default_training_dataset(seed=11, n_cars=120)


def test_fig7_online_system(benchmark, online_dataset):
    def run():
        results = {}
        for kind in ("cad3", "ad3"):
            scenario = (
                TestbedScenario.builder()
                .vehicles(48)
                .duration(8.0)
                .seed(7)
                .handover(0.5)
                .corridor(
                    motorways=4,
                    dataset=online_dataset,
                    link_detector_kind=kind,
                )
            )
            results[kind] = scenario.run()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    cad3 = results["cad3"].rsu_metrics["rsu-mw-link"]
    ad3 = results["ad3"].rsu_metrics["rsu-mw-link"]
    print(f"\nlink RSU online (CAD3): {cad3.detection.format_row('cad3')}")
    print(f"link RSU online (AD3):  {ad3.detection.format_row('ad3')}")

    # Identical traffic, different detector.
    assert cad3.n_events == ad3.n_events
    assert cad3.summaries_received > 0

    # The paper's ordering, through the live pipeline.
    assert cad3.detection.f1 > ad3.detection.f1
    assert cad3.detection.fn_rate < 0.5 * ad3.detection.fn_rate
