"""City-scale peak-hour claims (abstract + Sec. VI-D2 / VII-B).

Paper claims checked here:

- "13 million concurrent road users" — 51,129 trunks x 256 vehicles:
  reproduced exactly (it is a uniform-load upper bound).
- "over 2 million concurrent vehicles at peak hours" — checked under
  the more demanding density-proportional load model.  Reproduction
  finding: the coverage-based Table V deployment (one RSU per km of
  frequently-used road) saturates on the *link* classes (high traffic
  share, little road length) at ~0.3 M citywide; a demand-aware
  deployment that also sizes for per-class peak load serves the full
  2 M with ~9 K RSUs — still modest infrastructure for a megacity.
"""

from repro.deploy.placement import RsuPlacementPlanner
from repro.experiments.deployment import city_scale_capacity, table5_placement
from repro.experiments.scale import (
    SHENZHEN_PEAK_VEHICLES,
    max_supported_vehicles,
    peak_hour_feasibility,
)
from repro.geo.network_builder import TABLE_V_SPECS


def test_city_scale_peak_hour(benchmark, city_network):
    def run():
        coverage_plan = table5_placement(network=city_network)
        density = {
            road_type: spec.traffic_density
            for road_type, spec in TABLE_V_SPECS.items()
        }
        demand_plan = RsuPlacementPlanner().plan_for_demand(
            city_network, density, peak_vehicles=SHENZHEN_PEAK_VEHICLES
        )
        return coverage_plan, demand_plan

    coverage_plan, demand_plan = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # The paper's uniform-bound arithmetic reproduces exactly.
    assert city_scale_capacity(256) == 51_129 * 256 > 13_000_000

    # Finding: density-proportional load saturates the coverage plan.
    coverage_assessment = peak_hour_feasibility(
        SHENZHEN_PEAK_VEHICLES, plan=coverage_plan
    )
    print("\ncoverage-based plan at 2M vehicles:")
    print(coverage_assessment.format_table())
    assert not coverage_assessment.feasible
    assert max_supported_vehicles(plan=coverage_plan) < 1_000_000

    # The demand-aware plan restores the claim with modest hardware.
    demand_assessment = peak_hour_feasibility(
        SHENZHEN_PEAK_VEHICLES, plan=demand_plan
    )
    print("\ndemand-aware plan at 2M vehicles:")
    print(demand_assessment.format_table())
    print(f"total RSUs: {demand_plan.total_rsus}")
    assert demand_assessment.feasible
    assert max_supported_vehicles(plan=demand_plan) >= SHENZHEN_PEAK_VEHICLES
    # Hardware stays modest: under 2x the coverage plan.
    assert demand_plan.total_rsus < 2 * coverage_plan.total_rsus
    # Demand-aware never removes coverage RSUs.
    for row in coverage_plan.rows:
        assert (
            demand_plan.row(row.road_type).rsus_required
            >= row.rsus_required
        )
