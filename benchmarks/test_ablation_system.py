"""Ablations of the online pipeline's timing and link choices.

Claims asserted:

- micro-batch interval: end-to-end latency grows with the interval;
  the paper's 50 ms keeps e2e under the 50 ms budget while 200 ms
  blows through it (the choice is load-bearing);
- consumer poll interval: dissemination latency grows with the poll
  period; the paper's 10 ms keeps it near the Fig. 6b range;
- collaboration link (Sec. VII-D): wired < 5G < LTE for CO-DATA
  delivery, with 5G fast enough to substitute for wire where distance
  requires it.
"""

import pytest

from repro.experiments.ablations import (
    ablate_batch_interval,
    ablate_collaboration_link,
    ablate_packet_loss,
    ablate_poll_interval,
    format_ablation,
)


def test_ablation_batch_interval(benchmark, scenario_training_dataset):
    points = benchmark.pedantic(
        lambda: ablate_batch_interval(dataset=scenario_training_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    latencies = [point.value for point in points]
    # Monotonic growth with the batch interval.
    assert latencies == sorted(latencies)
    by_interval = {point.setting: point.value for point in points}
    # The paper's 50 ms choice meets the 50 ms budget...
    assert by_interval["batch_interval=50ms"] < 55.0
    # ...while 200 ms batches cannot.
    assert by_interval["batch_interval=200ms"] > 100.0


def test_ablation_poll_interval(benchmark, scenario_training_dataset):
    points = benchmark.pedantic(
        lambda: ablate_poll_interval(dataset=scenario_training_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    latencies = [point.value for point in points]
    assert latencies == sorted(latencies)
    by_interval = {point.setting: point.value for point in points}
    # The paper's 10 ms poll keeps dissemination in the Fig. 6b range.
    assert by_interval["poll_interval=10ms"] < 20.0
    # A lazy 50 ms poll roughly triples it.
    assert by_interval["poll_interval=50ms"] > 2 * by_interval[
        "poll_interval=10ms"
    ]


def test_ablation_packet_loss(benchmark, scenario_training_dataset):
    points = benchmark.pedantic(
        lambda: ablate_packet_loss(dataset=scenario_training_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    ratios = {point.setting: point.value for point in points}
    # Lossless channel delivers everything the RSU could batch.
    assert ratios["loss=0%"] > 0.99
    # Delivery tracks (1 - loss); broadcast frames are unacknowledged.
    assert ratios["loss=15%"] == pytest.approx(0.85, abs=0.04)
    assert ratios["loss=30%"] == pytest.approx(0.70, abs=0.04)
    # Monotone degradation.
    values = [point.value for point in points]
    assert values == sorted(values, reverse=True)


def test_ablation_collaboration_link(benchmark):
    points = benchmark.pedantic(
        ablate_collaboration_link, rounds=1, iterations=1
    )
    print("\n" + format_ablation(points))
    by_name = {point.setting: point.value for point in points}
    # Wired < 5G < LTE, as Sec. VII-D argues.
    assert by_name["wired"] < by_name["5g"] < by_name["lte"]
    # 5G is URLLC-fast: single-digit ms, viable for CO-DATA.
    assert by_name["5g"] < 10.0
    # LTE costs tens of ms — usable but visibly worse.
    assert 10.0 < by_name["lte"] < 60.0
