#!/usr/bin/env python
"""Resilience harness: chaos runs with pinned recovery bounds.

Runs the corridor under injected faults (see
:mod:`repro.experiments.resilience`) and checks the acceptance bounds
on the actual pipeline code:

- a mid-run broker crash + restart under 20 % DSRC burst loss
  (the ``chaos`` profile) recovers within **2 simulated seconds**
  (crash to first post-restart detection);
- **zero duplicate detections** — producer retries through the outage
  and the ack-loss window are deduplicated by broker-side sequence
  numbers;
- **zero retry-buffer evictions** — the bounded in-flight buffer is
  large enough for the outage;
- warning delivery stays within 80 % of a fault-free baseline run of
  the same spec.

Writes ``BENCH_2.json`` and exits non-zero if any bound is violated.
Run ``python benchmarks/resilience_harness.py --smoke`` for the quick
CI check (chaos profile only, smaller corridor).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.system import default_training_dataset  # noqa: E402
from repro.experiments.resilience import resilience_corridor  # noqa: E402

#: Acceptance bounds from the issue.
MAX_RECOVERY_S = 2.0
MIN_DELIVERY_RATIO = 0.80

SMOKE_PROFILES = ("chaos",)
FULL_PROFILES = ("chaos", "broker_crash", "rsu_kill", "partition", "burst_loss")


def check_bounds(name: str, report) -> list:
    """Bound violations for one profile run (empty = pass)."""
    failures = []
    recovery = report.max_recovery_time_s
    if recovery is not None and recovery > MAX_RECOVERY_S:
        failures.append(
            f"{name}: recovery {recovery:.3f}s > {MAX_RECOVERY_S}s"
        )
    if report.duplicate_detections != 0:
        failures.append(
            f"{name}: {report.duplicate_detections} duplicate detections"
        )
    if report.records_dropped != 0:
        failures.append(
            f"{name}: {report.records_dropped} records evicted from "
            f"retry buffers"
        )
    ratio = report.warning_delivery_ratio
    if ratio is not None and ratio < MIN_DELIVERY_RATIO:
        failures.append(
            f"{name}: warning delivery {ratio:.1%} < "
            f"{MIN_DELIVERY_RATIO:.0%} of baseline"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="chaos profile only, smaller corridor (for CI)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_2.json",
        help="output path (default: repo-root BENCH_2.json)",
    )
    args = parser.parse_args(argv)
    args.out.parent.mkdir(parents=True, exist_ok=True)

    if args.smoke:
        profiles = SMOKE_PROFILES
        n_vehicles, duration_s, motorways = 8, 4.0, 2
    else:
        profiles = FULL_PROFILES
        n_vehicles, duration_s, motorways = 16, 6.0, 2

    print(f"resilience harness ({'smoke' if args.smoke else 'full'} mode)")
    print("building workload (corridor dataset + fitted detectors)...")
    dataset = default_training_dataset(seed=11, n_cars=60)

    runs = {}
    failures = []
    for name in profiles:
        print(f"\nprofile {name!r}: corridor x{motorways}, "
              f"{n_vehicles} vehicles/RSU, {duration_s}s...")
        start = time.perf_counter()
        report = resilience_corridor(
            profile_name=name,
            n_vehicles=n_vehicles,
            duration_s=duration_s,
            motorways=motorways,
            dataset=dataset,
        )
        wall = time.perf_counter() - start
        print(report.format_report())
        failures.extend(check_bounds(name, report))
        runs[name] = {
            "wall_s": round(wall, 3),
            "recovery_time_s": {
                k: round(v, 4) for k, v in report.recovery_time_s.items()
            },
            "records_lost": report.records_lost,
            "records_retried": report.records_retried,
            "records_dropped": report.records_dropped,
            "duplicates_rejected": report.duplicates_rejected,
            "duplicate_detections": report.duplicate_detections,
            "broker_crashes": report.broker_crashes,
            "summaries_lost": report.summaries_lost,
            "degraded_batches": report.degraded_batches,
            "warnings_delivered": report.warnings_delivered,
            "baseline_warnings_delivered": report.baseline_warnings_delivered,
            "warning_delivery_ratio": (
                None
                if report.warning_delivery_ratio is None
                else round(report.warning_delivery_ratio, 4)
            ),
            "fault_log": [
                {
                    "time_s": e.time_s,
                    "kind": e.kind,
                    "target": e.target,
                    "detail": e.detail,
                }
                for e in report.fault_log
            ],
        }

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "bounds": {
            "max_recovery_s": MAX_RECOVERY_S,
            "min_delivery_ratio": MIN_DELIVERY_RATIO,
            "max_duplicate_detections": 0,
            "max_records_dropped": 0,
        },
        "runs": runs,
        "pass": not failures,
        "failures": failures,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if failures:
        print("\nBOUND VIOLATIONS:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("all resilience bounds hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
