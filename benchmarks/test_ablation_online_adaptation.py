"""Extension bench: drift adaptation (the paper's "Changing Patterns").

Sec. II motivates CAD3 with time-varying behaviour, yet the pipeline
trains offline once.  This bench quantifies the cost on a mid-stream
regime shift (base speeds scaled by 0.7 — roadworks/weather):

- the static detector collapses after the drift;
- the cumulative online detector (exact all-history partial_fit)
  partially recovers;
- the sliding-window online detector recovers to near pre-drift
  accuracy — the configuration an RSU that "learns the normal behavior
  over time" should run.
"""

from repro.experiments.drift import drift_adaptation


def test_drift_adaptation(benchmark):
    result = benchmark.pedantic(
        lambda: drift_adaptation(n_cars=150), rounds=1, iterations=1
    )
    print("\n" + result.format_series())
    for name in ("static", "cumulative", "window"):
        before = result.mean_accuracy(name, post_drift=False)
        after = result.mean_accuracy(name, post_drift=True)
        print(f"{name:<12} before={before:.3f} after={after:.3f}")

    static_after = result.mean_accuracy("static", post_drift=True)
    cumulative_after = result.mean_accuracy("cumulative", post_drift=True)
    window_after = result.mean_accuracy("window", post_drift=True)

    # All three are comparable before the drift.
    for name in ("static", "cumulative", "window"):
        assert result.mean_accuracy(name, post_drift=False) > 0.7

    # After the drift: static collapses below chance-ish levels...
    assert static_after < 0.55
    # ...the online detectors adapt, window-forgetting best.
    assert window_after > cumulative_after > static_after
    # The window detector recovers to near its pre-drift accuracy.
    assert window_after > 0.7
