"""Sec. VII-A: CAD3 vs. a QF-COTE-style cloud-offloaded baseline.

Paper claim reproduced here: "QF-COTE is an MEC system that detects
road anomalies in over 300 ms, using the cloud for inter-node
collaboration.  In comparison, by distributing the collaboration
directly at the edge, we can achieve a latency as low as 50 ms."

The baseline ships every micro-batch over a WAN hop to an elastic
cloud backend and returns warnings the same way; with a typical 120 ms
one-way WAN latency its end-to-end lands in the paper's >300 ms
regime, while the edge pipeline stays under 50 ms on the same
workload.
"""

from repro.core import TestbedScenario


def test_cloud_offload_comparison(benchmark, scenario_training_dataset):
    def run():
        builder = TestbedScenario.builder().vehicles(64).duration(4.0).seed(7)
        edge = builder.single_rsu(dataset=scenario_training_dataset).run()
        cloud = builder.single_rsu_cloud(
            dataset=scenario_training_dataset
        ).run()
        return edge, cloud

    edge, cloud = benchmark.pedantic(run, rounds=1, iterations=1)
    edge_ms = edge.mean_e2e_ms()
    cloud_ms = cloud.mean_e2e_ms()
    print(f"\nedge (CAD3)    e2e = {edge_ms:6.1f} ms")
    print(f"cloud (QF-COTE-style) e2e = {cloud_ms:6.1f} ms")
    print(f"speedup: {cloud_ms / edge_ms:.1f}x")

    # The paper's two anchors: edge under 50 ms, cloud over 300 ms.
    assert edge_ms < 55.0
    assert cloud_ms > 300.0

    # Same workload, same detection: only the architecture differs.
    assert cloud.total_bandwidth_bps() > 0
    assert edge_ms < cloud_ms / 5
