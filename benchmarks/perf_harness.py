#!/usr/bin/env python
"""Perf-regression harness for the columnar telemetry hot path.

Measures, on the actual pipeline code (no mocks):

- **simulator** — DES event throughput (events/s);
- **serde** — JSON vs fixed-layout struct encode/decode throughput
  (records/s and MB/s), including the vectorized
  :func:`~repro.core.wire.decode_telemetry_block` batch decoder the
  columnar RSU path uses;
- **rsu_micro_batch** — end-to-end records/s through a live
  :class:`~repro.core.rsu.RsuNode` (broker -> 50 ms micro-batch ->
  detector -> event log -> warnings), legacy per-record loop vs the
  columnar block path, under both serde profiles;
- **scenarios** — wall-clock for full corridor scenario runs per
  (columnar, serde) configuration.

Writes ``BENCH_1.json`` and exits non-zero if the acceptance ratios
regress: columnar+struct must hold >= 3x records/s over the
legacy+JSON micro-batch path, the struct decode path must hold >= 5x
the JSON decode throughput, and enabling pipeline metrics must keep
>= 98 % of the metrics-off columnar+struct throughput
(``obs_overhead``).

Run ``python benchmarks/perf_harness.py --smoke`` for a quick CI
check (same measurements, smaller workloads).
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.detector import AD3Detector  # noqa: E402
from repro.core.features import IN_DATA, record_to_payload  # noqa: E402
from repro.core.rsu import RsuConfig, RsuNode  # noqa: E402
from repro.core.system import TestbedScenario  # noqa: E402
from repro.core.wire import (  # noqa: E402
    TelemetryStructSerde,
    decode_telemetry_block,
    topic_serdes,
)
from repro.dataset import (  # noqa: E402
    DatasetGenerator,
    GeneratorConfig,
    Preprocessor,
)
from repro.geo import CityNetworkBuilder, RoadType  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.simkernel import Simulator  # noqa: E402
from repro.streaming.serde import JsonSerde  # noqa: E402

#: Target ratios from the issue's acceptance criteria.
RSU_TARGET = 3.0
SERDE_TARGET = 5.0

#: Metrics-on must hold >= this fraction of metrics-off throughput on
#: the columnar+struct hot path (the observability acceptance gate).
OBS_TARGET = 0.98

#: Consumer.poll() cap — one micro-batch drains at most this many.
BATCH_SIZE = 500


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
def build_workload(seed: int = 3):
    """A labelled corridor dataset and a motorway detector, like the
    paper's testbed (and the test suite's fixtures)."""
    network = CityNetworkBuilder(seed=1).build_corridor()
    generator = DatasetGenerator(
        network,
        GeneratorConfig(
            n_cars=120, trips_per_car=6, seed=seed, erroneous_rate=0.0
        ),
    )
    dataset = generator.generate()
    dataset.records = Preprocessor().run(dataset.records)
    train, test = dataset.split_by_trip(0.8, seed=0)
    motorway_train = [r for r in train if r.road_type is RoadType.MOTORWAY]
    motorway_test = [r for r in test if r.road_type is RoadType.MOTORWAY]
    detector = AD3Detector(RoadType.MOTORWAY).fit(motorway_train)
    return dataset, detector, motorway_test


def make_envelopes(records, count):
    """``count`` wire envelopes cycling over ``records``."""
    envelopes = []
    n = len(records)
    for index in range(count):
        record = records[index % n]
        generated = index * 1e-4
        envelopes.append(
            {
                "data": record_to_payload(record),
                "generated_at": generated,
                "arrived_at": generated + 0.012,
            }
        )
    return envelopes


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------
def bench_simulator(n_events):
    sim = Simulator()
    fired = {"n": 0}

    def tick():
        fired["n"] += 1

    for index in range(n_events):
        sim.at(index * 1e-6, tick)
    gc.collect()
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    assert fired["n"] == n_events
    return {
        "events": n_events,
        "wall_s": round(wall, 4),
        "events_per_s": round(n_events / wall),
    }


def bench_serde(envelopes):
    json_serde = JsonSerde()
    struct_serde = TelemetryStructSerde()
    n = len(envelopes)
    out = {}

    for name, serde in (("json", json_serde), ("struct", struct_serde)):
        gc.collect()
        start = time.perf_counter()
        payloads = [serde.serialize(e) for e in envelopes]
        ser_wall = time.perf_counter() - start
        total_bytes = sum(len(p) for p in payloads)
        gc.collect()
        start = time.perf_counter()
        decoded = [serde.deserialize(p) for p in payloads]
        de_wall = time.perf_counter() - start
        assert len(decoded) == n
        out[name] = {
            "records": n,
            "bytes_per_record": round(total_bytes / n, 1),
            "serialize_records_per_s": round(n / ser_wall),
            "serialize_mb_per_s": round(total_bytes / ser_wall / 1e6, 1),
            "deserialize_records_per_s": round(n / de_wall),
            "deserialize_mb_per_s": round(total_bytes / de_wall / 1e6, 1),
        }

    # The decode path the columnar pipeline actually takes: one
    # np.frombuffer over the whole batch.
    struct_raw = [struct_serde.serialize(e) for e in envelopes]
    struct_bytes = sum(len(p) for p in struct_raw)
    gc.collect()
    start = time.perf_counter()
    block = decode_telemetry_block(struct_raw, serde=struct_serde)
    batch_wall = time.perf_counter() - start
    assert len(block) == n
    out["struct"]["batch_decode_records_per_s"] = round(n / batch_wall)
    out["struct"]["batch_decode_mb_per_s"] = round(
        struct_bytes / batch_wall / 1e6, 1
    )

    ratio = (
        out["struct"]["batch_decode_records_per_s"]
        / out["json"]["deserialize_records_per_s"]
    )
    out["decode_throughput_ratio"] = round(ratio, 1)
    out["target_ratio"] = SERDE_TARGET
    out["pass"] = ratio >= SERDE_TARGET
    return out


def bench_rsu_micro_batch(detector, records, n_records):
    """End-to-end records/s through a live RsuNode per configuration."""
    envelopes = make_envelopes(records, n_records)
    variants = {}
    for columnar in (False, True):
        for profile in ("json", "struct"):
            key = f"{'columnar' if columnar else 'legacy'}+{profile}"
            serdes = topic_serdes(profile)
            sim = Simulator()
            rsu = RsuNode(
                sim,
                "bench",
                detector,
                RsuConfig(columnar=columnar, serdes=serdes),
            )
            in_serde = rsu._serde_for(IN_DATA)
            raw = [in_serde.serialize(e) for e in envelopes]
            for payload, envelope in zip(raw, envelopes):
                rsu.broker.produce(
                    IN_DATA,
                    payload,
                    key=str(envelope["data"]["car"]).encode(),
                    timestamp=0.0,
                )
            ticks = n_records // BATCH_SIZE + 2
            rsu.start(until=ticks * rsu.config.batch_interval_s)
            gc.collect()
            start = time.perf_counter()
            sim.run()
            wall = time.perf_counter() - start
            assert len(rsu.events) == n_records, key
            variants[key] = {
                "records": n_records,
                "wall_s": round(wall, 4),
                "records_per_s": round(n_records / wall),
                "warnings": rsu.warnings_issued,
                "events": len(rsu.events),
            }
    # All variants must agree on verdicts — perf must not change behaviour.
    warning_counts = {v["warnings"] for v in variants.values()}
    assert len(warning_counts) == 1, f"verdict divergence: {variants}"
    baseline = variants["legacy+json"]
    optimized = variants["columnar+struct"]
    speedup = optimized["records_per_s"] / baseline["records_per_s"]
    return {
        "baseline": "legacy+json",
        "optimized": "columnar+struct",
        "variants": variants,
        "speedup": round(speedup, 2),
        "target_ratio": RSU_TARGET,
        "pass": speedup >= RSU_TARGET,
    }


class _CountingRegistry(obs_metrics.MetricsRegistry):
    """A registry that counts every instrument access the run makes."""

    def __init__(self):
        super().__init__()
        self.ops = 0

    def counter(self, name, **labels):
        self.ops += 1
        return super().counter(name, **labels)

    def gauge(self, name, agg="max", **labels):
        self.ops += 1
        return super().gauge(name, agg=agg, **labels)

    def histogram(self, name, edges, **labels):
        self.ops += 1
        return super().histogram(name, edges, **labels)


def bench_obs_overhead(detector, records, n_records, repeats=3):
    """Cost of enabling pipeline metrics on the columnar+struct path.

    A direct on-vs-off wall-clock comparison cannot resolve a 2 %
    difference: identical runs vary by +-20 % CPU time on shared
    hosts.  The observer-effect golden test proves an observed run
    performs *identical* simulation work plus the instrumentation
    operations, so the true overhead is exactly the cost of those
    operations.  The gate therefore (1) counts every registry access
    an observed run actually performs plus the per-batch gated reads
    (batch-mean latency, consumer lag), (2) prices them with a tight
    calibration loop run back to back with the baseline measurement —
    host-speed noise cancels in the ratio — and (3) requires the
    priced overhead to stay under ``1 - OBS_TARGET`` of the run's own
    CPU time.  Raw on/off CPU times are reported for reference but do
    not gate.
    """
    envelopes = make_envelopes(records, n_records)
    serdes = topic_serdes("struct")

    def run_once(clock=time.process_time):
        sim = Simulator()
        rsu = RsuNode(
            sim,
            "bench",
            detector,
            RsuConfig(columnar=True, serdes=serdes),
        )
        in_serde = rsu._serde_for(IN_DATA)
        raw = [in_serde.serialize(e) for e in envelopes]
        for payload, envelope in zip(raw, envelopes):
            rsu.broker.produce(
                IN_DATA,
                payload,
                key=str(envelope["data"]["car"]).encode(),
                timestamp=0.0,
            )
        ticks = n_records // BATCH_SIZE + 2
        rsu.start(until=ticks * rsu.config.batch_interval_s)
        gc.collect()
        start = clock()
        sim.run()
        cpu = clock() - start
        assert len(rsu.events) == n_records
        return cpu

    run_once()  # warm caches before any timed run
    best = {"off": float("inf"), "on": float("inf")}
    counting = None
    for repeat in range(repeats):
        # Alternate order so slow host drift hits both variants alike.
        order = ("off", "on") if repeat % 2 == 0 else ("on", "off")
        for variant in order:
            if variant == "on":
                counting = obs_metrics.enable(_CountingRegistry())
            try:
                best[variant] = min(best[variant], run_once())
            finally:
                obs_metrics.disable()
    n_ops = counting.ops
    n_batches = -(-n_records // BATCH_SIZE)

    # Price one instrument access with the same label shape the hot
    # path uses, immediately after the baseline runs so both numbers
    # see the same host speed.
    registry = obs_metrics.MetricsRegistry()
    calibration_rounds = 200_000
    gc.collect()
    start = time.process_time()
    for _ in range(calibration_rounds):
        registry.counter("rsu.records_detected", rsu="bench").inc(1)
        registry.histogram(
            "rsu.batch_latency_ms", obs_metrics.LATENCY_MS_EDGES, rsu="bench"
        ).observe(12.5)
    per_op_s = (time.process_time() - start) / (2 * calibration_rounds)
    # The gated per-batch reads that are not registry accesses: the
    # batch-latency mean over the arrival column and the consumer-lag
    # depth probe.  np.mean over a batch-sized array dominates both.
    import numpy as np
    column = np.arange(float(BATCH_SIZE))
    gc.collect()
    start = time.process_time()
    for _ in range(20_000):
        float(np.mean(column))
    per_batch_read_s = (time.process_time() - start) / 20_000

    obs_cost_s = n_ops * per_op_s + n_batches * per_batch_read_s
    base_cpu_s = best["off"]
    ratio = base_cpu_s / (base_cpu_s + obs_cost_s)
    return {
        "records": n_records,
        "repeats": repeats,
        "registry_ops": n_ops,
        "per_op_us": round(per_op_s * 1e6, 3),
        "obs_cost_ms": round(obs_cost_s * 1e3, 3),
        "base_cpu_ms": round(base_cpu_s * 1e3, 1),
        "metrics_off_records_per_s": round(n_records / best["off"]),
        "metrics_on_records_per_s": round(n_records / best["on"]),
        "ratio": round(ratio, 4),
        "target_ratio": OBS_TARGET,
        "pass": ratio >= OBS_TARGET,
    }


def bench_scenarios(dataset, duration_s, n_vehicles):
    """Wall-clock for full corridor runs per configuration."""
    out = {}
    for columnar, profile in (
        (False, "json"),
        (True, "json"),
        (True, "struct"),
    ):
        key = f"corridor[{'columnar' if columnar else 'legacy'}+{profile}]"
        scenario = (
            TestbedScenario.builder()
            .vehicles(n_vehicles)
            .duration(duration_s)
            .seed(7)
            .handover(0.5)
            .columnar(columnar)
            .serde(profile)
            .corridor(motorways=2, dataset=dataset)
        )
        gc.collect()
        start = time.perf_counter()
        result = scenario.run()
        wall = time.perf_counter() - start
        events = sum(len(rsu.events) for rsu in scenario.rsus.values())
        out[key] = {
            "sim_s": duration_s,
            "n_vehicles": n_vehicles,
            "wall_s": round(wall, 4),
            "events": events,
            "warnings": sum(
                m.warnings_issued for m in result.rsu_metrics.values()
            ),
        }
    return out


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workloads for CI (same measurements, ~10x faster)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_1.json",
        help="output path (default: repo-root BENCH_1.json)",
    )
    args = parser.parse_args(argv)
    # Fail on an unwritable destination now, not after minutes of
    # measurement.
    args.out.parent.mkdir(parents=True, exist_ok=True)

    if args.smoke:
        sizes = {
            "sim_events": 50_000,
            "serde_records": 10_000,
            "rsu_records": 10_000,
            # The 2% obs gate needs runs long enough that host noise
            # stays under the tolerance; 10k-record runs (~30 ms) are
            # noise-dominated even as best-of-N.
            "obs_records": 50_000,
            "scenario_s": 1.0,
            "scenario_vehicles": 4,
        }
    else:
        sizes = {
            "sim_events": 200_000,
            "serde_records": 50_000,
            "rsu_records": 100_000,
            "obs_records": 100_000,
            "scenario_s": 3.0,
            "scenario_vehicles": 8,
        }

    print(f"perf harness ({'smoke' if args.smoke else 'full'} mode)")
    print("building workload (corridor dataset + fitted detector)...")
    dataset, detector, motorway_test = build_workload()

    print(f"simulator: {sizes['sim_events']} events...")
    simulator = bench_simulator(sizes["sim_events"])
    print(f"  {simulator['events_per_s']:,} events/s")

    print(f"serde: {sizes['serde_records']} envelopes...")
    envelopes = make_envelopes(motorway_test, sizes["serde_records"])
    serde = bench_serde(envelopes)
    print(
        f"  json decode {serde['json']['deserialize_records_per_s']:,} rec/s"
        f" ({serde['json']['deserialize_mb_per_s']} MB/s), struct batch"
        f" decode {serde['struct']['batch_decode_records_per_s']:,} rec/s"
        f" ({serde['struct']['batch_decode_mb_per_s']} MB/s) ->"
        f" {serde['decode_throughput_ratio']}x"
    )

    print(f"rsu micro-batch: {sizes['rsu_records']} records x 4 variants...")
    # A fresh detector per variant set is unnecessary: AD3Detector.detect
    # is stateless, so one fitted model serves all runs.
    rsu = bench_rsu_micro_batch(detector, motorway_test, sizes["rsu_records"])
    for key, variant in rsu["variants"].items():
        print(f"  {key:16s} {variant['records_per_s']:>10,} rec/s")
    print(f"  speedup {rsu['speedup']}x (target >= {RSU_TARGET}x)")

    print(f"obs overhead: {sizes['obs_records']} records, on vs off...")
    obs_overhead = bench_obs_overhead(
        detector, motorway_test, sizes["obs_records"]
    )
    print(
        f"  {obs_overhead['registry_ops']} registry ops priced at "
        f"{obs_overhead['obs_cost_ms']} ms over "
        f"{obs_overhead['base_cpu_ms']} ms CPU -> "
        f"{obs_overhead['ratio']:.4f}x (target >= {OBS_TARGET}x)"
    )

    print("scenario wall-clock...")
    scenarios = bench_scenarios(
        dataset, sizes["scenario_s"], sizes["scenario_vehicles"]
    )
    for key, row in scenarios.items():
        print(f"  {key:28s} {row['wall_s']:.3f}s wall, {row['events']} events")

    report = {
        "bench": "BENCH_1",
        "mode": "smoke" if args.smoke else "full",
        "sizes": sizes,
        "simulator": simulator,
        "serde": serde,
        "rsu_micro_batch": rsu,
        "obs_overhead": obs_overhead,
        "scenarios": scenarios,
        "pass": serde["pass"] and rsu["pass"] and obs_overhead["pass"],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["pass"]:
        print("FAIL: acceptance ratios not met", file=sys.stderr)
        return 1
    print(
        f"PASS: micro-batch {rsu['speedup']}x (>= {RSU_TARGET}x), serde "
        f"decode {serde['decode_throughput_ratio']}x (>= {SERDE_TARGET}x), "
        f"obs overhead {obs_overhead['ratio']}x (>= {OBS_TARGET}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
