#!/usr/bin/env python
"""Throughput-regression gate against a committed BENCH_*.json.

Compares a freshly produced benchmark artifact (``--candidate``)
against the committed baseline of the same bench id and fails when any
shared metric regresses by more than ``--tolerance`` (default 20 %).

Two metric classes:

- **ratio metrics** (speedups, decode ratios) are same-host relative,
  so they transfer across machines; they are always compared.
- **absolute throughputs** (``*_per_s``) only mean something when the
  candidate ran on comparable hardware; they are compared only with
  ``--absolute``.

A ratio metric present in the baseline but absent from the candidate
fails the gate (the harness stopped measuring a guaranteed ratio);
absolute metrics missing from the candidate are reported and skipped.

For ``BENCH_3`` and ``BENCH_6`` the comparison is mode-aware: a
``--smoke`` candidate is compared against the smoke-sized section the
full harness embeds in the committed artifact, so CI checks like
against like.

Exit status: 0 when no compared metric regressed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_TOLERANCE = 0.20

#: Metric names that were renamed across harness versions, mapped
#: old -> current.  Applied to the *baseline* side after extraction, so
#: a committed artifact produced by an older harness still gates the
#: metric under its current name instead of reporting it missing.
METRIC_ALIASES = {
    "simulator_events_per_s": "kernel_events_per_s",
    "corridor_wall_speedup": "corridor_speedup",
    # Early BENCH_6 drafts reported the city scaling figure under the
    # generic name before it was prefixed with its bench family.
    "critical_path_speedup_city": "city_critical_path_speedup",
    "city_speedup": "city_critical_path_speedup",
}


def apply_aliases(metrics: dict) -> dict:
    out = {}
    for name, value in metrics.items():
        name = METRIC_ALIASES.get(name, name)
        out.setdefault(name, value)
    return out


#: Benches whose artifacts carry per-mode sections (a full artifact
#: embeds its smoke section so CI compares like against like).
MODE_AWARE_BENCHES = ("BENCH_3", "BENCH_6", "BENCH_7", "BENCH_8")


def _mode_section_metrics(report: dict, mode: str) -> dict:
    """The regression_metrics dict for the requested mode, from either
    a full artifact (which embeds both sections) or a smoke one."""
    bench = report.get("bench")
    section = report.get(mode)
    if section is None and mode == "full" and report.get("mode") == "smoke":
        raise SystemExit(
            "baseline/candidate is smoke-mode only; no full section to "
            "compare"
        )
    if section is None:
        raise SystemExit(f"no {mode!r} section in {bench} artifact")
    return dict(section["regression_metrics"])


def extract_metrics(report: dict, mode: str) -> dict:
    bench = report.get("bench")
    if bench in MODE_AWARE_BENCHES:
        metrics = _mode_section_metrics(report, mode)
        # The BENCH_8 full artifact carries the paper-scale day as its
        # own section; fold its metrics in so the full-mode gate sees
        # them (smoke candidates never run the scale day).
        if bench == "BENCH_8" and mode == "full" and report.get("scale"):
            metrics.update(report["scale"]["regression_metrics"])
        return metrics
    if bench == "BENCH_1":
        metrics = {
            "rsu_micro_batch_speedup": report["rsu_micro_batch"]["speedup"],
            "serde_decode_ratio": report["serde"]["decode_throughput_ratio"],
            "columnar_struct_records_per_s": report["rsu_micro_batch"][
                "variants"
            ]["columnar+struct"]["records_per_s"],
            "struct_batch_decode_records_per_s": report["serde"]["struct"][
                "batch_decode_records_per_s"
            ],
        }
        # Added by the observability PR; older artifacts predate it.
        if "obs_overhead" in report:
            metrics["obs_overhead_ratio"] = report["obs_overhead"]["ratio"]
        # The event-kernel overhaul moved the simulator bench into the
        # kernel harness (BENCH_4); older BENCH_1 artifacts still carry
        # the section, so keep reporting it under the current name.
        if "simulator" in report:
            metrics["kernel_events_per_s"] = report["simulator"][
                "events_per_s"
            ]
        return metrics
    if bench == "BENCH_4":
        return {
            # vs_seed_bench1 divides by a constant recorded on the seed
            # host, so it is an absolute throughput in disguise — named
            # without the _ratio suffix to keep it out of the
            # cross-host gate (the harness's own >= 3x gate covers it).
            "kernel_events_vs_seed_bench1": report["pure_events"][
                "vs_seed_bench1"
            ],
            "kernel_vs_reference_ratio": report["pure_events"]["ratio"],
            "churn_vs_reference_ratio": report["recurrence_churn"]["ratio"],
            "cancel_vs_reference_ratio": report["cancel_heavy"]["ratio"],
            "corridor_speedup": report["corridor"]["speedup"],
            "kernel_events_per_s": report["pure_events"]["calendar"][
                "events_per_s"
            ],
        }
    if bench == "BENCH_5":
        return {
            "dataplane_speedup": report["corridor"]["speedup"],
            "dataplane_batched_vs_event_ratio": report["corridor"][
                "batched_vs_event"
            ],
        }
    raise SystemExit(f"no metric extractor for bench id {bench!r}")


def extract_wall_seconds(report: dict) -> dict:
    """Absolute wall-clock seconds behind the ratio metrics, keyed by
    mode.  Informational (host-dependent, never gated): ``repro bench``
    prints them next to the ratios so a delta table shows what the
    speedups are made of.  Empty for benches without wall-clock modes.
    """
    bench = report.get("bench")
    if bench == "BENCH_4":
        corridor = report.get("corridor", {})
        return {
            f"corridor_{name}_wall_s": corridor[name]["wall_ms"] / 1000.0
            for name in ("baseline", "optimized")
            if name in corridor
        }
    if bench == "BENCH_5":
        modes = report.get("corridor", {}).get("modes", {})
        return {
            f"corridor_{name}_wall_s": mode["wall_ms"] / 1000.0
            for name, mode in sorted(modes.items())
        }
    if bench == "BENCH_6":
        walls = {}
        for mode_name in ("full", "smoke"):
            section = report.get(mode_name)
            if not section:
                continue
            walls[f"city_{mode_name}_serial_wall_s"] = section["serial"][
                "wall_s"
            ]
            walls[f"city_{mode_name}_sharded_wall_s"] = section["sharded"][
                "wall_s"
            ]
        return walls
    if bench == "BENCH_8":
        walls = {}
        for mode_name in ("full", "smoke"):
            section = report.get(mode_name)
            if not section:
                continue
            walls[f"kernel_{mode_name}_fused_wall_s"] = section["fused"][
                "wall_s"
            ]
            walls[f"kernel_{mode_name}_reference_wall_s"] = section[
                "reference"
            ]["wall_s"]
        scale = report.get("scale")
        if scale:
            walls["kernel_scale_day_wall_s"] = scale["wall_s"]
        return walls
    return {}


def is_ratio_metric(name: str) -> bool:
    return "speedup" in name or name.endswith("_ratio")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--candidate",
        type=Path,
        required=True,
        help="freshly produced BENCH_*.json to check",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed artifact (default: repo-root <bench>.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression (default: 0.20)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also compare absolute *_per_s throughputs (same-host runs)",
    )
    args = parser.parse_args(argv)

    candidate = json.loads(args.candidate.read_text())
    bench = candidate.get("bench")
    baseline_path = args.baseline or REPO_ROOT / f"{bench}.json"
    if not baseline_path.exists():
        # A brand-new benchmark has nothing to regress against yet:
        # report its metrics informationally and pass, so the first CI
        # run of a new harness is green and committing its artifact is
        # what establishes the gate.
        mode = (
            candidate.get("mode", "full")
            if bench in MODE_AWARE_BENCHES
            else "full"
        )
        print(
            f"{bench}: no committed baseline at {baseline_path.name} — "
            f"new benchmark, nothing to compare"
        )
        for name, value in sorted(extract_metrics(candidate, mode).items()):
            print(f"  {name:<36} {value:>12,.3f}  (new metric — no baseline)")
        print("PASS: commit the artifact to establish the baseline")
        return 0
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("bench") != bench:
        raise SystemExit(
            f"bench mismatch: candidate {bench!r} vs baseline "
            f"{baseline.get('bench')!r}"
        )
    if not baseline.get("pass", False):
        raise SystemExit(f"committed baseline {baseline_path} is failing")

    mode = (
        candidate.get("mode", "full")
        if bench in MODE_AWARE_BENCHES
        else "full"
    )
    candidate_metrics = apply_aliases(extract_metrics(candidate, mode))
    baseline_metrics = apply_aliases(extract_metrics(baseline, mode))

    failures = []
    compared = 0
    print(
        f"{bench} regression check ({mode} mode, "
        f"tolerance {args.tolerance:.0%}) vs {baseline_path.name}"
    )
    # A ratio metric that the baseline carries but the candidate lost is
    # a gate escape, not a skip: the harness stopped measuring something
    # it used to guarantee.  Absolute throughputs stay soft — they are
    # host-dependent and an old candidate artifact may simply not have
    # them.
    for name in sorted(baseline_metrics):
        if name in candidate_metrics:
            continue
        if is_ratio_metric(name):
            print(
                f"  {name:<36} MISSING from candidate "
                f"(baseline {baseline_metrics[name]:,.3f})"
            )
            failures.append(f"{name} (missing)")
        else:
            print(f"  {name:<36} missing from candidate (absolute; skipped)")
    for name in sorted(set(candidate_metrics) & set(baseline_metrics)):
        if not is_ratio_metric(name) and not args.absolute:
            print(f"  {name:<36} skipped (absolute; use --absolute)")
            continue
        compared += 1
        base, cand = baseline_metrics[name], candidate_metrics[name]
        floor = base * (1.0 - args.tolerance)
        verdict = "ok" if cand >= floor else "REGRESSED"
        print(
            f"  {name:<36} {cand:>12,.3f} vs {base:>12,.3f} "
            f"(floor {floor:,.3f})  {verdict}"
        )
        if cand < floor:
            failures.append(name)
    if compared == 0 and not failures:
        raise SystemExit("no comparable metrics between the two artifacts")
    if failures:
        print(
            f"FAIL: {len(failures)} metric(s) regressed or went missing "
            f"(tolerance {args.tolerance:.0%}): {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: {compared} metric(s) within {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
