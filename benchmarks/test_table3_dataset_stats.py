"""Table III: dataset statistics after filtering erroneous values.

Paper shape reproduced here: the motorway rows show a much higher mean
speed than the overall mean (paper: 160 vs 23.7 km/h overall over all
road classes; our corridor covers the two classes the testbed uses,
160 vs 115), and filtering removes the erroneous records.
"""

from repro.dataset import Preprocessor
from repro.experiments.datasets import corridor_dataset, table3_statistics
from repro.geo import RoadType


def test_table3_dataset_statistics(benchmark):
    def build():
        dataset = corridor_dataset(
            n_cars=200, trips_per_car=6, erroneous_rate=0.01, labeled=False
        )
        raw_count = len(dataset.records)
        dataset.records = Preprocessor().run(dataset.records)
        return table3_statistics(dataset), raw_count, len(dataset.records)

    stats, raw_count, kept_count = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    print("\n" + stats.format_table())
    print(f"filtered {raw_count - kept_count} erroneous records "
          f"({raw_count} -> {kept_count})")

    # Filtering removed something but not much.
    assert kept_count < raw_count
    assert kept_count > 0.95 * raw_count

    motorway = stats.per_road_type[RoadType.MOTORWAY]
    link = stats.per_road_type[RoadType.MOTORWAY_LINK]

    # Paper Table III: motorway ~160 km/h, motorway link ~115 km/h.
    assert 130 < motorway.mean_speed_kmh < 180
    assert 90 < link.mean_speed_kmh < 130
    assert motorway.mean_speed_kmh > link.mean_speed_kmh

    # Every car and trip accounted for.
    assert stats.overall.n_cars == 200
    assert stats.overall.n_trips >= 200
    assert stats.overall.n_trajectories == kept_count
