#!/usr/bin/env python
"""Event-kernel benchmark: the calendar-queue overhaul vs the seed heap.

Measures, on the actual kernel code (no mocks):

- **pure_events** — one-shot event throughput (the BENCH_1 simulator
  shape: pre-schedule N events, time only ``sim.run()``), on the
  calendar :class:`~repro.simkernel.events.EventQueue` and on the
  seed-faithful :class:`~repro.simkernel.reference.ReferenceEventQueue`
  (a binary heap of Event objects ordered by Python-level ``__lt__``,
  one allocation per push — the exact pre-overhaul hot path);
- **recurrence_churn** — 10k live recurrences on spread intervals with
  a churn loop cancelling and re-registering batches mid-run;
- **cancel_heavy** — a schedule/cancel/replace mix where half of all
  scheduled events are lazily cancelled (exercises tombstone
  compaction);
- **corridor** — wall-clock for a full 65-vehicle corridor scenario:
  the overhauled kernel (calendar queue + coalesced group ticks +
  precomputed vehicle payloads + cached broker fetch) vs the in-tree
  legacy baseline switches that reproduce the seed code paths
  (``ReferenceEventQueue``, no coalescing, ``legacy_tick`` /
  ``legacy_fetch`` / ``legacy_poll`` / ``legacy_loop``).  Results must
  be bit-identical across both modes — the speedup gate only counts if
  behaviour is unchanged.

Writes ``BENCH_4.json`` and exits non-zero if the acceptance criteria
fail: pure-event throughput must hold >= 3x the seed BENCH_1 figure
(248,814 events/s) and the corridor wall-clock speedup must hold the
gate floor (the issue target is 1.5x on a quiet host; the gate keeps a
noise margin for shared CI runners).

Run ``python benchmarks/kernel_harness.py --smoke`` for a quick CI
check (same measurements, smaller workloads).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.scenario import ScenarioSpec  # noqa: E402
from repro.core.system import TestbedScenario  # noqa: E402
from repro.core.vehicle import VehicleNode  # noqa: E402
from repro.simkernel import Simulator  # noqa: E402
from repro.simkernel.events import EventQueue  # noqa: E402
from repro.simkernel.reference import ReferenceEventQueue  # noqa: E402
from repro.streaming.broker import Broker  # noqa: E402
from repro.streaming.consumer import Consumer  # noqa: E402

#: Issue acceptance: the overhauled kernel must turn over one-shot
#: events at >= 3x the throughput BENCH_1 recorded on the seed kernel.
SEED_EVENTS_PER_S = 248_814
EVENTS_TARGET_RATIO = 3.0

#: Issue target for the corridor wall-clock speedup on a quiet host,
#: and the gate floors actually enforced (shared runners jitter +-10 %
#: per mode even as min-of-repeats; 1.5x with no margin would flake).
#: Smoke runs are ~200 ms a rep, so startup and noise weigh heavier —
#: the smoke floor matches the 20 % regression tolerance the CI
#: ratio-check applies to the committed full artifact.
CORRIDOR_TARGET = 1.5
CORRIDOR_FLOOR = 1.3
CORRIDOR_FLOOR_SMOKE = 1.15


@contextmanager
def kernel_mode(queue_factory, coalesce=True, legacy=False):
    """Pin the kernel/baseline switches for one measurement, then
    restore the defaults (they are class attributes, snapshotted by
    nodes at construction — set them before building anything)."""
    saved = (
        Simulator.queue_factory,
        Simulator.coalesce_ticks,
        Simulator.legacy_loop,
        VehicleNode.legacy_tick,
        Broker.legacy_fetch,
        Consumer.legacy_poll,
    )
    Simulator.queue_factory = queue_factory
    Simulator.coalesce_ticks = coalesce
    Simulator.legacy_loop = legacy
    VehicleNode.legacy_tick = legacy
    Broker.legacy_fetch = legacy
    Consumer.legacy_poll = legacy
    try:
        yield
    finally:
        (
            Simulator.queue_factory,
            Simulator.coalesce_ticks,
            Simulator.legacy_loop,
            VehicleNode.legacy_tick,
            Broker.legacy_fetch,
            Consumer.legacy_poll,
        ) = saved


KERNELS = (("calendar", EventQueue), ("reference", ReferenceEventQueue))


# ----------------------------------------------------------------------
# Microbenches (each runs on both queue implementations)
# ----------------------------------------------------------------------
def bench_pure_events(queue_factory, n_events):
    """BENCH_1's simulator bench shape: time only the drain."""
    with kernel_mode(queue_factory):
        sim = Simulator()
        fired = [0]

        def tick():
            fired[0] += 1

        for index in range(n_events):
            sim.at(index * 1e-6, tick)
        gc.collect()
        start = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - start
    assert fired[0] == n_events
    return {
        "events": n_events,
        "wall_s": round(wall, 4),
        "events_per_s": round(n_events / wall),
    }


def bench_recurrence_churn(queue_factory, n_recurrences, horizon_s):
    """Many live recurrences plus continuous cancel/re-register churn.

    Coalescing is off so both kernels do one queue entry per
    recurrence per tick — this isolates the queue data structure under
    a standing population of ``n_recurrences`` timers.
    """
    with kernel_mode(queue_factory, coalesce=False):
        sim = Simulator()
        fired = [0]

        def tick():
            fired[0] += 1

        handles = []
        for index in range(n_recurrences):
            interval = 0.05 + 0.0001 * (index % 500)
            handles.append(
                sim.every(
                    interval, tick, start=interval * (1.0 + (index % 7) / 7.0)
                )
            )
        cursor = [0]

        def churn():
            for _ in range(100):
                slot = cursor[0] % n_recurrences
                handles[slot].cancel()
                interval = 0.05 + 0.0001 * (cursor[0] % 500)
                handles[slot] = sim.every(
                    interval, tick, start=sim.now + interval
                )
                cursor[0] += 1

        sim.every(0.01, churn)
        gc.collect()
        start = time.perf_counter()
        sim.run_until(horizon_s)
        wall = time.perf_counter() - start
        events = sim.events_fired
    return {
        "recurrences": n_recurrences,
        "horizon_s": horizon_s,
        "events": events,
        "cancels": cursor[0],
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall),
    }


def bench_cancel_heavy(queue_factory, n_events):
    """Schedule N, lazily cancel every other one, schedule N/2
    replacements, drain.  Times the full mix (pushes + cancels + pops)
    — the tombstone-compaction worst case."""
    with kernel_mode(queue_factory):
        sim = Simulator()
        fired = [0]

        def tick():
            fired[0] += 1

        gc.collect()
        start = time.perf_counter()
        events = [sim.at(index * 1e-6, tick) for index in range(n_events)]
        for event in events[::2]:
            sim.cancel(event)
        for index in range(0, n_events, 2):
            sim.at((n_events + index) * 1e-6, tick)
        sim.run()
        wall = time.perf_counter() - start
    assert fired[0] == n_events  # n/2 survivors + n/2 replacements
    ops = 2 * n_events  # 1.5n pushes + 0.5n cancels
    return {
        "scheduled": n_events + n_events // 2,
        "cancelled": n_events // 2,
        "wall_s": round(wall, 4),
        "ops_per_s": round(ops / wall),
    }


def run_kernel_pair(bench, *args):
    out = {}
    for name, queue_factory in KERNELS:
        out[name] = bench(queue_factory, *args)
    rate_key = "ops_per_s" if "ops_per_s" in out["calendar"] else "events_per_s"
    out["ratio"] = round(
        out["calendar"][rate_key] / out["reference"][rate_key], 2
    )
    return out


# ----------------------------------------------------------------------
# End-to-end corridor wall-clock
# ----------------------------------------------------------------------
def _run_corridor_once(n_vehicles, duration_s):
    spec = ScenarioSpec(n_vehicles=n_vehicles, duration_s=duration_s, seed=7)
    scenario = TestbedScenario.corridor(spec)
    gc.collect()
    start = time.perf_counter()
    result = scenario.run()
    wall = time.perf_counter() - start
    signature = tuple(
        (
            name,
            metrics.warnings_issued,
            metrics.n_events,
            metrics.summaries_sent,
            metrics.summaries_received,
        )
        for name, metrics in sorted(result.rsu_metrics.items())
    )
    return wall, (signature, result.mean_e2e_ms())


CORRIDOR_MODES = {
    "baseline": dict(
        queue_factory=ReferenceEventQueue, coalesce=False, legacy=True
    ),
    "optimized": dict(queue_factory=EventQueue, coalesce=True),
}


def corridor_probe(mode, n_vehicles_per_rsu, duration_s, repeats):
    """Min-of-repeats corridor wall for one mode, plus a results
    signature so the parent can assert bit-identical behaviour."""
    with kernel_mode(**CORRIDOR_MODES[mode]):
        walls = []
        signature = None
        for _ in range(repeats):
            wall, sig = _run_corridor_once(n_vehicles_per_rsu, duration_s)
            walls.append(wall)
            if signature is None:
                signature = sig
            assert sig == signature, f"{mode} not deterministic"
    return {"wall_ms": round(min(walls) * 1000, 1), "signature": repr(signature)}


def bench_corridor(n_vehicles_per_rsu, duration_s, repeats, floor):
    """New kernel vs seed-faithful legacy baseline, each mode in a
    fresh subprocess, with a bit-identical results check across both.

    Process isolation is load-bearing, not hygiene: measured in one
    process, whichever mode runs second inherits the other's warmed
    allocator arenas and type caches and reads ~20 % fast — the
    interleaved-repeats trick that fixes host drift makes *that* bias
    worse, not better.  The claim under test is "the seed process vs
    the overhauled process", so that is what gets measured.
    """
    import subprocess

    out = {}
    for name in CORRIDOR_MODES:
        result = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--corridor-probe",
                name,
                "--vehicles-per-rsu",
                str(n_vehicles_per_rsu),
                "--duration",
                str(duration_s),
                "--repeats",
                str(repeats),
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        out[name] = json.loads(result.stdout)
    assert out["baseline"]["signature"] == out["optimized"]["signature"], (
        "optimized kernel diverged from baseline"
    )
    speedup = out["baseline"]["wall_ms"] / out["optimized"]["wall_ms"]
    return {
        "n_vehicles": n_vehicles_per_rsu * 5,  # 4 motorway RSUs + 1 link
        "sim_s": duration_s,
        "repeats": repeats,
        "baseline": {"wall_ms": out["baseline"]["wall_ms"]},
        "optimized": {"wall_ms": out["optimized"]["wall_ms"]},
        "identical_results": True,  # asserted above
        "speedup": round(speedup, 3),
        "target_ratio": CORRIDOR_TARGET,
        "gate_floor": floor,
        "pass": speedup >= floor,
    }


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workloads for CI (same measurements, ~5x faster)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_4.json",
        help="output path (default: repo-root BENCH_4.json)",
    )
    parser.add_argument(
        "--corridor-probe",
        choices=tuple(CORRIDOR_MODES),
        help=argparse.SUPPRESS,  # internal: single-mode child process
    )
    parser.add_argument("--vehicles-per-rsu", type=int, default=13,
                        help=argparse.SUPPRESS)
    parser.add_argument("--duration", type=float, default=4.0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--repeats", type=int, default=5,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.corridor_probe:
        probe = corridor_probe(
            args.corridor_probe,
            args.vehicles_per_rsu,
            args.duration,
            args.repeats,
        )
        print(json.dumps(probe))
        return 0
    args.out.parent.mkdir(parents=True, exist_ok=True)

    if args.smoke:
        sizes = {
            "pure_events": 50_000,
            "churn_recurrences": 2_000,
            "churn_horizon_s": 0.5,
            "cancel_events": 50_000,
            "corridor_vehicles_per_rsu": 13,
            "corridor_s": 2.0,
            "corridor_repeats": 5,
        }
    else:
        sizes = {
            "pure_events": 200_000,
            "churn_recurrences": 10_000,
            "churn_horizon_s": 1.0,
            "cancel_events": 200_000,
            "corridor_vehicles_per_rsu": 13,
            "corridor_s": 4.0,
            "corridor_repeats": 5,
        }

    print(f"kernel harness ({'smoke' if args.smoke else 'full'} mode)")

    # The corridor wall-clock runs first, on pristine process state:
    # the microbenches churn through hundreds of thousands of Event
    # allocations, and the warmed allocator arenas they leave behind
    # flatter the allocation-heavy baseline (measured: the speedup
    # reads ~0.3x lower when the corridor runs last).
    print(
        f"corridor wall: {sizes['corridor_vehicles_per_rsu'] * 5} vehicles, "
        f"{sizes['corridor_s']}s sim, min of {sizes['corridor_repeats']}..."
    )
    floor = CORRIDOR_FLOOR_SMOKE if args.smoke else CORRIDOR_FLOOR
    corridor = bench_corridor(
        sizes["corridor_vehicles_per_rsu"],
        sizes["corridor_s"],
        sizes["corridor_repeats"],
        floor,
    )
    print(
        f"  baseline {corridor['baseline']['wall_ms']} ms, optimized "
        f"{corridor['optimized']['wall_ms']} ms -> {corridor['speedup']}x "
        f"(target {CORRIDOR_TARGET}x, gate floor {floor}x), "
        f"results bit-identical"
    )

    print(f"pure events: {sizes['pure_events']} one-shots x 2 kernels...")
    pure = run_kernel_pair(bench_pure_events, sizes["pure_events"])
    for name, _ in KERNELS:
        print(f"  {name:10s} {pure[name]['events_per_s']:>12,} events/s")
    events_per_s = pure["calendar"]["events_per_s"]
    events_ratio = events_per_s / SEED_EVENTS_PER_S
    pure["vs_seed_bench1"] = round(events_ratio, 2)
    pure["target_ratio"] = EVENTS_TARGET_RATIO
    pure["pass"] = events_ratio >= EVENTS_TARGET_RATIO
    print(
        f"  {events_ratio:.1f}x the seed BENCH_1 figure "
        f"({SEED_EVENTS_PER_S:,} events/s; target >= "
        f"{EVENTS_TARGET_RATIO}x)"
    )

    print(
        f"recurrence churn: {sizes['churn_recurrences']} timers x "
        f"2 kernels..."
    )
    churn = run_kernel_pair(
        bench_recurrence_churn,
        sizes["churn_recurrences"],
        sizes["churn_horizon_s"],
    )
    for name, _ in KERNELS:
        print(f"  {name:10s} {churn[name]['events_per_s']:>12,} events/s")
    print(f"  ratio {churn['ratio']}x")

    print(f"cancel-heavy mix: {sizes['cancel_events']} events x 2 kernels...")
    cancel = run_kernel_pair(bench_cancel_heavy, sizes["cancel_events"])
    for name, _ in KERNELS:
        print(f"  {name:10s} {cancel[name]['ops_per_s']:>12,} ops/s")
    print(f"  ratio {cancel['ratio']}x")

    report = {
        "bench": "BENCH_4",
        "mode": "smoke" if args.smoke else "full",
        "sizes": sizes,
        "pure_events": pure,
        "recurrence_churn": churn,
        "cancel_heavy": cancel,
        "corridor": corridor,
        "pass": pure["pass"] and corridor["pass"],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["pass"]:
        print("FAIL: acceptance ratios not met", file=sys.stderr)
        return 1
    print(
        f"PASS: pure events {events_ratio:.1f}x seed (>= "
        f"{EVENTS_TARGET_RATIO}x), corridor {corridor['speedup']}x "
        f"(floor {floor}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
