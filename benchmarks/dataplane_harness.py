#!/usr/bin/env python
"""Data-plane benchmark: the batched zero-copy pipeline vs the seed path.

Measures wall-clock for the full 65-vehicle corridor scenario in three
process-isolated modes:

- **baseline** — the seed-faithful legacy path (``ReferenceEventQueue``,
  no tick coalescing, ``legacy_tick``/``legacy_fetch``/``legacy_poll``/
  ``legacy_loop``, JSON serdes, per-record fetches).  This is the same
  anchor the BENCH_4 corridor bench measures.
- **event** — the overhauled kernel with struct serdes and columnar
  block fetches, but the per-event data plane: one simulator event per
  DSRC transmit, delivery, and 10 ms warning poll.
- **batched** — the full batched data plane on top of the event-mode
  switches: telemetry frames deferred onto the channel's batch queue
  (802.11p CSMA/CA resolved once per RSU tick with per-frame RNG draw
  order preserved), lazy HTB token accrual, template struct sends,
  virtual warning-poll grid, and block-segment warning scans.

Results must be **bit-identical** across all three modes — per-vehicle
send/receive counters and every warning latency, plus per-RSU warning
and event counts.  The speedup gate only counts if behaviour is
unchanged.

Writes ``BENCH_5.json`` and exits non-zero if the corridor speedup
(baseline wall / batched wall) misses the gate floor.  The issue target
is >= 3x on a quiet host; the enforced floor keeps a noise margin for
shared CI runners, as BENCH_4 does.

Run ``python benchmarks/dataplane_harness.py --smoke`` for a quick CI
check (same measurements and assertions, smaller workload).
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Issue acceptance: the batched data plane must run the corridor at
#: >= 3x the seed-faithful baseline on a quiet host.  The enforced gate
#: floors keep a noise margin for shared runners (same rationale and
#: ratios-of-target as the BENCH_4 corridor gate).
DATAPLANE_TARGET = 3.0
DATAPLANE_FLOOR = 2.6
DATAPLANE_FLOOR_SMOKE = 2.0

MODES = {
    "baseline": dict(legacy=True, serde="json", columnar=False, dataplane="event"),
    "event": dict(legacy=False, serde="struct", columnar=True, dataplane="event"),
    "batched": dict(legacy=False, serde="struct", columnar=True, dataplane="batched"),
}


def _pin_legacy() -> None:
    """Flip every seed-faithful baseline switch (class attributes,
    snapshotted at construction — set them before building anything).
    Probe processes run exactly one mode, so nothing is restored."""
    from repro.core.vehicle import VehicleNode
    from repro.simkernel import Simulator
    from repro.simkernel.reference import ReferenceEventQueue
    from repro.streaming.broker import Broker
    from repro.streaming.consumer import Consumer

    Simulator.queue_factory = ReferenceEventQueue
    Simulator.coalesce_ticks = False
    Simulator.legacy_loop = True
    VehicleNode.legacy_tick = True
    Broker.legacy_fetch = True
    Consumer.legacy_poll = True


def _warning_signature(result) -> str:
    """Serde-independent digest: who detected and who got warned.

    Wire size feeds the 802.11p airtime, so JSON and struct runs have
    different latencies by design — but detection decisions and warning
    delivery counts must not depend on the wire format.
    """
    vehicles = tuple(
        (car, stats.warnings_received, stats.records_sent)
        for car, stats in sorted(result.vehicle_stats.items())
    )
    rsus = tuple(
        (name, metrics.warnings_issued, metrics.n_events)
        for name, metrics in sorted(result.rsu_metrics.items())
    )
    return hashlib.sha256(repr((vehicles, rsus)).encode()).hexdigest()


def _signature(result) -> str:
    """Exact-behaviour digest: every per-vehicle counter and latency
    (full float repr, so any drift shows) plus per-RSU warning/event
    counts.  Identical trajectories => identical digest."""
    vehicles = tuple(
        (
            car,
            stats.records_sent,
            stats.bytes_sent,
            stats.warnings_received,
            stats.records_lost,
            stats.poll_failures,
            tuple(stats.e2e_latencies_s),
            tuple(stats.dissemination_latencies_s),
        )
        for car, stats in sorted(result.vehicle_stats.items())
    )
    rsus = tuple(
        (
            name,
            metrics.warnings_issued,
            metrics.n_events,
            metrics.summaries_sent,
            metrics.summaries_received,
        )
        for name, metrics in sorted(result.rsu_metrics.items())
    )
    return hashlib.sha256(repr((vehicles, rsus)).encode()).hexdigest()


def probe(mode: str, n_vehicles_per_rsu: int, duration_s: float, repeats: int) -> dict:
    """Min-of-repeats corridor wall for one mode, plus the behaviour
    digest so the parent can assert bit-identical results."""
    config = MODES[mode]
    if config["legacy"]:
        _pin_legacy()
    from repro.core.scenario import ScenarioSpec
    from repro.core.system import TestbedScenario

    walls = []
    signature = None
    warnings = None
    for _ in range(repeats):
        spec = ScenarioSpec(
            n_vehicles=n_vehicles_per_rsu,
            duration_s=duration_s,
            seed=7,
            serde_profile=config["serde"],
            columnar=config["columnar"],
            dataplane=config["dataplane"],
        )
        scenario = TestbedScenario.corridor(spec)
        gc.collect()
        start = time.perf_counter()
        result = scenario.run()
        walls.append(time.perf_counter() - start)
        digest = _signature(result)
        if signature is None:
            signature = digest
            warning_digest = _warning_signature(result)
            warnings = sum(
                stats.warnings_received
                for stats in result.vehicle_stats.values()
            )
        assert digest == signature, f"{mode} mode not deterministic"
    return {
        "wall_ms": round(min(walls) * 1000, 1),
        "signature": signature,
        "warning_signature": warning_digest,
        "warnings": warnings,
    }


def bench_dataplane(
    n_vehicles_per_rsu: int, duration_s: float, repeats: int, floor: float
) -> dict:
    """All three modes, each in a fresh subprocess (process isolation
    is load-bearing: a mode measured second inherits the first's warmed
    allocator arenas and reads fast — the claim under test is process
    vs process), with a bit-identical behaviour check across modes."""
    out = {}
    for name in MODES:
        result = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--probe",
                name,
                "--vehicles-per-rsu",
                str(n_vehicles_per_rsu),
                "--duration",
                str(duration_s),
                "--repeats",
                str(repeats),
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        out[name] = json.loads(result.stdout)
    # The tentpole claim: the batched data plane is bit-identical to the
    # per-event path under the same configuration — every counter, every
    # latency.
    assert out["batched"]["signature"] == out["event"]["signature"], (
        "batched data plane diverged from the per-event path"
    )
    # Across serde profiles latencies differ by design (wire size gates
    # the 802.11p airtime) — but detections and warning deliveries must
    # be the same runs.
    warning_sigs = {
        name: mode["warning_signature"] for name, mode in out.items()
    }
    assert len(set(warning_sigs.values())) == 1, (
        f"warning trajectories diverged across modes: {warning_sigs}"
    )
    speedup = out["baseline"]["wall_ms"] / out["batched"]["wall_ms"]
    batched_vs_event = out["event"]["wall_ms"] / out["batched"]["wall_ms"]
    return {
        "n_vehicles": n_vehicles_per_rsu * 5,  # 4 motorway RSUs + 1 link
        "sim_s": duration_s,
        "repeats": repeats,
        "warnings": out["baseline"]["warnings"],
        "modes": {
            name: {"wall_ms": mode["wall_ms"]} for name, mode in out.items()
        },
        "identical_results": True,  # asserted above
        "speedup": round(speedup, 3),
        "batched_vs_event": round(batched_vs_event, 3),
        "target_ratio": DATAPLANE_TARGET,
        "gate_floor": floor,
        "pass": speedup >= floor,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller workload for CI (same measurements and assertions)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_5.json",
        help="output path (default: repo-root BENCH_5.json)",
    )
    parser.add_argument(
        "--probe",
        choices=tuple(MODES),
        help=argparse.SUPPRESS,  # internal: single-mode child process
    )
    parser.add_argument("--vehicles-per-rsu", type=int, default=13,
                        help=argparse.SUPPRESS)
    parser.add_argument("--duration", type=float, default=4.0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--repeats", type=int, default=5,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.probe:
        print(
            json.dumps(
                probe(
                    args.probe,
                    args.vehicles_per_rsu,
                    args.duration,
                    args.repeats,
                )
            )
        )
        return 0
    args.out.parent.mkdir(parents=True, exist_ok=True)

    if args.smoke:
        sizes = {"vehicles_per_rsu": 13, "sim_s": 2.0, "repeats": 3}
        floor = DATAPLANE_FLOOR_SMOKE
    else:
        sizes = {"vehicles_per_rsu": 13, "sim_s": 4.0, "repeats": 5}
        floor = DATAPLANE_FLOOR

    print(f"dataplane harness ({'smoke' if args.smoke else 'full'} mode)")
    print(
        f"corridor: {sizes['vehicles_per_rsu'] * 5} vehicles, "
        f"{sizes['sim_s']}s sim, min of {sizes['repeats']}, "
        f"3 modes x 1 subprocess..."
    )
    corridor = bench_dataplane(
        sizes["vehicles_per_rsu"], sizes["sim_s"], sizes["repeats"], floor
    )
    for name, mode in corridor["modes"].items():
        print(f"  {name:10s} {mode['wall_ms']:>8.1f} ms")
    print(
        f"  batched vs baseline {corridor['speedup']}x (target "
        f"{DATAPLANE_TARGET}x, gate floor {floor}x); vs event path "
        f"{corridor['batched_vs_event']}x; {corridor['warnings']} warnings "
        f"bit-identical in all modes"
    )

    report = {
        "bench": "BENCH_5",
        "mode": "smoke" if args.smoke else "full",
        "sizes": sizes,
        "corridor": corridor,
        "pass": corridor["pass"],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not report["pass"]:
        print("FAIL: data-plane speedup below the gate floor", file=sys.stderr)
        return 1
    print(f"PASS: corridor {corridor['speedup']}x (floor {floor}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
