"""Ablations: labelling granularity and warning debouncing.

**Labelling granularity.**  The paper's ground truth is per road type;
Fig. 2's hourly variation implies normality is hour-dependent.  With
per-(type, hour) labels every model gets a harder task, but the
*ordering sharpens*: the centralized model loses the most (it has the
least context) and CAD3's margin over AD3 widens — finer-grained
normality makes context-awareness more valuable, which is the paper's
thesis.

**Warning debouncing.**  Gating warnings on K consecutive abnormal
records cuts warning volume steeply in both the false and true
columns; at K >= 3 the NB detector's natural flicker suppresses most
*true* warnings too.  The paper's warn-on-every-record choice is the
sensitivity-preserving end of that tradeoff.
"""

from repro.experiments.ablations import (
    ablate_labeling_granularity,
    ablate_warning_threshold,
    format_ablation,
)


def test_ablation_labeling_granularity(benchmark):
    results = benchmark.pedantic(
        lambda: ablate_labeling_granularity(n_cars=200),
        rounds=1,
        iterations=1,
    )
    for granularity, points in results.items():
        print("\n" + format_ablation(points))
    f1 = {
        point.setting: point.value
        for points in results.values()
        for point in points
    }

    # Ordering holds under both ground truths.
    for granularity in ("type", "type_hour"):
        assert (
            f1[f"{granularity}:cad3"]
            > f1[f"{granularity}:ad3"]
            > f1[f"{granularity}:centralized"]
        )

    # Hour-aware truth is harder for everyone...
    for model in ("centralized", "ad3", "cad3"):
        assert f1[f"type_hour:{model}"] < f1[f"type:{model}"]

    # ...but hurts the context-blind centralized model the most, and
    # widens CAD3's margin over AD3.
    drop = lambda model: f1[f"type:{model}"] - f1[f"type_hour:{model}"]
    assert drop("centralized") > drop("cad3")
    margin_type = f1["type:cad3"] - f1["type:ad3"]
    margin_hour = f1["type_hour:cad3"] - f1["type_hour:ad3"]
    assert margin_hour > margin_type


def test_ablation_warning_threshold(benchmark, scenario_training_dataset):
    points = benchmark.pedantic(
        lambda: ablate_warning_threshold(dataset=scenario_training_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    warnings = {
        point.setting: point.value
        for point in points
        if point.metric == "warnings"
    }
    rates = {
        point.setting: point.value
        for point in points
        if point.metric == "false-warning rate"
    }
    false_counts = {
        key: warnings[key] * rates[key] for key in warnings
    }

    # Volume drops steeply with the gate — in both columns.
    assert (
        warnings["threshold=1"]
        > warnings["threshold=2"]
        > warnings["threshold=3"]
    )
    assert false_counts["threshold=1"] > false_counts["threshold=2"]

    # The sensitivity cliff: K >= 3 suppresses most *true* warnings
    # (the flickering NB rarely strings 3 abnormal verdicts together),
    # vindicating the paper's warn-on-every-record choice.
    true_1 = warnings["threshold=1"] - false_counts["threshold=1"]
    true_3 = warnings["threshold=3"] - false_counts["threshold=3"]
    assert true_3 < 0.2 * true_1
