"""Performance guardrails for the substrates themselves.

Unlike the paper-reproduction benches (which assert *system* claims),
these measure the building blocks' throughput so regressions that
would silently stretch every experiment show up here first.  Bounds
are deliberately loose (10x headroom on a laptop-class machine).
"""

import numpy as np

from repro.ml import DecisionTreeClassifier, GaussianNaiveBayes
from repro.simkernel import Simulator
from repro.streaming import Broker, Consumer, Producer


def test_simulator_event_throughput(benchmark):
    """The DES must sustain >= 100 K events/s (experiments schedule
    millions)."""

    def run():
        sim = Simulator()
        count = 200_000
        state = {"fired": 0}

        def tick():
            state["fired"] += 1

        for index in range(count):
            sim.at(index * 1e-6, tick)
        sim.run()
        return state["fired"]

    fired = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fired == 200_000
    assert benchmark.stats["mean"] < 2.0  # >= 100 K events/s


def test_broker_produce_throughput(benchmark):
    """The in-process log must sustain >= 50 K produces/s."""

    def run():
        broker = Broker("perf")
        broker.create_topic("t", 3)
        producer = Producer(broker)
        for index in range(50_000):
            producer.send("t", {"n": index}, key=str(index % 256))
        return broker.records_in

    produced = benchmark.pedantic(run, rounds=1, iterations=1)
    assert produced == 50_000
    assert benchmark.stats["mean"] < 1.0


def test_consumer_poll_throughput(benchmark):
    broker = Broker("perf")
    broker.create_topic("t", 3)
    producer = Producer(broker)
    for index in range(50_000):
        producer.send("t", {"n": index})

    def run():
        consumer = Consumer(broker)
        consumer.subscribe(["t"])
        total = 0
        while True:
            records = consumer.poll(max_records=5_000)
            if not records:
                return total
            total += len(records)

    consumed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert consumed == 50_000
    assert benchmark.stats["mean"] < 1.5


def test_naive_bayes_fit_predict_speed(benchmark):
    """NB on a paper-scale batch (100 K x 3) in well under a second —
    the lightweight-model premise of the whole system."""
    rng = np.random.default_rng(0)
    X = np.vstack(
        [rng.normal(0, 1, (50_000, 3)), rng.normal(2, 1, (50_000, 3))]
    )
    y = np.array([0] * 50_000 + [1] * 50_000)

    def run():
        model = GaussianNaiveBayes().fit(X, y)
        return model.predict(X)

    predictions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(predictions) == 100_000
    assert benchmark.stats["mean"] < 1.0


def test_decision_tree_fit_speed(benchmark):
    """The fusion tree fits 50 K x 3 rows within a couple of seconds
    (binned splits keep it near-linear)."""
    rng = np.random.default_rng(1)
    X = rng.normal(0, 1, (50_000, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)

    def run():
        return DecisionTreeClassifier(max_depth=5).fit(X, y)

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    assert model.depth <= 5
    assert benchmark.stats["mean"] < 4.0
