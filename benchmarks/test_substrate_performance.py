"""Performance guardrails for the substrates themselves.

Unlike the paper-reproduction benches (which assert *system* claims),
these measure the building blocks' throughput so regressions that
would silently stretch every experiment show up here first.  Bounds
are deliberately loose (10x headroom on a laptop-class machine).
"""

import numpy as np

from repro.core.features import record_to_payload
from repro.core.wire import TelemetryStructSerde, decode_telemetry_block
from repro.dataset.schema import AnomalyKind, TelemetryRecord
from repro.geo.roadnet import RoadType
from repro.ml import DecisionTreeClassifier, GaussianNaiveBayes
from repro.simkernel import Simulator
from repro.streaming import Broker, Consumer, Producer
from repro.streaming.serde import JsonSerde


def test_simulator_event_throughput(benchmark):
    """The DES must sustain >= 100 K events/s (experiments schedule
    millions)."""

    def run():
        sim = Simulator()
        count = 200_000
        state = {"fired": 0}

        def tick():
            state["fired"] += 1

        for index in range(count):
            sim.at(index * 1e-6, tick)
        sim.run()
        return state["fired"]

    fired = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fired == 200_000
    assert benchmark.stats["mean"] < 2.0  # >= 100 K events/s


def test_broker_produce_throughput(benchmark):
    """The in-process log must sustain >= 50 K produces/s."""

    def run():
        broker = Broker("perf")
        broker.create_topic("t", 3)
        producer = Producer(broker)
        for index in range(50_000):
            producer.send("t", {"n": index}, key=str(index % 256))
        return broker.records_in

    produced = benchmark.pedantic(run, rounds=1, iterations=1)
    assert produced == 50_000
    assert benchmark.stats["mean"] < 1.0


def test_consumer_poll_throughput(benchmark):
    broker = Broker("perf")
    broker.create_topic("t", 3)
    producer = Producer(broker)
    for index in range(50_000):
        producer.send("t", {"n": index})

    def run():
        consumer = Consumer(broker)
        consumer.subscribe(["t"])
        total = 0
        while True:
            records = consumer.poll(max_records=5_000)
            if not records:
                return total
            total += len(records)

    consumed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert consumed == 50_000
    assert benchmark.stats["mean"] < 1.5


def _telemetry_envelopes(count):
    rng = np.random.default_rng(42)
    envelopes = []
    for index in range(count):
        record = TelemetryRecord(
            car_id=int(index % 64),
            road_id=int(index % 200),
            accel_ms2=float(rng.normal(0, 2)),
            speed_kmh=float(abs(rng.normal(90, 20))),
            hour=int(index % 24),
            day=int(index % 7) + 1,
            road_type=RoadType.MOTORWAY,
            road_mean_speed_kmh=100.0,
            timestamp=float(index) * 0.05,
            anomaly_kind=AnomalyKind.NONE,
            label=int(index % 2),
        )
        envelopes.append(
            {
                "data": record_to_payload(record),
                "generated_at": index * 0.05,
                "arrived_at": index * 0.05 + 0.012,
            }
        )
    return envelopes


def test_struct_serde_round_trip_throughput(benchmark):
    """The fixed-layout telemetry serde must round-trip >= 100 K
    envelopes/s — it exists to take serialization off the hot path, so
    it must comfortably beat the rate the simulator feeds it."""
    envelopes = _telemetry_envelopes(20_000)
    serde = TelemetryStructSerde()

    def run():
        payloads = [serde.serialize(e) for e in envelopes]
        decoded = [serde.deserialize(p) for p in payloads]
        return len(decoded), len(payloads[0])

    count, wire = benchmark.pedantic(run, rounds=1, iterations=1)
    assert count == 20_000
    assert wire == serde.wire_size  # every envelope took the struct path
    assert benchmark.stats["mean"] < 0.4  # >= 100 K round trips/s


def test_struct_batch_decode_beats_json(benchmark):
    """decode_telemetry_block over struct payloads (one np.frombuffer)
    must decode a micro-batch >= 5x faster than per-record JSON."""
    import time

    envelopes = _telemetry_envelopes(20_000)
    struct_serde = TelemetryStructSerde()
    json_serde = JsonSerde()
    struct_raw = [struct_serde.serialize(e) for e in envelopes]
    json_raw = [json_serde.serialize(e) for e in envelopes]

    start = time.perf_counter()
    json_block = decode_telemetry_block(json_raw, serde=json_serde)
    json_elapsed = time.perf_counter() - start

    def run():
        return decode_telemetry_block(struct_raw, serde=struct_serde)

    block = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(block) == len(json_block) == 20_000
    assert np.array_equal(block.speed_kmh, json_block.speed_kmh)
    assert benchmark.stats["mean"] * 5 < json_elapsed


def test_naive_bayes_fit_predict_speed(benchmark):
    """NB on a paper-scale batch (100 K x 3) in well under a second —
    the lightweight-model premise of the whole system."""
    rng = np.random.default_rng(0)
    X = np.vstack(
        [rng.normal(0, 1, (50_000, 3)), rng.normal(2, 1, (50_000, 3))]
    )
    y = np.array([0] * 50_000 + [1] * 50_000)

    def run():
        model = GaussianNaiveBayes().fit(X, y)
        return model.predict(X)

    predictions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(predictions) == 100_000
    assert benchmark.stats["mean"] < 1.0


def test_decision_tree_fit_speed(benchmark):
    """The fusion tree fits 50 K x 3 rows within a couple of seconds
    (binned splits keep it near-linear)."""
    rng = np.random.default_rng(1)
    X = rng.normal(0, 1, (50_000, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)

    def run():
        return DecisionTreeClassifier(max_depth=5).fit(X, y)

    model = benchmark.pedantic(run, rounds=1, iterations=1)
    assert model.depth <= 5
    assert benchmark.stats["mean"] < 4.0
