"""Multi-hop mesoscopic chains on the grid city (Sec. I's "the
process which is carried on").

Trips are Dijkstra-routed across up to 4 segments of a connected grid
city; from the second segment on, the collaborative detector fuses the
summary accumulated over all previous segments, merged the same way
the online RSU chain merges CO-DATA at handover.

Claims asserted:
- the chained detector beats standalone AD3 on F1 at *every* hop depth;
- its FN rate is below AD3's at every hop (the safety mechanism
  compounds along the trip);
- overall, chaining roughly halves the FN rate.
"""

from repro.experiments.mesochain import grid_dataset, mesoscopic_chain


def test_mesoscopic_chain(benchmark):
    def run():
        dataset = grid_dataset(n_cars=200, trips_per_car=6, seed=9)
        return mesoscopic_chain(dataset)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + result.format_table())
    print(
        f"overall: AD3 f1={result.overall('ad3', 'f1'):.3f} "
        f"fn={result.overall('ad3', 'fn_rate'):.3f} | "
        f"chain f1={result.overall('chain', 'f1'):.3f} "
        f"fn={result.overall('chain', 'fn_rate'):.3f}"
    )

    assert len(result.hops) >= 3  # multi-hop trips actually occurred
    for hop in result.hops:
        assert hop.f1["chain"] > hop.f1["ad3"], f"hop {hop.hop}"
        assert hop.fn_rate["chain"] < hop.fn_rate["ad3"], f"hop {hop.hop}"

    assert result.overall("chain", "fn_rate") < 0.6 * result.overall(
        "ad3", "fn_rate"
    )
