"""Fig. 6a: Tx / processing / total latency vs. number of vehicles.

Paper claims reproduced here:
- total end-to-end latency stays below 50 ms from 8 up to 256 vehicles
  (paper: 39.7 -> 48.1 ms; our simulated testbed: ~46-50 ms);
- processing time grows from ~7.3 ms to ~11.7 ms;
- the total grows by less than ~10 ms across the whole sweep.
"""

import pytest

from repro.experiments.latency import fig6a_latency_sweep, format_fig6a

VEHICLE_COUNTS = (8, 16, 32, 64, 128, 256)


def test_fig6a_latency_scalability(benchmark, scenario_training_dataset):
    sweep = benchmark.pedantic(
        lambda: fig6a_latency_sweep(
            VEHICLE_COUNTS, duration_s=5.0, dataset=scenario_training_dataset
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_fig6a(sweep))

    # Total latency under ~50 ms everywhere (5 ms headroom for the
    # simulated consumer jitter).
    for row in sweep:
        assert row.total_ms < 55.0, f"{row.n_vehicles} vehicles: {row.total_ms}"

    # Processing grows with vehicles, in the paper's 7.3-11.7 ms band.
    first, last = sweep[0], sweep[-1]
    assert first.processing_ms == pytest.approx(7.3, abs=1.5)
    assert last.processing_ms == pytest.approx(11.7, abs=2.0)
    assert last.processing_ms > first.processing_ms

    # The total grows only slightly (paper: < 10 ms across the sweep).
    assert last.total_ms - first.total_ms < 12.0

    # Tx latency is a small component and grows with contention.
    for row in sweep:
        assert row.tx_ms < 5.0
    assert last.tx_ms >= first.tx_ms
