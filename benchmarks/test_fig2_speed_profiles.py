"""Fig. 2: speed profiles of motorway vs. motorway-link roads.

Paper claims reproduced here:
- the motorway profile sits above the motorway-link profile at every
  hour;
- weekday profiles dip at the 7-9 h and 17-19 h rush hours;
- weekend profiles are flatter than weekday profiles.
"""

import math

from repro.experiments.profiles import fig2_speed_profiles
from repro.geo import RoadType


def test_fig2_speed_profiles(benchmark, model_dataset):
    result = benchmark.pedantic(
        lambda: fig2_speed_profiles(model_dataset.records),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_table())

    motorway = result.get(RoadType.MOTORWAY, weekend=False).hourly_mean_kmh
    link = result.get(RoadType.MOTORWAY_LINK, weekend=False).hourly_mean_kmh

    # Motorway faster than link wherever both observed.
    for hour in range(24):
        if not math.isnan(motorway[hour]) and not math.isnan(link[hour]):
            assert motorway[hour] > link[hour]

    # Weekday rush-hour dip: 8 h slower than 12 h (both well sampled).
    assert motorway[8] < motorway[12]

    # Weekend flatter than weekday (range over common, well-sampled
    # daytime hours).
    weekend = result.get(RoadType.MOTORWAY, weekend=True).hourly_mean_kmh
    day = range(6, 22)
    weekday_vals = [motorway[h] for h in day if not math.isnan(motorway[h])]
    weekend_vals = [weekend[h] for h in day if not math.isnan(weekend[h])]
    assert weekday_vals and weekend_vals
    weekday_range = max(weekday_vals) - min(weekday_vals)
    weekend_range = max(weekend_vals) - min(weekend_vals)
    assert weekend_range < weekday_range
