"""Fig. 8: mesoscopic (driver-trip) detection stability.

Paper claims reproduced here, quantified over every held-out trip with
an abnormal-slowing episode (the paper shows one illustrative trip):
- CAD3 detects the abnormal points accurately and stably (highest mean
  per-trip accuracy, fewest prediction flips beyond the ground-truth
  transitions);
- AD3 fluctuates (more excess flips than CAD3);
- the centralized model is unpredictable on these trips.
"""

from repro.dataset.schema import AnomalyKind
from repro.experiments.models import fig8_mesoscopic


def test_fig8_mesoscopic_stability(benchmark, model_dataset):
    result = benchmark.pedantic(
        lambda: fig8_mesoscopic(model_dataset, anomaly=AnomalyKind.SLOWING),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_aggregate())
    print("\nillustrative trip:")
    print(result.format_timeline())

    aggregate = result.aggregate
    # CAD3: most accurate at the trip level.
    assert aggregate["cad3"].mean_accuracy > aggregate["ad3"].mean_accuracy
    assert (
        aggregate["cad3"].mean_accuracy
        > aggregate["centralized"].mean_accuracy
    )
    # CAD3: most stable (fewest flips beyond truth transitions).
    assert (
        aggregate["cad3"].mean_excess_flips
        < aggregate["ad3"].mean_excess_flips
    )
    assert (
        aggregate["cad3"].mean_excess_flips
        < aggregate["centralized"].mean_excess_flips
    )
    # The statistics cover a meaningful number of episode trips.
    assert aggregate["cad3"].n_trips >= 10
