"""Table VI: spacing of existing roadside infrastructure.

Paper values:
    Traffic light: count 3,278  AVG 244.57  STD 299.7  75% 444.2  MAX 999.5
    Lamp poles:    count   520  AVG  71.9   STD  82.8  75% 100    MAX 116

Claims reproduced here: counts exact; averages within ~10 %; maxima
respect the paper's truncation; lights are much sparser than lamp
poles.
"""

import pytest

from repro.deploy import InfrastructureKind, format_table_vi
from repro.experiments.deployment import table6_infrastructure


def test_table6_infrastructure(benchmark, city_network):
    rows, _ = benchmark.pedantic(
        lambda: table6_infrastructure(network=city_network),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_table_vi(rows))
    by_kind = {row.kind: row for row in rows}

    lights = by_kind[InfrastructureKind.TRAFFIC_LIGHT]
    poles = by_kind[InfrastructureKind.LAMP_POLE]

    # Counts exact (Table VI).
    assert lights.count == 3278
    assert poles.count == 520

    # Mean spacings near the paper's.
    assert lights.avg_m == pytest.approx(244.57, rel=0.10)
    assert poles.avg_m == pytest.approx(71.9, rel=0.10)

    # Maximum gaps respect the paper's observed maxima.
    assert lights.max_m <= 999.5 + 1.0
    assert poles.max_m <= 116.0 + 1.0

    # Lights sparser than poles, as in the paper.
    assert lights.avg_m > 2.0 * poles.avg_m

    # 75th percentile between mean and max.
    assert lights.avg_m < lights.p75_m < lights.max_m
