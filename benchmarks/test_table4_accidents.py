"""Table IV: TP/FN rates and potential accidents E(Lambda).

Paper claims reproduced here (on an evaluation set with ~35 %
abnormality, like the paper's 500 K subset):
- TP rate ordering: CAD3 > AD3 > centralized (paper: 57.9 / 52.3 /
  49.2 % — note the paper's eval subset has a higher abnormal share
  than its training set, so the absolute rates differ from ours);
- FN rate ordering: CAD3 < AD3 < centralized (paper: 6.2 / 11.8 /
  19.9 %);
- E(Lambda) ordering with large factors: the centralized model causes
  several times more potential accidents than CAD3 (paper: 24x), and
  AD3 sits in between (paper: 4x).
"""

from repro.experiments.datasets import corridor_dataset
from repro.experiments.models import fig7_table4_comparison


def test_table4_accidents_large_scale(benchmark):
    def run():
        dataset = corridor_dataset(n_cars=900, trips_per_car=10, seed=1)
        return fig7_table4_comparison(dataset), len(dataset.records)

    result, n_records = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n({n_records} records generated)")
    print(result.format_table4())

    # ~35 % abnormal, like the paper's eval subset.
    assert 0.25 < result.abnormal_fraction < 0.45

    reports = result.reports
    accidents = result.accidents

    # Rate orderings.
    assert (
        reports["cad3"].tp_rate
        > reports["ad3"].tp_rate
        > reports["centralized"].tp_rate
    )
    assert (
        reports["cad3"].fn_rate
        < reports["ad3"].fn_rate
        < reports["centralized"].fn_rate
    )

    # E(Lambda) factors: centralized several times worse than CAD3.
    assert accidents["centralized"].expected_accidents > (
        2.0 * accidents["cad3"].expected_accidents
    )
    assert accidents["ad3"].expected_accidents > (
        1.2 * accidents["cad3"].expected_accidents
    )

    # The FN mechanism drives it: more FNs, more expected accidents.
    assert (
        accidents["centralized"].n_false_negatives
        > accidents["ad3"].n_false_negatives
        > accidents["cad3"].n_false_negatives
    )
