#!/usr/bin/env python
"""Sharded-corridor benchmark: parallel engine vs single-process.

Runs the same city-scale corridor spec through the single-process
columnar engine and through :class:`~repro.parallel.engine.
ShardedScenario`, on the same dataset and fitted detectors, and pins:

- **critical-path speedup >= 2.5x at 4 workers** — serial CPU seconds
  over the parallel run's CPU critical path (slowest shard's build +
  per barrier window the slowest shard's step + engine routing).  The
  critical path is what wall clock converges to on a host with
  ``workers`` free cores; measured wall for both modes is reported
  next to ``host_cpus`` so a reader can see when the host is too small
  for wall to show the speedup directly.
- **bit-identical warnings** — the parallel run must produce exactly
  the warning tuples of the serial run, per RSU, in order.
- **zero undelivered cross-shard frames**.

Each timing repeat pairs a fresh serial run with a fresh parallel run
back to back and the pinned figure is the median paired speedup, so
host-load drift cannot flake the gate.

Writes ``BENCH_3.json`` and exits non-zero on any violated bound.  In
full mode the artifact also embeds the smoke-sized measurement, so CI
(which runs ``--smoke``) can regression-check like against like via
``benchmarks/regression_check.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.system import default_training_dataset  # noqa: E402
from repro.experiments.parallel import parallel_corridor  # noqa: E402

#: Acceptance bound from the issue: >= 2.5x at 4 workers on the
#: >= 8-RSU corridor.
FULL_TARGET = 2.5
#: The 2-worker smoke config must still beat serial, but its job is
#: the correctness gate, not the headline number.
SMOKE_TARGET = 1.1

#: The full corridor keeps the handover influx at 1/8 so the link RSU
#: (which cannot be split across shards) does not dominate the
#: post-handover windows; see the load analysis in
#: docs/ARCHITECTURE.md.
FULL_SIZES = {
    "motorways": 8,
    "vehicles_per_rsu": 32,
    "duration_s": 4.0,
    "handover_fraction": 0.125,
    "workers": 4,
    "repeats": 3,
}
SMOKE_SIZES = {
    "motorways": 4,
    "vehicles_per_rsu": 6,
    "duration_s": 1.5,
    "handover_fraction": 0.25,
    "workers": 2,
    "repeats": 3,
}


def run_config(sizes, dataset, target):
    report = parallel_corridor(
        n_vehicles=sizes["vehicles_per_rsu"],
        duration_s=sizes["duration_s"],
        motorways=sizes["motorways"],
        workers=sizes["workers"],
        handover_fraction=sizes["handover_fraction"],
        dataset=dataset,
        repeats=sizes["repeats"],
    )
    failures = []
    if report.critical_path_speedup < target:
        failures.append(
            f"critical-path speedup {report.critical_path_speedup:.2f}x "
            f"< {target}x"
        )
    if not report.warnings_identical:
        failures.append("parallel warnings diverge from single-process")
    if report.undelivered_frames:
        failures.append(
            f"{report.undelivered_frames} cross-shard frames undelivered"
        )
    section = {
        "sizes": sizes,
        "rsus": sizes["motorways"] + 1,
        "serial": {
            "cpu_s": round(report.serial_cpu_s, 4),
            "wall_s": round(report.serial_wall_s, 4),
            "records_per_s": round(report.serial_records_per_s),
        },
        "parallel": {
            "critical_path_cpu_s": round(report.critical_path_cpu_s, 4),
            "total_worker_cpu_s": round(report.total_worker_cpu_s, 4),
            "engine_cpu_s": round(report.engine_cpu_s, 4),
            "build_cpu_s": [round(b, 4) for b in report.build_cpu_s],
            "wall_s": round(report.parallel_wall_s, 4),
            "records_per_s": round(report.parallel_records_per_s),
            "windows": report.windows,
            "shards": report.shard_assignments,
        },
        "records": report.records,
        "warnings": report.warnings,
        "speedup_mode": "critical_path",
        "speedup_samples": report.speedup_samples,
        "critical_path_speedup": round(report.critical_path_speedup, 3),
        "measured_wall_speedup": round(report.measured_wall_speedup, 3),
        "work_inflation": round(report.work_inflation, 3),
        "warnings_identical": report.warnings_identical,
        "undelivered_frames": report.undelivered_frames,
        "target_speedup": target,
        "regression_metrics": {
            "critical_path_speedup": round(report.critical_path_speedup, 3),
            "serial_records_per_s": round(report.serial_records_per_s),
            "parallel_records_per_s": round(report.parallel_records_per_s),
        },
        "failures": failures,
        "pass": not failures,
    }
    return report, section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2 workers, reduced corridor (the CI configuration)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_3.json",
        help="output path (default: repo-root BENCH_3.json)",
    )
    args = parser.parse_args(argv)
    args.out.parent.mkdir(parents=True, exist_ok=True)

    mode = "smoke" if args.smoke else "full"
    print(f"parallel harness ({mode} mode)")
    print("building shared workload (corridor dataset + detectors)...")
    dataset = default_training_dataset(seed=11)

    start = time.perf_counter()
    if args.smoke:
        report, primary = run_config(SMOKE_SIZES, dataset, SMOKE_TARGET)
        sections = {"smoke": primary}
    else:
        report, primary = run_config(FULL_SIZES, dataset, FULL_TARGET)
        print(report.format_report())
        print("smoke-sized reference run (for CI regression baseline)...")
        smoke_report, smoke_section = run_config(
            SMOKE_SIZES, dataset, SMOKE_TARGET
        )
        sections = {"full": primary, "smoke": smoke_section}
        primary["failures"] += [
            f"smoke: {f}" for f in smoke_section["failures"]
        ]
    if args.smoke:
        print(report.format_report())

    out = {
        "bench": "BENCH_3",
        "mode": mode,
        "host_cpus": report.host_cpus,
        "speedup_mode": "critical_path",
        **sections,
        "wall_s": round(time.perf_counter() - start, 2),
        "pass": all(section["pass"] for section in sections.values()),
    }
    args.out.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not out["pass"]:
        for section in sections.values():
            for failure in section["failures"]:
                print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"PASS: {primary['critical_path_speedup']}x critical-path speedup "
        f"at {primary['sizes']['workers']} workers "
        f"(target >= {primary['target_speedup']}x), warnings bit-identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
