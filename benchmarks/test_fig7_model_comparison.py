"""Fig. 7: accuracy and F1 of centralized vs. AD3 vs. CAD3.

Paper claims reproduced here (at the motorway-link RSU):
- CAD3 > AD3 > centralized on F1 (paper margins: +3.52 pp and
  +6.44 pp; our synthetic margins are of the same order or larger);
- CAD3 > AD3 > centralized on accuracy (paper: +3.22 pp / +6.44 pp).
"""

from repro.experiments.models import fig7_table4_comparison


def test_fig7_model_comparison(benchmark, model_dataset):
    result = benchmark.pedantic(
        lambda: fig7_table4_comparison(model_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format_fig7())
    reports = result.reports

    # F1 ordering with meaningful margins.
    assert reports["cad3"].f1 > reports["ad3"].f1 > reports["centralized"].f1
    # Paper: CAD3 +3.52 pp F1 over AD3; ours should be at least +1 pp.
    assert reports["cad3"].f1 - reports["ad3"].f1 > 0.01
    # Paper: CAD3 +6.44 pp F1 over centralized; ours at least +5 pp.
    assert reports["cad3"].f1 - reports["centralized"].f1 > 0.05

    # Accuracy ordering.
    assert (
        reports["cad3"].accuracy
        > reports["ad3"].accuracy
        > reports["centralized"].accuracy
    )

    # Precision/recall sanity for every model.
    for report in reports.values():
        assert 0.0 < report.precision <= 1.0
        assert 0.0 < report.recall <= 1.0


def test_fig7_ordering_robust_across_seeds(benchmark):
    """The headline ordering must not be a single-seed accident: three
    independently generated datasets, three independent splits."""
    from repro.experiments.datasets import corridor_dataset

    def run():
        outcomes = []
        for seed in (2, 3, 4):
            dataset = corridor_dataset(
                n_cars=200, trips_per_car=6, seed=seed
            )
            comparison = fig7_table4_comparison(dataset, seed=seed)
            outcomes.append(comparison.reports)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    for index, reports in enumerate(outcomes):
        print(
            f"seed run {index}: "
            f"f1 centralized={reports['centralized'].f1:.3f} "
            f"ad3={reports['ad3'].f1:.3f} cad3={reports['cad3'].f1:.3f}"
        )
        assert (
            reports["cad3"].f1 > reports["ad3"].f1 > reports["centralized"].f1
        ), f"seed run {index}"
        assert (
            reports["cad3"].fn_rate
            < reports["ad3"].fn_rate
            < reports["centralized"].fn_rate
        ), f"seed run {index}"
