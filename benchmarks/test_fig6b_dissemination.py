"""Fig. 6b: dissemination latency per RSU in the 5-RSU topology.

Paper claims reproduced here:
- dissemination latency (detection -> warning delivery) is of the
  order of 10-20 ms for every RSU (paper: 17.2-17.3 ms with the 10 ms
  consumer poll; ours: ~12 ms with the same poll interval);
- latencies are uniform across RSU types (motorway vs. link differ by
  well under a few ms).
"""

import numpy as np

from repro.experiments.multirsu import fig6bd_corridor


def test_fig6b_dissemination_latency(benchmark, scenario_training_dataset):
    corridor = benchmark.pedantic(
        lambda: fig6bd_corridor(
            n_vehicles_per_rsu=64,
            duration_s=5.0,
            handover_fraction=0.25,
            dataset=scenario_training_dataset,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + corridor.format_table())

    latencies = [row.dissemination_ms for row in corridor.rows]
    # Of order 10-20 ms for every RSU.
    for value in latencies:
        assert 6.0 < value < 25.0

    # Uniform across RSU types (paper: range [17.2, 17.3] ms).
    assert max(latencies) - min(latencies) < 3.0

    # End-to-end still under the 50 ms budget in the 5-RSU setting.
    assert corridor.mean_e2e_ms < 55.0
