"""Ablation: detector complexity (the paper's future work, Sec. VII-E).

"In future works, we will implement complex anomaly detection
algorithms to operate within CAD3" — this bench quantifies the
headroom on the reproduction's workload:

- a random forest saturates the task (the sigma-cutoff ground truth is
  an axis-aligned band in (speed, accel), which trees represent
  exactly — same would hold for the paper's own labels);
- plain logistic regression *collapses*: "deviation from normal" is a
  two-sided anomaly, not linearly separable, which is precisely why
  the paper's NB (per-class Gaussians => band-shaped boundary) is the
  right lightweight choice.
"""

from repro.experiments.ablations import ablate_detector_complexity, format_ablation


def test_ablation_detector_complexity(benchmark, model_dataset):
    points = benchmark.pedantic(
        lambda: ablate_detector_complexity(model_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    f1 = {point.setting: point.value for point in points}

    # Trees saturate; NB is the sweet spot; linear models collapse.
    assert f1["random_forest"] >= f1["naive_bayes"]
    assert f1["naive_bayes"] > f1["logistic"]
    assert f1["logistic"] < 0.5  # two-sided anomalies defeat linear models
    assert f1["naive_bayes"] > 0.6
