"""Fig. 6c: per-vehicle and total bandwidth vs. number of vehicles.

Paper claims reproduced here:
- each vehicle uses ~20 Kb/s on average (ours: ~15 Kb/s with the same
  200-byte 10 Hz workload — the paper's figure includes retransmission
  and protocol overhead our JSON envelope approximates);
- the RSU's total received bandwidth at 256 vehicles stays around
  5 Mb/s, far below the 27 Mb/s DSRC capacity;
- total bandwidth scales linearly with the vehicle count.
"""

import pytest

from repro.experiments.latency import fig6a_latency_sweep, format_fig6a
from repro.net.dsrc import DSRC_BANDWIDTH_BPS


def test_fig6c_bandwidth(benchmark, scenario_training_dataset):
    rows = benchmark.pedantic(
        lambda: fig6a_latency_sweep(
            (8, 64, 256), duration_s=5.0, dataset=scenario_training_dataset
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_fig6a(rows))

    # Per-vehicle bandwidth flat at ~15-20 Kb/s regardless of scale.
    for row in rows:
        assert 10.0 < row.per_vehicle_bandwidth_kbps < 30.0

    # Total at 256 vehicles: around 5 Mb/s and far below DSRC capacity.
    total_256 = rows[-1].total_bandwidth_mbps
    assert 3.0 < total_256 < 6.5
    assert total_256 * 1e6 < DSRC_BANDWIDTH_BPS / 4

    # Linear scaling: 256 vehicles use ~32x the bandwidth of 8.
    ratio = rows[-1].total_bandwidth_mbps / rows[0].total_bandwidth_mbps
    assert ratio == pytest.approx(32.0, rel=0.2)
