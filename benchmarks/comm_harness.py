#!/usr/bin/env python
"""CO-DATA comm-budget benchmark: bytes/frame vs detection accuracy.

Runs :func:`repro.experiments.collab_budget.collab_budget_sweep` — the
5-RSU corridor at a send-everything refresh baseline plus a ladder of
utility-gated, delta-encoded, priority-scheduled budget points — and
gates on the Pareto knee:

- the knee must cut CO-DATA bytes/frame by at least the gate ratio
  (>= 5x in full mode) relative to the send-all baseline;
- the knee's link-RSU detection accuracy must stay within the accuracy
  budget (<= 0.5 pp in full mode) of the baseline;
- the frontier must carry at least ``MIN_PARETO_POINTS`` gated points;
- every point's conservation-law audit must be green;
- with the plane *disabled*, behaviour must be bit-identical to a run
  with no collab config at all — same digest over every counter and
  latency, in both the per-event and batched data planes.

The simulation is deterministic, so every gated number (bytes, gated
counts, accuracy, digests) is exactly reproducible — the gates carry no
noise margin, unlike the wall-clock benches.

Writes ``BENCH_7.json``; in full mode the artifact embeds the
smoke-sized section so CI (which runs ``--smoke``) regression-checks
like against like, as BENCH_6 does.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Issue acceptance: >= 5x fewer CO-DATA bytes/frame at <= 0.5 pp
#: accuracy loss on the full corridor sweep.  Deterministic run, so the
#: floors are the targets themselves.
FULL_RATIO_FLOOR = 5.0
FULL_ACCURACY_BUDGET_PP = 0.5
SMOKE_RATIO_FLOOR = 2.5
SMOKE_ACCURACY_BUDGET_PP = 1.0
MIN_PARETO_POINTS = 5

FULL_SIZES = {"vehicles_per_rsu": 24, "duration_s": 12.0, "seed": 7}
SMOKE_SIZES = {"vehicles_per_rsu": 12, "duration_s": 6.0, "seed": 7}

SMOKE_BUDGETS = (
    ("tau=0.15", 0.15, None),
    ("tau=0.30", 0.30, None),
    ("tau=0.30/silence=3s", 0.30, 3.0),
    ("tau=0.60/silence=3s", 0.60, 3.0),
    ("tau=1.00/silence=4s", 1.00, 4.0),
)


def _signature(result) -> str:
    """Exact-behaviour digest (same fields as the BENCH_5 harness):
    every per-vehicle counter and latency at full float repr, plus
    per-RSU warning/event/summary counts."""
    vehicles = tuple(
        (
            car,
            stats.records_sent,
            stats.bytes_sent,
            stats.warnings_received,
            stats.records_lost,
            stats.poll_failures,
            tuple(stats.e2e_latencies_s),
            tuple(stats.dissemination_latencies_s),
        )
        for car, stats in sorted(result.vehicle_stats.items())
    )
    rsus = tuple(
        (
            name,
            metrics.warnings_issued,
            metrics.n_events,
            metrics.summaries_sent,
            metrics.summaries_received,
        )
        for name, metrics in sorted(result.rsu_metrics.items())
    )
    return hashlib.sha256(repr((vehicles, rsus)).encode()).hexdigest()


def check_disabled_equivalence(sizes: dict, dataset) -> dict:
    """A disabled plane must leave the seed path untouched: compare the
    digest of a run with no collab config against one carrying a
    config whose every adaptive feature is off, per data plane."""
    from repro.core.collab import CollabConfig
    from repro.core.system import TestbedScenario

    digests = {}
    for dataplane in ("event", "batched"):
        pair = {}
        for variant, collab in (("none", None), ("disabled", CollabConfig())):
            builder = (
                TestbedScenario.builder()
                .vehicles(sizes["vehicles_per_rsu"])
                .duration(sizes["duration_s"])
                .seed(sizes["seed"])
                .handover(0.25)
                .dataplane(dataplane)
            )
            if collab is not None:
                builder = builder.collab(collab)
            scenario = builder.corridor(motorways=4, dataset=dataset)
            pair[variant] = _signature(scenario.run())
        digests[dataplane] = pair
    identical = all(
        pair["none"] == pair["disabled"] for pair in digests.values()
    )
    return {"digests": digests, "identical": identical}


def run_section(
    sizes: dict,
    budgets,
    ratio_floor: float,
    accuracy_budget_pp: float,
) -> dict:
    from repro.core.system import default_training_dataset
    from repro.experiments.collab_budget import collab_budget_sweep

    dataset = default_training_dataset(seed=11, n_cars=40)
    sweep = collab_budget_sweep(
        n_vehicles_per_rsu=sizes["vehicles_per_rsu"],
        duration_s=sizes["duration_s"],
        seed=sizes["seed"],
        budgets=budgets,
        accuracy_budget_pp=accuracy_budget_pp,
        dataset=dataset,
    )
    print("  disabled-plane equivalence (event + batched)...")
    equivalence = check_disabled_equivalence(sizes, dataset)

    reduction = sweep.knee_byte_reduction
    loss_pp = sweep.knee_accuracy_loss_pp
    n_gated_points = len(sweep.points) - 1

    failures = []
    if reduction < ratio_floor:
        failures.append(
            f"knee byte reduction {reduction:.2f}x < {ratio_floor}x floor"
        )
    if loss_pp > accuracy_budget_pp:
        failures.append(
            f"knee accuracy loss {loss_pp:.2f} pp > "
            f"{accuracy_budget_pp} pp budget"
        )
    if n_gated_points < MIN_PARETO_POINTS:
        failures.append(
            f"only {n_gated_points} gated Pareto points < "
            f"{MIN_PARETO_POINTS} required"
        )
    if not sweep.audits_ok:
        bad = [p.label for p in sweep.points if not p.audit_ok]
        failures.append(f"conservation audit failed at: {', '.join(bad)}")
    if not equivalence["identical"]:
        failures.append(
            "disabled collab plane diverged from the no-config path"
        )

    baseline = sweep.baseline
    knee = sweep.knee
    return {
        "sizes": dict(sizes),
        "sweep": sweep.to_dict(),
        "equivalence": equivalence,
        "baseline_bytes_per_frame": round(baseline.bytes_per_frame, 4),
        "knee_bytes_per_frame": round(knee.bytes_per_frame, 4),
        "knee_label": knee.label,
        "byte_reduction": round(reduction, 3),
        "accuracy_loss_pp": round(loss_pp, 4),
        "n_pareto_points": n_gated_points,
        "ratio_floor": ratio_floor,
        "accuracy_budget_pp": accuracy_budget_pp,
        "regression_metrics": {
            "comm_bytes_per_frame_ratio": round(reduction, 3),
            "pareto_knee_accuracy_ratio": round(
                knee.link_accuracy / baseline.link_accuracy, 6
            )
            if baseline.link_accuracy
            else 1.0,
        },
        "failures": failures,
        "pass": not failures,
    }


def main(argv=None) -> int:
    from repro.experiments.collab_budget import DEFAULT_BUDGETS

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller workload for CI (same gates, relaxed floors)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_7.json",
        help="output path (default: repo-root BENCH_7.json)",
    )
    args = parser.parse_args(argv)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    start = time.perf_counter()

    mode = "smoke" if args.smoke else "full"
    print(f"comm harness ({mode} mode)")
    if args.smoke:
        print(
            f"  corridor sweep: {SMOKE_SIZES['vehicles_per_rsu'] * 5} "
            f"vehicles, {SMOKE_SIZES['duration_s']}s, "
            f"{len(SMOKE_BUDGETS)} budget points..."
        )
        sections = {
            "smoke": run_section(
                SMOKE_SIZES,
                SMOKE_BUDGETS,
                SMOKE_RATIO_FLOOR,
                SMOKE_ACCURACY_BUDGET_PP,
            )
        }
    else:
        print(
            f"  corridor sweep: {FULL_SIZES['vehicles_per_rsu'] * 5} "
            f"vehicles, {FULL_SIZES['duration_s']}s, "
            f"{len(DEFAULT_BUDGETS)} budget points..."
        )
        full = run_section(
            FULL_SIZES,
            DEFAULT_BUDGETS,
            FULL_RATIO_FLOOR,
            FULL_ACCURACY_BUDGET_PP,
        )
        print("  smoke-sized reference run (for CI regression baseline)...")
        smoke = run_section(
            SMOKE_SIZES,
            SMOKE_BUDGETS,
            SMOKE_RATIO_FLOOR,
            SMOKE_ACCURACY_BUDGET_PP,
        )
        sections = {"full": full, "smoke": smoke}

    out = {
        "bench": "BENCH_7",
        "mode": mode,
        **sections,
        "wall_s": round(time.perf_counter() - start, 2),
        "pass": all(section["pass"] for section in sections.values()),
    }
    args.out.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not out["pass"]:
        for section in sections.values():
            for failure in section["failures"]:
                print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    primary = sections.get("full") or sections["smoke"]
    print(
        f"PASS: knee {primary['knee_label']} — "
        f"{primary['byte_reduction']}x fewer CO-DATA bytes/frame at "
        f"{primary['accuracy_loss_pp']:+.2f} pp accuracy "
        f"({primary['n_pareto_points']} Pareto points, audits green, "
        f"disabled plane bit-identical)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
