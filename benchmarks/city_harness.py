#!/usr/bin/env python
"""City-scale trip-churn benchmark: BENCH_6.

Runs the synthetic Shenzhen fleet (Table V trunk counts at
``count_scale``) through a demand-wave day twice — single-shard and
4-shard with dynamic rebalancing — and pins:

- **>= 100k concurrent vehicles** sustained at the demand peak
  (the paper's city-scale claim, scaled to the Table V inventory);
- **shards=4 bit-identical to shards=1 under churn** — the rollup
  digest over every RSU's per-tick (detection, id-set) hash chain
  must match, with at least one rebalance event actually exercised
  (the sharded run starts from a deliberately skewed assignment so
  the load-aware rebalancer has real work to do);
- **worker scaling >= 0.75x linear from 1 -> 4 shards** — serial CPU
  seconds over the sharded run's CPU critical path (slowest shard's
  build + per tick window the slowest shard's tick + engine routing).
  As in BENCH_3, the critical path is what wall clock converges to on
  a host with 4 free cores; measured wall is reported next to
  ``host_cpus`` for context.  Both sides are noise-floored over
  repeated runs: on a virtualized host, guest CPU accounting soaks up
  host steal, a strictly one-sided error, so the minimum over repeats
  is the unbiased estimator of the uncontended cost (the same reason
  ``timeit`` reports min).  The runs are deterministic, so the
  critical path can be floored *per tick window* — steal lands on
  different ticks in different runs, and each window gets ``repeats``
  chances to be measured clean — while serial CPU takes the per-run
  minimum;
- **conservation audit green** on every run (vehicles, migrations,
  digest coverage, peak >= mean).

Writes ``BENCH_6.json`` and exits non-zero on any violated bound.  In
full mode the artifact embeds the smoke-sized section, so CI (which
runs ``--smoke``) regression-checks like against like via
``benchmarks/regression_check.py``.

``--soak`` is the nightly long-horizon mode: several simulated days at
reduced scale through the serial engine, asserting the process's peak
RSS stays bounded — churn state (per-RSU arrays, tick groups, held
moves) must not accumulate across days.  Soak artifacts go to
``BENCH_6_soak.json`` and are not regression baselines.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.city.engine import CityEngine  # noqa: E402
from repro.city.model import CitySpec  # noqa: E402
from repro.city.topology import build_city_topology  # noqa: E402
from repro.parallel.plan import ShardPlanner  # noqa: E402

#: Acceptance bounds from the issue.
FULL_PEAK_FLOOR = 100_000
FULL_SPEEDUP_TARGET = 3.0  # 0.75x linear at 4 shards
#: The 2-shard smoke city is far too small for the per-tick work to
#: amortize IPC, so its speedup floor only guards against pathological
#: slowdowns; its job is the correctness gate (digest equality +
#: rebalance + audit), not the headline number.
SMOKE_SPEEDUP_FLOOR = 0.05
SMOKE_PEAK_FLOOR = 400

FULL_SIZES = {
    "count_scale": 0.05,
    "duration_s": 86_400.0,
    "shards": 4,
    "rebalance_interval_ticks": 15,
    "rebalance_threshold": 0.05,
    "skew_moves": 4,
    # Run-to-run CPU variance on a contended host is tens of percent;
    # the gated speedup noise-floors both sides over repeats (per tick
    # window for the sharded critical path — see run_config).
    "repeats": 3,
}
SMOKE_SIZES = {
    "count_scale": 0.01,
    "duration_s": 1_800.0,
    "shards": 2,
    "rebalance_interval_ticks": 5,
    "rebalance_threshold": 0.25,
    "skew_moves": 8,
    "repeats": 1,
}
SOAK_SIZES = {
    "count_scale": 0.02,
    "duration_s": 3 * 86_400.0,
    "shards": 1,
}
#: Peak RSS bound for the soak run.  The 0.02-scale city holds ~50k
#: concurrent vehicles in columnar arrays — tens of MB of live state;
#: the bound leaves interpreter + numpy headroom while still catching
#: any per-day growth (three days of leaked move bundles or tick
#: groups would blow well past it).
SOAK_RSS_BOUND_MB = 1_500


def _skewed_assignments(spec: CitySpec, moves: int):
    """The planner's balanced assignment, deliberately unbalanced.

    Moving the ``moves`` *heaviest* RSUs of every non-zero shard onto
    shard 0 gives the rebalancer real skew to correct — and because the
    digest rollup is assignment-invariant, the skewed sharded run must
    still reproduce the serial digests bit for bit.
    """
    topology = build_city_topology(spec)
    weight = topology.vehicle_load()
    plan = [
        list(shard)
        for shard in ShardPlanner().plan(topology, spec.shards).assignments
    ]
    for shard in range(1, spec.shards):
        plan[shard].sort(key=lambda name: (weight[name], name))
        for _ in range(moves):
            if len(plan[shard]) > 1:
                plan[0].append(plan[shard].pop())
    return tuple(tuple(shard) for shard in plan)


def run_config(sizes, peak_floor, speedup_target):
    # BENCH_6 gates the *sharding protocol's* scaling, so both sides
    # run the reference tick kernel its targets were calibrated on.
    # The fused arena kernel (BENCH_8) cuts the serial side ~3x, which
    # compresses this serial-vs-sharded ratio toward the fixed IPC +
    # engine-routing cost (Amdahl) without the protocol changing at
    # all — pinning the kernel keeps the committed baseline
    # apples-to-apples.  Digests are kernel-invariant either way.
    serial_spec = CitySpec(
        seed=7,
        count_scale=sizes["count_scale"],
        duration_s=sizes["duration_s"],
        shards=1,
        kernel="reference",
    )
    sharded_spec = serial_spec.replace(
        shards=sizes["shards"],
        rebalance_interval_ticks=sizes["rebalance_interval_ticks"],
        rebalance_threshold=sizes["rebalance_threshold"],
        initial_assignments=_skewed_assignments(
            serial_spec.replace(shards=sizes["shards"]), sizes["skew_moves"]
        ),
    )

    # Repeated runs, gated on the ratio of per-side noise-floored CPU.
    # On a virtualized 1-core host, guest CPU-time accounting soaks up
    # host steal, so any single measurement is the true cost plus a
    # one-sided contention term; a minimum over repeats estimates the
    # uncontended cost (the same reason ``timeit`` reports min).  Steal
    # lands on *different ticks* in different runs, and the runs are
    # deterministic (identical work per tick window every repeat) — so
    # the sharded critical path is floored per window: for every tick,
    # take the min over repeats of (slowest shard + engine routing),
    # then sum.  Serial CPU is a single per-run scalar and takes the
    # per-run min, which still carries whatever steal hit the best run
    # — a conservative (speedup-understating) bias.  Paired per-run
    # ratios are reported alongside for spread, and the correctness
    # gates (digests, warnings, audits) are checked on every repeat.
    repeats = sizes.get("repeats", 1)
    speedup_samples = []
    serial_cpus = []
    critical_paths = []
    build_cpus = []
    window_runs = []
    serial = sharded = None
    for rep in range(repeats):
        print(
            f"  serial: {sizes['count_scale']}x city, "
            f"{serial_spec.n_ticks} ticks (run {rep + 1}/{repeats})..."
        )
        serial = CityEngine(serial_spec).run()
        print(
            f"  sharded: {sizes['shards']} workers, skewed start "
            f"(run {rep + 1}/{repeats})..."
        )
        sharded = CityEngine(sharded_spec).run()
        serial_cpus.append(serial.serial_cpu_s)
        critical_paths.append(sharded.critical_path_cpu_s())
        build_cpus.append(max(sharded.build_cpu_s))
        window_runs.append(
            [
                max(timing.worker_cpu_s) + timing.engine_cpu_s
                for timing in sharded.window_timings
            ]
        )
        sample = (
            serial.serial_cpu_s / sharded.critical_path_cpu_s()
            if sharded.critical_path_cpu_s()
            else 0.0
        )
        speedup_samples.append(round(sample, 3))
        if serial.digest_signature() != sharded.digest_signature():
            break  # correctness failure; no point timing further

    critical_path_floor = min(build_cpus) + sum(
        min(windows) for windows in zip(*window_runs)
    )
    speedup = (
        min(serial_cpus) / critical_path_floor
        if critical_path_floor > 0.0
        else 0.0
    )
    digests_identical = serial.digest_signature() == sharded.digest_signature()
    warnings_identical = serial.warnings == sharded.warnings

    failures = []
    if serial.peak_concurrent < peak_floor:
        failures.append(
            f"peak concurrency {serial.peak_concurrent:,} < {peak_floor:,}"
        )
    if not digests_identical:
        failures.append("sharded digest rollup diverges from serial")
    if not warnings_identical:
        failures.append("sharded warning counts diverge from serial")
    if not sharded.rebalance_events:
        failures.append("no rebalance event fired (skew not corrected)")
    if speedup < speedup_target:
        failures.append(
            f"critical-path speedup {speedup:.2f}x < {speedup_target}x"
        )
    for label, result in (("serial", serial), ("sharded", sharded)):
        for violation in result.audit():
            failures.append(f"{label} audit: {violation}")

    section = {
        "sizes": sizes,
        "rsus": serial.n_rsus,
        "ticks": serial.n_ticks,
        "serial": {
            "cpu_s": round(min(serial_cpus), 4),
            "wall_s": round(serial.wall_s, 4),
            "spawned": serial.spawned,
            "retired": serial.retired,
            "peak_concurrent": serial.peak_concurrent,
            "mean_concurrent": round(serial.mean_concurrent, 1),
            "warnings": serial.warnings_total,
            "migrations_applied": serial.migrations_applied,
        },
        "sharded": {
            "critical_path_cpu_s": round(critical_path_floor, 4),
            "critical_path_run_min_s": round(min(critical_paths), 4),
            "total_worker_cpu_s": round(sharded.total_worker_cpu_s(), 4),
            "wall_s": round(sharded.wall_s, 4),
            "rebalance_events": sharded.rebalance_events,
            "warnings": sharded.warnings_total,
            "migrations_applied": sharded.migrations_applied,
        },
        "speedup_mode": "critical_path_per_window_min_over_repeats",
        "critical_path_speedup": round(speedup, 3),
        "speedup_samples": speedup_samples,
        "digest_signature": serial.digest_signature(),
        "digests_identical": digests_identical,
        "warnings_identical": warnings_identical,
        "rebalance_count": len(sharded.rebalance_events),
        "peak_floor": peak_floor,
        "target_speedup": speedup_target,
        "regression_metrics": {
            "city_critical_path_speedup": round(speedup, 3),
            "city_peak_concurrent": serial.peak_concurrent,
            "city_ticks_per_s": round(
                serial.n_ticks / min(serial_cpus)
                if min(serial_cpus)
                else 0.0,
                1,
            ),
        },
        "failures": failures,
        "pass": not failures,
    }
    return section


def run_soak():
    spec = CitySpec(
        seed=7,
        count_scale=SOAK_SIZES["count_scale"],
        duration_s=SOAK_SIZES["duration_s"],
        shards=1,
    )
    days = SOAK_SIZES["duration_s"] / 86_400.0
    print(f"  soak: {days:g} simulated days, {spec.n_ticks} ticks...")
    result = CityEngine(spec).run()
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    failures = list(result.audit())
    if rss_mb > SOAK_RSS_BOUND_MB:
        failures.append(
            f"peak RSS {rss_mb:.0f} MB > {SOAK_RSS_BOUND_MB} MB bound"
        )
    return {
        "sizes": SOAK_SIZES,
        "rsus": result.n_rsus,
        "ticks": result.n_ticks,
        "spawned": result.spawned,
        "retired": result.retired,
        "peak_concurrent": result.peak_concurrent,
        "cpu_s": round(result.serial_cpu_s, 2),
        "wall_s": round(result.wall_s, 2),
        "peak_rss_mb": round(rss_mb, 1),
        "rss_bound_mb": SOAK_RSS_BOUND_MB,
        "failures": failures,
        "pass": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2 shards, reduced city (the CI configuration)",
    )
    parser.add_argument(
        "--soak",
        action="store_true",
        help="nightly long-horizon serial run with a bounded-RSS assertion",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: repo-root BENCH_6.json, or "
        "BENCH_6_soak.json with --soak)",
    )
    args = parser.parse_args(argv)
    if args.smoke and args.soak:
        parser.error("--smoke and --soak are mutually exclusive")
    out_path = args.out or REPO_ROOT / (
        "BENCH_6_soak.json" if args.soak else "BENCH_6.json"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)

    mode = "soak" if args.soak else ("smoke" if args.smoke else "full")
    print(f"city harness ({mode} mode)")
    start = time.perf_counter()
    if args.soak:
        sections = {"soak": run_soak()}
    elif args.smoke:
        sections = {
            "smoke": run_config(
                SMOKE_SIZES, SMOKE_PEAK_FLOOR, SMOKE_SPEEDUP_FLOOR
            )
        }
    else:
        full = run_config(FULL_SIZES, FULL_PEAK_FLOOR, FULL_SPEEDUP_TARGET)
        print("  smoke-sized reference run (for CI regression baseline)...")
        smoke = run_config(SMOKE_SIZES, SMOKE_PEAK_FLOOR, SMOKE_SPEEDUP_FLOOR)
        sections = {"full": full, "smoke": smoke}

    out = {
        "bench": "BENCH_6",
        "mode": mode,
        **sections,
        "wall_s": round(time.perf_counter() - start, 2),
        "pass": all(section["pass"] for section in sections.values()),
    }
    out_path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not out["pass"]:
        for section in sections.values():
            for failure in section["failures"]:
                print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if mode == "soak":
        soak = sections["soak"]
        print(
            f"PASS: {soak['ticks']} ticks, peak RSS {soak['peak_rss_mb']} MB "
            f"<= {SOAK_RSS_BOUND_MB} MB"
        )
    else:
        primary = sections.get("full") or sections["smoke"]
        print(
            f"PASS: peak {primary['serial']['peak_concurrent']:,} vehicles, "
            f"{primary['critical_path_speedup']}x critical-path speedup at "
            f"{primary['sizes']['shards']} shards, digests bit-identical, "
            f"{primary['rebalance_count']} rebalance move(s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
