#!/usr/bin/env python
"""Fused city-kernel benchmark: BENCH_8.

The arena-pooled fused tick kernel (PR 10) exists to push the
mesoscopic city engine past a million concurrent vehicles without
giving up the bit-identical digest guarantee the reference per-RSU
engine (PR 7) pins.  This harness gates both claims:

- **>= 3x serial tick throughput** over the reference kernel on the
  BENCH_6 full-day 274-RSU configuration (count_scale 0.05, 86,400
  simulated seconds, commute demand wave).  Both kernels run in the
  same process, back to back, per repeat; each side is noise-floored
  with the minimum over repeats (guest CPU accounting soaks up host
  steal, a strictly one-sided error, so the min is the unbiased
  estimator of uncontended cost — the same reason ``timeit`` reports
  min).
- **bit-identical digests** — every repeat's fused digest rollup must
  equal the reference rollup, and both conservation audits must be
  green.  A fast wrong kernel is a failure, not a trade.
- **the 1,500-RSU scale config** (full mode only): count_scale 0.28,
  one full demand-wave day through the fused kernel, sustaining
  >= 1,000,000 peak concurrent vehicles inside a bounded peak RSS and
  wall budget.  This is the paper-scale headline the arena design
  (preallocated per-RSU segments, hole-stamped retirement, epoch
  compaction — no per-tick ``np.concatenate`` of live columns) buys.

Writes ``BENCH_8.json`` and exits non-zero on any violated bound.  In
full mode the artifact embeds the smoke-sized section, so CI (which
runs ``--smoke``) regression-checks like against like via
``benchmarks/regression_check.py``.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.city.engine import CityEngine  # noqa: E402
from repro.city.model import CitySpec  # noqa: E402

#: Acceptance bounds from the issue.
FULL_SPEEDUP_TARGET = 3.0
SCALE_PEAK_FLOOR = 1_000_000
#: The smoke city is far too small for the vectorized cross-RSU batch
#: to amortize its python staging, so its speedup floor only guards
#: against pathological slowdowns; its job is the correctness gate
#: (digest equality + audits), not the headline ratio.
SMOKE_SPEEDUP_FLOOR = 0.5

FULL_SIZES = {
    "count_scale": 0.05,
    "duration_s": 86_400.0,
    # Run-to-run CPU variance on a contended host is tens of percent;
    # the gated ratio noise-floors both sides over repeats.
    "repeats": 2,
    "speedup_target": FULL_SPEEDUP_TARGET,
}
SMOKE_SIZES = {
    "count_scale": 0.01,
    "duration_s": 1_800.0,
    "repeats": 1,
    "speedup_target": SMOKE_SPEEDUP_FLOOR,
}
#: Table V trunk counts round per RSU type, so RSU count (and with it
#: peak concurrency) grows sublinearly in count_scale: 0.05 -> 274
#: RSUs / 184k peak, 0.28 -> 1,367 / 922k.  0.315 lands ~1,540 RSUs
#: and clears the million-vehicle floor with margin (deterministic
#: given the seed, so the margin covers the model, not noise).
SCALE_SIZES = {
    "count_scale": 0.315,
    "duration_s": 86_400.0,
}
#: Peak RSS bound for the scale run.  A ~1M-vehicle city is ~25 MB per
#: live column set; the arena's doubling slack, hole headroom between
#: compactions, in-flight move bundles and interpreter + numpy overhead
#: put the measured peak near 120 MB.  The bound leaves ~4x headroom
#: for allocator/numpy variance while still catching accidental
#: per-tick accumulation (a leaked day's worth of bundles would blow
#: far past it).
SCALE_RSS_BOUND_MB = 512
#: Wall budget for the scale day.  The fused kernel clears it with
#: ~10x margin on an unloaded host; the bound catches an accidental
#: return to reference-kernel scaling on even a heavily contended
#: runner.
SCALE_WALL_BUDGET_S = 300.0


def run_kernel_config(sizes):
    """Fused vs reference, back to back in the same process."""
    fused_spec = CitySpec(
        seed=7,
        count_scale=sizes["count_scale"],
        duration_s=sizes["duration_s"],
        shards=1,
        kernel="fused",
    )
    reference_spec = fused_spec.replace(kernel="reference")

    repeats = sizes["repeats"]
    fused_cpus, reference_cpus = [], []
    speedup_samples = []
    fused = reference = None
    digests_identical = True
    for rep in range(repeats):
        print(
            f"  fused: {sizes['count_scale']}x city, "
            f"{fused_spec.n_ticks} ticks (run {rep + 1}/{repeats})..."
        )
        fused = CityEngine(fused_spec).run()
        print(f"  reference: same config (run {rep + 1}/{repeats})...")
        reference = CityEngine(reference_spec).run()
        fused_cpus.append(fused.serial_cpu_s)
        reference_cpus.append(reference.serial_cpu_s)
        speedup_samples.append(
            round(reference.serial_cpu_s / fused.serial_cpu_s, 3)
            if fused.serial_cpu_s
            else 0.0
        )
        if fused.digest_signature() != reference.digest_signature():
            digests_identical = False
            break  # correctness failure; no point timing further

    speedup = (
        min(reference_cpus) / min(fused_cpus) if min(fused_cpus) else 0.0
    )

    failures = []
    if not digests_identical:
        failures.append("fused digest rollup diverges from reference kernel")
    if fused.spawned != reference.spawned:
        failures.append("fused spawn count diverges from reference kernel")
    if fused.warnings_total != reference.warnings_total:
        failures.append("fused warning count diverges from reference kernel")
    if speedup < sizes["speedup_target"]:
        failures.append(
            f"fused speedup {speedup:.2f}x < {sizes['speedup_target']}x"
        )
    for label, result in (("fused", fused), ("reference", reference)):
        for violation in result.audit():
            failures.append(f"{label} audit: {violation}")

    return {
        "sizes": sizes,
        "rsus": fused.n_rsus,
        "ticks": fused.n_ticks,
        "fused": {
            "cpu_s": round(min(fused_cpus), 4),
            "wall_s": round(fused.wall_s, 4),
            "spawned": fused.spawned,
            "retired": fused.retired,
            "peak_concurrent": fused.peak_concurrent,
            "warnings": fused.warnings_total,
            "migrations_applied": fused.migrations_applied,
        },
        "reference": {
            "cpu_s": round(min(reference_cpus), 4),
            "wall_s": round(reference.wall_s, 4),
        },
        "speedup_mode": "serial_cpu_min_over_repeats",
        "fused_speedup": round(speedup, 3),
        "speedup_samples": speedup_samples,
        "digest_signature": fused.digest_signature(),
        "digests_identical": digests_identical,
        "target_speedup": sizes["speedup_target"],
        "regression_metrics": {
            "city_kernel_fused_speedup": round(speedup, 3),
            "city_kernel_ticks_per_s": round(
                fused.n_ticks / min(fused_cpus) if min(fused_cpus) else 0.0,
                1,
            ),
        },
        "failures": failures,
        "pass": not failures,
    }


def run_scale():
    """One paper-scale demand-wave day through the fused kernel."""
    spec = CitySpec(
        seed=7,
        count_scale=SCALE_SIZES["count_scale"],
        duration_s=SCALE_SIZES["duration_s"],
        shards=1,
        kernel="fused",
    )
    print(
        f"  scale: {SCALE_SIZES['count_scale']}x city, "
        f"{spec.n_ticks} ticks (single run)..."
    )
    result = CityEngine(spec).run()
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    failures = list(result.audit())
    if result.peak_concurrent < SCALE_PEAK_FLOOR:
        failures.append(
            f"peak concurrency {result.peak_concurrent:,} < "
            f"{SCALE_PEAK_FLOOR:,}"
        )
    if rss_mb > SCALE_RSS_BOUND_MB:
        failures.append(
            f"peak RSS {rss_mb:.0f} MB > {SCALE_RSS_BOUND_MB} MB bound"
        )
    if result.wall_s > SCALE_WALL_BUDGET_S:
        failures.append(
            f"wall {result.wall_s:.0f} s > {SCALE_WALL_BUDGET_S:.0f} s budget"
        )

    return {
        "sizes": SCALE_SIZES,
        "rsus": result.n_rsus,
        "ticks": result.n_ticks,
        "spawned": result.spawned,
        "retired": result.retired,
        "peak_concurrent": result.peak_concurrent,
        "mean_concurrent": round(result.mean_concurrent, 1),
        "warnings": result.warnings_total,
        "migrations_applied": result.migrations_applied,
        "cpu_s": round(result.serial_cpu_s, 2),
        "wall_s": round(result.wall_s, 2),
        "peak_rss_mb": round(rss_mb, 1),
        "rss_bound_mb": SCALE_RSS_BOUND_MB,
        "wall_budget_s": SCALE_WALL_BUDGET_S,
        "peak_floor": SCALE_PEAK_FLOOR,
        "digest_signature": result.digest_signature(),
        "regression_metrics": {
            "city_scale_peak_concurrent": result.peak_concurrent,
        },
        "failures": failures,
        "pass": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced city, no scale day (the CI configuration)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: repo-root BENCH_8.json)",
    )
    args = parser.parse_args(argv)
    out_path = args.out or REPO_ROOT / "BENCH_8.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)

    mode = "smoke" if args.smoke else "full"
    print(f"city kernel harness ({mode} mode)")
    start = time.perf_counter()
    if args.smoke:
        sections = {"smoke": run_kernel_config(SMOKE_SIZES)}
    else:
        # The scale day runs first so its RSS measurement is not
        # inflated by... nothing: ru_maxrss is a process-lifetime peak
        # and the 0.05-scale runs are a fraction of the scale day's
        # footprint either way.  It runs first simply to surface the
        # expensive failure fastest.
        sections = {
            "scale": run_scale(),
            "full": run_kernel_config(FULL_SIZES),
            "smoke": run_kernel_config(SMOKE_SIZES),
        }

    out = {
        "bench": "BENCH_8",
        "mode": mode,
        **sections,
        "wall_s": round(time.perf_counter() - start, 2),
        "pass": all(section["pass"] for section in sections.values()),
    }
    out_path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not out["pass"]:
        for section in sections.values():
            for failure in section["failures"]:
                print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    primary = sections.get("full") or sections["smoke"]
    line = (
        f"PASS: fused {primary['fused_speedup']}x over reference "
        f"({primary['rsus']} RSUs, digests bit-identical)"
    )
    if "scale" in sections:
        scale = sections["scale"]
        line += (
            f"; scale day peak {scale['peak_concurrent']:,} vehicles in "
            f"{scale['wall_s']:.0f} s wall, {scale['peak_rss_mb']:.0f} MB RSS"
        )
    print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
