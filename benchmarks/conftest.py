"""Shared benchmark fixtures.

Workloads are built once per session; each bench times its own
experiment run and asserts the paper's qualitative claims on the
result.  Paper-vs-measured rows are printed so ``pytest benchmarks/
--benchmark-only -s`` regenerates the tables of EXPERIMENTS.md.
"""

import pytest

from repro.core.system import default_training_dataset
from repro.experiments.datasets import corridor_dataset


@pytest.fixture(scope="session")
def scenario_training_dataset():
    """Training data for the testbed scenarios (Fig. 6a-6d)."""
    return default_training_dataset(seed=11, n_cars=80)


@pytest.fixture(scope="session")
def model_dataset():
    """The standard corridor dataset for model-quality experiments."""
    return corridor_dataset()


@pytest.fixture(scope="session")
def city_network():
    from repro.experiments.deployment import build_city

    return build_city(seed=3)
