"""Eq. 5-6: analytic DSRC medium-access times.

Paper values reproduced here:
- 256 vehicles, 200-byte packets: 92.62 ms at "MCS 3" and 54.28 ms at
  "MCS 8" (ours: ~89.4 and ~54.2 ms with the 802.11p PHY overhead
  parameters stated in the module);
- all 256 vehicles clear the medium within the 100 ms update period at
  10 Hz;
- Sec. VII-B: ~400 vehicles under 85 ms at MCS 8.
"""

import pytest

from repro.experiments.mac import eq5_access_times, format_eq5
from repro.net.dsrc import PAPER_MCS_3, PAPER_MCS_8, DsrcMacModel


def test_eq5_access_times(benchmark):
    rows = benchmark.pedantic(
        lambda: eq5_access_times(), rounds=1, iterations=1
    )
    print("\n" + format_eq5(rows))

    by_key = {(row.mcs_name, row.n_vehicles): row for row in rows}
    mcs3_256 = by_key[("MCS 3", 256)]
    mcs8_256 = by_key[("MCS 8", 256)]

    # Paper's two quoted numbers, within 5 %.
    assert mcs3_256.access_time_ms == pytest.approx(92.62, rel=0.05)
    assert mcs8_256.access_time_ms == pytest.approx(54.28, rel=0.05)

    # Both fit the 10 Hz update period for 256 vehicles.
    assert mcs3_256.fits_10hz
    assert mcs8_256.fits_10hz

    # Higher MCS is strictly faster.
    for count in (8, 64, 256):
        assert (
            by_key[("MCS 8", count)].access_time_ms
            < by_key[("MCS 3", count)].access_time_ms
        )


def test_eq5_dense_deployment_claim(benchmark):
    """Sec. VII-B: 2 RSUs at 125 m with MCS 8 serve up to 400
    vehicles under 85 ms."""
    model = benchmark.pedantic(DsrcMacModel, rounds=1, iterations=1)
    assert model.max_vehicles(0.085, PAPER_MCS_8) == pytest.approx(400, abs=15)
    # And the resulting access time for exactly 400 is under 85 ms.
    assert model.channel_access_time_s(400, PAPER_MCS_8) <= 0.0851
