"""Fig. 9: coverage of the road network by existing infrastructure.

Paper claim reproduced here: with realistic street-furniture density
("except the regions marked by gray circles ... the existing roadside
infrastructure almost covers the entire city"), most road length falls
within DSRC range of some unit, and the planner can enumerate the
residual gaps requiring dedicated RSU installs.
"""

from repro.experiments.deployment import fig9_coverage


def test_fig9_coverage(benchmark, city_network):
    report = benchmark.pedantic(
        lambda: fig9_coverage(network=city_network, infrastructure_scale=4.0),
        rounds=1,
        iterations=1,
    )
    print("\n" + report.format_summary())

    # Substantial coverage from existing furniture.
    assert report.covered_fraction > 0.30

    # But some roads do need dedicated installs (the gray circles).
    assert report.n_uncovered_roads > 0
    assert report.n_uncovered_roads < len(report.per_road_coverage)

    # Coverage bookkeeping is consistent.
    assert 0.0 <= report.covered_fraction <= 1.0
    for fraction in report.per_road_coverage.values():
        assert 0.0 <= fraction <= 1.0 + 1e-9


def test_fig9_more_infrastructure_more_coverage(benchmark, city_network):
    def run():
        return (
            fig9_coverage(network=city_network, infrastructure_scale=1.0),
            fig9_coverage(network=city_network, infrastructure_scale=6.0),
        )

    sparse, dense = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nsparse: {sparse.format_summary()}")
    print(f"dense:  {dense.format_summary()}")
    assert dense.covered_fraction > sparse.covered_fraction
    assert dense.n_uncovered_roads <= sparse.n_uncovered_roads
