"""Ablations of CAD3's collaboration design (Eq. 1 and the DT stage).

DESIGN.md calls out Eq. 1's fixed 0.5/0.5 fusion and the NB -> DT
two-stage structure as untested design choices; these benches sweep
them.  Claims asserted:

- every two-stage variant with history weight <= 0.5 beats plain AD3
  on link F1 (the paper's CAD3 > AD3 holds for the whole family);
- the paper's balanced weight (0.5) beats pure-history fusion (1.0);
- the FN rate of the paper's CAD3 stays below AD3's (Table IV's
  safety mechanism survives the ablation);
- the CAD3 - AD3 gain stays positive across anomaly-persistence
  regimes.

Reproduction finding (documented in EXPERIMENTS.md): on the synthetic
mixture, the *decision-tree second stage* carries most of the
pointwise gain; history weight 0 is pointwise-optimal, i.e. Eq. 1's
history term buys trip-level driver-awareness (Table IV FN reduction,
Fig. 8 context) rather than pointwise F1.
"""

import numpy as np

from repro.core.collaborative import summaries_from_upstream
from repro.core.detector import AD3Detector
from repro.experiments.ablations import (
    ablate_episode_persistence,
    ablate_history_weight,
    format_ablation,
)
from repro.geo import RoadType
from repro.ml import evaluate_binary


def test_ablation_history_weight(benchmark, model_dataset):
    points = benchmark.pedantic(
        lambda: ablate_history_weight(model_dataset),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    f1_by_weight = {
        float(p.setting.split("=")[1]): p.value for p in points
    }

    # Plain AD3 baseline on the same split.
    train, test = model_dataset.split_by_trip(0.8, seed=0)
    link_train = [r for r in train if r.road_type is RoadType.MOTORWAY_LINK]
    link_test = [r for r in test if r.road_type is RoadType.MOTORWAY_LINK]
    ad3 = AD3Detector(RoadType.MOTORWAY_LINK).fit(link_train)
    y_true = np.array([r.label for r in link_test])
    ad3_report = evaluate_binary(y_true, ad3.predict(link_test))
    print(f"AD3 baseline: f1={ad3_report.f1:.4f} fn={ad3_report.fn_rate:.4f}")

    # Every half-or-less history weight beats plain AD3.
    for weight in (0.0, 0.25, 0.5):
        assert f1_by_weight[weight] > ad3_report.f1, weight

    # Balanced fusion beats history-only fusion.
    assert f1_by_weight[0.5] > f1_by_weight[1.0] - 1e-9

    # Reproduction finding: the DT stage dominates, so low history
    # weights are pointwise-best on the synthetic mixture.
    assert f1_by_weight[0.0] >= f1_by_weight[0.5]


def test_ablation_episode_persistence(benchmark):
    points = benchmark.pedantic(
        lambda: ablate_episode_persistence(n_cars=200),
        rounds=1,
        iterations=1,
    )
    print("\n" + format_ablation(points))
    # CAD3 beats AD3 at every persistence level.
    for point in points:
        assert point.value > 0.0, point.setting
