"""Prometheus-style text exposition for registry snapshots.

Renders a :class:`~repro.obs.metrics.RegistrySnapshot` in the
Prometheus text format (version 0.0.4) so an external scraper — or a
human with ``grep`` — can read a run's metrics.  Metric names are
sanitised (``.`` → ``_``, ``repro_`` prefix, counters get ``_total``);
histograms expand to cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``, exactly as a Prometheus client library would.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.obs.metrics import MetricKey, RegistrySnapshot

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, suffix: str = "") -> str:
    return "repro_" + _NAME_OK.sub("_", name) + suffix


def _label_str(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: RegistrySnapshot) -> str:
    """The snapshot as Prometheus text exposition (one string)."""
    lines: List[str] = []
    # Group by metric name so each gets exactly one TYPE header.
    by_name: Dict[str, List[Tuple[str, MetricKey]]] = {}
    for key in snapshot.counters:
        by_name.setdefault(key[0], []).append(("counter", key))
    for key in snapshot.gauges:
        by_name.setdefault(key[0], []).append(("gauge", key))
    for key in snapshot.histograms:
        by_name.setdefault(key[0], []).append(("histogram", key))

    for name in sorted(by_name):
        entries = sorted(by_name[name], key=lambda e: e[1])
        kind = entries[0][0]
        if kind == "counter":
            metric = _metric_name(name, "_total")
            lines.append(f"# TYPE {metric} counter")
            for _, key in entries:
                lines.append(
                    f"{metric}{_label_str(key[1])} "
                    f"{_format_value(snapshot.counters[key])}"
                )
        elif kind == "gauge":
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} gauge")
            for _, key in entries:
                _agg, value = snapshot.gauges[key]
                lines.append(
                    f"{metric}{_label_str(key[1])} {_format_value(value)}"
                )
        else:
            metric = _metric_name(name)
            lines.append(f"# TYPE {metric} histogram")
            for _, key in entries:
                edges, counts, total, count = snapshot.histograms[key]
                cumulative = 0
                for edge, bucket in zip(edges, counts[:-1]):
                    cumulative += bucket
                    le = f'le="{edge:g}"'
                    lines.append(
                        f"{metric}_bucket{_label_str(key[1], le)} {cumulative}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{metric}_bucket{_label_str(key[1], inf)} {count}"
                )
                lines.append(
                    f"{metric}_sum{_label_str(key[1])} {_format_value(total)}"
                )
                lines.append(f"{metric}_count{_label_str(key[1])} {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(snapshot: RegistrySnapshot, path) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_prometheus(snapshot))
