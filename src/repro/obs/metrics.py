"""Process-local metrics registry with mergeable, wire-encodable snapshots.

Three instrument kinds, mirroring the Prometheus data model at the
scale this testbed needs:

- :class:`Counter` — monotonically non-decreasing event count.
- :class:`Gauge` — a point-in-time value with an explicit merge
  aggregation (``"sum"``, ``"max"``, or ``"min"``).  Restricting gauges
  to these modes keeps snapshot merging associative *and* commutative,
  which the sharded engine relies on (shard snapshots arrive in
  arbitrary order at the barrier).
- :class:`Histogram` — fixed upper-bound buckets (``le`` semantics)
  plus an overflow bucket, with running sum and count.

A :class:`MetricsRegistry` keys every instrument by
``(name, sorted label items)``; :meth:`MetricsRegistry.snapshot`
freezes it into a :class:`RegistrySnapshot`, which can be

- merged with another snapshot (:meth:`RegistrySnapshot.merge` —
  associative, commutative, with the empty snapshot as identity;
  pinned by hypothesis in ``tests/test_obs/test_metrics.py``), and
- encoded to a compact struct-packed byte string
  (:meth:`RegistrySnapshot.encode` / :meth:`RegistrySnapshot.decode`)
  small enough to publish per barrier over the shard shm rings.

The module-level :func:`enable` / :func:`disable` / :func:`active`
trio is how the pipeline opts in: instrumentation sites fetch
``active()`` once and skip all work when it is ``None``, so a run
without observability pays a single attribute read per site.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Snapshot wire-format magic + version (first two bytes of every
#: encoded snapshot; also the shm FRAME_METRICS payload).
SNAPSHOT_MAGIC = 0xB5
SNAPSHOT_VERSION = 1

_GAUGE_AGGS = ("sum", "max", "min")

#: Shared fixed bucket edges (``value <= edge`` semantics) for the
#: pipeline's histograms — fixed so shard snapshots always merge.
BATCH_SIZE_EDGES = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)
LATENCY_MS_EDGES = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)
DEPTH_EDGES = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)
WAIT_MS_EDGES = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0)
#: CO-DATA frame sizes: deltas land in the first buckets, struct fulls
#: around 47, JSON fulls near 100+.
CO_FRAME_BYTES_EDGES = (
    16.0, 24.0, 32.0, 48.0, 64.0, 96.0, 128.0, 192.0, 256.0, 512.0,
)

_HEADER = struct.Struct("<BBIII")  # magic, version, n_counters, n_gauges, n_hists
_U16 = struct.Struct("<H")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")

#: A metric key: ``(name, ((label, value), ...))`` with labels sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _make_key(name: str, labels: Dict[str, object]) -> MetricKey:
    return (
        name,
        tuple(sorted((str(k), str(v)) for k, v in labels.items())),
    )


def format_key(key: MetricKey) -> str:
    """Human-readable ``name{k=v,...}`` form of a metric key."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class Counter:
    """A monotonically non-decreasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value with a commutative merge aggregation."""

    __slots__ = ("agg", "value", "_seen")

    def __init__(self, agg: str = "max") -> None:
        if agg not in _GAUGE_AGGS:
            raise ValueError(
                f"gauge agg must be one of {_GAUGE_AGGS}, got {agg!r}"
            )
        self.agg = agg
        self.value = 0.0
        self._seen = False

    def set(self, value: float) -> None:
        value = float(value)
        if not self._seen or self.agg == "sum":
            # "sum" gauges accumulate within a process too (e.g. total
            # barrier wait), matching their cross-shard merge.
            self.value = self.value + value if self._seen else value
        elif self.agg == "max":
            self.value = max(self.value, value)
        else:
            self.value = min(self.value, value)
        self._seen = True


class Histogram:
    """Fixed upper-bound buckets (``value <= edge``) plus overflow."""

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"bucket edges must strictly increase: {edges}")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``value``; ``count > 1`` folds a pre-aggregated
        ``{value: count}`` tally in one call (the finalize-time folds
        of hot-path size counters use this)."""
        value = float(value)
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += count
                break
        else:
            self.counts[-1] += count
        self.sum += value * count
        self.count += count

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """All of one process's instruments, keyed by name + labels."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # -- instrument accessors (create on first use) --------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = _make_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, agg: str = "max", **labels: object) -> Gauge:
        key = _make_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(agg)
        elif instrument.agg != agg:
            raise ValueError(
                f"gauge {format_key(key)} already registered with "
                f"agg={instrument.agg!r}, not {agg!r}"
            )
        return instrument

    def histogram(
        self, name: str, edges: Sequence[float], **labels: object
    ) -> Histogram:
        key = _make_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(edges)
        elif instrument.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {format_key(key)} already registered with "
                f"edges={instrument.edges}"
            )
        return instrument

    # -- snapshot -------------------------------------------------------
    def snapshot(self) -> "RegistrySnapshot":
        return RegistrySnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={
                k: (g.agg, g.value)
                for k, g in self._gauges.items()
                if g._seen
            },
            histograms={
                k: (h.edges, tuple(h.counts), h.sum, h.count)
                for k, h in self._histograms.items()
            },
        )


class RegistrySnapshot:
    """An immutable, mergeable, wire-encodable registry state."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(
        self,
        counters: Optional[Dict[MetricKey, int]] = None,
        gauges: Optional[Dict[MetricKey, Tuple[str, float]]] = None,
        histograms: Optional[
            Dict[MetricKey, Tuple[Tuple[float, ...], Tuple[int, ...], float, int]]
        ] = None,
    ) -> None:
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = dict(histograms or {})

    # -- merge ----------------------------------------------------------
    def merge(self, other: "RegistrySnapshot") -> "RegistrySnapshot":
        """Combine two snapshots (associative, commutative).

        Counters add; gauges combine by their aggregation mode (merging
        the same key under different modes is an error); histograms
        require identical bucket edges and add their counts.
        """
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value

        gauges = dict(self.gauges)
        for key, (agg, value) in other.gauges.items():
            if key not in gauges:
                gauges[key] = (agg, value)
                continue
            mine_agg, mine = gauges[key]
            if mine_agg != agg:
                raise ValueError(
                    f"gauge {format_key(key)} merged under conflicting "
                    f"aggregations {mine_agg!r} vs {agg!r}"
                )
            if agg == "sum":
                gauges[key] = (agg, mine + value)
            elif agg == "max":
                gauges[key] = (agg, max(mine, value))
            else:
                gauges[key] = (agg, min(mine, value))

        histograms = dict(self.histograms)
        for key, (edges, counts, total, count) in other.histograms.items():
            if key not in histograms:
                histograms[key] = (edges, counts, total, count)
                continue
            mine_edges, mine_counts, mine_total, mine_count = histograms[key]
            if mine_edges != edges:
                raise ValueError(
                    f"histogram {format_key(key)} merged under conflicting "
                    f"bucket edges {mine_edges} vs {edges}"
                )
            histograms[key] = (
                edges,
                tuple(a + b for a, b in zip(mine_counts, counts)),
                mine_total + total,
                mine_count + count,
            )
        return RegistrySnapshot(counters, gauges, histograms)

    # -- wire codec -----------------------------------------------------
    @staticmethod
    def _pack_key(key: MetricKey, out: List[bytes]) -> None:
        name, labels = key
        encoded = name.encode("utf-8")
        out.append(_U16.pack(len(encoded)))
        out.append(encoded)
        out.append(bytes([len(labels)]))
        for label, value in labels:
            for part in (label.encode("utf-8"), value.encode("utf-8")):
                if len(part) > 255:
                    raise ValueError(f"label component too long: {part!r}")
                out.append(bytes([len(part)]))
                out.append(part)

    @staticmethod
    def _unpack_key(buf: bytes, at: int) -> Tuple[MetricKey, int]:
        (name_len,) = _U16.unpack_from(buf, at)
        at += _U16.size
        name = buf[at : at + name_len].decode("utf-8")
        at += name_len
        n_labels = buf[at]
        at += 1
        labels = []
        for _ in range(n_labels):
            parts = []
            for _ in range(2):
                part_len = buf[at]
                at += 1
                parts.append(buf[at : at + part_len].decode("utf-8"))
                at += part_len
            labels.append((parts[0], parts[1]))
        return (name, tuple(labels)), at

    def encode(self) -> bytes:
        """Pack into the fixed binary layout the shm rings carry."""
        out: List[bytes] = [
            _HEADER.pack(
                SNAPSHOT_MAGIC,
                SNAPSHOT_VERSION,
                len(self.counters),
                len(self.gauges),
                len(self.histograms),
            )
        ]
        for key in sorted(self.counters):
            self._pack_key(key, out)
            out.append(_I64.pack(self.counters[key]))
        for key in sorted(self.gauges):
            agg, value = self.gauges[key]
            self._pack_key(key, out)
            out.append(bytes([_GAUGE_AGGS.index(agg)]))
            out.append(_F64.pack(value))
        for key in sorted(self.histograms):
            edges, counts, total, count = self.histograms[key]
            self._pack_key(key, out)
            out.append(_U16.pack(len(edges)))
            for edge in edges:
                out.append(_F64.pack(edge))
            for bucket in counts:
                out.append(_I64.pack(bucket))
            out.append(_F64.pack(total))
            out.append(_I64.pack(count))
        return b"".join(out)

    @classmethod
    def decode(cls, buf: bytes) -> "RegistrySnapshot":
        buf = bytes(buf)
        magic, version, n_counters, n_gauges, n_hists = _HEADER.unpack_from(
            buf, 0
        )
        if magic != SNAPSHOT_MAGIC:
            raise ValueError(f"not a registry snapshot (magic {magic:#x})")
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {version}")
        at = _HEADER.size
        counters: Dict[MetricKey, int] = {}
        for _ in range(n_counters):
            key, at = cls._unpack_key(buf, at)
            (value,) = _I64.unpack_from(buf, at)
            at += _I64.size
            counters[key] = value
        gauges: Dict[MetricKey, Tuple[str, float]] = {}
        for _ in range(n_gauges):
            key, at = cls._unpack_key(buf, at)
            agg = _GAUGE_AGGS[buf[at]]
            at += 1
            (value,) = _F64.unpack_from(buf, at)
            at += _F64.size
            gauges[key] = (agg, value)
        histograms = {}
        for _ in range(n_hists):
            key, at = cls._unpack_key(buf, at)
            (n_edges,) = _U16.unpack_from(buf, at)
            at += _U16.size
            edges = []
            for _ in range(n_edges):
                (edge,) = _F64.unpack_from(buf, at)
                at += _F64.size
                edges.append(edge)
            counts = []
            for _ in range(n_edges + 1):
                (bucket,) = _I64.unpack_from(buf, at)
                at += _I64.size
                counts.append(bucket)
            (total,) = _F64.unpack_from(buf, at)
            at += _F64.size
            (count,) = _I64.unpack_from(buf, at)
            at += _I64.size
            histograms[key] = (tuple(edges), tuple(counts), total, count)
        return cls(counters, gauges, histograms)

    # -- convenience ----------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> int:
        return self.counters.get(_make_key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter over every label set."""
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        entry = self.gauges.get(_make_key(name, labels))
        return None if entry is None else entry[1]

    def histogram_stats(
        self, name: str, **labels: object
    ) -> Optional[Dict[str, float]]:
        entry = self.histograms.get(_make_key(name, labels))
        if entry is None:
            return None
        _edges, _counts, total, count = entry
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
        }

    def metric_names(self) -> List[str]:
        names = {n for n, _ in self.counters}
        names |= {n for n, _ in self.gauges}
        names |= {n for n, _ in self.histograms}
        return sorted(names)

    def to_dict(self) -> dict:
        """JSON-serialisable form (for experiment artefacts)."""
        return {
            "counters": {
                format_key(k): v for k, v in sorted(self.counters.items())
            },
            "gauges": {
                format_key(k): {"agg": agg, "value": value}
                for k, (agg, value) in sorted(self.gauges.items())
            },
            "histograms": {
                format_key(k): {
                    "edges": list(edges),
                    "counts": list(counts),
                    "sum": total,
                    "count": count,
                }
                for k, (edges, counts, total, count) in sorted(
                    self.histograms.items()
                )
            },
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegistrySnapshot):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.gauges == other.gauges
            and self.histograms == other.histograms
        )

    def __repr__(self) -> str:
        return (
            f"RegistrySnapshot(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )


# ----------------------------------------------------------------------
# Module-level activation
# ----------------------------------------------------------------------
_active: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (a fresh one by default) as this process's
    active registry and return it."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    """Deactivate metrics collection for this process."""
    global _active
    _active = None


def active() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when observability is off.

    Instrumentation sites call this once per event and skip all work on
    ``None`` — the entire cost of a non-observed run.
    """
    return _active
