"""End-of-run folding of scenario state into the metrics registry.

The hot path records only what must be observed as it happens (batch
sizes, latencies, fault events).  Everything that can be read off the
finished scenario for free — vehicle stat totals, broker byte/record
counters — is folded in here, once, after the simulation stops, so it
costs the run nothing.
"""

from __future__ import annotations

from repro.obs.metrics import CO_FRAME_BYTES_EDGES, MetricsRegistry
from repro.obs.trace import SpanRecorder


def finalize_scenario(
    scenario,
    registry: MetricsRegistry,
    recorder: SpanRecorder = None,
) -> None:
    """Fold a finished scenario's totals into ``registry``.

    Works on a full serial scenario or one shard's slice (the sharded
    engine merges the per-worker snapshots afterwards; every counter
    here is additive across shards).  Callers must pass the vehicles
    the scenario *owns* at run end — the shard worker filters detached
    vehicles first, so a transferred vehicle's cumulative stats are
    folded exactly once, on its final shard.
    """
    sim = getattr(scenario, "sim", None)
    if sim is not None:
        # Kernel introspection: high-water marks merge across shards by
        # max, allocation totals are additive.
        queue = sim.queue
        registry.gauge("sim_queue_depth").set(queue.depth_peak)
        registry.gauge("sim_queue_cancelled").set(queue.cancelled_peak)
        registry.counter("sim_queue_compactions").inc(queue.compactions)
        registry.counter("sim_events_allocated").inc(queue.events_allocated)
        registry.counter("sim_events_recycled").inc(queue.events_recycled)
    for vehicle in scenario.vehicles:
        stats = vehicle.stats
        registry.counter("vehicle.records_sent").inc(stats.records_sent)
        registry.counter("vehicle.bytes_sent").inc(stats.bytes_sent)
        registry.counter("vehicle.warnings_received").inc(
            stats.warnings_received
        )
        registry.counter("vehicle.records_lost").inc(stats.records_lost)
        registry.counter("vehicle.poll_failures").inc(stats.poll_failures)
    for name, rsu in scenario.rsus.items():
        # Warning/summary accounting is kept as plain attributes on the
        # node (the hot path must not pay a registry lookup per
        # warning); fold the totals here instead.
        registry.counter("rsu.warnings_emitted", rsu=name).inc(
            rsu.warnings_issued + rsu.warnings_ack_lost
        )
        registry.counter("rsu.warnings_ack_lost", rsu=name).inc(
            rsu.warnings_ack_lost
        )
        registry.counter("rsu.summaries_sent", rsu=name).inc(
            rsu.summaries_sent
        )
        registry.counter("rsu.summaries_lost", rsu=name).inc(
            rsu.summaries_lost
        )
        registry.counter("rsu.summaries_received", rsu=name).inc(
            rsu.summaries_received
        )
        registry.counter("rsu.records_dead_on_crash", rsu=name).inc(
            rsu.records_dead_on_crash
        )
        plane = getattr(rsu, "collab", None)
        if plane is not None:
            registry.counter("rsu.co_bytes_sent", rsu=name).inc(
                plane.bytes_sent
            )
            registry.counter("rsu.co_bytes_suppressed", rsu=name).inc(
                plane.bytes_suppressed
            )
            registry.counter("rsu.co_msgs_gated", rsu=name).inc(
                plane.msgs_gated
            )
            for band, sent in sorted(plane.msgs_sent.items()):
                registry.counter(
                    "rsu.co_msgs_sent", rsu=name, band=band
                ).inc(sent)
            registry.counter("rsu.co_frames_full", rsu=name).inc(
                plane.fulls_sent
            )
            registry.counter("rsu.co_frames_delta", rsu=name).inc(
                plane.deltas_sent
            )
            histogram = registry.histogram(
                "rsu.co_frame_bytes",
                CO_FRAME_BYTES_EDGES,
                rsu=name,
            )
            for size, count in sorted(plane.frame_size_counts.items()):
                histogram.observe(size, count)
        stale = getattr(rsu, "summaries_stale_dropped", 0)
        if stale:
            registry.counter("rsu.co_stale_dropped", rsu=name).inc(stale)
        broker = getattr(rsu, "broker", None)
        if broker is None:
            continue
        registry.counter("broker.records_in", rsu=name).inc(broker.records_in)
        registry.counter("broker.records_out", rsu=name).inc(
            broker.records_out
        )
        registry.counter("broker.bytes_in", rsu=name).inc(broker.bytes_in)
        registry.counter("broker.bytes_out", rsu=name).inc(broker.bytes_out)
        registry.counter("broker.duplicates_rejected", rsu=name).inc(
            broker.duplicates_rejected
        )
        registry.counter("broker.crashes", rsu=name).inc(broker.crashes)
    if recorder is not None:
        recorder.fold_into(registry)
