"""Cross-cutting conservation invariants over a finished scenario.

Every telemetry record a vehicle generates must be accounted for
somewhere; so must every warning an RSU emits and every CO-DATA summary
a handover forwards.  The audit walks a finished (serial)
:class:`~repro.core.system.TestbedScenario` and checks four
conservation laws, each a strict integer equality:

1. **Telemetry conservation** (per scenario)::

       records_sent == appended_in_data + lost_on_air + refused_by_broker
                     + dropped_from_retry_buffer + abandoned_at_handover
                     + still_buffered + still_in_flight

2. **Detection conservation** (per RSU)::

       appended_in_data == records_detected + records_dead_on_crash
                         + unconsumed

   ``records_dead_on_crash`` are records polled into a micro-batch
   whose completion found the broker down; auto-commit after every poll
   means a restart never re-processes them, so they must be counted
   dead, not merely delayed.

3. **Collaboration conservation** (per RSU)::

       appended_co_data == summaries_received + co_unconsumed

4. **Warning conservation** (per scenario)::

       warnings_emitted == warnings_delivered + warnings_orphaned
                         + warnings_late + warnings_pending

   ``orphaned``: appended before the target car's vehicle migrated
   away, never polled.  ``late``: appended to the *old* RSU's OUT-DATA
   after the car had already migrated (its telemetry was still in the
   detection pipeline).  ``pending``: appended but not yet polled when
   the run ended.  The per-car attribution needs the OUT-DATA consumer
   positions captured at each migration, which vehicles record only
   when observability is on — run the scenario with
   ``ScenarioSpec.observability=True`` (or ``ScenarioBuilder.observe()``).

Known limits: the audit reads the scenario's live objects, so it
applies to single-process runs (for sharded runs, audit the serial
comparator and cross-check the merged snapshot's totals); ack-loss
fault windows require the producer retry policy to be enabled (the
default whenever ``faults`` is set), otherwise a telemetry record can
be both appended and counted lost; and a vehicle must not re-attach to
an RSU it previously left (no current topology does).

All reads go through ``Topic.partition(i).read`` — *not*
``Broker.fetch`` — so the audit never mutates broker byte/record
counters: auditing a scenario leaves it bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.features import CO_DATA, IN_DATA, OUT_DATA


@dataclass
class InvariantReport:
    """Computed conservation terms plus any violated equalities."""

    #: invariant name -> {term: value}
    terms: Dict[str, Dict[str, int]] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def check(self) -> "InvariantReport":
        """Raise ``AssertionError`` listing every violated invariant."""
        if self.failures:
            raise AssertionError(
                "invariant audit failed:\n  " + "\n  ".join(self.failures)
            )
        return self

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "terms": {k: dict(v) for k, v in self.terms.items()},
            "failures": list(self.failures),
        }


def _topic_end_offsets(broker, topic_name: str) -> int:
    """Records ever appended to a topic (reads survive a dead broker)."""
    try:
        topic = broker.topic(topic_name)
    except Exception:
        return 0
    return sum(
        topic.partition(index).end_offset
        for index in range(topic.num_partitions)
    )


def _read_partition(partition, from_offset: int):
    remaining = partition.end_offset - max(from_offset, partition.start_offset)
    if remaining <= 0:
        return []
    return partition.read(from_offset, remaining)


def _records_for_car(records, serde, car_id: int) -> int:
    count = 0
    for record in records:
        if int(serde.deserialize(record.value).get("car", -1)) == car_id:
            count += 1
    return count


def audit_scenario(scenario) -> InvariantReport:
    """Audit a finished single-process scenario; see the module docs."""
    report = InvariantReport()
    _audit_telemetry(scenario, report)
    _audit_detection(scenario, report)
    _audit_collaboration(scenario, report)
    _audit_warnings(scenario, report)
    return report


def assert_invariants(scenario) -> InvariantReport:
    """Audit and raise ``AssertionError`` on any violation."""
    return audit_scenario(scenario).check()


# ----------------------------------------------------------------------
def _audit_telemetry(scenario, report: InvariantReport) -> None:
    sent = sum(v.stats.records_sent for v in scenario.vehicles)
    appended = sum(
        _topic_end_offsets(rsu.broker, IN_DATA)
        for rsu in scenario.rsus.values()
    )
    lost_on_air = sum(
        channel.frames_lost for channel in scenario.channels.values()
    )
    refused = sum(v.stats.records_lost for v in scenario.vehicles)
    dropped = sum(v._producer.records_dropped for v in scenario.vehicles)
    abandoned = sum(v._producer.records_abandoned for v in scenario.vehicles)
    buffered = sum(v._producer.buffered for v in scenario.vehicles)
    in_flight = sum(
        len(v._inflight) + len(v._pending_tx) for v in scenario.vehicles
    )
    terms = {
        "records_sent": sent,
        "appended_in_data": appended,
        "lost_on_air": lost_on_air,
        "refused_by_broker": refused,
        "dropped_from_retry_buffer": dropped,
        "abandoned_at_handover": abandoned,
        "still_buffered": buffered,
        "still_in_flight": in_flight,
    }
    report.terms["telemetry"] = terms
    accounted = (
        appended + lost_on_air + refused + dropped + abandoned + buffered
        + in_flight
    )
    if sent != accounted:
        report.failures.append(
            f"telemetry: records_sent={sent} != accounted={accounted} {terms}"
        )


def _audit_detection(scenario, report: InvariantReport) -> None:
    for name, rsu in scenario.rsus.items():
        consumer = getattr(rsu, "_in_consumer", None)
        events = getattr(rsu, "events", None)
        if consumer is None or events is None:
            continue
        appended = _topic_end_offsets(rsu.broker, IN_DATA)
        detected = len(events)
        dead = getattr(rsu, "records_dead_on_crash", 0)
        unconsumed = 0
        for (topic, partition), position in consumer._positions.items():
            if topic != IN_DATA:
                continue
            end = rsu.broker.topic(topic).partition(partition).end_offset
            unconsumed += max(0, end - position)
        terms = {
            "appended_in_data": appended,
            "records_detected": detected,
            "records_dead_on_crash": dead,
            "unconsumed": unconsumed,
        }
        report.terms[f"detection[{name}]"] = terms
        if appended != detected + dead + unconsumed:
            report.failures.append(
                f"detection[{name}]: appended={appended} != "
                f"detected+dead+unconsumed="
                f"{detected + dead + unconsumed} {terms}"
            )


def _audit_collaboration(scenario, report: InvariantReport) -> None:
    for name, rsu in scenario.rsus.items():
        consumer = getattr(rsu, "_co_consumer", None)
        if consumer is None:
            continue
        appended = _topic_end_offsets(rsu.broker, CO_DATA)
        received = rsu.summaries_received
        unconsumed = 0
        for (topic, partition), position in consumer._positions.items():
            if topic != CO_DATA:
                continue
            end = rsu.broker.topic(topic).partition(partition).end_offset
            unconsumed += max(0, end - position)
        # Delta frames dropped for a missing/mismatched receiver
        # baseline were consumed but never counted as received; the
        # plane accounts them separately (zero on legacy paths, so the
        # seed-era equality is unchanged).
        stale = getattr(rsu, "summaries_stale_dropped", 0)
        terms = {
            "appended_co_data": appended,
            "summaries_received": received,
            "co_stale_dropped": stale,
            "co_unconsumed": unconsumed,
        }
        report.terms[f"collaboration[{name}]"] = terms
        if appended != received + stale + unconsumed:
            report.failures.append(
                f"collaboration[{name}]: appended={appended} != "
                f"received+stale+unconsumed={received + stale + unconsumed} "
                f"{terms}"
            )


def _audit_warnings(scenario, report: InvariantReport) -> None:
    emitted = sum(
        rsu.warnings_issued + rsu.warnings_ack_lost
        for rsu in scenario.rsus.values()
    )
    delivered = sum(v.stats.warnings_received for v in scenario.vehicles)
    orphaned = late = pending = 0
    for vehicle in scenario.vehicles:
        serde = vehicle._out_serde
        # Departed attachments: positions/end-offsets captured at each
        # migration (vehicles record them when observability is on).
        for broker, positions, ends in getattr(vehicle, "_departures", ()):
            try:
                topic = broker.topic(OUT_DATA)
            except Exception:
                continue
            for partition_index, position in positions.items():
                partition = topic.partition(partition_index)
                end_at_migrate = ends[partition_index]
                for record in _read_partition(partition, position):
                    value = serde.deserialize(record.value)
                    if int(value.get("car", -1)) != vehicle.car_id:
                        continue
                    if record.offset < end_at_migrate:
                        orphaned += 1
                    else:
                        late += 1
        # Current attachment: appended but not yet polled.
        consumer = vehicle._consumer
        if consumer is not None:
            for (topic_name, partition_index), position in (
                consumer._positions.items()
            ):
                if topic_name != OUT_DATA:
                    continue
                partition = vehicle.rsu.broker.topic(topic_name).partition(
                    partition_index
                )
                pending += _records_for_car(
                    _read_partition(partition, position), serde, vehicle.car_id
                )
    terms = {
        "warnings_emitted": emitted,
        "warnings_delivered": delivered,
        "warnings_orphaned": orphaned,
        "warnings_late": late,
        "warnings_pending": pending,
    }
    report.terms["warnings"] = terms
    accounted = delivered + orphaned + late + pending
    if emitted != accounted:
        report.failures.append(
            f"warnings: emitted={emitted} != accounted={accounted} {terms}"
        )
