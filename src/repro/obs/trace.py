"""Lightweight span tracing on the monotonic clock.

Usage::

    with span("rsu.detect", rsu="rsu-motorway-1"):
        ...

Spans record *wall-clock* (``time.perf_counter``) durations into a
bounded ring buffer — they measure the cost of the reproduction's own
code, not simulated time, so they can never perturb simulation results.
When no recorder is active, :func:`span` returns a shared no-op context
manager: the disabled cost is one module-global read and two no-op
method calls.

Granularity discipline: spans wrap micro-batch-level work (one
detection batch, one barrier wait), never per-record work — the
columnar hot path's per-record budget is ~120 ns and a perf_counter
pair alone would blow it.  The perf regression gate
(``benchmarks/perf_harness.py`` BENCH_1 ``obs_overhead_ratio``)
enforces this stays true.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

#: Default ring capacity: a 10 s corridor run emits ~200 batch spans
#: per RSU; 4096 holds several runs without unbounded growth.
DEFAULT_CAPACITY = 4096

#: Bucket edges (milliseconds) used when span durations are folded
#: into a metrics registry for cross-shard merging.
SPAN_MS_EDGES = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0)


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    start_s: float  # perf_counter at entry
    duration_s: float
    depth: int  # 0 = top-level, 1 = nested once, ...
    parent: Optional[str]  # enclosing span's name, if any
    labels: Tuple[Tuple[str, str], ...]


class _ActiveSpan:
    """Context manager for one running span."""

    __slots__ = ("_recorder", "_name", "_labels", "_start")

    def __init__(
        self, recorder: "SpanRecorder", name: str, labels: Dict[str, object]
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        self._recorder._stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = self._recorder._stack
        stack.pop()
        self._recorder._record(
            SpanRecord(
                name=self._name,
                start_s=self._start,
                duration_s=duration,
                depth=len(stack),
                parent=stack[-1] if stack else None,
                labels=tuple(
                    sorted((str(k), str(v)) for k, v in self._labels.items())
                ),
            )
        )


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


class SpanRecorder:
    """A bounded ring of completed spans plus the live nesting stack."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("span ring capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: List[str] = []
        #: Spans that fell off the ring (overwrite count).
        self.dropped = 0

    def _record(self, record: SpanRecord) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)

    def span(self, name: str, **labels: object) -> _ActiveSpan:
        return _ActiveSpan(self, name, labels)

    # -- introspection --------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[SpanRecord]:
        if name is None:
            return list(self._ring)
        return [record for record in self._ring if record.name == name]

    def __len__(self) -> int:
        return len(self._ring)

    def names(self) -> List[str]:
        return sorted({record.name for record in self._ring})

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name count / total / mean / max duration (milliseconds)."""
        grouped: Dict[str, List[float]] = {}
        for record in self._ring:
            grouped.setdefault(record.name, []).append(record.duration_s)
        return {
            name: {
                "count": len(durations),
                "total_ms": sum(durations) * 1e3,
                "mean_ms": sum(durations) / len(durations) * 1e3,
                "max_ms": max(durations) * 1e3,
            }
            for name, durations in sorted(grouped.items())
        }

    def fold_into(self, registry) -> None:
        """Fold span durations into ``registry`` as ``span.<name>_ms``
        histograms, so shard-worker spans survive the snapshot merge."""
        for record in self._ring:
            registry.histogram(
                f"span.{record.name}_ms", SPAN_MS_EDGES
            ).observe(record.duration_s * 1e3)


# ----------------------------------------------------------------------
# Module-level activation
# ----------------------------------------------------------------------
_recorder: Optional[SpanRecorder] = None


def enable_tracing(
    recorder: Optional[SpanRecorder] = None, capacity: int = DEFAULT_CAPACITY
) -> SpanRecorder:
    """Install a recorder (a fresh one by default) and return it."""
    global _recorder
    _recorder = recorder if recorder is not None else SpanRecorder(capacity)
    return _recorder


def disable_tracing() -> None:
    global _recorder
    _recorder = None


def active_recorder() -> Optional[SpanRecorder]:
    return _recorder


def span(name: str, **labels: object):
    """Open a span under the active recorder (no-op when disabled)."""
    recorder = _recorder
    if recorder is None:
        return _NOOP
    return recorder.span(name, **labels)
