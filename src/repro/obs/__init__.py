"""Zero-dependency observability: metrics, spans, invariant audits.

The pipeline has three engines (per-record, columnar, sharded
multi-process) plus fault injection, and until this package there was
no way to see inside any of them.  ``repro.obs`` provides:

- :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms in a process-local :class:`~repro.obs.metrics.MetricsRegistry`,
  with a struct-serde :class:`~repro.obs.metrics.RegistrySnapshot` so
  shard workers publish their registries over the shared-memory rings
  and the engine merges them at barriers.
- :mod:`repro.obs.trace` — a lightweight ``with span("rsu.detect")``
  API recording monotonic-clock durations into a bounded ring buffer.
- :mod:`repro.obs.audit` — cross-cutting conservation invariants
  (records in == detected + dead + unconsumed, warnings emitted ==
  delivered + orphaned + pending) checked against a finished scenario.
- :mod:`repro.obs.expo` — a Prometheus-style text exposition writer.

Instrumentation is **opt-in and observer-effect free**: every site
guards on :func:`repro.obs.metrics.active` (``None`` unless a scenario
ran with ``observability=True``), reads simulation state without
mutating it, and never touches an RNG stream — obs on vs off is
bit-identical, pinned by ``tests/test_obs/test_observer_effect.py``.
Per-record cost is kept off the hot path: everything records at
micro-batch or rarer granularity.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    RegistrySnapshot,
    active,
    disable,
    enable,
)
from repro.obs.trace import SpanRecorder, active_recorder, span

__all__ = [
    "MetricsRegistry",
    "RegistrySnapshot",
    "SpanRecorder",
    "active",
    "active_recorder",
    "disable",
    "enable",
    "span",
]
