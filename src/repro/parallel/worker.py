"""The shard worker process: one simulator, a slice of the corridor.

Each worker materializes only its own RSUs and vehicle groups (same
identities, same RNG stream names as the single-process build), runs
its local :class:`~repro.simkernel.simulator.Simulator` window by
window under the engine's conservative barrier protocol, and exchanges
exactly three kinds of frames with other shards:

- **CO-DATA summaries** a local RSU forwarded to a non-local neighbour.
  The wired link toward the remote RSU is real and lives in *this*
  simulator — latency and queuing are paid here — but its far end is a
  :class:`RemoteRsuProxy` whose broker captures the produce instead of
  appending it.  The engine ships the capture at the next barrier and
  the owning shard injects it with the original delivery timestamp,
  strictly before the tick at that barrier — so the summary lands in
  the same micro-batch the serial engine would put it in.
- **Vehicle transfers** (cross-shard handover): the full
  :meth:`VehicleNode.detach` state, applied on the owning shard at the
  handover instant's barrier clock.
- **In-flight telemetry** of a transferred vehicle: frames already on
  the air with known delivery times, re-produced into the new RSU's
  broker at exactly those times.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.features import CO_DATA, IN_DATA
from repro.core.system import (
    ScenarioBundle,
    TestbedScenario,
    collect_rsu_metrics,
)
from repro.core.topology import CorridorTopology, HandoverSpec
from repro.core.wire import topic_serdes
from repro.obs import metrics as obs_metrics
from repro.obs.collect import finalize_scenario
from repro.obs.trace import SpanRecorder, disable_tracing, enable_tracing
from repro.streaming.serde import JsonSerde
from repro.streaming.shm import ShmRing
from repro.parallel.barrier import (
    FRAME_METRICS,
    FRAME_SUMMARY,
    FRAME_TELEMETRY,
    FRAME_TRANSFER,
    decode_summary,
    decode_telemetry,
    decode_transfer,
    encode_summary,
    encode_telemetry,
    encode_transfer,
    summary_car_ids,
)


class _CaptureBroker:
    """Broker stand-in on the far end of a cross-shard wired link.

    Only :meth:`produce` is ever reached (an RSU's ``handover`` deliver
    callback); instead of appending, it records the produce so the
    worker can ship it at the next barrier.
    """

    def __init__(self, rsu_name: str, sink: List[Tuple[str, str, bytes, float]]):
        self._rsu_name = rsu_name
        self._sink = sink

    def produce(self, topic, value, key=None, partition=None, timestamp=None, **_):
        self._sink.append((self._rsu_name, topic, value, timestamp))
        return None


class RemoteRsuProxy:
    """A non-local RSU, as seen by this shard's topology wiring."""

    def __init__(self, name: str, sink: List[Tuple[str, str, bytes, float]]):
        self.name = name
        self.broker = _CaptureBroker(name, sink)

    def __repr__(self) -> str:
        return f"RemoteRsuProxy(name={self.name!r})"


@dataclass
class ShardContext:
    """Everything one worker process needs, passed at spawn."""

    shard_index: int
    spec: object  # ScenarioSpec
    topology: CorridorTopology
    bundle: ScenarioBundle
    local: Tuple[str, ...]
    conn: object  # multiprocessing.Connection
    inbox: ShmRing
    outbox: ShmRing


def enable_worker_observability(observing: bool):
    """Install a fresh per-process metrics registry + span recorder.

    Each worker is its own process, so the module-global active
    registry is per-shard; the engine merges the snapshots.  Returns
    ``(registry, recorder)`` — both ``None`` when not observing.
    Shared by the corridor and city shard workers.
    """
    if not observing:
        return None, None
    registry = obs_metrics.MetricsRegistry()
    recorder = SpanRecorder()
    obs_metrics.enable(registry)
    enable_tracing(recorder)
    return registry, recorder


def shard_worker_main(ctx: ShardContext) -> None:
    """Process entry point: build the shard, then serve barrier steps."""
    try:
        _ShardWorker(ctx).serve()
    except BaseException:  # ship the traceback; the engine re-raises
        try:
            ctx.conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


class _ShardWorker:
    def __init__(self, ctx: ShardContext) -> None:
        build_start = time.process_time()
        self.ctx = ctx
        self.spec = ctx.spec
        #: (rsu_name, topic, payload, timestamp) produces captured on
        #: cross-shard links, shipped at the next flush.
        self.captured: List[Tuple[str, str, bytes, float]] = []
        #: Detached-vehicle states awaiting shipment.
        self.transfer_out: List[dict] = []
        self._proxies: Dict[str, RemoteRsuProxy] = {}

        self.obs_registry, self.obs_recorder = enable_worker_observability(
            getattr(ctx.spec, "observability", False)
        )

        scenario = TestbedScenario(ctx.spec)
        scenario.materialize(
            ctx.topology,
            ctx.bundle,
            local=set(ctx.local),
            remote_rsu=self._remote_rsu,
        )
        self.scenario = scenario
        self.sim = scenario.sim
        self.vehicles = {v.car_id: v for v in scenario.vehicles}
        self._co_serde = topic_serdes(ctx.spec.serde_profile).get(
            CO_DATA, JsonSerde()
        )
        self.handovers: Dict[float, List[HandoverSpec]] = {}
        for handover in ctx.topology.handovers:
            self.handovers.setdefault(handover.at_s, []).append(handover)

        until = ctx.spec.duration_s
        for rsu in scenario.rsus.values():
            rsu.start(until=until)
        for vehicle in scenario.vehicles:
            vehicle.start(until=until)
        self.build_cpu_s = time.process_time() - build_start

    def _remote_rsu(self, name: str) -> RemoteRsuProxy:
        proxy = self._proxies.get(name)
        if proxy is None:
            proxy = RemoteRsuProxy(name, self.captured)
            self._proxies[name] = proxy
        return proxy

    # ------------------------------------------------------------------
    # Protocol loop
    # ------------------------------------------------------------------
    def serve(self) -> None:
        self.ctx.conn.send(("ready", self.build_cpu_s))
        shard = str(self.ctx.shard_index)
        while True:
            if self.obs_registry is not None:
                wait_start = time.perf_counter()
                message = self.ctx.conn.recv()
                self.obs_registry.histogram(
                    "shard.barrier_wait_ms",
                    obs_metrics.WAIT_MS_EDGES,
                    shard=shard,
                ).observe((time.perf_counter() - wait_start) * 1e3)
            else:
                message = self.ctx.conn.recv()
            op = message[0]
            if op == "step":
                _, barrier, n_frames, final = message
                self._step(barrier, n_frames, final)
            elif op == "collect":
                self._collect()
                return
            else:
                raise RuntimeError(f"unknown op from engine: {op!r}")

    def _step(self, barrier: float, n_frames: int, final: bool) -> None:
        start = time.process_time()
        # Borrowed zero-copy views: the engine pushes a window's frames
        # strictly before our "step" message and not again until after
        # our "done" reply, so the views stay intact through _apply —
        # which decodes each body into owned storage before returning.
        frames = self.ctx.inbox.drain_views()
        if len(frames) != n_frames:
            raise RuntimeError(
                f"shard {self.ctx.shard_index}: expected {n_frames} inbox "
                f"frames at barrier {barrier}, drained {len(frames)}"
            )
        try:
            self._apply(frames)
        finally:
            for _, view in frames:
                view.release()
        if final:
            self.sim.run_until(barrier)
        else:
            # Strictly before: events AT the barrier (the micro-batch
            # ticks) fire in the next window, after cross-shard frames
            # for this barrier have been injected.
            self.sim.run_before(barrier)
        for handover in self.handovers.get(barrier, ()):
            self._execute_handover(handover)
        out_count = self._flush()
        self.ctx.conn.send(("done", time.process_time() - start, out_count))

    # ------------------------------------------------------------------
    # Inbound frames
    # ------------------------------------------------------------------
    def _apply(self, frames: List[Tuple[int, memoryview]]) -> None:
        """Inject one barrier's cross-shard frames, deterministically.

        The clock sits exactly at the previous barrier (a handover
        instant for transfers), so vehicles re-attach at the same
        simulated time the serial migrate event fired.
        """
        transfers: List[dict] = []
        summaries: List[Tuple[str, float, bytes]] = []
        telemetry: List[Tuple[str, float, int, bytes]] = []
        for kind, buf in frames:
            if kind == FRAME_TRANSFER:
                transfers.append(decode_transfer(buf)[1])
            elif kind == FRAME_SUMMARY:
                summaries.append(decode_summary(buf))
            elif kind == FRAME_TELEMETRY:
                telemetry.append(decode_telemetry(buf))
            else:
                raise RuntimeError(f"unknown frame kind {kind}")

        # Transfers first (the serial migrate loop runs before any
        # later event), in pool order — the serial loop's own order.
        transfers.sort(
            key=lambda s: (s["pool"], s["stripe_index"], s["car_id"])
        )
        for state in transfers:
            self._apply_transfer(state)

        # Summaries in delivery order, car id breaking timestamp ties —
        # matching the serial seq order (links send in pool order).
        # Order matters: CO-DATA routes round-robin (key=None).
        if summaries:
            cars = summary_car_ids(
                [payload for _, _, payload in summaries], self._co_serde
            )
            for (rsu_name, ts, payload), _car in sorted(
                zip(summaries, cars), key=lambda item: (item[0][1], item[1])
            ):
                self.scenario.rsus[rsu_name].broker.produce(
                    CO_DATA, payload, timestamp=ts
                )

        # In-flight telemetry lands at its pre-computed delivery time.
        for rsu_name, deliver_at, car_id, payload in sorted(
            telemetry, key=lambda f: (f[1], f[2])
        ):
            broker = self.scenario.rsus[rsu_name].broker
            self.sim.at(
                deliver_at,
                lambda b=broker, p=payload, c=car_id, t=deliver_at: b.produce(
                    IN_DATA, p, key=str(c).encode(), timestamp=t
                ),
                label="inflight-telemetry",
            )

    def _apply_transfer(self, state: dict) -> None:
        """Reconstruct a transferred vehicle on its new home RSU."""
        car_id = state["car_id"]
        to_rsu = state["to_rsu"]
        pool = self.ctx.bundle.pools[state["pool"]]
        stripe = list(pool[state["stripe_index"] :: state["pool_size"]])
        if not stripe:
            raise RuntimeError(
                f"cross-shard handover of car {car_id} got an empty record "
                f"stripe ({state['pool']!r} pool has {len(pool)} records for "
                f"{state['pool_size']} migrating vehicles); the serial engine "
                "would keep the old sub-dataset, which cannot cross shards — "
                "use a larger replay pool or fewer migrating vehicles"
            )
        vehicle = self.scenario.add_vehicles_with_ids(
            to_rsu, (car_id,), stripe
        )[0]
        # Continue the exact serial trajectory: same generator object
        # (the registry's cached stream), restored mid-stream.
        self.scenario.rng.restore(f"vehicle.{car_id}", state["rng_state"])
        vehicle.stats = state["stats"]
        vehicle.resume(
            state["produce_next"],
            state["poll_next"],
            until=self.spec.duration_s,
        )
        for fire_time, envelope, size in state["pending_tx"]:
            self.sim.at(
                fire_time,
                lambda v=vehicle, e=envelope, s=size: v._transmit(e, s),
                label=f"vehicle-{car_id}-htb",
            )
        self.vehicles[car_id] = vehicle

    # ------------------------------------------------------------------
    # Handover execution
    # ------------------------------------------------------------------
    def _execute_handover(self, handover: HandoverSpec) -> None:
        """Run one handover spec for the locally-owned cars.

        Same-shard migrations take the serial path verbatim; cars whose
        target lives elsewhere forward their summary over the (real)
        link toward the proxy, detach, and ship.
        """
        new_records = self.ctx.bundle.pools[handover.pool]
        size = max(1, len(handover.car_ids))
        target_local = handover.to_rsu in self.scenario.rsus
        for index, car_id in enumerate(handover.car_ids):
            vehicle = self.vehicles.get(car_id)
            if vehicle is None or vehicle.detached:
                continue
            vehicle.rsu.handover(car_id, handover.to_rsu)
            if target_local:
                vehicle.migrate(
                    self.scenario.rsus[handover.to_rsu],
                    self.scenario.channels[handover.to_rsu],
                    drop_pending=True,
                )
                vehicle.shaper = self.scenario._shaper_for(
                    handover.to_rsu, car_id
                )
                stripe = list(new_records[index::size])
                if stripe:
                    vehicle.set_records(stripe)
            else:
                state = vehicle.detach()
                state.update(
                    {
                        "to_rsu": handover.to_rsu,
                        "pool": handover.pool,
                        "stripe_index": index,
                        "pool_size": size,
                    }
                )
                self.transfer_out.append(state)

    # ------------------------------------------------------------------
    # Outbound frames
    # ------------------------------------------------------------------
    def _flush(self) -> int:
        count = 0
        for rsu_name, _topic, payload, timestamp in self.captured:
            self.ctx.outbox.push(
                FRAME_SUMMARY, encode_summary(rsu_name, timestamp, payload)
            )
            count += 1
        self.captured.clear()
        for state in self.transfer_out:
            for deliver_at, payload in state.pop("inflight"):
                self.ctx.outbox.push(
                    FRAME_TELEMETRY,
                    encode_telemetry(
                        state["to_rsu"], deliver_at, state["car_id"], payload
                    ),
                )
                count += 1
            self.ctx.outbox.push(
                FRAME_TRANSFER, encode_transfer(state["to_rsu"], state)
            )
            count += 1
        self.transfer_out.clear()
        if self.obs_registry is not None:
            # Cumulative snapshot every barrier: the engine keeps the
            # latest per shard (replace, not accumulate), so mid-run
            # telemetry is always a consistent prefix of the run.
            self.ctx.outbox.push(
                FRAME_METRICS, self.obs_registry.snapshot().encode()
            )
            count += 1
        return count

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for vehicle in self.scenario.vehicles:
            vehicle.stop()
        for rsu in self.scenario.rsus.values():
            rsu.stop()
        # Vehicles shipped to another shard report from there.
        self.scenario.vehicles = [
            v for v in self.scenario.vehicles if not v.detached
        ]
        obs_snapshot = None
        if self.obs_registry is not None:
            finalize_scenario(
                self.scenario, self.obs_registry, self.obs_recorder
            )
            obs_snapshot = self.obs_registry.snapshot()
            obs_metrics.disable()
            disable_tracing()
        result = {
            "rsu_metrics": collect_rsu_metrics(
                self.scenario.rsus, self.spec.duration_s
            ),
            "vehicle_stats": {
                v.car_id: v.stats for v in self.scenario.vehicles
            },
            "warnings": {
                name: rsu.warning_log()
                for name, rsu in self.scenario.rsus.items()
            },
            "resilience": self.scenario._collect_resilience(),
            "obs": obs_snapshot,
        }
        self.ctx.conn.send(("result", result))
        self.ctx.inbox.close()
        self.ctx.outbox.close()
