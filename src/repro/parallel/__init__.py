"""Sharded multi-process scenario execution.

The corridor workload is embarrassingly shardable by design: RSUs are
independent except for CO-DATA summaries and vehicle handovers at trunk
boundaries (the paper's own scaling argument — one RSU per road trunk).
This package partitions a scenario's RSUs across worker processes
(:mod:`repro.parallel.plan`), runs an independent
:class:`~repro.simkernel.simulator.Simulator` per shard, and exchanges
the only cross-shard traffic at 50 ms micro-batch barriers over
shared-memory rings (:mod:`repro.parallel.barrier`,
:mod:`repro.streaming.shm`) via a conservative time-stepped protocol —
parallel runs are deterministic and warning-for-warning identical to the
single-process engine.
"""

from repro.parallel.engine import ParallelExecutionError, ShardedScenario
from repro.parallel.plan import ShardPlan, ShardPlanner

__all__ = [
    "ParallelExecutionError",
    "ShardPlan",
    "ShardPlanner",
    "ShardedScenario",
]
