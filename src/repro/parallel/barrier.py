"""Barrier schedule and cross-shard frame codec.

Determinism hinges on two facts encoded here:

1. **The barrier grid reproduces the simulator's tick grid exactly.**
   :meth:`Simulator.every` accumulates ``next = now + interval`` in
   floating point, so tick times drift off exact ``k * interval``
   multiples.  Every RSU's micro-batch recurrence starts at clock 0 and
   therefore ticks on the *same* drifted sequence; :func:`batch_barriers`
   replays the identical accumulation so each barrier lands exactly ON a
   tick time.  Workers run *strictly before* each barrier
   (:meth:`Simulator.run_before`), so a summary injected at barrier
   ``b`` is produced before the tick at ``b`` drains the broker — the
   same batch membership the serial engine produces.

2. **Frames are routable without decoding.**  Every frame starts with a
   ``[u8 len][utf-8 rsu name]`` header, so the engine can route a frame
   to its target shard by peeking at the first bytes and push the buffer
   on unchanged.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, List, Sequence, Tuple

from repro.core.wire import SUMMARY_FRAME_MAGIC, summary_frame_car
from repro.streaming.serde import FlatStructSerde, SerdeError

# Frame kinds on the shared-memory rings.
FRAME_SUMMARY = 1  # CO-DATA prediction summary for a remote RSU's broker
FRAME_TELEMETRY = 2  # an in-flight DSRC frame addressed to a remote RSU
FRAME_TRANSFER = 3  # a detached vehicle's full migration state
# A shard's cumulative metrics snapshot.  Unlike the kinds above this
# frame has NO ``[u8 len][rsu name]`` routing header (it is addressed
# to the engine itself, never to a shard) — consumers must dispatch on
# kind *before* calling :func:`frame_target`.
FRAME_METRICS = 4
# City-workload frames.  Both carry the usual ``[u8 len][utf-8]``
# routing header, but the target is a *shard index* rendered as a
# decimal string rather than an RSU name: city moves are batched per
# destination shard (one frame per (source shard, destination shard)
# per tick) so the engine's routing work stays O(shards), not
# O(vehicles), per window.
FRAME_MIGRATION = 5  # a tick's batched vehicle moves bound for one shard
FRAME_RSU_STATE = 6  # a whole RSU's state (arrays + RNG) mid-rebalance

_SUMMARY_HEAD = struct.Struct("<d")
_TELEMETRY_HEAD = struct.Struct("<dq")


# ----------------------------------------------------------------------
# Barrier schedule
# ----------------------------------------------------------------------
def batch_barriers(interval_s: float, until: float) -> List[float]:
    """The micro-batch tick grid, by the simulator's own accumulation.

    Must mirror the float arithmetic of :meth:`Simulator.every` — do not
    "simplify" to ``k * interval_s``; the accumulated sum drifts by an
    ULP every few steps and batch membership is decided at exactly these
    instants.
    """
    points: List[float] = []
    t = interval_s
    while t < until:
        points.append(t)
        t += interval_s
    return points


def sync_schedule(
    interval_s: float,
    duration_s: float,
    handover_times: Sequence[float],
) -> List[float]:
    """All barrier instants for a run, final drain barrier included.

    The union of the tick grid and the handover instants, plus the
    engine's final ``duration + 0.5`` drain point (the serial engine
    runs until the same instant to let trailing deliveries land).
    """
    points = set(batch_barriers(interval_s, duration_s))
    for t in handover_times:
        if t < duration_s:
            points.add(t)
    points.add(duration_s + 0.5)
    return sorted(points)


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
def _pack_target(rsu_name: str) -> bytes:
    encoded = rsu_name.encode("utf-8")
    if len(encoded) > 255:
        raise ValueError(f"RSU name too long to frame: {rsu_name!r}")
    return bytes([len(encoded)]) + encoded


def frame_target(buf: bytes) -> str:
    """Peek a frame's destination RSU without decoding the body."""
    return bytes(buf[1 : 1 + buf[0]]).decode("utf-8")


def _body(buf: bytes) -> bytes:
    return bytes(buf[1 + buf[0] :])


def encode_summary(rsu_name: str, timestamp: float, payload: bytes) -> bytes:
    return _pack_target(rsu_name) + _SUMMARY_HEAD.pack(timestamp) + payload


def decode_summary(buf: bytes) -> Tuple[str, float, bytes]:
    body = _body(buf)
    (timestamp,) = _SUMMARY_HEAD.unpack_from(body)
    return frame_target(buf), timestamp, body[_SUMMARY_HEAD.size :]


def encode_telemetry(
    rsu_name: str, deliver_at: float, car_id: int, payload: bytes
) -> bytes:
    return (
        _pack_target(rsu_name)
        + _TELEMETRY_HEAD.pack(deliver_at, car_id)
        + payload
    )


def decode_telemetry(buf: bytes) -> Tuple[str, float, int, bytes]:
    body = _body(buf)
    deliver_at, car_id = _TELEMETRY_HEAD.unpack_from(body)
    return frame_target(buf), deliver_at, car_id, body[_TELEMETRY_HEAD.size :]


def encode_transfer(rsu_name: str, state: Dict) -> bytes:
    return _pack_target(rsu_name) + pickle.dumps(state)


def decode_transfer(buf: bytes) -> Tuple[str, Dict]:
    return frame_target(buf), pickle.loads(_body(buf))


def encode_shard_payload(shard_index: int, payload: object) -> bytes:
    """Frame a pickled payload addressed to a *shard* (city frames).

    Used for :data:`FRAME_MIGRATION` and :data:`FRAME_RSU_STATE`, whose
    routing target is a shard index rather than an RSU name.  The engine
    routes with ``int(frame_target(buf))`` and never unpickles the body.
    """
    return _pack_target(str(shard_index)) + pickle.dumps(payload)


def decode_shard_payload(buf: bytes) -> Tuple[int, object]:
    return int(frame_target(buf)), pickle.loads(_body(buf))


# ----------------------------------------------------------------------
# Deterministic summary ordering
# ----------------------------------------------------------------------
def summary_car_ids(payloads: Sequence[bytes], serde) -> List[int]:
    """Car id per CO-DATA payload, for deterministic injection order.

    ``Topic.route(key=None)`` is a round-robin counter, so the *order*
    summaries are produced into a broker is observable.  The engine
    sorts cross-shard summaries by ``(timestamp, car)`` before
    injection; this extracts the car ids — via the columnar
    ``np.frombuffer`` batch decode when the CO-DATA serde is the fixed
    struct layout, falling back to per-payload deserialization (JSON
    profile, or mixed magic-byte fallback payloads).
    """
    framed = any(
        payload and payload[0] == SUMMARY_FRAME_MAGIC for payload in payloads
    )
    if not framed and isinstance(serde, FlatStructSerde):
        try:
            return [int(car) for car in serde.decode_batch(payloads)["car"]]
        except SerdeError:
            pass
    return [summary_frame_car(payload, serde) for payload in payloads]
