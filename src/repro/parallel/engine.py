"""The sharded execution engine: barrier loop, routing, result merge.

:class:`ShardedScenario` is the multi-process counterpart of
:meth:`TestbedScenario.corridor` + :meth:`~TestbedScenario.run`: same
spec in, same :class:`~repro.core.system.ScenarioResult` out, with the
corridor's RSUs partitioned across worker processes by
:class:`~repro.parallel.plan.ShardPlanner`.

The protocol is conservative time-stepping: every worker runs strictly
up to the next global barrier (the union of the micro-batch tick grid
and the handover instants), then the engine moves the accumulated
cross-shard frames — CO-DATA summaries, vehicle transfers, in-flight
telemetry — to their owning shards before anyone proceeds.  Because the
wired-link latency (0.5 ms) is far below the 50 ms batch interval, a
frame shipped one barrier late still lands in the same micro-batch the
serial engine would put it in; the golden-equivalence tests pin this
warning-for-warning.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.scenario import ScenarioSpec
from repro.core.system import (
    ResilienceStats,
    ScenarioResult,
    corridor_bundle,
)
from repro.core.topology import corridor_topology
from repro.obs.metrics import RegistrySnapshot
from repro.streaming.shm import ShmRing
from repro.parallel.barrier import FRAME_METRICS, frame_target, sync_schedule
from repro.parallel.plan import ShardPlan, ShardPlanner
from repro.parallel.worker import ShardContext, shard_worker_main

logger = logging.getLogger(__name__)

#: Per-direction shared-memory ring size.  One barrier's worth of
#: cross-shard traffic must fit; transfers dominate (a pickled vehicle
#: state with its latency lists is a few tens of KB late in a run).
DEFAULT_RING_CAPACITY = 1 << 22


class ParallelExecutionError(RuntimeError):
    """A shard worker failed; carries its traceback."""


@dataclass(frozen=True)
class WindowTiming:
    """One barrier window's cost accounting."""

    barrier_s: float
    #: Per-shard CPU seconds spent inside the window's step.
    worker_cpu_s: Tuple[float, ...]
    #: Engine-side CPU spent collecting replies and routing frames.
    engine_cpu_s: float


def critical_path_cpu_s(
    build_cpu_s: Sequence[float], window_timings: Sequence[WindowTiming]
) -> float:
    """A sharded run's CPU critical path: slowest shard's build plus,
    per window, the slowest shard's step plus the engine's routing
    work.  On a host with at least ``n_shards`` free cores this is what
    the wall clock converges to; on a smaller host it is the honest
    speedup numerator (workers time-share cores, so measured wall
    degenerates to the CPU *sum*).  Shared by the corridor and city
    engines."""
    total = max(build_cpu_s) if build_cpu_s else 0.0
    for timing in window_timings:
        total += max(timing.worker_cpu_s) + timing.engine_cpu_s
    return total


@dataclass
class _WorkerHandle:
    index: int
    process: object
    conn: object
    inbox: ShmRing
    outbox: ShmRing


class ShardedScenario:
    """A corridor scenario executed across worker processes.

    Parameters mirror :meth:`TestbedScenario.corridor`; ``shards``
    defaults to ``config.shards``.  Fault injection and producer retry
    are rejected: their failure semantics (broker outages observed by
    remote producers, retry backoff across a detach) are not modelled
    across shard boundaries — run them single-process.
    """

    def __init__(
        self,
        config: ScenarioSpec,
        motorways: int = 4,
        dataset=None,
        link_detector_kind: str = "cad3",
        shards: Optional[int] = None,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        n_shards = int(shards if shards is not None else config.shards)
        if n_shards < 1:
            raise ValueError(f"shards must be >= 1, got {n_shards}")
        if config.faults is not None:
            raise ValueError(
                "fault injection is not supported under sharding; "
                "run the fault profile with shards=1"
            )
        if config.producer_retry is not None:
            raise ValueError(
                "producer retry is not supported under sharding; "
                "run the retry policy with shards=1"
            )
        self.config = config
        self.motorways = motorways
        self.topology = corridor_topology(config, motorways)
        self.bundle = corridor_bundle(
            config, dataset=dataset, link_detector_kind=link_detector_kind
        )
        self.plan: ShardPlan = ShardPlanner().plan(self.topology, n_shards)
        self.ring_capacity = ring_capacity
        # Filled by run():
        self.window_timings: List[WindowTiming] = []
        self.build_cpu_s: List[float] = []
        self.wall_s = 0.0
        self.undelivered_frames = 0
        #: Per-RSU warning tuples, for golden-equivalence comparison.
        self.warning_logs: Dict[str, list] = {}
        #: Latest per-shard metrics snapshot, decoded off the rings as
        #: the run progresses (observability runs only).
        self.shard_snapshots: Dict[int, RegistrySnapshot] = {}

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    def critical_path_cpu_s(self) -> float:
        """See module-level :func:`critical_path_cpu_s`."""
        return critical_path_cpu_s(self.build_cpu_s, self.window_timings)

    def total_worker_cpu_s(self) -> float:
        """CPU summed over every shard's windows (work-inflation check)."""
        total = sum(self.build_cpu_s)
        for timing in self.window_timings:
            total += sum(timing.worker_cpu_s)
        return total

    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        mp_ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        schedule = sync_schedule(
            self.config.batch_interval_s,
            self.config.duration_s,
            [handover.at_s for handover in self.topology.handovers],
        )
        workers: List[_WorkerHandle] = []
        try:
            for index, names in enumerate(self.plan.assignments):
                parent_conn, child_conn = mp_ctx.Pipe()
                inbox = ShmRing(self.ring_capacity)
                outbox = ShmRing(self.ring_capacity)
                ctx = ShardContext(
                    shard_index=index,
                    spec=self.config,
                    topology=self.topology,
                    bundle=self.bundle,
                    local=tuple(names),
                    conn=child_conn,
                    inbox=inbox,
                    outbox=outbox,
                )
                process = mp_ctx.Process(
                    target=shard_worker_main,
                    args=(ctx,),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                process.start()
                workers.append(
                    _WorkerHandle(index, process, parent_conn, inbox, outbox)
                )
            for worker in workers:
                self.build_cpu_s.append(self._recv(worker, "ready")[1])

            pending: List[List[Tuple[int, bytes]]] = [[] for _ in workers]
            wall_start = time.perf_counter()
            for i, barrier in enumerate(schedule):
                final = i == len(schedule) - 1
                for worker, frames in zip(workers, pending):
                    for kind, buf in frames:
                        worker.inbox.push(kind, buf)
                    worker.conn.send(("step", barrier, len(frames), final))
                pending = [[] for _ in workers]
                engine_start = time.process_time()
                cpu: List[float] = []
                for worker in workers:
                    reply = self._recv(worker, "done")
                    cpu.append(reply[1])
                    for kind, buf in worker.outbox.drain():
                        if kind == FRAME_METRICS:
                            # Addressed to the engine, not a shard — no
                            # routing header (frame_target would read
                            # garbage).  Cumulative: replace, don't add.
                            self.shard_snapshots[worker.index] = (
                                RegistrySnapshot.decode(buf)
                            )
                            continue
                        shard = self.plan.shard_of(frame_target(buf))
                        pending[shard].append((kind, buf))
                self.window_timings.append(
                    WindowTiming(
                        barrier,
                        tuple(cpu),
                        time.process_time() - engine_start,
                    )
                )
            self.wall_s = time.perf_counter() - wall_start

            self.undelivered_frames = sum(len(frames) for frames in pending)
            if self.undelivered_frames:
                logger.warning(
                    "%d cross-shard frames produced after the final barrier "
                    "were dropped (handover too close to scenario end)",
                    self.undelivered_frames,
                )

            for worker in workers:
                worker.conn.send(("collect",))
            results = [self._recv(worker, "result")[1] for worker in workers]
            for worker in workers:
                worker.process.join(timeout=30)
            return self._merge(results)
        finally:
            for worker in workers:
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
                worker.conn.close()
                for ring in (worker.inbox, worker.outbox):
                    try:
                        ring.close()
                        ring.unlink()
                    except Exception:
                        pass

    # ------------------------------------------------------------------
    def _recv(self, worker: _WorkerHandle, expected: str):
        try:
            reply = worker.conn.recv()
        except EOFError:
            raise ParallelExecutionError(
                f"shard {worker.index} died without a reply "
                f"(exitcode={worker.process.exitcode})"
            )
        if reply[0] == "error":
            raise ParallelExecutionError(
                f"shard {worker.index} failed:\n{reply[1]}"
            )
        if reply[0] != expected:
            raise ParallelExecutionError(
                f"shard {worker.index}: expected {expected!r}, "
                f"got {reply[0]!r}"
            )
        return reply

    def _merge(self, results: List[dict]) -> ScenarioResult:
        rsu_metrics: Dict[str, object] = {}
        vehicle_stats: Dict[int, object] = {}
        warning_logs: Dict[str, list] = {}
        resilience = ResilienceStats()
        for result in results:
            rsu_metrics.update(result["rsu_metrics"])
            vehicle_stats.update(result["vehicle_stats"])
            warning_logs.update(result["warnings"])
            partial = result["resilience"]
            resilience.records_lost += partial.records_lost
            resilience.records_retried += partial.records_retried
            resilience.records_dropped += partial.records_dropped
            resilience.records_abandoned += partial.records_abandoned
            resilience.poll_failures += partial.poll_failures
            resilience.duplicates_rejected += partial.duplicates_rejected
            resilience.broker_crashes += partial.broker_crashes
            resilience.summaries_lost += partial.summaries_lost
            resilience.degradation_events.update(partial.degradation_events)
            resilience.restarted_at_s.update(partial.restarted_at_s)
        ordered_names = self.topology.rsu_names()
        self.warning_logs = {name: warning_logs[name] for name in ordered_names}
        obs = None
        snapshots = [
            result["obs"] for result in results if result.get("obs") is not None
        ]
        if snapshots:
            obs = RegistrySnapshot()
            for snapshot in snapshots:
                obs = obs.merge(snapshot)
        return ScenarioResult(
            config=self.config,
            duration_s=self.config.duration_s,
            rsu_metrics={name: rsu_metrics[name] for name in ordered_names},
            vehicle_stats=dict(sorted(vehicle_stats.items())),
            resilience=resilience,
            obs=obs,
        )
