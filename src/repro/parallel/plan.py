"""Shard planning: cut the corridor graph across worker processes.

The planner is deliberately simple and fully deterministic — greedy
longest-processing-time (LPT) on the topology's per-RSU vehicle load,
with a tie-break that co-locates CO-DATA neighbours so cross-shard
edges (the only traffic that must cross the barrier) are minimised.
Determinism matters more than optimality here: the same topology and
shard count must always produce the same plan, or the golden
equivalence guarantee would depend on dict ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.core.topology import CorridorTopology


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every RSU to exactly one shard."""

    #: ``assignments[s]`` is the tuple of RSU names owned by shard ``s``.
    assignments: Tuple[Tuple[str, ...], ...]

    @property
    def n_shards(self) -> int:
        return len(self.assignments)

    def shard_of(self, rsu_name: str) -> int:
        for index, names in enumerate(self.assignments):
            if rsu_name in names:
                return index
        raise KeyError(f"RSU {rsu_name!r} is in no shard")

    def cross_edges(self, topology: CorridorTopology) -> List[Tuple[str, str]]:
        """Directed CO-DATA edges whose endpoints live in different shards."""
        return [
            (src, dst)
            for src, dst in topology.edges()
            if self.shard_of(src) != self.shard_of(dst)
        ]

    def loads(self, topology: CorridorTopology) -> List[int]:
        """Per-shard vehicle load under the topology's estimate."""
        weight = topology.vehicle_load()
        return [sum(weight[name] for name in names) for names in self.assignments]


@dataclass(frozen=True)
class RebalanceDecision:
    """Move one whole RSU from one shard to another."""

    rsu: str
    from_shard: int
    to_shard: int


class ShardPlanner:
    """Deterministic greedy partitioner for :class:`CorridorTopology`."""

    def plan(self, topology: CorridorTopology, n_shards: int) -> ShardPlan:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        names = topology.rsu_names()
        n_shards = min(n_shards, len(names))
        weight = topology.vehicle_load()
        neighbours: Dict[str, Set[str]] = {name: set() for name in names}
        for src, dst in topology.edges():
            neighbours[src].add(dst)
            neighbours[dst].add(src)

        # Heaviest first; name breaks weight ties so the order is total.
        order = sorted(names, key=lambda name: (-weight[name], name))
        shards: List[List[str]] = [[] for _ in range(n_shards)]
        loads = [0] * n_shards
        for name in order:
            best = min(
                range(n_shards),
                key=lambda s: (
                    loads[s],
                    -len(neighbours[name].intersection(shards[s])),
                    s,
                ),
            )
            shards[best].append(name)
            loads[best] += weight[name]
        return ShardPlan(tuple(tuple(names) for names in shards))

    def rebalance(
        self,
        assignments: Sequence[Sequence[str]],
        loads: Mapping[str, float],
        threshold: float = 0.25,
        max_moves: int = 2,
    ) -> List[RebalanceDecision]:
        """Decide which RSUs to migrate given *measured* per-RSU load.

        ``assignments`` is the current ownership map (one sequence of RSU
        names per shard); ``loads`` the observed per-RSU load (e.g. mean
        concurrent vehicles since the last rebalance).  A move is
        proposed only when the max/min shard imbalance exceeds
        ``threshold`` of the mean shard load; each move takes the RSU
        from the heaviest shard whose weight is closest to the heaviest
        shard's excess over the mean (never emptying a shard) and hands
        it to the lightest shard.  Pure function of its inputs — the
        same loads always produce the same decisions, which is what lets
        sharded runs stay bit-identical to serial ones: rebalancing
        changes *where* an RSU steps, never *what* it draws.
        """
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        owned = [list(names) for names in assignments]
        n_shards = len(owned)
        decisions: List[RebalanceDecision] = []
        if n_shards < 2:
            return decisions
        shard_load = [sum(loads.get(n, 0.0) for n in names) for names in owned]
        mean = sum(shard_load) / n_shards
        for _ in range(max_moves):
            heavy = max(range(n_shards), key=lambda s: (shard_load[s], -s))
            light = min(range(n_shards), key=lambda s: (shard_load[s], s))
            if heavy == light or len(owned[heavy]) <= 1:
                break
            if shard_load[heavy] - shard_load[light] <= threshold * max(mean, 1e-12):
                break
            excess = shard_load[heavy] - mean
            # The candidate closest to the excess evens things out the
            # most; the name tie-break keeps the choice total.
            candidate = min(
                owned[heavy],
                key=lambda n: (abs(loads.get(n, 0.0) - excess), n),
            )
            moved = loads.get(candidate, 0.0)
            # Refuse moves that would overshoot and *worsen* imbalance.
            if shard_load[light] + moved - (shard_load[heavy] - moved) > (
                shard_load[heavy] - shard_load[light]
            ):
                break
            owned[heavy].remove(candidate)
            owned[light].append(candidate)
            shard_load[heavy] -= moved
            shard_load[light] += moved
            decisions.append(RebalanceDecision(candidate, heavy, light))
        return decisions
