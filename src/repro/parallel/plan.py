"""Shard planning: cut the corridor graph across worker processes.

The planner is deliberately simple and fully deterministic — greedy
longest-processing-time (LPT) on the topology's per-RSU vehicle load,
with a tie-break that co-locates CO-DATA neighbours so cross-shard
edges (the only traffic that must cross the barrier) are minimised.
Determinism matters more than optimality here: the same topology and
shard count must always produce the same plan, or the golden
equivalence guarantee would depend on dict ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.topology import CorridorTopology


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every RSU to exactly one shard."""

    #: ``assignments[s]`` is the tuple of RSU names owned by shard ``s``.
    assignments: Tuple[Tuple[str, ...], ...]

    @property
    def n_shards(self) -> int:
        return len(self.assignments)

    def shard_of(self, rsu_name: str) -> int:
        for index, names in enumerate(self.assignments):
            if rsu_name in names:
                return index
        raise KeyError(f"RSU {rsu_name!r} is in no shard")

    def cross_edges(self, topology: CorridorTopology) -> List[Tuple[str, str]]:
        """Directed CO-DATA edges whose endpoints live in different shards."""
        return [
            (src, dst)
            for src, dst in topology.edges()
            if self.shard_of(src) != self.shard_of(dst)
        ]

    def loads(self, topology: CorridorTopology) -> List[int]:
        """Per-shard vehicle load under the topology's estimate."""
        weight = topology.vehicle_load()
        return [sum(weight[name] for name in names) for names in self.assignments]


class ShardPlanner:
    """Deterministic greedy partitioner for :class:`CorridorTopology`."""

    def plan(self, topology: CorridorTopology, n_shards: int) -> ShardPlan:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        names = topology.rsu_names()
        n_shards = min(n_shards, len(names))
        weight = topology.vehicle_load()
        neighbours: Dict[str, Set[str]] = {name: set() for name in names}
        for src, dst in topology.edges():
            neighbours[src].add(dst)
            neighbours[dst].add(src)

        # Heaviest first; name breaks weight ties so the order is total.
        order = sorted(names, key=lambda name: (-weight[name], name))
        shards: List[List[str]] = [[] for _ in range(n_shards)]
        loads = [0] * n_shards
        for name in order:
            best = min(
                range(n_shards),
                key=lambda s: (
                    loads[s],
                    -len(neighbours[name].intersection(shards[s])),
                    s,
                ),
            )
            shards[best].append(name)
            loads[best] += weight[name]
        return ShardPlan(tuple(tuple(names) for names in shards))
