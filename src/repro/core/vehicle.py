"""The vehicle node: 10 Hz telemetry producer + warning consumer.

Vehicles replay telemetry records through the DSRC channel to their
RSU's ``IN-DATA`` topic ("each vehicle transmits records of the dataset
at a frequency of 10 Hz") and poll ``OUT-DATA`` every 10 ms for
warnings ("each Kafka consumer pulls every 10 ms to avoid consuming the
bandwidth").
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.features import IN_DATA, OUT_DATA, record_to_payload
from repro.dataset.schema import TelemetryRecord
from repro.net.dsrc import DsrcChannel
from repro.net.htb import HtbShaper
from repro.simkernel.simulator import Simulator
from repro.streaming.broker import BrokerUnavailable
from repro.streaming.consumer import Consumer
from repro.streaming.producer import Producer, RetryPolicy
from repro.streaming.serde import (
    JsonSerde,
    RawSerde,
    Serde,
    STRUCT_MAGIC,
    STRUCT_VERSION,
)

#: Batched-dataplane template patch: the telemetry struct layout ends in
#: ``generated_at f64 | arrived_at f64``, so a pre-serialized frame is
#: finalized by packing both timestamps over its last 16 bytes.
_TS_PATCH = struct.Struct("<dd")

#: Marker for a stripe record whose wire template has not been built yet
#: (templates are serialized on first send, not eagerly for the whole
#: stripe — replay touches only a fraction of a large stripe).
_UNBUILT = object()


@dataclass
class VehicleStats:
    """Per-vehicle measurements."""

    records_sent: int = 0
    bytes_sent: int = 0
    warnings_received: int = 0
    #: Telemetry that reached the RSU but was refused by a down broker
    #: (and, without a retry policy, lost for good).
    records_lost: int = 0
    #: Warning polls refused by a down broker.
    poll_failures: int = 0
    e2e_latencies_s: List[float] = field(default_factory=list)
    dissemination_latencies_s: List[float] = field(default_factory=list)

    def bandwidth_bps(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.bytes_sent * 8.0 / elapsed_s


class VehicleNode:
    """One emulated vehicle.

    Parameters
    ----------
    sim:
        Simulation kernel.
    car_id:
        Vehicle identity; warnings are filtered on it.
    records:
        Telemetry records to replay (cycled when exhausted).
    rsu:
        The RSU currently serving this vehicle.
    channel:
        Shared DSRC medium toward that RSU.
    shaper:
        HTB shaper (the testbed's netem emulation); optional.
    update_rate_hz:
        Telemetry frequency (paper: 10 Hz).
    poll_interval_s:
        Warning-poll period (paper: 10 ms).
    consumer_processing_s:
        Modelled consumer-side handling time added to each warning
        delivery (the paper decomposes dissemination as
        ``10 + 7.2 +- 4.4 ms``).
    rng:
        Seeded stream for consumer-processing jitter.
    serdes:
        Per-topic serde overrides, matching the RSU's
        (:func:`repro.core.wire.topic_serdes`); compact JSON when
        absent.
    dissemination:
        ``"poll"`` (the paper's loop: pull OUT-DATA every 10 ms) or
        ``"notify"`` (wake on the broker's produce notification —
        lower dissemination latency, but a push channel real Kafka
        does not offer; keep ``"poll"`` when reproducing the paper's
        latency numbers).
    retry:
        :class:`~repro.streaming.producer.RetryPolicy` for telemetry
        produce: buffered retries with backoff plus idempotent
        sequence numbers.  ``None`` (default, the seed behaviour)
        drops telemetry refused by a down broker.
    dataplane:
        ``"event"`` (default): one simulator event per DSRC transmit,
        delivery, and 10 ms warning poll.  ``"batched"``: telemetry
        frames are deferred onto the channel's batch queue (contention
        resolves at the RSU's pre-poll flush, RNG draw order
        preserved), HTB is charged lazily, and the warning-poll grid is
        virtual — only grid instants where a poll would actually find
        OUT-DATA records are materialized as events.  Results are
        bit-identical; the batched mode requires ``"poll"``
        dissemination and a single-process fault-free run
        (:class:`~repro.core.scenario.ScenarioSpec` enforces this).
    """

    #: Perf-baseline switch (class level, snapshotted at construction):
    #: ``True`` restores the pre-overhaul per-tick behaviour — payload
    #: rebuilt from the record on every 10 Hz send, every OUT-DATA
    #: warning deserialized per vehicle.  Results are bit-identical
    #: either way; the BENCH_4 corridor baseline flips this to measure
    #: what the precomputed-payload/shared-decode paths buy.
    legacy_tick = False

    def __init__(
        self,
        sim: Simulator,
        car_id: int,
        records: Iterable[TelemetryRecord],
        rsu,
        channel: DsrcChannel,
        shaper: Optional[HtbShaper] = None,
        update_rate_hz: float = 10.0,
        poll_interval_s: float = 0.010,
        consumer_processing_s: float = 7.2e-3,
        consumer_jitter_s: float = 4.4e-3,
        rng: Optional[np.random.Generator] = None,
        serdes: Optional[Dict[str, Serde]] = None,
        dissemination: str = "poll",
        retry: Optional[RetryPolicy] = None,
        dataplane: str = "event",
    ) -> None:
        if update_rate_hz <= 0:
            raise ValueError("update rate must be positive")
        if poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        if dissemination not in ("poll", "notify"):
            raise ValueError(f"unknown dissemination mode: {dissemination!r}")
        if dataplane not in ("event", "batched"):
            raise ValueError(f"unknown dataplane mode: {dataplane!r}")
        if dataplane == "batched" and dissemination != "poll":
            raise ValueError(
                "the batched dataplane virtualizes the poll grid; "
                "it requires 'poll' dissemination"
            )
        self.sim = sim
        self.car_id = car_id
        self.dataplane = dataplane
        self._batched = dataplane == "batched"
        self._legacy_tick = bool(self.legacy_tick)
        self._payloads: List[dict] = []
        self._payload_cycle = iter(())
        self._prepare_payloads(list(records))
        self.rsu = rsu
        self.channel = channel
        self.shaper = shaper
        self.update_period_s = 1.0 / update_rate_hz
        self.poll_interval_s = poll_interval_s
        self.consumer_processing_s = consumer_processing_s
        self.consumer_jitter_s = consumer_jitter_s
        self._rng = rng or np.random.default_rng(car_id)
        self._serdes: Dict[str, Serde] = dict(serdes or {})
        default = JsonSerde()
        #: Serde for the telemetry envelopes this vehicle produces.
        self.serde = self._serdes.get(IN_DATA, default)
        self._out_serde = self._serdes.get(OUT_DATA, default)
        #: Cached wire dtype of OUT-DATA (struct profile only): lets the
        #: batched poll scan a warning slab with one numpy compare
        #: instead of decoding record by record.
        self._warning_dtype = (
            getattr(self._out_serde, "dtype", None) if self._batched else None
        )
        self.dissemination = dissemination
        # Telemetry goes through a Producer so the delivery guarantees
        # (bounded retry buffer, idempotent sequences) apply.  The
        # envelope is serialized by the vehicle (the wire size gates
        # the DSRC airtime), so the producer's serde is a passthrough.
        # A retry policy implies idempotence: retries must never
        # double-count a record the broker already appended.
        self._producer = Producer(
            rsu.broker,
            serde=RawSerde(),
            client_id=f"vehicle-{car_id}",
            sim=sim,
            retry=retry,
            idempotent=retry is not None,
        )
        self.stats = VehicleStats()
        self._consumer: Optional[Consumer] = None
        self._cancel_produce = None
        self._cancel_poll = None
        self._cancel_notify = None
        self._wakeup_pending = False
        self._started = False
        self._retired = False
        # Batched dataplane state: precomputed produce-side constants
        # and the virtual warning-poll grid.
        self._leaf_name = f"vehicle-{car_id}"
        self._key_bytes = str(car_id).encode()
        self._next_poll = 0.0
        self._poll_until: Optional[float] = None
        self._poll_scheduled = False
        # Frames handed to the DSRC channel whose delivery event has
        # not fired yet, and telemetry still waiting out an HTB delay —
        # keyed by a monotonic token so a cross-shard handover can ship
        # them and the stale sender-side events become no-ops.
        self._frame_tokens = itertools.count()
        self._inflight: Dict[int, Tuple[float, dict]] = {}
        self._pending_tx: Dict[int, Tuple[float, dict, int]] = {}
        self._detached = False
        # One entry per handover: (old_broker, OUT-DATA read positions,
        # OUT-DATA end offsets at the moment of migration).  The
        # invariant audit scans these to classify warnings left behind
        # on abandoned brokers; nothing in the run itself reads them.
        self._departures: List[Tuple[object, Dict[int, int], Dict[int, int]]] = []
        self._attach_consumer()

    # ------------------------------------------------------------------
    def _attach_consumer(self) -> None:
        self._consumer = Consumer(
            self.rsu.broker,
            group=None,
            serde=self._out_serde,
            client_id=f"vehicle-{self.car_id}",
        )
        self._consumer.subscribe([OUT_DATA])
        self._consumer.seek_to_end()
        if self._cancel_notify is not None:
            self._cancel_notify()
            self._cancel_notify = None
        if self._started:
            if self.dissemination == "notify":
                self._subscribe_notify()
            elif self._batched:
                self._subscribe_wakeup()

    def _subscribe_notify(self) -> None:
        self._cancel_notify = self.rsu.broker.subscribe_notify(
            OUT_DATA, self._on_out_data_produced
        )

    def _subscribe_wakeup(self) -> None:
        """Batched dataplane: watch OUT-DATA to materialize poll-grid
        instants (the virtual analogue of the 10 ms poll recurrence)."""
        self._cancel_notify = self.rsu.broker.subscribe_notify(
            OUT_DATA, self._on_warning_appended
        )

    def _on_out_data_produced(self, metadata) -> None:
        # Coalesce: many warnings produced at the same instant (one
        # micro-batch) wake the consumer once.
        if self._wakeup_pending:
            return
        self._wakeup_pending = True
        self.sim.after(
            0.0, self._wakeup_poll, label=f"vehicle-{self.car_id}-wakeup"
        )

    def _wakeup_poll(self) -> None:
        self._wakeup_pending = False
        self._poll_warnings()

    def start(self, until: Optional[float] = None) -> None:
        """Begin the produce loop and the warning consumption."""
        if self._cancel_produce is not None:
            raise RuntimeError(f"vehicle {self.car_id} already started")
        self._started = True
        # Desynchronise vehicles: each starts at a random phase within
        # its first update period, as real beacons are unaligned.
        phase = float(self._rng.uniform(0.0, self.update_period_s))
        self._cancel_produce = self.sim.every_group(
            self.update_period_s,
            self._send_telemetry_batched if self._batched else self._send_telemetry,
            start=self.sim.now + phase,
            until=until,
            label=f"vehicle-{self.car_id}-produce",
        )
        if self.dissemination == "notify":
            self._subscribe_notify()
            return
        poll_phase = float(self._rng.uniform(0.0, self.poll_interval_s))
        if self._batched:
            # Virtual polling: keep the exact poll grid the recurrence
            # would have walked (same phase draw, same float-accumulated
            # instants) but only materialize grid instants at which a
            # poll would find records — a produce notification schedules
            # the next one.  Empty polls, the vast majority of the 100
            # polls/vehicle/second, never become events.
            self._next_poll = self.sim.now + poll_phase
            self._poll_until = until
            self._subscribe_wakeup()
            return
        self._cancel_poll = self.sim.every_group(
            self.poll_interval_s,
            self._poll_warnings,
            start=self.sim.now + poll_phase,
            until=until,
            label=f"vehicle-{self.car_id}-poll",
        )

    @property
    def retired(self) -> bool:
        return self._retired

    def retire(self) -> None:
        """End this vehicle's trip mid-run: stop producing and polling.

        Unlike :meth:`stop` at scenario teardown, retirement is a
        workload event (the trip ended), so it is idempotent and flags
        the vehicle for churn accounting.  The consumer stays attached:
        warnings already appended — or still materializing from
        telemetry in the pipeline — remain countable as pending, so the
        warning conservation law holds under churn.
        """
        if self._retired:
            return
        self._retired = True
        self.stop()

    def stop(self) -> None:
        self._started = False
        if self._cancel_produce is not None:
            self._cancel_produce()
            self._cancel_produce = None
        if self._cancel_poll is not None:
            self._cancel_poll()
            self._cancel_poll = None
        if self._cancel_notify is not None:
            self._cancel_notify()
            self._cancel_notify = None

    # ------------------------------------------------------------------
    def migrate(
        self, new_rsu, new_channel: DsrcChannel, drop_pending: bool = False
    ) -> None:
        """Handover: switch to a new RSU and its channel.

        The caller is responsible for triggering the old RSU's
        ``handover`` (CO-DATA summary transfer); the vehicle only
        re-homes its producer and consumer.  Telemetry still buffered
        for the old (possibly dead) RSU replays to the new one —
        at-least-once across the failover, deduped by sequence number.
        ``drop_pending`` discards that backlog instead, for handovers
        onto a different road where the old records are stale (the new
        RSU has no model for them).
        """
        carried: List[Tuple] = []
        if self._batched and new_channel is not self.channel:
            # Resolve everything due on the old medium while the old
            # producer is still bound — those deliveries belong to the
            # old broker, exactly as their per-frame events (all at or
            # before this instant) would have.  Frames still deferred
            # (shaper-delayed past now) move to the new channel: their
            # transmit events would have read ``self.channel`` at fire
            # time and contended on the new medium.
            self.channel.flush(self.sim.now)
            carried = self.channel.take_pending(self)
        self._record_departure()
        self.rsu = new_rsu
        self.channel = new_channel
        self._producer.rebind(new_rsu.broker, drop_pending=drop_pending)
        self._attach_consumer()
        for eff_time, _seq, size, deliver, _owner in carried:
            new_channel.enqueue(eff_time, size, deliver, owner=self)

    def _record_departure(self) -> None:
        """Snapshot the OUT-DATA read state on the broker being left.

        Pure reads (positions and log-end offsets); the audit later
        classifies un-consumed warnings on the old broker as orphaned
        (already appended when we left) or late (emitted afterwards,
        from telemetry still in the old pipeline).
        """
        old_broker = self.rsu.broker
        positions = {
            partition: position
            for (topic, partition), position in self._consumer._positions.items()
            if topic == OUT_DATA
        }
        try:
            topic = old_broker.topic(OUT_DATA)
        except Exception:
            return
        ends = {
            partition: topic.partition(partition).end_offset
            for partition in positions
        }
        self._departures.append((old_broker, positions, ends))

    def set_records(self, records: Iterable[TelemetryRecord]) -> None:
        """Switch the replayed sub-dataset (paper: migrated producers
        "start reading from the motorway link subdataset")."""
        items = list(records)
        if not items:
            raise ValueError("record stream cannot be empty")
        self._prepare_payloads(items)

    def _prepare_payloads(self, records: List[TelemetryRecord]) -> None:
        """Precompute the wire payload for every record in the stripe.

        Replay cycles a fixed stripe, so each record's ``IN-DATA``
        payload — including the feature-context work inside
        :func:`record_to_payload` — is computed once here instead of on
        every 10 Hz tick.  The car-identity override is applied once
        too ("car" is already the first key, so insertion order and
        hence the serialized bytes are unchanged).  Payloads are never
        mutated after this point, so in-flight envelopes may share
        them; an empty stripe is tolerated at construction (it only
        fails if a tick actually fires), matching the old ``cycle()``
        semantics.
        """
        payloads = []
        for record in records:
            payload = record_to_payload(record)
            payload["car"] = self.car_id
            payloads.append(payload)
        #: The replayed records, kept for introspection (the payloads
        #: drop fields like ``trip_id`` that never go on the wire).
        self._stripe = records
        self._payloads = payloads
        self._payload_cycle = itertools.cycle(payloads)
        # Only consumed on the legacy (perf-baseline) tick path.
        self._record_cycle = itertools.cycle(records)
        # Batched-dataplane wire templates, parallel to the payloads;
        # each is serialized on the first send of its record (the serde
        # is assigned after this runs, and replay may touch only a
        # fraction of a large stripe).
        self._payload_index = 0
        self._templates: List[object] = [_UNBUILT] * len(payloads)

    # ------------------------------------------------------------------
    # Cross-process handover (sharded engine)
    # ------------------------------------------------------------------
    @property
    def detached(self) -> bool:
        """True once this vehicle was shipped to another shard."""
        return self._detached

    def detach(self) -> dict:
        """Freeze this vehicle for a cross-process handover.

        Captures everything the receiving shard needs to continue the
        exact same trajectory: the RNG mid-stream state, the *exact*
        next produce/poll instants (interval recurrences accumulate
        floating point, so these cannot be recomputed from a phase),
        frames in flight on the DSRC channel (shipped pre-serialized
        with their known delivery stamps), and telemetry still waiting
        out an HTB delay.  The vehicle then goes inert: its remaining
        scheduled events on this shard become no-ops.
        """
        if self._detached:
            raise RuntimeError(f"vehicle {self.car_id} already detached")
        if self._batched:
            raise RuntimeError(
                "the batched dataplane does not support cross-shard "
                "handover (frames may be deferred on the channel)"
            )
        produce_next = (
            self._cancel_produce.next_time
            if self._cancel_produce is not None
            else None
        )
        poll_next = (
            self._cancel_poll.next_time if self._cancel_poll is not None else None
        )
        # Token order is send order, matching the serial delivery-event
        # scheduling order at equal times.
        inflight = [
            (at_time, self.serde.serialize({**envelope, "arrived_at": at_time}))
            for at_time, envelope in self._inflight.values()
        ]
        state = {
            "car_id": self.car_id,
            "rng_state": self._rng.bit_generator.state,
            "stats": self.stats,
            "produce_next": produce_next,
            "poll_next": poll_next,
            "inflight": inflight,
            "pending_tx": list(self._pending_tx.values()),
        }
        self.stop()
        self._detached = True
        self._inflight.clear()
        self._pending_tx.clear()
        return state

    def resume(
        self,
        produce_next: Optional[float],
        poll_next: Optional[float],
        until: Optional[float] = None,
    ) -> None:
        """Restart the periodic loops mid-stream after a transfer.

        Unlike :meth:`start` this draws no phases from the RNG: the
        exact next-fire instants come from the sending shard's
        :meth:`detach`, so the resumed recurrences continue the same
        float-accumulated grid the serial engine would have produced.
        ``None`` for either instant means that loop had already ended.
        """
        if self._cancel_produce is not None or self._cancel_poll is not None:
            raise RuntimeError(f"vehicle {self.car_id} already running")
        self._started = True
        if produce_next is not None:
            self._cancel_produce = self.sim.every_group(
                self.update_period_s,
                self._send_telemetry,
                start=produce_next,
                until=until,
                label=f"vehicle-{self.car_id}-produce",
            )
        if self.dissemination == "notify":
            self._subscribe_notify()
        elif poll_next is not None:
            self._cancel_poll = self.sim.every_group(
                self.poll_interval_s,
                self._poll_warnings,
                start=poll_next,
                until=until,
                label=f"vehicle-{self.car_id}-poll",
            )

    # ------------------------------------------------------------------
    def _send_telemetry(self) -> None:
        # The payload (with this vehicle's identity already stamped) is
        # precomputed per stripe record; only the envelope — mutated at
        # delivery time and possibly alive across a handover — must be
        # fresh per send.
        if self._legacy_tick:
            data = record_to_payload(next(self._record_cycle))
            data["car"] = self.car_id
        else:
            data = next(self._payload_cycle)
        generated_at = self.sim.now
        envelope = {
            "data": data,
            "generated_at": generated_at,
            "arrived_at": None,  # filled on delivery
        }
        size = len(self.serde.serialize(envelope))
        delay = 0.0
        if self.shaper is not None:
            delay = self.shaper.send(f"vehicle-{self.car_id}", size, self.sim.now)

        if delay > 0:
            token = next(self._frame_tokens)
            self._pending_tx[token] = (self.sim.now + delay, envelope, size)
            self.sim.after(
                delay,
                lambda: self._transmit(envelope, size, pending_token=token),
                label=f"vehicle-{self.car_id}-htb",
            )
        else:
            self._transmit(envelope, size)
        self.stats.records_sent += 1
        self.stats.bytes_sent += size

    def _build_template(self, index: int):
        """Serialize one stripe record's wire template on first use.

        When the payload serializes to a fixed-size struct frame, the
        per-send wire bytes differ from this template only in the two
        trailing timestamps — so each send just patches
        ``generated_at``/``arrived_at`` over a template copy instead of
        serializing the envelope twice (once for the airtime-gating
        size, once at delivery).  A JSON-fallback payload caches
        ``None``; its sends serialize exactly like the event dataplane.
        """
        serde = self.serde
        wire_size = getattr(serde, "wire_size", None)
        template = None
        if wire_size is not None:
            frame = serde.serialize(
                {
                    "data": self._payloads[index],
                    "generated_at": 0.0,
                    "arrived_at": None,
                }
            )
            if len(frame) == wire_size and frame[0] == STRUCT_MAGIC:
                template = frame
        self._templates[index] = template
        return template

    def _send_telemetry_batched(self) -> None:
        """Batched-dataplane send: defer shaping and contention.

        Observably identical to :meth:`_send_telemetry` +
        :meth:`_transmit`, restructured for the deferred channel:

        - HTB is charged through
          :meth:`~repro.net.htb.HtbShaper.send_deferred` (bit-identical
          delays; the shared root bucket accrues lazily).
        - Instead of transmitting, the frame joins the channel's batch
          queue at its effective time; contention resolves at the next
          flush with the per-frame RNG draw order preserved.
        - Delivery serializes from the record's pre-built template when
          it struct-encodes (timestamps patched in place), else through
          the serde exactly as the event path would.
        """
        payloads = self._payloads
        if not payloads:
            next(iter(()))  # StopIteration, as cycle() on an empty stripe
        index = self._payload_index
        self._payload_index = index + 1 if index + 1 < len(payloads) else 0
        template = self._templates[index]
        if template is _UNBUILT:
            template = self._build_template(index)
        now = self.sim.now
        if template is not None:
            size = len(template)

            def deliver(
                at_time: float, template=template, generated_at=now
            ) -> None:
                frame = bytearray(template)
                _TS_PATCH.pack_into(frame, size - 16, generated_at, at_time)
                try:
                    self._producer.send(
                        IN_DATA,
                        bytes(frame),
                        key=self._key_bytes,
                        timestamp=at_time,
                    )
                except BrokerUnavailable:
                    self.stats.records_lost += 1

        else:
            data = payloads[index]
            size = len(
                self.serde.serialize(
                    {"data": data, "generated_at": now, "arrived_at": None}
                )
            )

            def deliver(at_time: float, data=data, generated_at=now) -> None:
                envelope = {
                    "data": data,
                    "generated_at": generated_at,
                    "arrived_at": at_time,
                }
                try:
                    self._producer.send(
                        IN_DATA,
                        self.serde.serialize(envelope),
                        key=self._key_bytes,
                        timestamp=at_time,
                    )
                except BrokerUnavailable:
                    self.stats.records_lost += 1

        delay = 0.0
        if self.shaper is not None:
            delay = self.shaper.send_deferred(self._leaf_name, size, now)
        self.channel.enqueue(now + delay, size, deliver, owner=self)
        self.stats.records_sent += 1
        self.stats.bytes_sent += size

    def _on_warning_appended(self, metadata) -> None:
        """A warning hit OUT-DATA: materialize the next poll instant.

        The virtual grid advances by repeated interval addition from
        the drawn phase — the same float accumulation the real 10 ms
        recurrence performs — so the materialized poll fires at exactly
        the instant the event-mode poll would have consumed this
        warning.  Grid instants at or past the loop's ``until`` never
        fire, matching the recurrence's drop rule.
        """
        if self._poll_scheduled:
            return
        target = self._next_poll
        now = self.sim.now
        interval = self.poll_interval_s
        while target < now:
            target += interval
        self._next_poll = target
        until = self._poll_until
        if until is not None and target >= until:
            return
        self._poll_scheduled = True
        self.sim.at(
            target, self._virtual_poll, label=f"vehicle-{self.car_id}-poll"
        )

    def _virtual_poll(self) -> None:
        self._poll_scheduled = False
        self._next_poll += self.poll_interval_s
        self._poll_warnings()

    def _transmit(
        self, envelope: dict, size: int, pending_token: Optional[int] = None
    ) -> None:
        """Put one telemetry frame on the (current) DSRC channel.

        Reads ``self.channel`` and ``self._producer`` at fire time, so a
        frame that waited out an HTB delay across a handover transmits
        on the new RSU's channel — and after :meth:`detach` the stale
        sender-side event is a no-op (the frame was shipped to the new
        shard instead).
        """
        if self._detached:
            return
        if pending_token is not None:
            self._pending_tx.pop(pending_token, None)
        token = next(self._frame_tokens)

        def deliver(at_time: float) -> None:
            if self._detached:
                return
            self._inflight.pop(token, None)
            envelope["arrived_at"] = at_time
            try:
                self._producer.send(
                    IN_DATA,
                    self.serde.serialize(envelope),
                    key=str(self.car_id).encode(),
                    timestamp=at_time,
                )
            except BrokerUnavailable:
                # No retry policy: the frame made it over the air
                # but the broker refused it — lost for good.
                self.stats.records_lost += 1

        delivery = self.channel.transmit(size, deliver)
        if delivery is not None:
            self._inflight[token] = (delivery, envelope)

    def _poll_warnings(self) -> None:
        if self._batched and not self._legacy_tick:
            self._poll_warnings_block()
            return
        try:
            # Raw poll: every vehicle on a broker sees every OUT-DATA
            # warning, so decoding happens once per warning in a memo
            # shared through the broker (the stored bytes objects are
            # shared too) instead of once per vehicle per warning.  The
            # legacy (perf-baseline) path deserializes per vehicle.
            records = self._consumer.poll(deserialize=self._legacy_tick)
        except BrokerUnavailable:
            self.stats.poll_failures += 1
            return
        if not records:
            return
        if self._legacy_tick:
            cache = None
        else:
            broker = self.rsu.broker
            cache = broker.__dict__.get("_warning_decode_cache")
            if cache is None:
                cache = broker._warning_decode_cache = {}
        serde = self._out_serde
        for record in records:
            if cache is None:
                value = record.value
            else:
                raw = record.value
                value = cache.get(raw)
                if value is None:
                    value = serde.deserialize(raw)
                    cache[raw] = value
            if int(value.get("car", -1)) != self.car_id:
                continue
            jitter = float(
                self._rng.uniform(-self.consumer_jitter_s, self.consumer_jitter_s)
            )
            handling = max(0.0, self.consumer_processing_s + jitter)
            received_at = self.sim.now + handling
            detected_at = float(value["t"])
            generated_at = float(value["generated_at"])
            self.stats.warnings_received += 1
            self.stats.dissemination_latencies_s.append(received_at - detected_at)
            self.stats.e2e_latencies_s.append(received_at - generated_at)

    def _poll_warnings_block(self) -> None:
        """Batched-dataplane poll: scan OUT-DATA as block segments.

        Consumes through :meth:`~repro.streaming.consumer.Consumer.poll_block`
        — same partition order, position advances, and byte accounting
        as ``poll(deserialize=False)`` — and filters for this car's
        warnings without per-record objects: a uniform struct segment is
        one ``np.frombuffer`` over the broker's slab plus one column
        compare (every vehicle on the RSU sees every warning, so most
        records are other cars').  The consumer-jitter draw happens only
        for own warnings, in record order — the event path's exact RNG
        sequence.  Mixed/JSON segments fall back to the decode loop with
        the broker-shared memo.
        """
        try:
            segments = self._consumer.poll_block()
        except BrokerUnavailable:
            self.stats.poll_failures += 1
            return
        if not segments:
            return
        dtype = self._warning_dtype
        car_id = self.car_id
        stats = self.stats
        now = self.sim.now
        processing = self.consumer_processing_s
        jitter_s = self.consumer_jitter_s
        uniform = self._rng.uniform
        broker = self.rsu.broker
        for segment in segments:
            if (
                dtype is not None
                and segment.is_uniform
                and segment.record_size == dtype.itemsize
            ):
                # Every vehicle on the RSU fetches the same emission
                # batch (same offsets), so the column extraction runs
                # once per batch in a broker-shared memo, not once per
                # vehicle per batch.
                scan_cache = broker.__dict__.get("_warning_scan_cache")
                if scan_cache is None:
                    scan_cache = broker._warning_scan_cache = {}
                key = (
                    segment.topic,
                    segment.partition,
                    segment.next_offset,
                    segment.count,
                )
                entry = scan_cache.get(key)
                if entry is None:
                    rows = np.frombuffer(segment.data, dtype=dtype)
                    if rows.size and (rows["version"] == STRUCT_VERSION).all():
                        entry = (
                            rows["car"].tolist(),
                            rows["t"].tolist(),
                            rows["generated_at"].tolist(),
                        )
                        scan_cache[key] = entry
                if entry is not None:
                    cars, ts, gens = entry
                    for i, car in enumerate(cars):
                        if car != car_id:
                            continue
                        jitter = float(uniform(-jitter_s, jitter_s))
                        handling = max(0.0, processing + jitter)
                        received_at = now + handling
                        stats.warnings_received += 1
                        stats.dissemination_latencies_s.append(
                            received_at - ts[i]
                        )
                        stats.e2e_latencies_s.append(received_at - gens[i])
                    continue
            cache = broker.__dict__.get("_warning_decode_cache")
            if cache is None:
                cache = broker._warning_decode_cache = {}
            serde = self._out_serde
            for raw in segment.value_list():
                value = cache.get(raw)
                if value is None:
                    value = serde.deserialize(raw)
                    cache[raw] = value
                if int(value.get("car", -1)) != car_id:
                    continue
                jitter = float(uniform(-jitter_s, jitter_s))
                handling = max(0.0, processing + jitter)
                received_at = now + handling
                stats.warnings_received += 1
                stats.dissemination_latencies_s.append(
                    received_at - float(value["t"])
                )
                stats.e2e_latencies_s.append(
                    received_at - float(value["generated_at"])
                )

    def __repr__(self) -> str:
        return (
            f"VehicleNode(car_id={self.car_id}, rsu={self.rsu.name!r}, "
            f"sent={self.stats.records_sent})"
        )
