"""The centralized baseline: one city-scale model.

The paper's centralized comparator "assumes training all road vehicular
data at once": a single Naive Bayes over every road type, with RoadType
as just another feature.  Mixing the per-road-type speed distributions
into one Gaussian per class is exactly what costs it road-level
context-awareness — its per-class speed Gaussian must straddle the
motorway's ~160 km/h mode and the link's ~115 km/h mode at once.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.block import TelemetryBlock
from repro.core.features import centralized_features, labels_of
from repro.dataset.schema import NORMAL, TelemetryRecord
from repro.ml.base import Detector
from repro.ml.naive_bayes import GaussianNaiveBayes


class CentralizedDetector(Detector):
    """City-scale Naive Bayes over [InstSpeed, accel, Hour, RoadType].

    ``encoding`` selects the RoadType representation ("ordinal" or
    "onehot"); both perform comparably — see ``centralized_features``.
    """

    def __init__(
        self, var_smoothing: float = 1e-9, encoding: str = "ordinal"
    ) -> None:
        self.model = GaussianNaiveBayes(var_smoothing=var_smoothing)
        self.encoding = encoding
        self._fitted = False

    def fit(self, records: Sequence[TelemetryRecord]) -> "CentralizedDetector":
        if not records:
            raise ValueError("cannot fit on zero records")
        X = centralized_features(records, encoding=self.encoding)
        y = labels_of(records)
        self.model.fit(X, y)
        self._fitted = True
        return self

    @property
    def fitted(self) -> bool:
        return self._fitted

    def predict(self, records: Sequence[TelemetryRecord]) -> np.ndarray:
        if not records:
            return np.empty(0, dtype=int)
        return self.model.predict(
            centralized_features(records, encoding=self.encoding)
        )

    def predict_normal_proba(
        self, records: Sequence[TelemetryRecord]
    ) -> np.ndarray:
        if not records:
            return np.empty(0)
        return self.model.proba_of(
            centralized_features(records, encoding=self.encoding), NORMAL
        )

    def detect(
        self, records: Sequence[TelemetryRecord], summaries=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.predict(records), self.predict_normal_proba(records)

    def detect_block(
        self, block: TelemetryBlock, summaries=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar :meth:`detect` — one likelihood evaluation, no
        per-record materialization; bit-identical output."""
        if len(block) == 0:
            return np.empty(0, dtype=int), np.empty(0)
        X = centralized_features(block, encoding=self.encoding)
        if hasattr(self.model, "predict_and_proba"):
            return self.model.predict_and_proba(X, NORMAL)
        return self.model.predict(X), self.model.proba_of(X, NORMAL)

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"CentralizedDetector({state})"
