"""AD3: the standalone per-road-type detector (Sec. IV-C).

Each RSU trains a Gaussian Naive Bayes on the data of the road type it
covers, learning the *normal* profile for that road, and classifies
incoming records.  Context-awareness comes from the per-road-type
scoping: 90 km/h is abnormal on a motorway link whose traffic runs
0-35 km/h, and normal on the motorway.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.block import ROAD_TYPES, TelemetryBlock
from repro.core.features import ROAD_TYPE_CODE, base_features, labels_of
from repro.dataset.schema import NORMAL, TelemetryRecord
from repro.geo.roadnet import RoadType
from repro.ml.base import Detector
from repro.ml.naive_bayes import GaussianNaiveBayes


def road_features(records) -> np.ndarray:
    """The AD3 feature matrix: [InstSpeed, accel, Hour].

    Accepts a record sequence or a :class:`TelemetryBlock`.
    """
    return base_features(records)


class AD3Detector(Detector):
    """Per-road-type Naive Bayes anomaly detector.

    Parameters
    ----------
    road_type:
        The road type this detector covers; ``fit`` and ``predict``
        refuse records of other types, catching wiring bugs where an
        RSU receives data it has no model for.
    var_smoothing:
        Passed to the underlying :class:`GaussianNaiveBayes`.
    model:
        Optional alternative classifier (anything with ``fit`` /
        ``predict`` / ``proba_of``) — the hook for the paper's
        future-work "complex anomaly detection algorithms" (e.g.
        :class:`repro.ml.LogisticRegression` or
        :class:`repro.ml.RandomForestClassifier`).
    """

    def __init__(
        self,
        road_type: RoadType,
        var_smoothing: float = 1e-9,
        model=None,
    ) -> None:
        self.road_type = road_type
        self.model = model or GaussianNaiveBayes(var_smoothing=var_smoothing)
        self._fitted = False

    def _check_road_type(self, records: Sequence[TelemetryRecord]) -> None:
        for record in records:
            if record.road_type is not self.road_type:
                raise ValueError(
                    f"AD3Detector for {self.road_type.value!r} received a "
                    f"record for {record.road_type.value!r} "
                    f"(car {record.car_id})"
                )

    def _check_block_road_type(self, block: TelemetryBlock) -> None:
        expected = ROAD_TYPE_CODE[self.road_type]
        mismatched = np.nonzero(block.road_type_code != expected)[0]
        if mismatched.size:
            first = int(mismatched[0])
            other = ROAD_TYPES[block.road_type_code[first]]
            raise ValueError(
                f"AD3Detector for {self.road_type.value!r} received a "
                f"record for {other.value!r} "
                f"(car {int(block.car_id[first])})"
            )

    def fit(self, records: Sequence[TelemetryRecord]) -> "AD3Detector":
        """Train on labelled records of this detector's road type."""
        if not records:
            raise ValueError("cannot fit on zero records")
        self._check_road_type(records)
        X = road_features(records)
        y = labels_of(records)
        self.model.fit(X, y)
        self._fitted = True
        return self

    @property
    def fitted(self) -> bool:
        return self._fitted

    def predict(self, records: Sequence[TelemetryRecord]) -> np.ndarray:
        """Class per record: 1 normal, 0 abnormal."""
        if not records:
            return np.empty(0, dtype=int)
        self._check_road_type(records)
        return self.model.predict(road_features(records))

    def predict_normal_proba(
        self, records: Sequence[TelemetryRecord]
    ) -> np.ndarray:
        """P(normal) per record — the P_NB of Eq. 1."""
        if not records:
            return np.empty(0)
        self._check_road_type(records)
        return self.model.proba_of(road_features(records), NORMAL)

    def detect(
        self, records: Sequence[TelemetryRecord], summaries=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(classes, normal probabilities) in one pass.

        ``summaries`` is accepted for protocol uniformity and ignored:
        AD3 detection is road-local.
        """
        return self.predict(records), self.predict_normal_proba(records)

    def detect_block(
        self, block: TelemetryBlock, summaries=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar :meth:`detect`: score a whole micro-batch without
        materializing records, evaluating the likelihood once.

        Output is bit-identical to ``detect(block.records())``.
        """
        if len(block) == 0:
            return np.empty(0, dtype=int), np.empty(0)
        self._check_block_road_type(block)
        X = road_features(block)
        model = self.model
        if hasattr(model, "predict_and_proba"):
            return model.predict_and_proba(X, NORMAL)
        return model.predict(X), model.proba_of(X, NORMAL)

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"AD3Detector(road_type={self.road_type.value!r}, {state})"
