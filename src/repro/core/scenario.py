"""The scenario specification and its fluent builder.

:class:`ScenarioSpec` is the full set of testbed knobs, including the
resilience controls (fault profile, producer retry policy,
upstream-silence timeout).

:class:`ScenarioBuilder` is the preferred way to assemble one::

    scenario = (
        TestbedScenario.builder()
        .vehicles(128)
        .serde("struct")
        .columnar()
        .faults(profile("chaos"))
        .corridor()
    )
    result = scenario.run()

Builder terminals (:meth:`~ScenarioBuilder.single_rsu`,
:meth:`~ScenarioBuilder.corridor`, ...) hand the finished spec to the
matching :class:`~repro.core.workload.Workload` dataclass; a
fault-free builder run is bit-identical to constructing the spec
directly — the golden-equivalence tests pin this.

:func:`paper_single_rsu` and :func:`paper_corridor` are presets
pre-loaded with the paper's evaluation settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.collab import CollabConfig
from repro.core.wire import SERDE_PROFILES
from repro.faults.events import FaultProfile
from repro.microbatch.context import ProcessingModel
from repro.net.dsrc import McsScheme, PAPER_MCS_8
from repro.streaming.producer import RetryPolicy

#: CO-DATA silence before a fault-enabled scenario's collaborating
#: RSUs degrade to road-only detection.
DEFAULT_UPSTREAM_TIMEOUT_S = 1.0


@dataclass
class ScenarioSpec:
    """Testbed knobs, defaulting to the paper's settings."""

    n_vehicles: int = 8  # per RSU
    duration_s: float = 10.0
    update_rate_hz: float = 10.0
    batch_interval_s: float = 0.050
    poll_interval_s: float = 0.010
    seed: int = 7
    use_htb: bool = True
    htb_floor_bps: float = 100_000.0  # netem assured rate per producer
    mcs: McsScheme = field(default_factory=lambda: PAPER_MCS_8)
    #: Broadcast-frame loss probability on the DSRC channel.
    loss_prob: float = 0.0
    handover_fraction: float = 0.0
    handover_at_s: Optional[float] = None
    processing_model: ProcessingModel = field(default_factory=ProcessingModel)
    #: Wire format for the three topics: ``"json"`` (compact JSON, the
    #: seed behaviour) or ``"struct"`` (fixed-layout binary: telemetry
    #: packets shrink to less than half and decode an order of
    #: magnitude faster).
    serde_profile: str = "json"
    #: Vehicle warning consumption: ``"poll"`` (paper: every 10 ms) or
    #: ``"notify"`` (wake on produce; not real-Kafka-faithful).
    dissemination: str = "poll"
    #: Columnar micro-batch pipeline at the RSUs (bit-identical
    #: results; ``False`` forces the original per-record loop).
    columnar: bool = True
    #: Telemetry transport: ``"event"`` (per-frame DSRC transmit and
    #: delivery events, 10 ms poll events — the seed behaviour) or
    #: ``"batched"`` (deferred channel contention flushed at RSU ticks,
    #: lazy HTB accrual, virtual warning-poll grid, and — with
    #: ``columnar`` — block fetches off the broker's slabs).  Results
    #: are bit-identical; batched requires a single-process, fault-free,
    #: poll-dissemination run.
    dataplane: str = "event"
    #: Fault profile to inject during the run (``None`` = fault-free).
    faults: Optional[FaultProfile] = None
    #: Retry policy for vehicle telemetry produce.  ``None`` (the seed
    #: behaviour) drops records refused by a down broker; a policy
    #: buffers them with backoff and idempotent sequence numbers.
    producer_retry: Optional[RetryPolicy] = None
    #: Seconds of CO-DATA silence before collaborating RSUs degrade to
    #: road-only detection (``None`` disables degradation).
    upstream_timeout_s: Optional[float] = None
    #: Bandwidth-adaptive CO-DATA plane (utility gating, delta
    #: encoding, priority bands).  ``None`` — or a default, disabled
    #: :class:`~repro.core.collab.CollabConfig` — keeps the seed
    #: handover-only collaboration bit-identical.
    collab: Optional[CollabConfig] = None
    #: Collect pipeline metrics and spans during the run
    #: (:mod:`repro.obs`).  Off by default: instrumentation sites are
    #: no-ops without an active registry, and the observer-effect
    #: golden test pins that enabling it never changes results.
    observability: bool = False
    #: Worker processes the corridor's RSUs are partitioned across.
    #: ``1`` (the seed behaviour) runs single-process; ``> 1`` makes
    #: the :meth:`~ScenarioBuilder.corridor` terminal return a
    #: :class:`~repro.parallel.engine.ShardedScenario`.  Shard count
    #: never changes results: per-actor RNG streams are seeded by name
    #: and the barrier protocol preserves event ordering.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.n_vehicles < 1:
            raise ValueError("need at least one vehicle")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.handover_fraction <= 1.0:
            raise ValueError("handover_fraction must be in [0, 1]")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if self.serde_profile not in SERDE_PROFILES:
            raise ValueError(
                f"unknown serde_profile: {self.serde_profile!r}; "
                f"choose from {SERDE_PROFILES}"
            )
        if self.dissemination not in ("poll", "notify"):
            raise ValueError(
                f"unknown dissemination mode: {self.dissemination!r}"
            )
        if self.upstream_timeout_s is not None and self.upstream_timeout_s <= 0:
            raise ValueError("upstream_timeout_s must be positive")
        if self.dataplane not in ("event", "batched"):
            raise ValueError(
                f"unknown dataplane mode: {self.dataplane!r}; "
                "choose 'event' or 'batched'"
            )
        if self.collab is not None and self.collab.enabled:
            if self.faults is not None:
                raise ValueError(
                    "the collaboration plane requires a fault-free run "
                    "(delta baselines are not crash-consistent)"
                )
            if self.collab.priority and not self.use_htb:
                raise ValueError(
                    "collab priority scheduling requires use_htb"
                )
        if self.dataplane == "batched":
            if self.dissemination != "poll":
                raise ValueError(
                    "the batched dataplane requires 'poll' dissemination"
                )
            if self.faults is not None:
                raise ValueError(
                    "the batched dataplane requires a fault-free run"
                )
            if self.producer_retry is not None:
                raise ValueError(
                    "the batched dataplane does not support producer retry"
                )
            if self.shards > 1:
                raise ValueError(
                    "the batched dataplane runs single-process; use "
                    "dataplane='event' with shards > 1"
                )


class ScenarioBuilder:
    """Fluent assembly of a :class:`ScenarioSpec`.

    Every setter returns the builder; finish with :meth:`build` (the
    bare spec) or a topology terminal (:meth:`single_rsu`,
    :meth:`corridor`, :meth:`single_rsu_cloud`, :meth:`chain`) which
    returns a wired :class:`~repro.core.system.TestbedScenario`.

    Enabling :meth:`faults` switches on the delivery guarantees the
    fault profile needs — producer retry with idempotence and the
    upstream-silence degradation timeout — unless those were set
    explicitly.
    """

    def __init__(self, spec: Optional[ScenarioSpec] = None) -> None:
        self._spec = spec if spec is not None else ScenarioSpec()
        self._retry_explicit = False
        self._timeout_explicit = False
        self._duration_explicit = False

    def _set(self, **changes) -> "ScenarioBuilder":
        self._spec = replace(self._spec, **changes)
        return self

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def vehicles(self, count: int) -> "ScenarioBuilder":
        """Vehicles per RSU."""
        return self._set(n_vehicles=count)

    def duration(self, seconds: float) -> "ScenarioBuilder":
        self._duration_explicit = True
        return self._set(duration_s=seconds)

    def update_rate(self, hz: float) -> "ScenarioBuilder":
        return self._set(update_rate_hz=hz)

    def batch_interval(self, seconds: float) -> "ScenarioBuilder":
        return self._set(batch_interval_s=seconds)

    def poll_interval(self, seconds: float) -> "ScenarioBuilder":
        return self._set(poll_interval_s=seconds)

    def seed(self, seed: int) -> "ScenarioBuilder":
        return self._set(seed=seed)

    def processing(self, model: ProcessingModel) -> "ScenarioBuilder":
        return self._set(processing_model=model)

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------
    def htb(
        self, enabled: bool = True, floor_bps: Optional[float] = None
    ) -> "ScenarioBuilder":
        changes = {"use_htb": enabled}
        if floor_bps is not None:
            changes["htb_floor_bps"] = floor_bps
        return self._set(**changes)

    def mcs(self, scheme: McsScheme) -> "ScenarioBuilder":
        return self._set(mcs=scheme)

    def loss(self, probability: float) -> "ScenarioBuilder":
        """Baseline DSRC frame-loss probability."""
        return self._set(loss_prob=probability)

    def handover(
        self, fraction: float, at_s: Optional[float] = None
    ) -> "ScenarioBuilder":
        return self._set(handover_fraction=fraction, handover_at_s=at_s)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def serde(self, profile: str) -> "ScenarioBuilder":
        """Wire format: ``"json"`` or ``"struct"``."""
        return self._set(serde_profile=profile)

    def dissemination(self, mode: str) -> "ScenarioBuilder":
        """Warning delivery: ``"poll"`` or ``"notify"``."""
        return self._set(dissemination=mode)

    def columnar(self, enabled: bool = True) -> "ScenarioBuilder":
        return self._set(columnar=enabled)

    def dataplane(self, mode: str) -> "ScenarioBuilder":
        """Telemetry transport: ``"event"`` or ``"batched"``.

        ``"batched"`` defers DSRC contention to the RSUs' pre-poll
        flush, accrues HTB tokens lazily, virtualizes the 10 ms
        warning-poll grid, and (with :meth:`columnar`) fetches
        micro-batches as contiguous wire slabs — bit-identical
        warnings, several times faster on large fleets.
        """
        return self._set(dataplane=mode)

    def observe(self, enabled: bool = True) -> "ScenarioBuilder":
        """Collect metrics + spans during the run (:mod:`repro.obs`).

        The run result gains an ``obs`` registry snapshot; results stay
        bit-identical to an unobserved run (the observer-effect test
        pins this).  Works under sharding too: each worker keeps its
        own registry and the engine merges the snapshots.
        """
        return self._set(observability=enabled)

    def shards(self, count: int) -> "ScenarioBuilder":
        """Partition the corridor across ``count`` worker processes.

        With ``count > 1`` the :meth:`corridor` terminal returns a
        :class:`~repro.parallel.engine.ShardedScenario` (same ``run()``
        surface, warning-for-warning identical results); the other
        topologies reject sharding.
        """
        return self._set(shards=count)

    # ------------------------------------------------------------------
    # Resilience
    # ------------------------------------------------------------------
    def faults(self, profile: FaultProfile) -> "ScenarioBuilder":
        """Inject ``profile`` during the run.

        Also enables the delivery guarantees a faulty run needs —
        producer retry/idempotence and the degradation timeout —
        unless :meth:`retry` / :meth:`upstream_timeout` already set
        them explicitly.
        """
        self._set(faults=profile)
        if not self._retry_explicit and self._spec.producer_retry is None:
            self._spec = replace(self._spec, producer_retry=RetryPolicy())
        if not self._timeout_explicit and self._spec.upstream_timeout_s is None:
            self._spec = replace(
                self._spec, upstream_timeout_s=DEFAULT_UPSTREAM_TIMEOUT_S
            )
        return self

    def retry(self, policy: Optional[RetryPolicy]) -> "ScenarioBuilder":
        """Telemetry produce retry policy (``None`` = seed behaviour:
        refused records are dropped)."""
        self._retry_explicit = True
        return self._set(producer_retry=policy)

    def upstream_timeout(self, seconds: Optional[float]) -> "ScenarioBuilder":
        """CO-DATA silence before degradation (``None`` disables)."""
        self._timeout_explicit = True
        return self._set(upstream_timeout_s=seconds)

    def collab(
        self, config: Optional[CollabConfig] = None, **overrides
    ) -> "ScenarioBuilder":
        """Bandwidth-adaptive CO-DATA: gating, deltas, priority bands.

        Pass a full :class:`~repro.core.collab.CollabConfig`, field
        overrides (``mode="refresh"``, ``gate_threshold=0.5``,
        ``delta_encoding=True``, ``priority=True`` ...), or both (the
        overrides are applied on top of the config).
        """
        base = (
            config
            if config is not None
            else (self._spec.collab or CollabConfig())
        )
        if overrides:
            base = replace(base, **overrides)
        return self._set(collab=base)

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def build(self) -> ScenarioSpec:
        """The finished spec (for code that wires its own topology)."""
        return self._spec

    def _require_single_process(self, topology: str) -> None:
        if self._spec.shards > 1:
            raise ValueError(
                f"the {topology} topology does not support sharding; "
                "only corridor() runs with shards > 1"
            )

    def single_rsu(self, dataset=None):
        from repro.core.workload import SingleRsuWorkload

        self._require_single_process("single_rsu")
        return SingleRsuWorkload(self._spec, dataset=dataset).build()

    def single_rsu_cloud(self, dataset=None, cloud=None):
        from repro.core.workload import SingleRsuCloudWorkload

        self._require_single_process("single_rsu_cloud")
        return SingleRsuCloudWorkload(
            self._spec, dataset=dataset, cloud=cloud
        ).build()

    def corridor(
        self,
        motorways: int = 4,
        dataset=None,
        link_detector_kind: str = "cad3",
    ):
        from repro.core.workload import CorridorWorkload

        return CorridorWorkload(
            self._spec,
            motorways=motorways,
            dataset=dataset,
            link_detector_kind=link_detector_kind,
        ).build()

    def chain(self, hops: int = 3, dataset=None):
        from repro.core.workload import ChainWorkload

        self._require_single_process("chain")
        return ChainWorkload(self._spec, hops=hops, dataset=dataset).build()

    def city(self, **overrides):
        """City-scale trip churn over the Table V fleet.

        The shared knobs — seed, shards, observability, and (when set
        explicitly via :meth:`duration`) the horizon — carry over from
        the builder; everything city-specific (tick size, demand wave,
        churn rates, rebalance cadence) is a
        :class:`~repro.city.model.CitySpec` field passed as a keyword
        override.  Returns a :class:`~repro.city.engine.CityEngine`.
        """
        from repro.city.model import CitySpec
        from repro.core.workload import CityWorkload

        kwargs = {
            "seed": self._spec.seed,
            "shards": self._spec.shards,
            "observability": self._spec.observability,
        }
        if self._duration_explicit:
            kwargs["duration_s"] = self._spec.duration_s
        kwargs.update(overrides)
        return CityWorkload(CitySpec(**kwargs)).build()


# ----------------------------------------------------------------------
# Presets: the paper's evaluation scenarios
# ----------------------------------------------------------------------
def paper_single_rsu() -> ScenarioBuilder:
    """Fig. 6a/6c baseline: one motorway RSU, 8 vehicles, 10 s."""
    return ScenarioBuilder().vehicles(8).duration(10.0)


def paper_corridor() -> ScenarioBuilder:
    """Fig. 6b/6d corridor: 128 vehicles per RSU, 10 s, a quarter of
    each motorway's vehicles handing over to the link RSU mid-run."""
    return (
        ScenarioBuilder()
        .vehicles(128)
        .duration(10.0)
        .handover(0.25)
    )


def paper_city() -> ScenarioBuilder:
    """Table V city: a full demand-wave day of trip churn over the
    Shenzhen-calibrated RSU fleet.  Finish with
    :meth:`~ScenarioBuilder.city` — the city-specific knobs (tick size,
    churn rates, rebalance cadence) take their defaults from
    :class:`~repro.city.model.CitySpec` unless overridden there."""
    return ScenarioBuilder()
