"""Potential-accident estimation (Sec. IV-E).

The paper applies Nilsson's power model: the number of injury-causing
accidents after a road-speed change scales with the square of the speed
ratio (Eq. 2).  Applied per record:

- speeding: ``A2 = A1 * (v_r / v_r(i))^2``
- slowing:  ``A2 = A1 * (v_r / (v_r + (v_r - v_r(i))))^2``

The proximity measure ``delta = 1 - (ratio)^2`` tends to 1 as the
driver deviates further from the road's normal speed, and the expected
number of potential accidents caused by **missed detections** is

    E(Lambda) = sum( v_FN . v_delta )        (Eq. 3)

i.e. each false negative contributes its delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dataset.schema import ABNORMAL, TelemetryRecord


def nilsson_accident_ratio(road_speed_kmh: float, vehicle_speed_kmh: float) -> float:
    """Eq. 2's squared speed ratio for one record.

    Returns ``(v_r / v_eff)^2`` where ``v_eff`` is the vehicle speed
    when speeding, or the mirrored speed ``v_r + (v_r - v)`` when
    slowing.  Equal speeds give 1 (no change in accident risk).
    """
    if road_speed_kmh <= 0:
        raise ValueError(f"road speed must be positive: {road_speed_kmh}")
    if vehicle_speed_kmh < 0:
        raise ValueError(f"vehicle speed cannot be negative: {vehicle_speed_kmh}")
    if vehicle_speed_kmh >= road_speed_kmh:  # speeding (or exactly normal)
        return (road_speed_kmh / max(vehicle_speed_kmh, 1e-9)) ** 2
    mirrored = road_speed_kmh + (road_speed_kmh - vehicle_speed_kmh)
    return (road_speed_kmh / mirrored) ** 2


def speed_deviation_delta(
    road_speed_kmh: float, vehicle_speed_kmh: float
) -> float:
    """The paper's delta: 1 minus the Nilsson ratio, in [0, 1).

    0 when the vehicle tracks the road's normal speed; toward 1 as the
    deviation (either direction) grows.
    """
    return 1.0 - nilsson_accident_ratio(road_speed_kmh, vehicle_speed_kmh)


@dataclass(frozen=True)
class AccidentEstimate:
    """Result of Eq. 3 over an evaluation set."""

    expected_accidents: float
    n_abnormal: int
    n_false_negatives: int
    mean_delta_of_fn: float

    @property
    def fn_fraction(self) -> float:
        if self.n_abnormal == 0:
            return 0.0
        return self.n_false_negatives / self.n_abnormal


def expected_accidents(
    records: Sequence[TelemetryRecord],
    y_true: Sequence[int],
    y_pred: Sequence[int],
) -> AccidentEstimate:
    """Eq. 3: E(Lambda) = sum over false negatives of delta.

    A false negative is a ground-truth abnormal record the model
    called normal — the dangerous, unwarned case.  ``records`` supply
    the speeds for delta; ``y_true``/``y_pred`` the labels.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if not (len(records) == len(y_true) == len(y_pred)):
        raise ValueError(
            f"length mismatch: {len(records)} records, {len(y_true)} true, "
            f"{len(y_pred)} predicted labels"
        )
    total = 0.0
    n_abnormal = 0
    n_fn = 0
    deltas = []
    for record, truth, predicted in zip(records, y_true, y_pred):
        if truth != ABNORMAL:
            continue
        n_abnormal += 1
        if predicted == ABNORMAL:
            continue  # detected: warning issued, accident avoidable
        n_fn += 1
        delta = speed_deviation_delta(
            record.road_mean_speed_kmh, record.speed_kmh
        )
        deltas.append(delta)
        total += delta
    return AccidentEstimate(
        expected_accidents=total,
        n_abnormal=n_abnormal,
        n_false_negatives=n_fn,
        mean_delta_of_fn=float(np.mean(deltas)) if deltas else 0.0,
    )
