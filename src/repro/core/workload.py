"""A single construction surface for every runnable workload.

The corridor-family scenarios and the city-scale churn workload used to
be built through unrelated entry points; the :class:`Workload` protocol
unifies them.  A workload is a frozen description — spec plus topology
parameters — whose ``build()`` returns an engine exposing ``run()``:

- :class:`SingleRsuWorkload` / :class:`SingleRsuCloudWorkload` /
  :class:`ChainWorkload` → a wired
  :class:`~repro.core.system.TestbedScenario`;
- :class:`CorridorWorkload` → the same, or a
  :class:`~repro.parallel.engine.ShardedScenario` when the spec asks
  for more than one shard;
- :class:`CityWorkload` → a :class:`~repro.city.engine.CityEngine`
  over the synthetic Shenzhen fleet.

:class:`~repro.core.scenario.ScenarioBuilder`'s terminals delegate
here, so fluent-built and directly-constructed workloads are the same
code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Protocol, runtime_checkable


@runtime_checkable
class Workload(Protocol):
    """Anything the testbed can run end to end.

    ``build()`` returns an engine with a ``run()`` method; ``name``
    identifies the workload family in reports and CLI output.
    """

    name: str

    def build(self) -> Any: ...


@dataclass(frozen=True)
class SingleRsuWorkload:
    """One motorway RSU with its vehicle cohort (Fig. 6a/6c)."""

    name: ClassVar[str] = "single_rsu"
    spec: Any
    dataset: Any = None

    def build(self):
        from repro.core.system import TestbedScenario

        return TestbedScenario.single_rsu(self.spec, dataset=self.dataset)


@dataclass(frozen=True)
class SingleRsuCloudWorkload:
    """A road RSU collaborating with a cloud-hosted link model."""

    name: ClassVar[str] = "single_rsu_cloud"
    spec: Any
    dataset: Any = None
    cloud: Any = None

    def build(self):
        from repro.core.system import TestbedScenario

        return TestbedScenario.single_rsu_cloud(
            self.spec, dataset=self.dataset, cloud=self.cloud
        )


@dataclass(frozen=True)
class ChainWorkload:
    """A linear chain of collaborating RSUs."""

    name: ClassVar[str] = "chain"
    spec: Any
    hops: int = 3
    dataset: Any = None

    def build(self):
        from repro.core.system import TestbedScenario

        return TestbedScenario.chain(self.spec, hops=self.hops, dataset=self.dataset)


@dataclass(frozen=True)
class CorridorWorkload:
    """The Fig. 1 interchange corridor; shards > 1 goes multi-process."""

    name: ClassVar[str] = "corridor"
    spec: Any
    motorways: int = 4
    dataset: Any = None
    link_detector_kind: str = "cad3"

    def build(self):
        if self.spec.shards > 1:
            from repro.parallel.engine import ShardedScenario

            return ShardedScenario(
                self.spec,
                motorways=self.motorways,
                dataset=self.dataset,
                link_detector_kind=self.link_detector_kind,
            )
        from repro.core.system import TestbedScenario

        return TestbedScenario.corridor(
            self.spec,
            motorways=self.motorways,
            dataset=self.dataset,
            link_detector_kind=self.link_detector_kind,
        )


@dataclass(frozen=True)
class CityWorkload:
    """City-scale trip churn over the Table V RSU fleet.

    ``spec`` is a :class:`~repro.city.model.CitySpec` (typed loosely so
    ``repro.city`` stays a lazy import — it pulls in the parallel
    engine, which imports this package).
    """

    name: ClassVar[str] = "city"
    spec: Any

    def build(self):
        from repro.city.engine import CityEngine

        return CityEngine(self.spec)
