"""Columnar containers for the telemetry hot path.

Every record that crosses an RSU used to pay per-record Python costs:
a dict → :class:`~repro.dataset.schema.TelemetryRecord` dataclass
construction, per-detector list comprehensions rebuilding the feature
matrix, and a ``DetectionEvent`` object per scored record.  At
city-scale load those costs dominate the micro-batch pipeline, so the
batch path works on *columns* instead:

- :class:`TelemetryBlock` — one micro-batch of Table II records as a
  struct-of-numpy-arrays, built **once** per batch and shared by the
  detectors, the per-car bookkeeping, and the event log.
- :class:`DetectionEventLog` — a list-compatible event store that
  accepts whole blocks in O(1) appends and materializes
  :class:`~repro.core.rsu.DetectionEvent` objects only when somebody
  iterates.

Both containers are value-faithful: a block round-trips to the exact
:class:`TelemetryRecord` list it was built from, and the event log
yields events bit-identical to what the per-record path appends — the
golden-equivalence tests pin this.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.dataset.schema import AnomalyKind, TelemetryRecord
from repro.geo.roadnet import RoadType

#: Stable numeric code per road type (enum declaration order).  The
#: same codes feed the centralized model's RoadType feature.
ROAD_TYPES: tuple = tuple(RoadType)
ROAD_TYPE_INDEX: Dict[str, int] = {
    road_type.value: index for index, road_type in enumerate(ROAD_TYPES)
}

#: Stable numeric code per anomaly kind.
ANOMALY_KINDS: tuple = tuple(AnomalyKind)
ANOMALY_KIND_INDEX: Dict[str, int] = {
    kind.value: index for index, kind in enumerate(ANOMALY_KINDS)
}

#: Sentinel for "unlabelled" in the int8 label column.
NO_LABEL = -1


class TelemetryBlock:
    """One micro-batch of telemetry as a struct of numpy arrays.

    Columns mirror Table II plus the streaming envelope timestamps.
    ``road_type_code`` / ``anomaly_kind_code`` index :data:`ROAD_TYPES`
    / :data:`ANOMALY_KINDS`; ``label`` uses :data:`NO_LABEL` (-1) for
    unlabelled records.  ``arrived_at`` may hold NaN for records whose
    envelope carried ``None`` (never the case past the broker).
    """

    __slots__ = (
        "car_id",
        "road_id",
        "accel_ms2",
        "speed_kmh",
        "hour",
        "day",
        "road_type_code",
        "road_mean_speed_kmh",
        "timestamp",
        "anomaly_kind_code",
        "label",
        "generated_at",
        "arrived_at",
    )

    def __init__(
        self,
        car_id: np.ndarray,
        road_id: np.ndarray,
        accel_ms2: np.ndarray,
        speed_kmh: np.ndarray,
        hour: np.ndarray,
        day: np.ndarray,
        road_type_code: np.ndarray,
        road_mean_speed_kmh: np.ndarray,
        timestamp: np.ndarray,
        anomaly_kind_code: np.ndarray,
        label: np.ndarray,
        generated_at: np.ndarray,
        arrived_at: np.ndarray,
    ) -> None:
        self.car_id = car_id
        self.road_id = road_id
        self.accel_ms2 = accel_ms2
        self.speed_kmh = speed_kmh
        self.hour = hour
        self.day = day
        self.road_type_code = road_type_code
        self.road_mean_speed_kmh = road_mean_speed_kmh
        self.timestamp = timestamp
        self.anomaly_kind_code = anomaly_kind_code
        self.label = label
        self.generated_at = generated_at
        self.arrived_at = arrived_at

    def __len__(self) -> int:
        return len(self.car_id)

    def __bool__(self) -> bool:
        return len(self.car_id) > 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "TelemetryBlock":
        return cls.from_payloads([])

    @classmethod
    def from_payloads(cls, payloads: Sequence[Dict[str, Any]]) -> "TelemetryBlock":
        """Build a block from IN-DATA envelopes (one pass).

        Each payload is the wire envelope:
        ``{"data": {Table II fields}, "generated_at": t, "arrived_at": t}``.
        """
        n = len(payloads)
        car_id = np.empty(n, dtype=np.int64)
        road_id = np.empty(n, dtype=np.int64)
        accel = np.empty(n, dtype=np.float64)
        speed = np.empty(n, dtype=np.float64)
        hour = np.empty(n, dtype=np.int64)
        day = np.empty(n, dtype=np.int64)
        road_type_code = np.empty(n, dtype=np.int64)
        road_mean = np.empty(n, dtype=np.float64)
        timestamp = np.empty(n, dtype=np.float64)
        anomaly_code = np.empty(n, dtype=np.int64)
        label = np.empty(n, dtype=np.int8)
        generated_at = np.empty(n, dtype=np.float64)
        arrived_at = np.empty(n, dtype=np.float64)
        rt_index = ROAD_TYPE_INDEX
        ak_index = ANOMALY_KIND_INDEX
        for i, payload in enumerate(payloads):
            data = payload["data"]
            car_id[i] = data["car"]
            road_id[i] = data["rd"]
            accel[i] = data["acc"]
            speed[i] = data["spd"]
            hour[i] = data["hr"]
            day[i] = data["day"]
            road_type_code[i] = rt_index[data["rt"]]
            road_mean[i] = data["vr"]
            timestamp[i] = data["ts"]
            anomaly_code[i] = ak_index[data.get("ak", "none")]
            lbl = data.get("lbl")
            label[i] = NO_LABEL if lbl is None else lbl
            generated_at[i] = payload["generated_at"]
            arrived = payload.get("arrived_at")
            arrived_at[i] = np.nan if arrived is None else arrived
        return cls(
            car_id, road_id, accel, speed, hour, day, road_type_code,
            road_mean, timestamp, anomaly_code, label, generated_at,
            arrived_at,
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[TelemetryRecord],
        generated_at: Optional[np.ndarray] = None,
        arrived_at: Optional[np.ndarray] = None,
    ) -> "TelemetryBlock":
        """Build a block straight from dataclass records (offline use)."""
        n = len(records)
        nan = np.full(n, np.nan)
        rt_index = ROAD_TYPE_INDEX
        ak_index = ANOMALY_KIND_INDEX
        return cls(
            car_id=np.fromiter((r.car_id for r in records), np.int64, n),
            road_id=np.fromiter((r.road_id for r in records), np.int64, n),
            accel_ms2=np.fromiter((r.accel_ms2 for r in records), np.float64, n),
            speed_kmh=np.fromiter((r.speed_kmh for r in records), np.float64, n),
            hour=np.fromiter((r.hour for r in records), np.int64, n),
            day=np.fromiter((r.day for r in records), np.int64, n),
            road_type_code=np.fromiter(
                (rt_index[r.road_type.value] for r in records), np.int64, n
            ),
            road_mean_speed_kmh=np.fromiter(
                (r.road_mean_speed_kmh for r in records), np.float64, n
            ),
            timestamp=np.fromiter((r.timestamp for r in records), np.float64, n),
            anomaly_kind_code=np.fromiter(
                (ak_index[r.anomaly_kind.value] for r in records), np.int64, n
            ),
            label=np.fromiter(
                (NO_LABEL if r.label is None else r.label for r in records),
                np.int8,
                n,
            ),
            generated_at=nan if generated_at is None else generated_at,
            arrived_at=nan if arrived_at is None else arrived_at,
        )

    # ------------------------------------------------------------------
    # Materialization (compatibility escape hatch)
    # ------------------------------------------------------------------
    def records(self) -> List[TelemetryRecord]:
        """Materialize dataclass records (for code without a block path)."""
        road_types = ROAD_TYPES
        kinds = ANOMALY_KINDS
        return [
            TelemetryRecord(
                car_id=int(self.car_id[i]),
                road_id=int(self.road_id[i]),
                accel_ms2=float(self.accel_ms2[i]),
                speed_kmh=float(self.speed_kmh[i]),
                hour=int(self.hour[i]),
                day=int(self.day[i]),
                road_type=road_types[self.road_type_code[i]],
                road_mean_speed_kmh=float(self.road_mean_speed_kmh[i]),
                label=None if self.label[i] == NO_LABEL else int(self.label[i]),
                anomaly_kind=kinds[self.anomaly_kind_code[i]],
                timestamp=float(self.timestamp[i]),
            )
            for i in range(len(self))
        ]

    def labels_optional(self) -> List[Optional[int]]:
        """Per-record labels with ``None`` for unlabelled."""
        return [None if v == NO_LABEL else int(v) for v in self.label.tolist()]

    def __repr__(self) -> str:
        return f"TelemetryBlock(n={len(self)})"


class DetectionEventLog:
    """Columnar, list-compatible store of detection events.

    The hot path appends one whole micro-batch at a time
    (:meth:`append_block`, O(1) per batch); the legacy per-record path
    still works through :meth:`append`.  Iteration, indexing, and
    ``len`` behave like the plain ``List[DetectionEvent]`` this
    replaces; the vectorized accessors (:meth:`tx_s`,
    :meth:`queuing_s`, ...) are what the reports read.
    """

    __slots__ = ("_segments", "_length", "_materialized")

    def __init__(self) -> None:
        # Each segment is either a DetectionEvent or a block tuple
        # (car_ids, generated, arrived, detected_at_scalar, abnormal,
        # labels); order across segments is append order.
        self._segments: List[Any] = []
        self._length = 0
        self._materialized: Optional[List[Any]] = None

    def append(self, event) -> None:
        self._segments.append(event)
        self._length += 1
        self._materialized = None

    def append_block(
        self,
        car_ids: np.ndarray,
        generated_at: np.ndarray,
        arrived_at: np.ndarray,
        detected_at: float,
        abnormal: np.ndarray,
        labels: np.ndarray,
    ) -> None:
        """Record one scored micro-batch.

        ``labels`` uses :data:`NO_LABEL` for unlabelled records;
        ``detected_at`` is the batch completion time shared by every
        record of the block.
        """
        n = len(car_ids)
        if n == 0:
            return
        self._segments.append(
            (car_ids, generated_at, arrived_at, detected_at, abnormal, labels)
        )
        self._length += n
        self._materialized = None

    # ------------------------------------------------------------------
    # List protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __iter__(self) -> Iterator:
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def _materialize(self) -> List[Any]:
        if self._materialized is not None:
            return self._materialized
        from repro.core.rsu import DetectionEvent

        events: List[Any] = []
        for segment in self._segments:
            if not isinstance(segment, tuple):
                events.append(segment)
                continue
            car_ids, generated, arrived, detected_at, abnormal, labels = segment
            events.extend(
                DetectionEvent(
                    car_id=car,
                    generated_at=gen,
                    arrived_at=arr,
                    detected_at=detected_at,
                    abnormal=abn,
                    true_label=None if lbl == NO_LABEL else lbl,
                )
                for car, gen, arr, abn, lbl in zip(
                    car_ids.tolist(),
                    generated.tolist(),
                    arrived.tolist(),
                    abnormal.tolist(),
                    labels.tolist(),
                )
            )
        self._materialized = events
        return events

    # ------------------------------------------------------------------
    # Vectorized accessors
    # ------------------------------------------------------------------
    def _column(self, picker) -> np.ndarray:
        parts: List[np.ndarray] = []
        for segment in self._segments:
            parts.append(picker(segment))
        if not parts:
            return np.empty(0)
        return np.concatenate(parts)

    def car_ids(self) -> np.ndarray:
        return self._column(
            lambda s: s[0] if isinstance(s, tuple) else np.array([s.car_id])
        )

    def generated_at(self) -> np.ndarray:
        return self._column(
            lambda s: s[1] if isinstance(s, tuple) else np.array([s.generated_at])
        )

    def arrived_at(self) -> np.ndarray:
        return self._column(
            lambda s: s[2] if isinstance(s, tuple) else np.array([s.arrived_at])
        )

    def detected_at(self) -> np.ndarray:
        return self._column(
            lambda s: np.full(len(s[0]), s[3])
            if isinstance(s, tuple)
            else np.array([s.detected_at])
        )

    def abnormal(self) -> np.ndarray:
        return self._column(
            lambda s: np.asarray(s[4], dtype=bool)
            if isinstance(s, tuple)
            else np.array([s.abnormal], dtype=bool)
        )

    def true_labels(self) -> np.ndarray:
        """Labels as int8 with :data:`NO_LABEL` for unlabelled."""
        return self._column(
            lambda s: np.asarray(s[5], dtype=np.int8)
            if isinstance(s, tuple)
            else np.array(
                [NO_LABEL if s.true_label is None else s.true_label],
                dtype=np.int8,
            )
        )

    def tx_s(self) -> np.ndarray:
        """Per-event DSRC transfer time (arrived - generated)."""
        return self.arrived_at() - self.generated_at()

    def queuing_s(self) -> np.ndarray:
        """Per-event queuing + processing time (detected - arrived)."""
        return self.detected_at() - self.arrived_at()

    def __repr__(self) -> str:
        return f"DetectionEventLog(n={self._length})"
