"""The RSU node: ingestion, micro-batch detection, dissemination,
collaboration.

One :class:`RsuNode` is the paper's edge unit (Fig. 3): a Kafka broker
with the three topics, a Spark-style 50 ms micro-batch pipeline running
the detector, warnings written to ``OUT-DATA``, and ``CO-DATA``
summaries exchanged with adjacent RSUs over a wired link at vehicle
handover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.centralized import CentralizedDetector
from repro.core.collaborative import CollaborativeDetector
from repro.core.detector import AD3Detector
from repro.core.features import (
    CO_DATA,
    IN_DATA,
    OUT_DATA,
    PredictionSummary,
    WarningMessage,
    payload_to_record,
)
from repro.dataset.schema import ABNORMAL
from repro.microbatch.context import ProcessingModel, StreamingContext
from repro.net.link import WiredLink
from repro.simkernel.simulator import Simulator
from repro.streaming.broker import Broker
from repro.streaming.consumer import Consumer


@dataclass
class RsuConfig:
    """Per-RSU tunables, defaulting to the paper's testbed settings."""

    batch_interval_s: float = 0.050
    topic_partitions: int = 3
    processing_model: ProcessingModel = field(default_factory=ProcessingModel)
    #: Keep at most this many recent NB probabilities per car for the
    #: handover summary.
    history_limit: int = 200
    #: Consecutive abnormal records required before a warning fires.
    #: 1 (the paper's behaviour) warns on every abnormal record; higher
    #: values debounce flicker at the cost of detection delay ("less
    #: disturbance to other drivers with false warnings", Sec. VI-D4).
    warning_threshold: int = 1

    def __post_init__(self) -> None:
        if self.warning_threshold < 1:
            raise ValueError("warning_threshold must be >= 1")


@dataclass
class DetectionEvent:
    """One record's journey through the RSU, for latency accounting
    and online quality measurement."""

    car_id: int
    generated_at: float  # vehicle produced the packet
    arrived_at: float  # packet reached the broker (after DSRC)
    detected_at: float  # micro-batch completion
    abnormal: bool  # the detector's verdict
    #: Offline sigma-cutoff label carried by the replayed record
    #: (None when replaying unlabelled data).
    true_label: Optional[int] = None

    @property
    def queuing_s(self) -> float:
        return self.detected_at - self.arrived_at

    @property
    def tx_s(self) -> float:
        return self.arrived_at - self.generated_at


class RsuNode:
    """A roadside unit: broker + micro-batch detection + collaboration.

    Parameters
    ----------
    sim:
        Simulation kernel.
    name:
        RSU identity (``"rsu-motorway-1"``).
    detector:
        A fitted detector: :class:`AD3Detector`,
        :class:`CollaborativeDetector`, or :class:`CentralizedDetector`.
    config:
        Tunables.
    jitter_rng:
        Seeded RNG for processing jitter (``None`` = deterministic).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        detector,
        config: Optional[RsuConfig] = None,
        jitter_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.detector = detector
        self.config = config or RsuConfig()
        self.broker = Broker(name, clock=lambda: sim.now)
        for topic in (IN_DATA, OUT_DATA, CO_DATA):
            self.broker.create_topic(topic, self.config.topic_partitions)
        self._in_consumer = Consumer(self.broker, group=f"{name}-pipeline")
        self._in_consumer.subscribe([IN_DATA])
        self._co_consumer = Consumer(self.broker, group=f"{name}-collab")
        self._co_consumer.subscribe([CO_DATA])
        jitter_source = None
        if jitter_rng is not None:
            jitter_source = lambda: float(jitter_rng.uniform(-1.0, 1.0))
        self.context = StreamingContext(
            sim,
            self._in_consumer,
            interval_s=self.config.batch_interval_s,
            processing_model=self.config.processing_model,
            jitter_source=jitter_source,
        )
        self.context.stream.foreach_batch(self._on_batch)
        # Collaboration state
        self.summaries: Dict[int, PredictionSummary] = {}
        self._history: Dict[int, List[float]] = {}
        self._last_class: Dict[int, int] = {}
        self._abnormal_streak: Dict[int, int] = {}
        self._links: Dict[str, WiredLink] = {}
        self._neighbors: Dict[str, "RsuNode"] = {}
        # Measurements
        self.events: List[DetectionEvent] = []
        self.warnings_issued = 0
        self.summaries_sent = 0
        self.summaries_received = 0
        self.failed = False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect(self, other: "RsuNode", link: WiredLink) -> None:
        """Attach a wired link toward ``other`` for CO-DATA traffic."""
        if other.name in self._neighbors:
            raise ValueError(f"{self.name!r} already connected to {other.name!r}")
        self._neighbors[other.name] = other
        self._links[other.name] = link

    @property
    def neighbor_names(self) -> List[str]:
        return sorted(self._neighbors)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, until: Optional[float] = None) -> None:
        self.context.start(until=until)

    def stop(self) -> None:
        self.context.stop()

    def fail(self) -> None:
        """Take the node down (edge-node outage).

        The pipeline stops and the node refuses further collaboration;
        already-queued telemetry is lost with the node.  Vehicles must
        re-home to a neighbouring RSU (see
        :meth:`repro.core.system.TestbedScenario.schedule_failover`).
        """
        self.failed = True
        self.context.stop()

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _drain_co_data(self) -> None:
        """Fold newly arrived CO-DATA summaries into detection state."""
        for record in self._co_consumer.poll():
            summary = PredictionSummary.from_payload(record.value)
            existing = self.summaries.get(summary.car_id)
            if existing is not None:
                merged = PredictionSummary.merge([existing, summary])
                self.summaries[summary.car_id] = merged
            else:
                self.summaries[summary.car_id] = summary
            self.summaries_received += 1

    def _on_batch(self, batch, completion_time: float) -> None:
        """Detect anomalies in one micro-batch and disseminate warnings."""
        # Summaries must fold in even on idle ticks, so a handover
        # arriving before the target sees any telemetry is not lost.
        self._drain_co_data()
        if batch.is_empty():
            return
        payloads = batch.collect()
        records = [payload_to_record(p["data"]) for p in payloads]
        if isinstance(self.detector, CollaborativeDetector):
            classes, probs = self.detector.detect(records, self.summaries)
        else:
            classes, probs = self.detector.detect(records)
        # Online detectors keep learning from what they just scored
        # (prequential: predict first, then observe).
        if hasattr(self.detector, "observe"):
            self.detector.observe(records)
        for payload, record, cls, prob in zip(payloads, records, classes, probs):
            history = self._history.setdefault(record.car_id, [])
            history.append(float(prob))
            if len(history) > self.config.history_limit:
                del history[: -self.config.history_limit]
            self._last_class[record.car_id] = int(cls)
            abnormal = int(cls) == ABNORMAL
            self.events.append(
                DetectionEvent(
                    car_id=record.car_id,
                    generated_at=payload["generated_at"],
                    arrived_at=payload["arrived_at"],
                    detected_at=completion_time,
                    abnormal=abnormal,
                    true_label=record.label,
                )
            )
            if abnormal:
                streak = self._abnormal_streak.get(record.car_id, 0) + 1
                self._abnormal_streak[record.car_id] = streak
            else:
                self._abnormal_streak[record.car_id] = 0
            if abnormal and (
                self._abnormal_streak[record.car_id]
                >= self.config.warning_threshold
            ):
                warning = WarningMessage(
                    car_id=record.car_id,
                    road_id=record.road_id,
                    detected_at=completion_time,
                    speed_kmh=record.speed_kmh,
                )
                out = dict(warning.to_payload())
                out["generated_at"] = payload["generated_at"]
                self.broker.produce(
                    OUT_DATA,
                    self._in_consumer.serde.serialize(out),
                    key=str(record.car_id).encode(),
                    timestamp=completion_time,
                )
                self.warnings_issued += 1

    # ------------------------------------------------------------------
    # Collaboration (handover)
    # ------------------------------------------------------------------
    def build_summary(self, car_id: int) -> Optional[PredictionSummary]:
        """Summarise the car's prediction history for handover.

        If an upstream RSU already forwarded a summary for this car,
        it is merged with the local history — the paper's "the process
        which is carried on": driver-awareness accumulates along the
        whole trip, not just across one hop.
        """
        history = self._history.get(car_id)
        inherited = self.summaries.get(car_id)
        if not history:
            return inherited
        local = PredictionSummary(
            car_id=car_id,
            mean_normal_prob=float(np.mean(history)),
            n_predictions=len(history),
            last_class=self._last_class.get(car_id, 1),
            from_road_id=0,
            timestamp=self.sim.now,
        )
        if inherited is None:
            return local
        return PredictionSummary.merge([inherited, local])

    def handover(self, car_id: int, target_name: str) -> bool:
        """Forward the car's summary to an adjacent RSU's CO-DATA.

        Returns ``True`` if a summary existed and was sent.  The
        summary travels the wired link; on delivery it is produced into
        the target broker's ``CO-DATA`` topic (the paper's Fig. 4 flow).
        """
        if self.failed:
            return False  # a dead node cannot forward its history
        if target_name not in self._neighbors:
            raise KeyError(
                f"{self.name!r} has no link to {target_name!r}; "
                f"connected: {self.neighbor_names}"
            )
        summary = self.build_summary(car_id)
        if summary is None:
            return False
        target = self._neighbors[target_name]
        link = self._links[target_name]
        payload = self._in_consumer.serde.serialize(summary.to_payload())

        def deliver(at_time: float, data=payload) -> None:
            target.broker.produce(CO_DATA, data, timestamp=at_time)

        link.send(len(payload), deliver)
        self.summaries_sent += 1
        # The car's history now belongs to the next road.
        self._history.pop(car_id, None)
        self._last_class.pop(car_id, None)
        self.summaries.pop(car_id, None)
        return True

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def detection_report(self):
        """Online detection quality over this RSU's labelled events.

        Returns a
        :class:`~repro.ml.metrics.BinaryClassificationReport` computed
        from the events whose replayed record carried a label, or
        ``None`` if there are none — the *in-situ* counterpart of the
        paper's offline Fig. 7 evaluation.
        """
        from repro.dataset.schema import ABNORMAL, NORMAL
        from repro.ml.metrics import evaluate_binary

        labelled = [e for e in self.events if e.true_label is not None]
        if not labelled:
            return None
        y_true = [e.true_label for e in labelled]
        y_pred = [ABNORMAL if e.abnormal else NORMAL for e in labelled]
        return evaluate_binary(y_true, y_pred)

    def bandwidth_in_bps(self, elapsed_s: float) -> float:
        """Mean ingest bandwidth over the run (Fig. 6c/6d)."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.broker.bytes_in * 8.0 / elapsed_s

    def mean_processing_ms(self) -> float:
        return self.context.mean_processing_ms()

    def __repr__(self) -> str:
        return (
            f"RsuNode(name={self.name!r}, events={len(self.events)}, "
            f"warnings={self.warnings_issued})"
        )
