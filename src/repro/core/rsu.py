"""The RSU node: ingestion, micro-batch detection, dissemination,
collaboration.

One :class:`RsuNode` is the paper's edge unit (Fig. 3): a Kafka broker
with the three topics, a Spark-style 50 ms micro-batch pipeline running
the detector, warnings written to ``OUT-DATA``, and ``CO-DATA``
summaries exchanged with adjacent RSUs over a wired link at vehicle
handover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.block import NO_LABEL, DetectionEventLog, TelemetryBlock
from repro.core.collab import (
    BAND_REFRESH,
    BAND_URGENT,
    CollabConfig,
    CollabPlane,
    SendPlan,
    SummaryRxCache,
)
from repro.core.features import (
    CO_DATA,
    IN_DATA,
    OUT_DATA,
    PredictionSummary,
    WarningMessage,
    payload_to_record,
)
from repro.core.wire import (
    SummaryFrame,
    SummaryFrameSerde,
    decode_telemetry_block,
    decode_telemetry_segments,
)
from repro.dataset.schema import ABNORMAL
from repro.microbatch.batch import BlockBatch
from repro.microbatch.context import ProcessingModel, StreamingContext
from repro.ml.base import Detector, as_detector
from repro.net.link import WiredLink
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.simkernel.simulator import Simulator
from repro.streaming.broker import Broker, BrokerUnavailable
from repro.streaming.consumer import Consumer
from repro.streaming.serde import JsonSerde, Serde


@dataclass
class RsuConfig:
    """Per-RSU tunables, defaulting to the paper's testbed settings."""

    batch_interval_s: float = 0.050
    topic_partitions: int = 3
    processing_model: ProcessingModel = field(default_factory=ProcessingModel)
    #: Keep at most this many recent NB probabilities per car for the
    #: handover summary.
    history_limit: int = 200
    #: Consecutive abnormal records required before a warning fires.
    #: 1 (the paper's behaviour) warns on every abnormal record; higher
    #: values debounce flicker at the cost of detection delay ("less
    #: disturbance to other drivers with false warnings", Sec. VI-D4).
    warning_threshold: int = 1
    #: Run the columnar micro-batch pipeline (poll raw bytes, decode
    #: the whole batch into a :class:`TelemetryBlock`, score and
    #: bookkeep on arrays).  ``False`` keeps the original per-record
    #: loop; both produce bit-identical events and warnings — the
    #: golden-equivalence tests pin this.
    columnar: bool = True
    #: Poll the pipeline through :meth:`Consumer.poll_block`: micro-
    #: batches arrive as contiguous wire slabs (zero-copy off the
    #: broker's columnar partition slabs) instead of per-record
    #: objects.  Requires ``columnar``; part of the batched dataplane.
    block: bool = False
    #: Per-topic serde overrides (e.g. :func:`repro.core.wire.topic_serdes`
    #: for the binary profile); topics not listed use compact JSON.
    serdes: Optional[Dict[str, Serde]] = None
    #: Seconds of CO-DATA silence (after at least one summary arrived)
    #: before a collaborating RSU degrades to road-only detection.
    #: ``None`` (default) disables degradation — the seed behaviour.
    upstream_timeout_s: Optional[float] = None
    #: Bandwidth-adaptive CO-DATA plane (utility gating, delta
    #: encoding, priority bands — :class:`~repro.core.collab.CollabConfig`).
    #: ``None``, or a default (disabled) config, keeps the seed
    #: handover-only collaboration bit-identical.
    collab: Optional[CollabConfig] = None

    def __post_init__(self) -> None:
        if self.warning_threshold < 1:
            raise ValueError("warning_threshold must be >= 1")
        if self.block and not self.columnar:
            raise ValueError("block polling requires the columnar pipeline")
        if self.upstream_timeout_s is not None and self.upstream_timeout_s <= 0:
            raise ValueError("upstream_timeout_s must be positive")


@dataclass
class DetectionEvent:
    """One record's journey through the RSU, for latency accounting
    and online quality measurement."""

    car_id: int
    generated_at: float  # vehicle produced the packet
    arrived_at: float  # packet reached the broker (after DSRC)
    detected_at: float  # micro-batch completion
    abnormal: bool  # the detector's verdict
    #: Offline sigma-cutoff label carried by the replayed record
    #: (None when replaying unlabelled data).
    true_label: Optional[int] = None

    @property
    def queuing_s(self) -> float:
        return self.detected_at - self.arrived_at

    @property
    def tx_s(self) -> float:
        return self.arrived_at - self.generated_at


class RsuNode:
    """A roadside unit: broker + micro-batch detection + collaboration.

    Parameters
    ----------
    sim:
        Simulation kernel.
    name:
        RSU identity (``"rsu-motorway-1"``).
    detector:
        A fitted detector: :class:`AD3Detector`,
        :class:`CollaborativeDetector`, or :class:`CentralizedDetector`.
    config:
        Tunables.
    jitter_rng:
        Seeded RNG for processing jitter (``None`` = deterministic).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        detector,
        config: Optional[RsuConfig] = None,
        jitter_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.detector = as_detector(detector)
        #: Road-only fallback for degraded operation: the collaborative
        #: detector's local NB (absent on detectors that do not fuse
        #: upstream context, which never degrade).
        self._fallback_detector: Optional[Detector] = (
            as_detector(self.detector.nb)
            if getattr(self.detector, "nb", None) is not None
            else None
        )
        self.config = config or RsuConfig()
        self.broker = Broker(name, clock=lambda: sim.now)
        for topic in (IN_DATA, OUT_DATA, CO_DATA):
            self.broker.create_topic(topic, self.config.topic_partitions)
        self._default_serde = JsonSerde()
        self._serdes: Dict[str, Serde] = dict(self.config.serdes or {})
        # The collaboration plane wraps the CO-DATA serde before the
        # collab consumer is built, so framed payloads (deltas / full
        # resyncs) deserialize to SummaryFrame markers.
        collab_config = self.config.collab
        self.collab: Optional[CollabPlane] = None
        self._collab_rx: Optional[SummaryRxCache] = None
        if collab_config is not None and collab_config.enabled:
            inner = self._serde_for(CO_DATA)
            self._serdes[CO_DATA] = SummaryFrameSerde(inner)
            self.collab = CollabPlane(
                collab_config,
                inner,
                history_weight=getattr(
                    self.detector, "history_weight", 0.5
                ),
                upstream_timeout_s=self.config.upstream_timeout_s,
            )
            self._collab_rx = SummaryRxCache(inner)
        self._in_consumer = self._make_pipeline_consumer()
        self._co_consumer = self._make_collab_consumer()
        jitter_source = None
        if jitter_rng is not None:
            jitter_source = lambda: float(jitter_rng.uniform(-1.0, 1.0))
        self.context = StreamingContext(
            sim,
            self._in_consumer,
            interval_s=self.config.batch_interval_s,
            processing_model=self.config.processing_model,
            jitter_source=jitter_source,
            raw=self.config.columnar,
            block=self.config.block,
            name=name,
        )
        self.context.stream.foreach_batch(self._on_batch)
        # Collaboration state
        self.summaries: Dict[int, PredictionSummary] = {}
        self._history: Dict[int, List[float]] = {}
        self._last_class: Dict[int, int] = {}
        self._abnormal_streak: Dict[int, int] = {}
        self._links: Dict[str, WiredLink] = {}
        self._neighbors: Dict[str, "RsuNode"] = {}
        # Resilience state
        self.crashed_at: Optional[float] = None
        self.restarted_at: Optional[float] = None
        self.degraded = False
        #: (time, "degraded" | "recovered") transitions, in order.
        self.degradation_events: List[Tuple[float, str]] = []
        self.degraded_batches = 0
        self._last_co_arrival: Optional[float] = None
        # Measurements
        self.events: DetectionEventLog = DetectionEventLog()
        self.warnings_issued = 0
        #: Every warning emitted, in emission order:
        #: ``(detected_at, car_id, road_id, speed_kmh, generated_at)``.
        #: The sharded engine's golden-equivalence checks compare these
        #: tuples exactly against the single-process run.
        self.warning_records: List[Tuple[float, int, int, float, float]] = []
        #: Warnings appended but unacknowledged (broker ack-loss
        #: window); they still reach vehicles.
        self.warnings_ack_lost = 0
        self.summaries_sent = 0
        self.summaries_received = 0
        self.summaries_lost = 0
        #: Delta frames dropped for a missing/mismatched receiver
        #: baseline (healed by the sender's next full resync).
        self.summaries_stale_dropped = 0
        # CO-DATA priority scheduling (attached by the scenario when
        # the collab plane's priority band is on).
        self.co_shaper = None
        self._co_leaves: Dict[str, str] = {}
        self._co_refresh = None
        #: Records polled into a micro-batch whose completion found the
        #: broker down — consumed (and committed) but never detected.
        self.records_dead_on_crash = 0
        self.failed = False

    def _make_pipeline_consumer(self) -> Consumer:
        consumer = Consumer(
            self.broker,
            group=f"{self.name}-pipeline",
            serde=self._serde_for(IN_DATA),
        )
        consumer.subscribe([IN_DATA])
        return consumer

    def _make_collab_consumer(self) -> Consumer:
        consumer = Consumer(
            self.broker,
            group=f"{self.name}-collab",
            serde=self._serde_for(CO_DATA),
        )
        consumer.subscribe([CO_DATA])
        return consumer

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect(self, other: "RsuNode", link: WiredLink) -> None:
        """Attach a wired link toward ``other`` for CO-DATA traffic."""
        if other.name in self._neighbors:
            raise ValueError(f"{self.name!r} already connected to {other.name!r}")
        self._neighbors[other.name] = other
        self._links[other.name] = link

    @property
    def neighbor_names(self) -> List[str]:
        return sorted(self._neighbors)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach_co_shaper(
        self, shaper, urgent_leaf: str, refresh_leaf: str
    ) -> None:
        """Schedule CO-DATA sends under ``shaper``'s two priority
        bands (urgent = decision-changing, refresh = staleness-only)."""
        self.co_shaper = shaper
        self._co_leaves = {BAND_URGENT: urgent_leaf, BAND_REFRESH: refresh_leaf}

    def start(self, until: Optional[float] = None) -> None:
        self.context.start(until=until)
        self._start_co_refresh(until)

    def _start_co_refresh(self, until: Optional[float]) -> None:
        if (
            self.collab is not None
            and self.config.collab.mode == "refresh"
            and self._co_refresh is None
        ):
            self._co_refresh = self.sim.every(
                self.config.collab.refresh_interval_s,
                self._collab_refresh_tick,
                until=until,
                label=f"{self.name}-co-refresh",
            )

    def _cancel_co_refresh(self) -> None:
        if self._co_refresh is not None:
            self._co_refresh.cancel()
            self._co_refresh = None

    def stop(self) -> None:
        self.context.stop()
        self._cancel_co_refresh()

    def fail(self) -> None:
        """Take the node down permanently (edge-node outage).

        The pipeline stops, the broker refuses clients, and the node
        refuses further collaboration; already-queued telemetry is lost
        with the node.  Vehicles must re-home to a neighbouring RSU
        (see :meth:`repro.core.system.TestbedScenario.schedule_failover`).
        """
        self.failed = True
        self.crashed_at = self.sim.now
        self.context.stop()
        self._cancel_co_refresh()
        self.broker.shutdown()

    def crash(self) -> None:
        """Broker-process crash: like :meth:`fail`, but recoverable.

        The broker's durable state (logs, committed offsets) survives;
        :meth:`restart` brings the node back and the pipeline resumes
        from its last committed micro-batch.
        """
        self.crashed_at = self.sim.now
        self.context.stop()
        self._cancel_co_refresh()
        self.broker.shutdown()

    def restart(self, until: Optional[float] = None) -> None:
        """Recover from :meth:`crash`: restart broker and pipeline.

        Both consumers are recreated under their original groups, so
        their positions restore from the broker's *committed* offsets —
        records that arrived after the last commit are reprocessed
        (at-least-once), never skipped.
        """
        if self.failed:
            raise RuntimeError(f"RSU {self.name!r} failed permanently")
        self.broker.restart()
        self._in_consumer = self._make_pipeline_consumer()
        self._co_consumer = self._make_collab_consumer()
        self.context.consumer = self._in_consumer
        self.crashed_at = None
        self.restarted_at = self.sim.now
        self.context.start(until=until)
        self._start_co_refresh(until)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _serde_for(self, topic: str) -> Serde:
        """The serde wired to ``topic`` (compact JSON by default)."""
        return self._serdes.get(topic, self._default_serde)

    def _drain_co_data(self) -> None:
        """Fold newly arrived CO-DATA summaries into detection state.

        Arriving summaries also end a degradation episode: the history
        re-merges (:meth:`PredictionSummary.merge`) and the next batch
        goes back through the collaborative detector.
        """
        arrived = 0
        for record in self._co_consumer.poll():
            value = record.value
            if self._collab_rx is not None:
                if isinstance(value, SummaryFrame):
                    summary = self._collab_rx.resolve(value)
                    if summary is None:
                        # Delta with no (or a mismatched-epoch)
                        # baseline: drop it and wait for the sender's
                        # full resync.  The conservation audit counts
                        # these explicitly.
                        self.summaries_stale_dropped += 1
                        continue
                else:
                    summary = PredictionSummary.from_payload(value)
                # A refresh stream re-announces the same accumulating
                # history, so the latest frame supersedes the held
                # summary — merging would double-count the shared
                # prediction prefix.
                self.summaries[summary.car_id] = summary
                self.summaries_received += 1
                arrived += 1
                continue
            summary = PredictionSummary.from_payload(value)
            existing = self.summaries.get(summary.car_id)
            if existing is not None:
                merged = PredictionSummary.merge([existing, summary])
                self.summaries[summary.car_id] = merged
            else:
                self.summaries[summary.car_id] = summary
            self.summaries_received += 1
            arrived += 1
        if arrived:
            self._last_co_arrival = self.sim.now
            if self.degraded:
                self.degraded = False
                self.degradation_events.append((self.sim.now, "recovered"))
                registry = obs_metrics.active()
                if registry is not None:
                    registry.counter(
                        "rsu.degradation_transitions",
                        rsu=self.name,
                        kind="recovered",
                    ).inc()

    def _check_upstream_silence(self) -> None:
        """Degrade to road-only detection when CO-DATA goes silent.

        Armed only after the first summary arrives: an RSU that never
        had an upstream has nothing to lose.  Requires a configured
        ``upstream_timeout_s`` and a detector with a road-only
        fallback (``.nb``).
        """
        timeout = self.config.upstream_timeout_s
        if (
            timeout is None
            or self.degraded
            or self._fallback_detector is None
            or self._last_co_arrival is None
        ):
            return
        if self.sim.now - self._last_co_arrival > timeout:
            self.degraded = True
            self.degradation_events.append((self.sim.now, "degraded"))
            registry = obs_metrics.active()
            if registry is not None:
                registry.counter(
                    "rsu.degradation_transitions",
                    rsu=self.name,
                    kind="degraded",
                ).inc()

    def _active_detector(self) -> Detector:
        """The detector for this batch: road-only NB while degraded."""
        if self.degraded and self._fallback_detector is not None:
            return self._fallback_detector
        return self.detector

    def _on_batch(self, batch, completion_time: float) -> None:
        """Detect anomalies in one micro-batch and disseminate warnings."""
        if not self.broker.available:
            # The node went down while this batch was in flight; its
            # results die with the process.  Their offsets were already
            # committed at poll time, so a restart never replays them —
            # the detection-conservation invariant counts them here.
            self.records_dead_on_crash += len(batch)
            return
        # Summaries must fold in even on idle ticks, so a handover
        # arriving before the target sees any telemetry is not lost.
        self._drain_co_data()
        self._check_upstream_silence()
        registry = obs_metrics.active()
        if registry is not None and self._last_co_arrival is not None:
            registry.gauge(
                "rsu.co_staleness_s", agg="max", rsu=self.name
            ).set(self.sim.now - self._last_co_arrival)
        if batch.is_empty():
            return
        with span("rsu.batch", rsu=self.name):
            if self.config.columnar:
                self._on_batch_block(batch, completion_time)
            else:
                self._on_batch_records(batch, completion_time)

    def _on_batch_records(self, batch, completion_time: float) -> None:
        """The original per-record loop (``columnar=False``)."""
        payloads = batch.collect()
        records = [payload_to_record(p["data"]) for p in payloads]
        detector = self._active_detector()
        if self.degraded:
            self.degraded_batches += 1
        with span("rsu.detect", rsu=self.name):
            classes, probs = detector.detect(records, self.summaries)
            # Online detectors keep learning from what they just scored
            # (prequential: predict first, then observe); the protocol
            # makes observe a no-op everywhere else.
            detector.observe(records)
        registry = obs_metrics.active()
        if registry is not None:
            arrivals = [p["arrived_at"] for p in payloads]
            self._observe_batch(
                registry,
                len(records),
                sum(1 for cls in classes if int(cls) == ABNORMAL),
                completion_time - sum(arrivals) / len(arrivals),
            )
        for payload, record, cls, prob in zip(payloads, records, classes, probs):
            history = self._history.setdefault(record.car_id, [])
            history.append(float(prob))
            if len(history) > self.config.history_limit:
                del history[: -self.config.history_limit]
            self._last_class[record.car_id] = int(cls)
            abnormal = int(cls) == ABNORMAL
            self.events.append(
                DetectionEvent(
                    car_id=record.car_id,
                    generated_at=payload["generated_at"],
                    arrived_at=payload["arrived_at"],
                    detected_at=completion_time,
                    abnormal=abnormal,
                    true_label=record.label,
                )
            )
            if abnormal:
                streak = self._abnormal_streak.get(record.car_id, 0) + 1
                self._abnormal_streak[record.car_id] = streak
            else:
                self._abnormal_streak[record.car_id] = 0
            if abnormal and (
                self._abnormal_streak[record.car_id]
                >= self.config.warning_threshold
            ):
                self._emit_warning(
                    car_id=record.car_id,
                    road_id=record.road_id,
                    speed_kmh=record.speed_kmh,
                    generated_at=payload["generated_at"],
                    detected_at=completion_time,
                )

    def _on_batch_block(self, batch, completion_time: float) -> None:
        """The columnar hot path: the batch carries raw wire bytes,
        decoded into one :class:`TelemetryBlock` shared by detection,
        bookkeeping, and the event log.  Block-mode batches carry
        contiguous slab segments instead of per-record byte strings and
        decode zero-copy straight off the broker log."""
        if isinstance(batch, BlockBatch):
            block = decode_telemetry_segments(
                batch.segments, serde=self._serde_for(IN_DATA)
            )
        else:
            block = decode_telemetry_block(
                batch.collect(), serde=self._serde_for(IN_DATA)
            )
        detector = self._active_detector()
        if self.degraded:
            self.degraded_batches += 1
        with span("rsu.detect", rsu=self.name):
            classes, probs = detector.detect_block(block, self.summaries)
            detector.observe_block(block)
        abnormal = np.asarray(classes) == ABNORMAL
        registry = obs_metrics.active()
        if registry is not None:
            self._observe_batch(
                registry,
                len(block),
                int(abnormal.sum()),
                completion_time - float(np.mean(block.arrived_at)),
            )
        self.events.append_block(
            block.car_id,
            block.generated_at,
            block.arrived_at,
            completion_time,
            abnormal,
            block.label,
        )
        self._bookkeep_block(block, classes, probs, abnormal, completion_time)

    def _bookkeep_block(
        self,
        block: TelemetryBlock,
        classes: np.ndarray,
        probs: np.ndarray,
        abnormal: np.ndarray,
        completion_time: float,
    ) -> None:
        """Per-car history / streak / warning state over arrays.

        Grouping uses a stable argsort, so within-car record order —
        and therefore the streak recurrence and warning firing order —
        matches the per-record loop exactly.
        """
        car_ids = block.car_id
        if len(car_ids) <= 32:
            # Micro-batches (a handful of cars, one or two records
            # each) spend more on argsort/split/group setup than the
            # work itself: run the original per-record recurrence.
            # Same history/streak/warning trajectory — the vectorized
            # path below is the batch form of exactly this loop.
            self._bookkeep_rows(block, classes, probs, abnormal, completion_time)
            return
        order = np.argsort(car_ids, kind="stable")
        sorted_cars = car_ids[order]
        starts = np.nonzero(np.diff(sorted_cars))[0] + 1
        groups = np.split(order, starts)
        limit = self.config.history_limit
        threshold = self.config.warning_threshold
        warn_positions: List[int] = []
        for group in groups:
            car = int(car_ids[group[0]])
            history = self._history.setdefault(car, [])
            history.extend(probs[group].tolist())
            if len(history) > limit:
                del history[:-limit]
            self._last_class[car] = int(classes[group[-1]])
            flags = abnormal[group]
            if not flags.any():
                self._abnormal_streak[car] = 0
                continue
            # Streak recurrence, vectorized: distance to the previous
            # normal record, plus the carried-in streak before the
            # first reset.
            carry = self._abnormal_streak.get(car, 0)
            n = len(group)
            idx = np.arange(n)
            last_reset = np.maximum.accumulate(np.where(~flags, idx, -1))
            streaks = np.where(flags, idx - last_reset, 0)
            if carry:
                streaks = np.where(
                    flags & (last_reset == -1), streaks + carry, streaks
                )
            self._abnormal_streak[car] = int(streaks[-1])
            warn_positions.extend(
                group[np.nonzero(flags & (streaks >= threshold))[0]].tolist()
            )
        if not warn_positions:
            return
        warn_positions.sort()  # original record order across cars
        for position in warn_positions:
            self._emit_warning(
                car_id=int(car_ids[position]),
                road_id=int(block.road_id[position]),
                speed_kmh=float(block.speed_kmh[position]),
                generated_at=float(block.generated_at[position]),
                detected_at=completion_time,
            )

    def _bookkeep_rows(
        self,
        block: TelemetryBlock,
        classes: np.ndarray,
        probs: np.ndarray,
        abnormal: np.ndarray,
        completion_time: float,
    ) -> None:
        """Small-batch form of :meth:`_bookkeep_block`: plain loop in
        record order (which is also per-car order), no numpy setup."""
        cars = block.car_id.tolist()
        probs_list = probs.tolist()
        classes_list = np.asarray(classes).tolist()
        flags = abnormal.tolist()
        history_map = self._history
        streaks = self._abnormal_streak
        limit = self.config.history_limit
        threshold = self.config.warning_threshold
        for position, car in enumerate(cars):
            history = history_map.setdefault(car, [])
            history.append(probs_list[position])
            if len(history) > limit:
                del history[:-limit]
            self._last_class[car] = classes_list[position]
            if flags[position]:
                streak = streaks.get(car, 0) + 1
                streaks[car] = streak
                if streak >= threshold:
                    self._emit_warning(
                        car_id=car,
                        road_id=int(block.road_id[position]),
                        speed_kmh=float(block.speed_kmh[position]),
                        generated_at=float(block.generated_at[position]),
                        detected_at=completion_time,
                    )
            else:
                streaks[car] = 0

    def _observe_batch(
        self, registry, n_records: int, n_abnormal: int, latency_s: float
    ) -> None:
        """Batch-granularity metrics (never per record: the columnar
        hot path's per-record budget rules that out)."""
        registry.counter("rsu.records_detected", rsu=self.name).inc(n_records)
        registry.counter("rsu.records_abnormal", rsu=self.name).inc(n_abnormal)
        registry.histogram(
            "rsu.batch_latency_ms",
            obs_metrics.LATENCY_MS_EDGES,
            rsu=self.name,
        ).observe(latency_s * 1e3)

    def _emit_warning(
        self,
        car_id: int,
        road_id: int,
        speed_kmh: float,
        generated_at: float,
        detected_at: float,
    ) -> None:
        """Produce one warning into OUT-DATA with the topic's serde."""
        warning = WarningMessage(
            car_id=car_id,
            road_id=road_id,
            detected_at=detected_at,
            speed_kmh=speed_kmh,
        )
        out = dict(warning.to_payload())
        out["generated_at"] = generated_at
        try:
            self.broker.produce(
                OUT_DATA,
                self._serde_for(OUT_DATA).serialize(out),
                key=str(car_id).encode(),
                timestamp=detected_at,
            )
        except BrokerUnavailable:
            # Only reachable in an ack-loss window (a down broker has
            # no running pipeline): the warning *was* appended, just
            # unacknowledged — vehicles still receive it.  The metric
            # counters for both branches are folded from these plain
            # attributes at finalize — never a registry lookup per
            # warning on the hot path.
            self.warnings_ack_lost += 1
            return
        self.warnings_issued += 1
        self.warning_records.append(
            (detected_at, car_id, road_id, speed_kmh, generated_at)
        )

    def warning_log(self) -> List[Tuple[float, int, int, float, float]]:
        """The acknowledged warnings, in emission order."""
        return list(self.warning_records)

    # ------------------------------------------------------------------
    # Collaboration (handover)
    # ------------------------------------------------------------------
    def build_summary(self, car_id: int) -> Optional[PredictionSummary]:
        """Summarise the car's prediction history for handover.

        If an upstream RSU already forwarded a summary for this car,
        it is merged with the local history — the paper's "the process
        which is carried on": driver-awareness accumulates along the
        whole trip, not just across one hop.
        """
        history = self._history.get(car_id)
        inherited = self.summaries.get(car_id)
        if not history:
            return inherited
        local = PredictionSummary(
            car_id=car_id,
            mean_normal_prob=float(np.mean(history)),
            n_predictions=len(history),
            last_class=self._last_class.get(car_id, 1),
            from_road_id=0,
            timestamp=self.sim.now,
        )
        if inherited is None:
            return local
        return PredictionSummary.merge([inherited, local])

    def _collab_refresh_tick(self) -> None:
        """Re-announce per-car driver summaries downstream
        (``mode="refresh"``), pruned by the plane's utility gate and
        charged to the HTB priority bands when attached.

        Deterministic order: ascending car id, then sorted peer name —
        the same total order the sharded engine's barrier reproduces.
        """
        if self.failed or not self.broker.available or not self._neighbors:
            return
        now = self.sim.now
        plans: List[SendPlan] = []
        peers = self.neighbor_names
        for car_id in sorted(self._history):
            summary = self.build_summary(car_id)
            if summary is None:
                continue
            for peer in peers:
                plan = self.collab.prepare(peer, summary, now)
                if plan is not None:
                    plans.append(plan)
        if not plans:
            return
        if self.co_shaper is not None:
            requests = [
                (self._co_leaves[plan.band], len(plan.payload))
                for plan in plans
            ]
            delays = self.co_shaper.send_prioritized(requests, now)
        else:
            delays = [0.0] * len(plans)
        for plan, delay in zip(plans, delays):
            if delay > 0.0:
                self.sim.after(
                    delay,
                    lambda p=plan: self._transmit_co(p),
                    label="co-shaped",
                )
            else:
                self._transmit_co(plan)

    def _transmit_co(self, plan: SendPlan) -> None:
        """Put one planned CO-DATA frame on the wired link."""
        target = self._neighbors.get(plan.peer)
        link = self._links.get(plan.peer)
        if target is None or link is None:
            return
        payload = plan.payload

        def deliver(at_time: float, data=payload) -> None:
            try:
                target.broker.produce(CO_DATA, data, timestamp=at_time)
            except BrokerUnavailable:
                self.summaries_lost += 1
                self.collab.mark_lost(plan.peer, plan.car)

        if link.send(len(payload), deliver) is None:
            self.summaries_lost += 1
            self.collab.mark_lost(plan.peer, plan.car)
        else:
            self.summaries_sent += 1

    def handover(self, car_id: int, target_name: str) -> bool:
        """Forward the car's summary to an adjacent RSU's CO-DATA.

        Returns ``True`` if a summary existed and was sent.  The
        summary travels the wired link; on delivery it is produced into
        the target broker's ``CO-DATA`` topic (the paper's Fig. 4 flow).
        """
        if self.failed:
            return False  # a dead node cannot forward its history
        if target_name not in self._neighbors:
            raise KeyError(
                f"{self.name!r} has no link to {target_name!r}; "
                f"connected: {self.neighbor_names}"
            )
        summary = self.build_summary(car_id)
        if summary is None:
            return False
        if self.collab is not None:
            # Plane path: handover is never gated (it is this RSU's
            # last word on the car) and always resyncs in full when
            # delta encoding is on.
            plan = self.collab.prepare(
                target_name, summary, self.sim.now, handover=True
            )
            self._transmit_co(plan)
            self.collab.forget_car(car_id)
            self._history.pop(car_id, None)
            self._last_class.pop(car_id, None)
            self.summaries.pop(car_id, None)
            return True
        target = self._neighbors[target_name]
        link = self._links[target_name]
        # Serialize with the CO-DATA serde: the IN-DATA serde may be a
        # telemetry-specific binary format the target's collab consumer
        # cannot read.
        payload = self._serde_for(CO_DATA).serialize(summary.to_payload())

        def deliver(at_time: float, data=payload) -> None:
            try:
                target.broker.produce(CO_DATA, data, timestamp=at_time)
            except BrokerUnavailable:
                # The target is down mid-flight: the summary is lost
                # (CO-DATA transfer is fire-and-forget, per the paper).
                self.summaries_lost += 1

        if link.send(len(payload), deliver) is None:
            # Partitioned link: dropped at the sender, no delivery.
            # (Metric counters fold from these attributes at finalize.)
            self.summaries_lost += 1
        else:
            self.summaries_sent += 1
        # The car's history now belongs to the next road.
        self._history.pop(car_id, None)
        self._last_class.pop(car_id, None)
        self.summaries.pop(car_id, None)
        return True

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def detection_report(self):
        """Online detection quality over this RSU's labelled events.

        Returns a
        :class:`~repro.ml.metrics.BinaryClassificationReport` computed
        from the events whose replayed record carried a label, or
        ``None`` if there are none — the *in-situ* counterpart of the
        paper's offline Fig. 7 evaluation.
        """
        from repro.dataset.schema import ABNORMAL, NORMAL
        from repro.ml.metrics import evaluate_binary

        labels = self.events.true_labels()
        mask = labels != NO_LABEL
        if not mask.any():
            return None
        y_true = labels[mask].astype(np.int64)
        y_pred = np.where(self.events.abnormal()[mask], ABNORMAL, NORMAL)
        return evaluate_binary(y_true, y_pred)

    def bandwidth_in_bps(self, elapsed_s: float) -> float:
        """Mean ingest bandwidth over the run (Fig. 6c/6d)."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.broker.bytes_in * 8.0 / elapsed_s

    def mean_processing_ms(self) -> float:
        return self.context.mean_processing_ms()

    def __repr__(self) -> str:
        return (
            f"RsuNode(name={self.name!r}, events={len(self.events)}, "
            f"warnings={self.warnings_issued})"
        )
