"""Schema-aware fast serdes for the three CAD3 topics.

``JsonSerde`` stays the system default (the paper's ~200-byte JSON
packets), but every topic has a fixed Table II-shaped schema, so the
hot path can use fixed-layout binary packing instead:

- :class:`TelemetryStructSerde` — the ``IN-DATA`` envelope
  (``{"data": {Table II fields}, "generated_at", "arrived_at"}``),
  71 bytes on the wire vs ~170-200 for JSON, with a hand-written pack path
  and a **vectorized batch decoder** (:func:`decode_telemetry_block`)
  that turns a whole micro-batch of payloads into one
  :class:`~repro.core.block.TelemetryBlock` via ``np.frombuffer`` —
  no per-record Python at all.
- :class:`warning_struct_serde` / :class:`summary_struct_serde` —
  ``OUT-DATA`` / ``CO-DATA`` built on the generic
  :class:`~repro.streaming.serde.FlatStructSerde`.

All three carry the JSON fallback from the serde layer: payloads not
starting with the struct magic byte deserialize as JSON, and values
that do not fit the schema serialize as JSON, so mixed-format topics
stay correct (the golden-equivalence tests run both formats).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.block import (
    ANOMALY_KINDS,
    ANOMALY_KIND_INDEX,
    ROAD_TYPES,
    ROAD_TYPE_INDEX,
    TelemetryBlock,
)
from repro.core.features import CO_DATA, IN_DATA, OUT_DATA
from repro.streaming.serde import (
    FIELD_ENUM,
    FIELD_PLAIN,
    FlatStructSerde,
    JsonSerde,
    Serde,
    SerdeError,
    STRUCT_MAGIC,
    STRUCT_VERSION,
)

#: Known OUT-DATA warning kinds (uint8-coded on the wire).
WARNING_KINDS = ("aggressive_driving",)

_ROAD_TYPE_VALUES = tuple(t.value for t in ROAD_TYPES)
_ANOMALY_VALUES = tuple(k.value for k in ANOMALY_KINDS)


class TelemetryStructSerde(Serde):
    """Fixed-layout binary serde for the IN-DATA telemetry envelope.

    Wire layout (little-endian, packed, 71 bytes)::

        magic u8 | version u8 | car i64 | rd i64 | acc f64 | spd f64 |
        hr u8 | day u8 | rt u8 | vr f64 | ts f64 | ak u8 | lbl i8 |
        generated_at f64 | arrived_at f64

    ``rt`` / ``ak`` index the :class:`~repro.geo.roadnet.RoadType` /
    :class:`~repro.dataset.schema.AnomalyKind` declaration order;
    ``lbl`` uses -1 for ``None``; ``arrived_at`` uses NaN for ``None``
    (the pre-delivery envelope).  Anything that does not fit — unknown
    road type, out-of-range int, extra or missing keys — serializes as
    JSON instead, and payloads without the magic byte deserialize as
    JSON, so this serde is a strict superset of :class:`JsonSerde` on
    this topic.
    """

    _STRUCT = struct.Struct("<BBqqddBBBddBbdd")

    #: Numpy view of the same layout, for the batch decoder.
    DTYPE = np.dtype(
        [
            ("magic", "u1"),
            ("version", "u1"),
            ("car", "<i8"),
            ("rd", "<i8"),
            ("acc", "<f8"),
            ("spd", "<f8"),
            ("hr", "u1"),
            ("day", "u1"),
            ("rt", "u1"),
            ("vr", "<f8"),
            ("ts", "<f8"),
            ("ak", "u1"),
            ("lbl", "i1"),
            ("gen", "<f8"),
            ("arr", "<f8"),
        ]
    )

    def __init__(self) -> None:
        self._json = JsonSerde()
        assert self._STRUCT.size == self.DTYPE.itemsize

    @property
    def wire_size(self) -> int:
        return self._STRUCT.size

    def serialize(self, value: Any) -> bytes:
        try:
            data = value["data"]
            if len(data) != 11 or len(value) != 3:
                return self._json.serialize(value)
            label = data["lbl"]
            arrived = value["arrived_at"]
            return self._STRUCT.pack(
                STRUCT_MAGIC,
                STRUCT_VERSION,
                data["car"],
                data["rd"],
                data["acc"],
                data["spd"],
                data["hr"],
                data["day"],
                ROAD_TYPE_INDEX[data["rt"]],
                data["vr"],
                data["ts"],
                ANOMALY_KIND_INDEX[data["ak"]],
                -1 if label is None else label,
                value["generated_at"],
                float("nan") if arrived is None else arrived,
            )
        except (KeyError, TypeError, IndexError, struct.error):
            return self._json.serialize(value)

    def deserialize(self, payload: bytes) -> Any:
        if not payload or payload[0] != STRUCT_MAGIC:
            return self._json.deserialize(payload)
        try:
            (
                _magic, version, car, rd, acc, spd, hr, day, rt, vr, ts,
                ak, lbl, gen, arr,
            ) = self._STRUCT.unpack(payload)
        except struct.error as exc:
            raise SerdeError(f"bad telemetry struct payload: {exc}") from exc
        if version != STRUCT_VERSION:
            raise SerdeError(f"unsupported telemetry schema version {version}")
        try:
            rt_value = _ROAD_TYPE_VALUES[rt]
            ak_value = _ANOMALY_VALUES[ak]
        except IndexError as exc:
            raise SerdeError(f"bad enum code in telemetry payload: {exc}") from exc
        return {
            "data": {
                "car": car,
                "rd": rd,
                "acc": acc,
                "spd": spd,
                "hr": hr,
                "day": day,
                "rt": rt_value,
                "vr": vr,
                "ts": ts,
                "ak": ak_value,
                "lbl": None if lbl < 0 else lbl,
            },
            "generated_at": gen,
            "arrived_at": None if arr != arr else arr,
        }


def warning_struct_serde() -> FlatStructSerde:
    """OUT-DATA warning schema (car, rd, t, spd, kind, generated_at)."""
    return FlatStructSerde(
        [
            ("car", "q", FIELD_PLAIN, None),
            ("rd", "q", FIELD_PLAIN, None),
            ("t", "d", FIELD_PLAIN, None),
            ("spd", "d", FIELD_PLAIN, None),
            ("kind", "B", FIELD_ENUM, WARNING_KINDS),
            ("generated_at", "d", FIELD_PLAIN, None),
        ]
    )


def summary_struct_serde() -> FlatStructSerde:
    """CO-DATA prediction-summary schema (car, p, n, cls, rd, ts)."""
    return FlatStructSerde(
        [
            ("car", "q", FIELD_PLAIN, None),
            ("p", "d", FIELD_PLAIN, None),
            ("n", "q", FIELD_PLAIN, None),
            ("cls", "b", FIELD_PLAIN, None),
            ("rd", "q", FIELD_PLAIN, None),
            ("ts", "d", FIELD_PLAIN, None),
        ]
    )


#: Serde profiles selectable per scenario.  ``"json"`` is the paper's
#: wire format (and the fallback everywhere); ``"struct"`` swaps every
#: topic to its fixed-layout schema.
SERDE_PROFILES = ("json", "struct")


def topic_serdes(profile: str = "json") -> Dict[str, Serde]:
    """Per-topic serde registry for one profile.

    An empty mapping means "JsonSerde everywhere" (the default the
    nodes fall back to for unlisted topics).
    """
    if profile == "json":
        return {}
    if profile == "struct":
        return {
            IN_DATA: TelemetryStructSerde(),
            OUT_DATA: warning_struct_serde(),
            CO_DATA: summary_struct_serde(),
        }
    raise ValueError(
        f"unknown serde profile {profile!r}; expected one of {SERDE_PROFILES}"
    )


def decode_telemetry_block(
    raw_values: Sequence[bytes], serde: Optional[Serde] = None
) -> TelemetryBlock:
    """Decode one micro-batch of raw IN-DATA payloads into a block.

    When every payload is struct-encoded this is fully vectorized: the
    fixed-size records are joined and reinterpreted through
    :attr:`TelemetryStructSerde.DTYPE` in one ``np.frombuffer`` — zero
    per-record Python work.  Otherwise (JSON payloads, or a mixed
    topic) each payload goes through ``serde.deserialize`` and the
    block is assembled from the resulting envelope dicts.
    """
    if not raw_values:
        return TelemetryBlock.empty()
    size = TelemetryStructSerde.DTYPE.itemsize
    if all(
        len(value) == size and value[0] == STRUCT_MAGIC
        for value in raw_values
    ):
        rows = np.frombuffer(b"".join(raw_values), dtype=TelemetryStructSerde.DTYPE)
        return _telemetry_block_from_rows(rows)
    serde = serde or JsonSerde()
    payloads: List[Dict[str, Any]] = [
        serde.deserialize(value) for value in raw_values
    ]
    return TelemetryBlock.from_payloads(payloads)


def _telemetry_block_from_rows(rows: np.ndarray) -> TelemetryBlock:
    """Structured wire rows -> TelemetryBlock (every field copied out,
    so the block owns its storage even when ``rows`` views a borrowed
    buffer)."""
    if not (rows["version"] == STRUCT_VERSION).all():
        raise SerdeError("mixed/unsupported telemetry schema versions")
    return TelemetryBlock(
        car_id=rows["car"].astype(np.int64),
        road_id=rows["rd"].astype(np.int64),
        accel_ms2=rows["acc"].astype(np.float64),
        speed_kmh=rows["spd"].astype(np.float64),
        hour=rows["hr"].astype(np.int64),
        day=rows["day"].astype(np.int64),
        road_type_code=rows["rt"].astype(np.int64),
        road_mean_speed_kmh=rows["vr"].astype(np.float64),
        timestamp=rows["ts"].astype(np.float64),
        anomaly_kind_code=rows["ak"].astype(np.int64),
        label=rows["lbl"].astype(np.int8),
        generated_at=rows["gen"].astype(np.float64),
        arrived_at=rows["arr"].astype(np.float64),
    )


def decode_telemetry_segments(segments, serde: Optional[Serde] = None) -> TelemetryBlock:
    """Decode a block fetch's :class:`BlockSegment` slabs into a block.

    Uniform struct segments decode with one zero-copy ``np.frombuffer``
    per partition slab — record bytes flow from the broker log into the
    block's arrays without ever materializing per-record objects.  Any
    non-uniform segment (mixed JSON fallback payloads) drops the whole
    batch to the per-record decode, preserving record order.
    """
    if not segments:
        return TelemetryBlock.empty()
    size = TelemetryStructSerde.DTYPE.itemsize
    if all(
        segment.is_uniform and segment.record_size == size
        for segment in segments
    ):
        # One frombuffer over the joined slab bytes: concatenating
        # structured *arrays* would re-promote the field dtype per
        # input (numpy's common-type resolution), which dominates at
        # micro-batch sizes.
        data = (
            segments[0].data
            if len(segments) == 1
            else b"".join(segment.data for segment in segments)
        )
        rows = np.frombuffer(data, dtype=TelemetryStructSerde.DTYPE)
        return _telemetry_block_from_rows(rows)
    values: List[bytes] = []
    for segment in segments:
        values.extend(segment.value_list())
    return decode_telemetry_block(values, serde=serde)
