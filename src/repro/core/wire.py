"""Schema-aware fast serdes for the three CAD3 topics.

``JsonSerde`` stays the system default (the paper's ~200-byte JSON
packets), but every topic has a fixed Table II-shaped schema, so the
hot path can use fixed-layout binary packing instead:

- :class:`TelemetryStructSerde` — the ``IN-DATA`` envelope
  (``{"data": {Table II fields}, "generated_at", "arrived_at"}``),
  71 bytes on the wire vs ~170-200 for JSON, with a hand-written pack path
  and a **vectorized batch decoder** (:func:`decode_telemetry_block`)
  that turns a whole micro-batch of payloads into one
  :class:`~repro.core.block.TelemetryBlock` via ``np.frombuffer`` —
  no per-record Python at all.
- :class:`warning_struct_serde` / :class:`summary_struct_serde` —
  ``OUT-DATA`` / ``CO-DATA`` built on the generic
  :class:`~repro.streaming.serde.FlatStructSerde`.

All three carry the JSON fallback from the serde layer: payloads not
starting with the struct magic byte deserialize as JSON, and values
that do not fit the schema serialize as JSON, so mixed-format topics
stay correct (the golden-equivalence tests run both formats).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.block import (
    ANOMALY_KINDS,
    ANOMALY_KIND_INDEX,
    ROAD_TYPES,
    ROAD_TYPE_INDEX,
    TelemetryBlock,
)
from repro.core.features import CO_DATA, IN_DATA, OUT_DATA
from repro.streaming.serde import (
    FIELD_ENUM,
    FIELD_PLAIN,
    FlatStructSerde,
    JsonSerde,
    Serde,
    SerdeError,
    STRUCT_MAGIC,
    STRUCT_VERSION,
)

#: Known OUT-DATA warning kinds (uint8-coded on the wire).
WARNING_KINDS = ("aggressive_driving",)

_ROAD_TYPE_VALUES = tuple(t.value for t in ROAD_TYPES)
_ANOMALY_VALUES = tuple(k.value for k in ANOMALY_KINDS)


class TelemetryStructSerde(Serde):
    """Fixed-layout binary serde for the IN-DATA telemetry envelope.

    Wire layout (little-endian, packed, 71 bytes)::

        magic u8 | version u8 | car i64 | rd i64 | acc f64 | spd f64 |
        hr u8 | day u8 | rt u8 | vr f64 | ts f64 | ak u8 | lbl i8 |
        generated_at f64 | arrived_at f64

    ``rt`` / ``ak`` index the :class:`~repro.geo.roadnet.RoadType` /
    :class:`~repro.dataset.schema.AnomalyKind` declaration order;
    ``lbl`` uses -1 for ``None``; ``arrived_at`` uses NaN for ``None``
    (the pre-delivery envelope).  Anything that does not fit — unknown
    road type, out-of-range int, extra or missing keys — serializes as
    JSON instead, and payloads without the magic byte deserialize as
    JSON, so this serde is a strict superset of :class:`JsonSerde` on
    this topic.
    """

    _STRUCT = struct.Struct("<BBqqddBBBddBbdd")

    #: Numpy view of the same layout, for the batch decoder.
    DTYPE = np.dtype(
        [
            ("magic", "u1"),
            ("version", "u1"),
            ("car", "<i8"),
            ("rd", "<i8"),
            ("acc", "<f8"),
            ("spd", "<f8"),
            ("hr", "u1"),
            ("day", "u1"),
            ("rt", "u1"),
            ("vr", "<f8"),
            ("ts", "<f8"),
            ("ak", "u1"),
            ("lbl", "i1"),
            ("gen", "<f8"),
            ("arr", "<f8"),
        ]
    )

    def __init__(self) -> None:
        self._json = JsonSerde()
        assert self._STRUCT.size == self.DTYPE.itemsize

    @property
    def wire_size(self) -> int:
        return self._STRUCT.size

    def serialize(self, value: Any) -> bytes:
        try:
            data = value["data"]
            if len(data) != 11 or len(value) != 3:
                return self._json.serialize(value)
            label = data["lbl"]
            arrived = value["arrived_at"]
            return self._STRUCT.pack(
                STRUCT_MAGIC,
                STRUCT_VERSION,
                data["car"],
                data["rd"],
                data["acc"],
                data["spd"],
                data["hr"],
                data["day"],
                ROAD_TYPE_INDEX[data["rt"]],
                data["vr"],
                data["ts"],
                ANOMALY_KIND_INDEX[data["ak"]],
                -1 if label is None else label,
                value["generated_at"],
                float("nan") if arrived is None else arrived,
            )
        except (KeyError, TypeError, IndexError, struct.error):
            return self._json.serialize(value)

    def deserialize(self, payload: bytes) -> Any:
        if not payload or payload[0] != STRUCT_MAGIC:
            return self._json.deserialize(payload)
        try:
            (
                _magic, version, car, rd, acc, spd, hr, day, rt, vr, ts,
                ak, lbl, gen, arr,
            ) = self._STRUCT.unpack(payload)
        except struct.error as exc:
            raise SerdeError(f"bad telemetry struct payload: {exc}") from exc
        if version != STRUCT_VERSION:
            raise SerdeError(f"unsupported telemetry schema version {version}")
        try:
            rt_value = _ROAD_TYPE_VALUES[rt]
            ak_value = _ANOMALY_VALUES[ak]
        except IndexError as exc:
            raise SerdeError(f"bad enum code in telemetry payload: {exc}") from exc
        return {
            "data": {
                "car": car,
                "rd": rd,
                "acc": acc,
                "spd": spd,
                "hr": hr,
                "day": day,
                "rt": rt_value,
                "vr": vr,
                "ts": ts,
                "ak": ak_value,
                "lbl": None if lbl < 0 else lbl,
            },
            "generated_at": gen,
            "arrived_at": None if arr != arr else arr,
        }


def warning_struct_serde() -> FlatStructSerde:
    """OUT-DATA warning schema (car, rd, t, spd, kind, generated_at)."""
    return FlatStructSerde(
        [
            ("car", "q", FIELD_PLAIN, None),
            ("rd", "q", FIELD_PLAIN, None),
            ("t", "d", FIELD_PLAIN, None),
            ("spd", "d", FIELD_PLAIN, None),
            ("kind", "B", FIELD_ENUM, WARNING_KINDS),
            ("generated_at", "d", FIELD_PLAIN, None),
        ]
    )


def summary_struct_serde() -> FlatStructSerde:
    """CO-DATA prediction-summary schema (car, p, n, cls, rd, ts)."""
    return FlatStructSerde(
        [
            ("car", "q", FIELD_PLAIN, None),
            ("p", "d", FIELD_PLAIN, None),
            ("n", "q", FIELD_PLAIN, None),
            ("cls", "b", FIELD_PLAIN, None),
            ("rd", "q", FIELD_PLAIN, None),
            ("ts", "d", FIELD_PLAIN, None),
        ]
    )


#: Serde profiles selectable per scenario.  ``"json"`` is the paper's
#: wire format (and the fallback everywhere); ``"struct"`` swaps every
#: topic to its fixed-layout schema.
SERDE_PROFILES = ("json", "struct")


def topic_serdes(profile: str = "json") -> Dict[str, Serde]:
    """Per-topic serde registry for one profile.

    An empty mapping means "JsonSerde everywhere" (the default the
    nodes fall back to for unlisted topics).
    """
    if profile == "json":
        return {}
    if profile == "struct":
        return {
            IN_DATA: TelemetryStructSerde(),
            OUT_DATA: warning_struct_serde(),
            CO_DATA: summary_struct_serde(),
        }
    raise ValueError(
        f"unknown serde profile {profile!r}; expected one of {SERDE_PROFILES}"
    )


def decode_telemetry_block(
    raw_values: Sequence[bytes], serde: Optional[Serde] = None
) -> TelemetryBlock:
    """Decode one micro-batch of raw IN-DATA payloads into a block.

    When every payload is struct-encoded this is fully vectorized: the
    fixed-size records are joined and reinterpreted through
    :attr:`TelemetryStructSerde.DTYPE` in one ``np.frombuffer`` — zero
    per-record Python work.  Otherwise (JSON payloads, or a mixed
    topic) each payload goes through ``serde.deserialize`` and the
    block is assembled from the resulting envelope dicts.
    """
    if not raw_values:
        return TelemetryBlock.empty()
    size = TelemetryStructSerde.DTYPE.itemsize
    if all(
        len(value) == size and value[0] == STRUCT_MAGIC
        for value in raw_values
    ):
        rows = np.frombuffer(b"".join(raw_values), dtype=TelemetryStructSerde.DTYPE)
        return _telemetry_block_from_rows(rows)
    serde = serde or JsonSerde()
    payloads: List[Dict[str, Any]] = [
        serde.deserialize(value) for value in raw_values
    ]
    return TelemetryBlock.from_payloads(payloads)


def _telemetry_block_from_rows(rows: np.ndarray) -> TelemetryBlock:
    """Structured wire rows -> TelemetryBlock (every field copied out,
    so the block owns its storage even when ``rows`` views a borrowed
    buffer)."""
    if not (rows["version"] == STRUCT_VERSION).all():
        raise SerdeError("mixed/unsupported telemetry schema versions")
    return TelemetryBlock(
        car_id=rows["car"].astype(np.int64),
        road_id=rows["rd"].astype(np.int64),
        accel_ms2=rows["acc"].astype(np.float64),
        speed_kmh=rows["spd"].astype(np.float64),
        hour=rows["hr"].astype(np.int64),
        day=rows["day"].astype(np.int64),
        road_type_code=rows["rt"].astype(np.int64),
        road_mean_speed_kmh=rows["vr"].astype(np.float64),
        timestamp=rows["ts"].astype(np.float64),
        anomaly_kind_code=rows["ak"].astype(np.int64),
        label=rows["lbl"].astype(np.int8),
        generated_at=rows["gen"].astype(np.float64),
        arrived_at=rows["arr"].astype(np.float64),
    )


def decode_telemetry_segments(segments, serde: Optional[Serde] = None) -> TelemetryBlock:
    """Decode a block fetch's :class:`BlockSegment` slabs into a block.

    Uniform struct segments decode with one zero-copy ``np.frombuffer``
    per partition slab — record bytes flow from the broker log into the
    block's arrays without ever materializing per-record objects.  Any
    non-uniform segment (mixed JSON fallback payloads) drops the whole
    batch to the per-record decode, preserving record order.
    """
    if not segments:
        return TelemetryBlock.empty()
    size = TelemetryStructSerde.DTYPE.itemsize
    if all(
        segment.is_uniform and segment.record_size == size
        for segment in segments
    ):
        # One frombuffer over the joined slab bytes: concatenating
        # structured *arrays* would re-promote the field dtype per
        # input (numpy's common-type resolution), which dominates at
        # micro-batch sizes.
        data = (
            segments[0].data
            if len(segments) == 1
            else b"".join(segment.data for segment in segments)
        )
        rows = np.frombuffer(data, dtype=TelemetryStructSerde.DTYPE)
        return _telemetry_block_from_rows(rows)
    values: List[bytes] = []
    for segment in segments:
        values.extend(segment.value_list())
    return decode_telemetry_block(values, serde=serde)


# ----------------------------------------------------------------------
# CO-DATA summary frames: delta encoding for the collaboration plane
# ----------------------------------------------------------------------
#: Magic byte of a framed CO-DATA summary (full resync or delta).
#: Distinct from :data:`~repro.streaming.serde.STRUCT_MAGIC`, so framed
#: and legacy raw payloads coexist on one topic.
SUMMARY_FRAME_MAGIC = 0xC4
SUMMARY_FRAME_VERSION = 1
#: Frame kinds: a full resync carries the topic serde's complete
#: payload; a delta carries only the fields that changed since the
#: sender's last frame for the same ``(receiver, car)`` stream.
SUMMARY_FULL = 0
SUMMARY_DELTA = 1

_FRAME_HEAD = struct.Struct("<BBBB")  # magic, version, kind, epoch
_FRAME_CAR = struct.Struct("<q")

#: Quantization units shared by both codec ends: ``p`` in 1e-6 steps
#: and ``ts`` in milliseconds — exactly the rounding
#: :meth:`~repro.core.features.PredictionSummary.to_payload` applies,
#: so integer-unit deltas reconstruct the full-frame floats bit for bit.
P_UNIT = 1e-6
TS_UNIT = 1e-3

#: Changed-field bitmap bits, in wire order.
_BIT_P = 1
_BIT_N = 2
_BIT_CLS = 4
_BIT_RD = 8
_BIT_TS = 16


def quantize_summary(payload: Dict[str, Any]) -> Tuple[int, int, int, int, int, int]:
    """A summary payload as integer units:
    ``(car, p_units, n, cls, rd, ts_units)``."""
    return (
        int(payload["car"]),
        int(round(float(payload["p"]) / P_UNIT)),
        int(payload["n"]),
        int(payload["cls"]),
        int(payload["rd"]),
        int(round(float(payload["ts"]) / TS_UNIT)),
    )


def summary_payload_from_units(
    units: Tuple[int, int, int, int, int, int]
) -> Dict[str, Any]:
    """Integer units back to the canonical payload dict.  ``round``
    re-applies the :meth:`to_payload` decimal rounding, so the result
    is byte-identical to what a full resync would have carried."""
    car, p_units, n, cls, rd, ts_units = units
    return {
        "car": car,
        "p": round(p_units * P_UNIT, 6),
        "n": n,
        "cls": cls,
        "rd": rd,
        "ts": round(ts_units * TS_UNIT, 3),
    }


def apply_summary_delta(
    base: Tuple[int, int, int, int, int, int],
    deltas: Tuple[Optional[int], ...],
) -> Tuple[int, int, int, int, int, int]:
    """Apply a decoded delta tuple to a baseline's integer units."""
    car, p_units, n, cls, rd, ts_units = base
    dp, dn, dcls, drd, dts = deltas
    return (
        car,
        p_units + dp if dp is not None else p_units,
        n + dn if dn is not None else n,
        cls + dcls if dcls is not None else cls,
        rd + drd if drd is not None else rd,
        ts_units + dts if dts is not None else ts_units,
    )


def _append_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _append_svarint(out: bytearray, value: int) -> None:
    # ZigZag: small magnitudes of either sign stay short on the wire.
    _append_uvarint(out, (value << 1) ^ (value >> 63))


def _read_uvarint(buf: bytes, at: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        try:
            byte = buf[at]
        except IndexError as exc:
            raise SerdeError("truncated summary delta varint") from exc
        at += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, at
        shift += 7


def _read_svarint(buf: bytes, at: int) -> Tuple[int, int]:
    unsigned, at = _read_uvarint(buf, at)
    return (unsigned >> 1) ^ -(unsigned & 1), at


@dataclass(frozen=True)
class SummaryFrame:
    """A decoded CO-DATA summary frame.

    Full frames carry the inner serde's payload in ``body``; delta
    frames carry the car id and a 5-tuple of per-field integer deltas
    (``None`` = unchanged), to be resolved against the receiver's
    baseline cache.
    """

    kind: int
    epoch: int
    car: Optional[int] = None
    body: bytes = b""
    deltas: Tuple[Optional[int], ...] = ()


def encode_summary_full(body: bytes, epoch: int) -> bytes:
    """Frame a serde-serialized summary payload as a full resync."""
    return (
        _FRAME_HEAD.pack(
            SUMMARY_FRAME_MAGIC, SUMMARY_FRAME_VERSION, SUMMARY_FULL, epoch
        )
        + body
    )


def encode_summary_delta(
    epoch: int,
    base: Tuple[int, int, int, int, int, int],
    new: Tuple[int, int, int, int, int, int],
) -> bytes:
    """Encode the changed fields between two integer-unit baselines.

    Layout: header (4) | car i64 | changed-field bitmap u8 | one
    ZigZag varint per set bit, in bitmap order.  A fully unchanged
    summary is 13 bytes; a typical refresh (p, n, ts moved) is ~18 —
    versus the 47-byte struct or ~100-byte JSON full frame.
    """
    if base[0] != new[0]:
        raise ValueError(
            f"delta across different cars: {base[0]} vs {new[0]}"
        )
    out = bytearray(
        _FRAME_HEAD.pack(
            SUMMARY_FRAME_MAGIC, SUMMARY_FRAME_VERSION, SUMMARY_DELTA, epoch
        )
    )
    out += _FRAME_CAR.pack(new[0])
    bitmap = 0
    fields = bytearray()
    for bit, index in (
        (_BIT_P, 1),
        (_BIT_N, 2),
        (_BIT_CLS, 3),
        (_BIT_RD, 4),
        (_BIT_TS, 5),
    ):
        if new[index] != base[index]:
            bitmap |= bit
            _append_svarint(fields, new[index] - base[index])
    out.append(bitmap)
    out += fields
    return bytes(out)


def decode_summary_frame(payload: bytes) -> SummaryFrame:
    """Decode a framed summary payload (raises on malformed frames)."""
    try:
        magic, version, kind, epoch = _FRAME_HEAD.unpack_from(payload, 0)
    except struct.error as exc:
        raise SerdeError(f"truncated summary frame: {exc}") from exc
    if magic != SUMMARY_FRAME_MAGIC:
        raise SerdeError(f"bad summary frame magic {magic:#x}")
    if version != SUMMARY_FRAME_VERSION:
        raise SerdeError(f"unsupported summary frame version {version}")
    if kind == SUMMARY_FULL:
        return SummaryFrame(
            kind=kind, epoch=epoch, body=bytes(payload[_FRAME_HEAD.size :])
        )
    if kind != SUMMARY_DELTA:
        raise SerdeError(f"unknown summary frame kind {kind}")
    try:
        (car,) = _FRAME_CAR.unpack_from(payload, _FRAME_HEAD.size)
    except struct.error as exc:
        raise SerdeError(f"truncated summary delta: {exc}") from exc
    at = _FRAME_HEAD.size + _FRAME_CAR.size
    try:
        bitmap = payload[at]
    except IndexError as exc:
        raise SerdeError("truncated summary delta bitmap") from exc
    at += 1
    deltas: List[Optional[int]] = []
    for bit in (_BIT_P, _BIT_N, _BIT_CLS, _BIT_RD, _BIT_TS):
        if bitmap & bit:
            value, at = _read_svarint(payload, at)
            deltas.append(value)
        else:
            deltas.append(None)
    return SummaryFrame(kind=kind, epoch=epoch, car=car, deltas=tuple(deltas))


class SummaryFrameSerde(Serde):
    """CO-DATA serde for the collaboration plane.

    The sender-side plane hands pre-framed bytes through untouched;
    everything else delegates to the topic's configured serde.  On
    deserialize, framed payloads come back as :class:`SummaryFrame`
    markers (the RSU resolves them against its receiver baseline
    cache); raw payloads — legacy handover summaries, or gating-only
    configurations that skip framing — fall through to the inner serde.
    """

    def __init__(self, inner: Serde) -> None:
        self.inner = inner

    def serialize(self, value: Any) -> bytes:
        if isinstance(value, (bytes, bytearray, memoryview)):
            return bytes(value)
        return self.inner.serialize(value)

    def deserialize(self, payload: bytes) -> Any:
        if payload and payload[0] == SUMMARY_FRAME_MAGIC:
            return decode_summary_frame(payload)
        return self.inner.deserialize(payload)


def summary_frame_car(payload: bytes, serde: Serde) -> int:
    """The car id behind one CO-DATA payload, framed or raw.

    Delta frames carry the id at a fixed offset; full frames
    deserialize their body with the topic serde; unframed payloads go
    straight through the serde — the shard barrier uses this to order
    cross-shard summaries without caring which wire form they took.
    """
    if payload and payload[0] == SUMMARY_FRAME_MAGIC:
        frame = decode_summary_frame(payload)
        if frame.car is not None:
            return frame.car
        return int(serde.deserialize(frame.body)["car"])
    return int(serde.deserialize(payload)["car"])
