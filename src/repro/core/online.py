"""Online learning at the RSU (Sec. III-A: "each node learns the
normal behavior over time and maintains contextual information").

The paper's offline pipeline trains once; its motivation section
(Sec. II, "Changing Patterns") argues behaviour shifts with time of
day and conditions.  This module closes that loop:

- :class:`RollingProfile` — exponentially-weighted running mean/std of
  speed and acceleration: the RSU's live contextual information.
- :class:`OnlineLabeler` — the sigma-cutoff rule applied against the
  *current* rolling profile instead of a frozen training set.
- :class:`OnlineAD3Detector` — an AD3 detector that keeps learning:
  either cumulatively (:meth:`GaussianNaiveBayes.partial_fit`) or from
  a sliding window (periodic refit), which also *forgets* stale
  regimes and therefore tracks drift.
"""

from __future__ import annotations

import collections
import math
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.block import ROAD_TYPES, TelemetryBlock
from repro.core.detector import road_features
from repro.core.features import ROAD_TYPE_CODE
from repro.dataset.schema import ABNORMAL, NORMAL, TelemetryRecord
from repro.geo.roadnet import RoadType
from repro.ml.base import Detector
from repro.ml.naive_bayes import GaussianNaiveBayes


class RollingProfile:
    """Exponentially-weighted mean/variance of a scalar signal.

    ``half_life`` is in *observations*: after that many updates an old
    observation's weight has halved.  This is the forgetting that lets
    the context track rush-hour onset, roadworks, weather, etc.
    """

    def __init__(self, half_life: float = 500.0) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.alpha = 1.0 - 0.5 ** (1.0 / half_life)
        self._mean: Optional[float] = None
        self._var = 0.0
        self.n_observations = 0

    def update(self, value: float) -> None:
        self.n_observations += 1
        if self._mean is None:
            self._mean = value
            self._var = 0.0
            return
        delta = value - self._mean
        self._mean += self.alpha * delta
        # EW variance of the de-meaned signal.
        self._var = (1.0 - self.alpha) * (self._var + self.alpha * delta**2)

    @property
    def mean(self) -> float:
        if self._mean is None:
            raise RuntimeError("profile has seen no observations")
        return self._mean

    @property
    def std(self) -> float:
        return math.sqrt(max(self._var, 0.0))

    @property
    def ready(self) -> bool:
        return self.n_observations >= 10 and self._var > 0.0


class OnlineLabeler:
    """Sigma-cutoff labelling against live rolling profiles.

    The offline :class:`~repro.dataset.preprocess.SigmaCutoffLabeler`
    freezes mu/sigma at training time; this one tracks them, so the
    definition of "normal" follows the road's current behaviour.
    """

    def __init__(self, n_sigma: float = 1.0, half_life: float = 500.0) -> None:
        if n_sigma <= 0:
            raise ValueError("n_sigma must be positive")
        self.n_sigma = n_sigma
        self.speed = RollingProfile(half_life)
        self.accel = RollingProfile(half_life)

    def observe(self, record: TelemetryRecord) -> None:
        self.speed.update(record.speed_kmh)
        self.accel.update(record.accel_ms2)

    @property
    def ready(self) -> bool:
        return self.speed.ready and self.accel.ready

    def observe_values(self, speed_kmh: float, accel_ms2: float) -> None:
        """:meth:`observe` from raw scalars (the columnar path)."""
        self.speed.update(speed_kmh)
        self.accel.update(accel_ms2)

    def label(self, record: TelemetryRecord) -> Optional[int]:
        """Label against the current bands; None while warming up."""
        return self.label_values(record.speed_kmh, record.accel_ms2)

    def label_values(
        self, speed_kmh: float, accel_ms2: float
    ) -> Optional[int]:
        """:meth:`label` from raw scalars (the columnar path)."""
        if not self.ready:
            return None
        speed_ok = (
            abs(speed_kmh - self.speed.mean) <= self.n_sigma * self.speed.std
        )
        accel_ok = (
            abs(accel_ms2 - self.accel.mean) <= self.n_sigma * self.accel.std
        )
        return NORMAL if (speed_ok and accel_ok) else ABNORMAL

    def speed_band(self) -> Tuple[float, float]:
        return (
            self.speed.mean - self.n_sigma * self.speed.std,
            self.speed.mean + self.n_sigma * self.speed.std,
        )


class OnlineAD3Detector(Detector):
    """An AD3 detector that keeps learning from the stream it scores.

    Parameters
    ----------
    road_type:
        Road type covered.
    mode:
        ``"window"`` — refit the NB from a sliding buffer every
        ``refit_every`` observations (forgets old regimes: tracks
        drift); ``"cumulative"`` — ``partial_fit`` every batch (exact
        all-history model: smooth but slow to forget).
    window:
        Sliding-buffer capacity (window mode).
    refit_every:
        Observations between refits (window mode).
    half_life:
        Forgetting half-life of the labelling profiles.
    """

    def __init__(
        self,
        road_type: RoadType,
        mode: str = "window",
        window: int = 4000,
        refit_every: int = 500,
        half_life: float = 500.0,
        n_sigma: float = 1.0,
    ) -> None:
        if mode not in ("window", "cumulative"):
            raise ValueError(f"unknown mode: {mode}")
        self.road_type = road_type
        self.mode = mode
        self.labeler = OnlineLabeler(n_sigma=n_sigma, half_life=half_life)
        self.model = GaussianNaiveBayes()
        self._buffer: Deque[Tuple[np.ndarray, int]] = collections.deque(
            maxlen=window
        )
        self.refit_every = refit_every
        self._since_refit = 0
        self._model_ready = False
        self.observations = 0

    # ------------------------------------------------------------------
    def observe(self, records: Sequence[TelemetryRecord]) -> None:
        """Fold a batch of records into the context and the model."""
        features = []
        labels = []
        for record in records:
            if record.road_type is not self.road_type:
                raise ValueError(
                    f"online detector for {self.road_type.value!r} got a "
                    f"{record.road_type.value!r} record"
                )
            label = self.labeler.label(record)
            self.labeler.observe(record)
            self.observations += 1
            if label is None:
                continue
            row = np.array(
                [record.speed_kmh, record.accel_ms2, float(record.hour)]
            )
            features.append(row)
            labels.append(label)
            if self.mode == "window":
                self._buffer.append((row, label))
        if not features:
            return
        if self.mode == "cumulative":
            self._partial_fit(np.vstack(features), np.array(labels))
        else:
            self._since_refit += len(features)
            if self._since_refit >= self.refit_every or not self._model_ready:
                self._refit_from_buffer()

    def observe_block(self, block: TelemetryBlock) -> None:
        """Columnar :meth:`observe` — no record materialization.

        The labelling profiles are an exponentially-weighted recurrence
        (each label depends on every prior observation), so the scan
        itself stays sequential; the win is skipping the per-record
        dataclass round trip and batching the feature rows.  State
        after this call is bit-identical to
        ``observe(block.records())``.
        """
        n = len(block)
        if n == 0:
            return
        expected = ROAD_TYPE_CODE[self.road_type]
        mismatched = np.nonzero(block.road_type_code != expected)[0]
        if mismatched.size:
            other = ROAD_TYPES[block.road_type_code[int(mismatched[0])]]
            raise ValueError(
                f"online detector for {self.road_type.value!r} got a "
                f"{other.value!r} record"
            )
        speeds = block.speed_kmh.tolist()
        accels = block.accel_ms2.tolist()
        hours = block.hour.tolist()
        labeler = self.labeler
        features = []
        labels = []
        for speed, accel, hour in zip(speeds, accels, hours):
            label = labeler.label_values(speed, accel)
            labeler.observe_values(speed, accel)
            self.observations += 1
            if label is None:
                continue
            row = np.array([speed, accel, float(hour)])
            features.append(row)
            labels.append(label)
            if self.mode == "window":
                self._buffer.append((row, label))
        if not features:
            return
        if self.mode == "cumulative":
            self._partial_fit(np.vstack(features), np.array(labels))
        else:
            self._since_refit += len(features)
            if self._since_refit >= self.refit_every or not self._model_ready:
                self._refit_from_buffer()

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.model.partial_fit(X, y, classes=[ABNORMAL, NORMAL])
        counts = self.model._counts
        if counts is not None and np.all(counts > 0):
            self._model_ready = True

    def _refit_from_buffer(self) -> None:
        if len(self._buffer) < 20:
            return
        X = np.vstack([row for row, _ in self._buffer])
        y = np.array([label for _, label in self._buffer])
        if len(np.unique(y)) < 2:
            return
        self.model = GaussianNaiveBayes().fit(X, y)
        self._model_ready = True
        self._since_refit = 0

    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        return self._model_ready

    def predict(self, records: Sequence[TelemetryRecord]) -> np.ndarray:
        if not records:
            return np.empty(0, dtype=int)
        if not self._model_ready:
            raise RuntimeError(
                "online detector has not seen enough data to predict"
            )
        return self.model.predict(road_features(records))

    def predict_normal_proba(
        self, records: Sequence[TelemetryRecord]
    ) -> np.ndarray:
        if not records:
            return np.empty(0)
        if not self._model_ready:
            raise RuntimeError(
                "online detector has not seen enough data to predict"
            )
        return self.model.proba_of(road_features(records), NORMAL)

    def detect(
        self, records: Sequence[TelemetryRecord], summaries=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(classes, normal probabilities) — the RSU pipeline contract.

        During warm-up (model not ready) everything scores normal with
        probability 1: no warnings are raised before the node has
        learned what normal looks like.
        """
        if not records:
            return np.empty(0, dtype=int), np.empty(0)
        if not self._model_ready:
            return (
                np.full(len(records), NORMAL, dtype=int),
                np.ones(len(records)),
            )
        return self.predict(records), self.predict_normal_proba(records)

    def detect_block(
        self, block: TelemetryBlock, summaries=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar :meth:`detect` — bit-identical output, one
        likelihood evaluation, same warm-up semantics."""
        n = len(block)
        if n == 0:
            return np.empty(0, dtype=int), np.empty(0)
        if not self._model_ready:
            return np.full(n, NORMAL, dtype=int), np.ones(n)
        X = road_features(block)
        model = self.model
        if hasattr(model, "predict_and_proba"):
            return model.predict_and_proba(X, NORMAL)
        return model.predict(X), model.proba_of(X, NORMAL)

    def __repr__(self) -> str:
        return (
            f"OnlineAD3Detector(road_type={self.road_type.value!r}, "
            f"mode={self.mode!r}, observations={self.observations})"
        )
