"""The bandwidth-adaptive CO-DATA collaboration plane.

The seed behaviour forwards one prediction summary per vehicle, once,
at handover — CO-DATA cost scales with traffic, not with information.
This module makes the summary stream a managed plane with three
coordinated layers:

1. **Utility gating** — before serializing, compute whether the delta
   in the driver prior could materially shift the downstream RSU's
   fused decision (:func:`~repro.core.collaborative.prior_logit_shift`
   against the last value actually sent), with a staleness override so
   silence toward a peer never exceeds the degradation budget.
2. **Delta encoding** — per-``(peer, car)`` integer-unit baselines and
   the compact changed-field frames of :mod:`repro.core.wire`
   (:func:`~repro.core.wire.encode_summary_delta`), with full-summary
   resync on first contact, epoch mismatch, loss, or handover.
3. **Priority banding** — every send is classified decision-changing
   (``urgent``) or staleness-driven (``refresh``), so the HTB shaper
   can charge refresh traffic strictly after urgent frames
   (:meth:`~repro.net.htb.HtbShaper.send_prioritized`).

A default :class:`CollabConfig` is *disabled*: the RSU keeps the seed
handover-only path bit-identical (the golden collab tests pin this).
All metering here is plain attributes — the observability layer folds
them at finalize, never a registry lookup on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.collaborative import (
    HISTORY_WEIGHT,
    NEUTRAL_PRIOR,
    prior_logit_shift,
)
from repro.core.features import PredictionSummary
from repro.core.wire import (
    P_UNIT,
    SUMMARY_FULL,
    SummaryFrame,
    encode_summary_delta,
    encode_summary_full,
    apply_summary_delta,
    quantize_summary,
    summary_payload_from_units,
)
from repro.dataset.schema import ABNORMAL
from repro.streaming.serde import Serde

COLLAB_MODES = ("handover", "refresh")

#: Priority bands: frames that can move the downstream decision vs
#: keep-alive refreshes sent only to bound staleness.
BAND_URGENT = "urgent"
BAND_REFRESH = "refresh"


@dataclass(frozen=True)
class CollabConfig:
    """Knobs of the bandwidth-adaptive CO-DATA plane.

    The default instance is **disabled** (:attr:`enabled` is False):
    handover-only forwarding, no gating, no framing — the seed
    behaviour, bit for bit.
    """

    #: ``"handover"`` (seed: forward once at handover) or ``"refresh"``
    #: (additionally re-announce per-car summaries downstream on a
    #: fixed cadence, which is what gating then prunes).
    mode: str = "handover"
    #: Cadence of the refresh re-announcements.
    refresh_interval_s: float = 0.5
    #: Utility floor (downstream log-odds movement, see
    #: :func:`~repro.core.collaborative.prior_logit_shift`) below which
    #: a refresh is suppressed.  ``0.0`` sends everything — the
    #: ungated baseline of the Pareto sweep.
    gate_threshold: float = 0.0
    #: Hard bound on per-peer silence: a summary older than this is
    #: re-sent regardless of utility, so gating can never starve the
    #: downstream's staleness/degradation logic.  ``None`` derives the
    #: bound from the RSU's ``upstream_timeout_s`` (80 % of it) or,
    #: without one, from the refresh cadence (4 intervals).
    max_silence_s: Optional[float] = None
    #: Encode consecutive sends for one ``(peer, car)`` stream as
    #: changed-field delta frames against the last sent value, with
    #: full resync on first contact / epoch mismatch / handover.
    delta_encoding: bool = False
    #: Schedule CO-DATA under the RSU's HTB shaper in two priority
    #: bands (urgent before refresh).  Requires the scenario's
    #: ``use_htb``.
    priority: bool = False
    #: Assured rates of the two CO-DATA leaf classes (both may borrow
    #: up to the shared root ceiling).
    urgent_rate_bps: float = 256_000.0
    refresh_rate_bps: float = 64_000.0

    def __post_init__(self) -> None:
        if self.mode not in COLLAB_MODES:
            raise ValueError(
                f"unknown collab mode {self.mode!r}; "
                f"choose from {COLLAB_MODES}"
            )
        if self.refresh_interval_s <= 0:
            raise ValueError("refresh_interval_s must be positive")
        if self.gate_threshold < 0:
            raise ValueError("gate_threshold must be >= 0")
        if self.max_silence_s is not None and self.max_silence_s <= 0:
            raise ValueError("max_silence_s must be positive")
        if self.urgent_rate_bps <= 0 or self.refresh_rate_bps <= 0:
            raise ValueError("band rates must be positive")

    @property
    def enabled(self) -> bool:
        """Whether this config changes anything over the seed path."""
        return (
            self.mode != "handover"
            or self.gate_threshold > 0.0
            or self.delta_encoding
            or self.priority
        )

    def resolved_max_silence_s(
        self, upstream_timeout_s: Optional[float]
    ) -> float:
        if self.max_silence_s is not None:
            return self.max_silence_s
        if upstream_timeout_s is not None:
            # Refresh comfortably inside the downstream's degradation
            # window: gated silence must never trip it.
            return 0.8 * upstream_timeout_s
        return 4.0 * self.refresh_interval_s


@dataclass(frozen=True)
class SendPlan:
    """One frame the plane decided to send: pre-encoded payload plus
    its priority band, ready for the shaper and the wired link."""

    peer: str
    car: int
    payload: bytes
    band: str
    kind: str  # "full" | "delta" | "raw"


class _StreamState:
    """Sender-side state of one ``(peer, car)`` summary stream."""

    __slots__ = ("units", "epoch", "last_sent_s", "dirty", "full_size")

    def __init__(
        self, units: Tuple[int, ...], epoch: int, now: float, full_size: int
    ) -> None:
        self.units = units
        self.epoch = epoch
        self.last_sent_s = now
        self.dirty = False  # set on loss: next frame is a full resync
        self.full_size = full_size


class CollabPlane:
    """Sender-side gating, encoding, and metering for one RSU.

    Owns the per-``(peer, car)`` baselines both layers share: gating
    compares against the last *sent* value (what the receiver actually
    holds), and delta encoding diffs against the same units — so a
    suppressed frame never advances the baseline and the stream stays
    exactly reconstructible.
    """

    def __init__(
        self,
        config: CollabConfig,
        serde: Serde,
        history_weight: float = HISTORY_WEIGHT,
        upstream_timeout_s: Optional[float] = None,
    ) -> None:
        self.config = config
        self._serde = serde
        self._history_weight = history_weight
        self._max_silence_s = config.resolved_max_silence_s(upstream_timeout_s)
        self._streams: Dict[Tuple[str, int], _StreamState] = {}
        # Metering (plain attributes; folded by repro.obs at finalize).
        self.bytes_sent = 0
        self.bytes_suppressed = 0
        self.msgs_gated = 0
        self.msgs_sent: Dict[str, int] = {BAND_URGENT: 0, BAND_REFRESH: 0}
        self.fulls_sent = 0
        self.deltas_sent = 0
        #: Frame size -> count, folded into the delta-size histogram.
        self.frame_size_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def prepare(
        self,
        peer: str,
        summary: PredictionSummary,
        now: float,
        handover: bool = False,
    ) -> Optional[SendPlan]:
        """Gate and encode one candidate send toward ``peer``.

        Returns ``None`` when the frame was suppressed (utility below
        threshold and the stream is not stale).  Handover sends are
        never gated — they are this RSU's last word on the car and
        always resync in full — and they drop no state here (the RSU
        calls :meth:`forget_car` right after).
        """
        payload_dict = summary.to_payload()
        units = quantize_summary(payload_dict)
        car = units[0]
        key = (peer, car)
        state = self._streams.get(key)

        if not handover:
            if state is None:
                # First contact: always send (infinite staleness), but
                # classify the band on the move from the neutral prior.
                urgent = units[3] == ABNORMAL or (
                    prior_logit_shift(
                        NEUTRAL_PRIOR, payload_dict["p"], self._history_weight
                    )
                    >= self.config.gate_threshold
                )
                band = BAND_URGENT if urgent else BAND_REFRESH
            else:
                utility = prior_logit_shift(
                    state.units[1] * P_UNIT,
                    payload_dict["p"],
                    self._history_weight,
                )
                class_flip = units[3] != state.units[3]
                urgent = class_flip or utility >= self.config.gate_threshold
                stale = now - state.last_sent_s >= self._max_silence_s
                if not urgent and not stale:
                    self.msgs_gated += 1
                    self.bytes_suppressed += state.full_size
                    return None
                band = BAND_URGENT if urgent else BAND_REFRESH
        else:
            band = BAND_URGENT

        if self.config.delta_encoding:
            resync = handover or state is None or state.dirty
            if resync:
                epoch = 0 if state is None else (state.epoch + 1) % 256
                payload = encode_summary_full(
                    self._serde.serialize(payload_dict), epoch
                )
                kind = "full"
                self.fulls_sent += 1
            else:
                epoch = state.epoch
                payload = encode_summary_delta(epoch, state.units, units)
                kind = "delta"
                self.deltas_sent += 1
        else:
            # Gating-only configurations skip framing entirely: the
            # wire format (and byte accounting) matches the seed path.
            epoch = 0 if state is None else state.epoch
            payload = self._serde.serialize(payload_dict)
            kind = "raw"
            self.fulls_sent += 1

        size = len(payload)
        if state is None:
            state = _StreamState(units, epoch, now, size)
            self._streams[key] = state
        else:
            state.units = units
            state.epoch = epoch
            state.last_sent_s = now
            state.dirty = False
            if kind != "delta":
                state.full_size = size
        self.bytes_sent += size
        self.msgs_sent[band] += 1
        self.frame_size_counts[size] = self.frame_size_counts.get(size, 0) + 1
        return SendPlan(peer=peer, car=car, payload=payload, band=band, kind=kind)

    def mark_lost(self, peer: str, car: int) -> None:
        """A frame toward ``peer`` was lost in flight: the receiver's
        baseline can no longer be assumed, so the next send resyncs."""
        state = self._streams.get((peer, car))
        if state is not None:
            state.dirty = True

    def forget_car(self, car: int) -> None:
        """Drop every stream for ``car`` (it handed over away)."""
        for key in [key for key in self._streams if key[1] == car]:
            del self._streams[key]

    @property
    def msgs_sent_total(self) -> int:
        return sum(self.msgs_sent.values())


class SummaryRxCache:
    """Receiver-side baseline cache resolving summary frames.

    Full frames (re)establish a car's baseline and epoch; delta frames
    apply against it.  A delta whose baseline is missing or whose epoch
    mismatches is *stale* — dropped, counted, and healed by the
    sender's next full resync (the sender marks the stream dirty on
    any loss it can observe).
    """

    def __init__(self, serde: Serde) -> None:
        self._serde = serde
        self._units: Dict[int, Tuple[int, ...]] = {}
        self._epochs: Dict[int, int] = {}

    def resolve(self, frame: SummaryFrame) -> Optional[PredictionSummary]:
        if frame.kind == SUMMARY_FULL:
            payload = self._serde.deserialize(frame.body)
            units = quantize_summary(payload)
            self._units[units[0]] = units
            self._epochs[units[0]] = frame.epoch
            return PredictionSummary.from_payload(payload)
        base = self._units.get(frame.car)
        if base is None or self._epochs.get(frame.car) != frame.epoch:
            return None
        units = apply_summary_delta(base, frame.deltas)
        self._units[frame.car] = units
        return PredictionSummary.from_payload(summary_payload_from_units(units))
