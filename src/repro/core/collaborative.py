"""CAD3: the collaborative detector (Sec. IV-D).

At the motorway-link RSU, detection fuses two sources:

1. the local Naive Bayes probability ``P_NB`` for the incoming record,
   and
2. the averaged prediction history ``P_prevs-bar`` forwarded by the
   upstream (motorway) RSU in a ``CO-DATA`` summary,

via the paper's Eq. 1::

    P_X = 0.5 * P_prevs_bar + 0.5 * P_NB

A Decision Tree then classifies the feature vector
``[Hour, P_X, Class_NB]``.  The tree learns when to trust the local NB
call and when the driver's history overrides it — which is what makes
the detection *driver-aware* as well as road-aware.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.block import TelemetryBlock
from repro.core.detector import AD3Detector
from repro.core.features import PredictionSummary, labels_of
from repro.dataset.schema import NORMAL, TelemetryRecord
from repro.geo.roadnet import RoadType
from repro.ml.base import Detector
from repro.ml.decision_tree import DecisionTreeClassifier

#: Prior used for vehicles with no forwarded history (e.g. a trip that
#: starts on the link): maximally uninformative, letting the Decision
#: Tree fall back on the local NB evidence.
NEUTRAL_PRIOR = 0.5

#: Eq. 1 weights.
HISTORY_WEIGHT = 0.5
LOCAL_WEIGHT = 0.5

#: Probability clamp for the log-odds utility (Eq. 1 fuses linear
#: probabilities, but gating reasons in logit space where "decision
#: movement" is scale-free near both ends).
_LOGIT_CLAMP = 1e-6


def _logit(p: float) -> float:
    p = min(max(p, _LOGIT_CLAMP), 1.0 - _LOGIT_CLAMP)
    return math.log(p / (1.0 - p))


def prior_logit_shift(
    p_base: float, p_new: float, history_weight: float = HISTORY_WEIGHT
) -> float:
    """Expected downstream-decision movement of re-announcing a prior.

    The downstream RSU fuses the forwarded driver prior with weight
    ``history_weight`` (Eq. 1), so the largest movement an updated
    P_prevs-bar can impose on the fused posterior's log-odds is the
    weighted logit distance between what the receiver currently holds
    (``p_base`` — the last value sent, or :data:`NEUTRAL_PRIOR` before
    first contact) and the fresh value.  The collaboration plane gates
    CO-DATA sends on this utility: below the threshold the downstream
    decision cannot materially shift, so the frame is suppressed.
    """
    return history_weight * abs(_logit(p_new) - _logit(p_base))


class CollaborativeDetector(Detector):
    """CAD3 detection at a collaborating RSU.

    Parameters
    ----------
    road_type:
        Road type of the RSU running this detector (the paper's
        motorway link).
    nb:
        Optional pre-trained local :class:`AD3Detector`; built fresh
        when omitted.
    max_depth:
        Depth of the fusion Decision Tree (MLlib default 5).
    """

    FEATURE_NAMES = ["Hour", "P_X", "Class_NB"]

    def __init__(
        self,
        road_type: RoadType,
        nb: Optional[AD3Detector] = None,
        max_depth: int = 5,
        history_weight: float = HISTORY_WEIGHT,
    ) -> None:
        if not 0.0 <= history_weight <= 1.0:
            raise ValueError(
                f"history_weight must be in [0, 1]: {history_weight}"
            )
        self.road_type = road_type
        self.nb = nb or AD3Detector(road_type)
        self.tree = DecisionTreeClassifier(max_depth=max_depth)
        #: Eq. 1 weight on the forwarded history (paper: 0.5).  The
        #: local NB term gets ``1 - history_weight``.  Exposed for the
        #: ablation benches.
        self.history_weight = history_weight
        self._fitted = False

    # ------------------------------------------------------------------
    # Eq. 1 fusion
    # ------------------------------------------------------------------
    @staticmethod
    def fuse(p_nb: np.ndarray, p_prevs_bar: np.ndarray) -> np.ndarray:
        """Eq. 1 with the paper's weights:
        P_X = 0.5 * P_prevs_bar + 0.5 * P_NB."""
        return HISTORY_WEIGHT * np.asarray(p_prevs_bar) + LOCAL_WEIGHT * np.asarray(
            p_nb
        )

    def _fuse(self, p_nb: np.ndarray, p_prevs_bar: np.ndarray) -> np.ndarray:
        """Instance fusion honouring ``history_weight``."""
        weight = self.history_weight
        return weight * np.asarray(p_prevs_bar) + (1.0 - weight) * np.asarray(
            p_nb
        )

    def _history_vector(
        self,
        records: Sequence[TelemetryRecord],
        summaries: Mapping[int, PredictionSummary],
    ) -> np.ndarray:
        return np.array(
            [
                (
                    summaries[r.car_id].mean_normal_prob
                    if r.car_id in summaries
                    else NEUTRAL_PRIOR
                )
                for r in records
            ]
        )

    def _fusion_features(
        self,
        records: Sequence[TelemetryRecord],
        summaries: Mapping[int, PredictionSummary],
    ) -> np.ndarray:
        classes, p_nb = self.nb.detect(records)
        p_prevs = self._history_vector(records, summaries)
        p_x = self._fuse(p_nb, p_prevs)
        hours = np.array([float(r.hour) for r in records])
        return np.column_stack([hours, p_x, classes.astype(float)])

    # ------------------------------------------------------------------
    # Training / inference
    # ------------------------------------------------------------------
    def fit(
        self,
        records: Sequence[TelemetryRecord],
        summaries: Mapping[int, PredictionSummary],
        refit_nb: bool = True,
    ) -> "CollaborativeDetector":
        """Train the local NB (optionally) and the fusion tree.

        ``summaries`` maps car id to the upstream RSU's forwarded
        history for the same trips as ``records`` — the training-time
        analogue of what ``CO-DATA`` carries online.
        """
        if not records:
            raise ValueError("cannot fit on zero records")
        if refit_nb or not self.nb.fitted:
            self.nb.fit(records)
        X = self._fusion_features(records, summaries)
        y = labels_of(records)
        self.tree.fit(X, y)
        self._fitted = True
        return self

    @property
    def fitted(self) -> bool:
        return self._fitted

    def predict(
        self,
        records: Sequence[TelemetryRecord],
        summaries: Mapping[int, PredictionSummary],
    ) -> np.ndarray:
        """Fused class per record: 1 normal, 0 abnormal."""
        if not records:
            return np.empty(0, dtype=int)
        if not self._fitted:
            raise RuntimeError("CollaborativeDetector must be fitted first")
        X = self._fusion_features(records, summaries)
        return self.tree.predict(X)

    def predict_normal_proba(
        self,
        records: Sequence[TelemetryRecord],
        summaries: Mapping[int, PredictionSummary],
    ) -> np.ndarray:
        if not records:
            return np.empty(0)
        if not self._fitted:
            raise RuntimeError("CollaborativeDetector must be fitted first")
        X = self._fusion_features(records, summaries)
        return self.tree.proba_of(X, NORMAL)

    def detect(
        self,
        records: Sequence[TelemetryRecord],
        summaries: Optional[Mapping[int, PredictionSummary]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if summaries is None:
            summaries = {}
        return (
            self.predict(records, summaries),
            self.predict_normal_proba(records, summaries),
        )

    def _history_vector_block(
        self,
        block: TelemetryBlock,
        summaries: Mapping[int, PredictionSummary],
    ) -> np.ndarray:
        if not summaries:
            return np.full(len(block), NEUTRAL_PRIOR)
        # One dict lookup per *unique* car, scattered back per record.
        unique_cars, inverse = np.unique(block.car_id, return_inverse=True)
        per_car = np.empty(len(unique_cars))
        for index, car in enumerate(unique_cars.tolist()):
            summary = summaries.get(car)
            per_car[index] = (
                NEUTRAL_PRIOR if summary is None else summary.mean_normal_prob
            )
        return per_car[inverse]

    def detect_block(
        self,
        block: TelemetryBlock,
        summaries: Optional[Mapping[int, PredictionSummary]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar :meth:`detect`: the fusion features are built once
        (the record path rebuilds them — and re-runs the NB — for the
        class and the probability separately) and the NB likelihood is
        evaluated a single time.  Output is bit-identical to
        ``detect(block.records(), summaries)``.
        """
        if summaries is None:
            summaries = {}
        if len(block) == 0:
            return np.empty(0, dtype=int), np.empty(0)
        if not self._fitted:
            raise RuntimeError("CollaborativeDetector must be fitted first")
        classes_nb, p_nb = self.nb.detect_block(block)
        p_prevs = self._history_vector_block(block, summaries)
        p_x = self._fuse(p_nb, p_prevs)
        hours = block.hour.astype(np.float64)
        X = np.column_stack([hours, p_x, classes_nb.astype(float)])
        return self.tree.predict(X), self.tree.proba_of(X, NORMAL)

    def explain(self) -> str:
        """The learned fusion rules, human-readable."""
        return self.tree.export_text(self.FEATURE_NAMES)

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"CollaborativeDetector(road_type={self.road_type.value!r}, {state})"


def summaries_from_upstream(
    upstream: AD3Detector,
    upstream_records: Sequence[TelemetryRecord],
    timestamp: Optional[float] = None,
) -> Dict[int, PredictionSummary]:
    """Build per-car summaries from an upstream RSU's predictions.

    The offline analogue of the online ``CO-DATA`` flow: run the
    upstream detector over the records it saw, group by car, and
    average the normal-class probabilities (P_prevs-bar).
    """
    if not upstream_records:
        return {}
    classes, probs = upstream.detect(upstream_records)
    per_car_probs: Dict[int, list] = {}
    per_car_last: Dict[int, Tuple[float, int, int]] = {}
    for record, cls, prob in zip(upstream_records, classes, probs):
        per_car_probs.setdefault(record.car_id, []).append(float(prob))
        previous = per_car_last.get(record.car_id)
        if previous is None or record.timestamp >= previous[0]:
            per_car_last[record.car_id] = (
                record.timestamp,
                int(cls),
                record.road_id,
            )
    summaries = {}
    for car_id, car_probs in per_car_probs.items():
        last_ts, last_class, road_id = per_car_last[car_id]
        summaries[car_id] = PredictionSummary(
            car_id=car_id,
            mean_normal_prob=float(np.mean(car_probs)),
            n_predictions=len(car_probs),
            last_class=last_class,
            from_road_id=road_id,
            timestamp=timestamp if timestamp is not None else last_ts,
        )
    return summaries
