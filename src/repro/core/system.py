"""Testbed scenario assembly (the paper's Fig. 5 in simulation).

Two topologies, matching the evaluation:

- :meth:`TestbedScenario.single_rsu` — one motorway RSU serving 8-256
  vehicles (Fig. 6a latency and Fig. 6c bandwidth scalability).
- :meth:`TestbedScenario.corridor` — four motorway RSUs collaborating
  with one motorway-link RSU, 128 vehicles each, with mid-run vehicle
  handover (Fig. 6b dissemination latency and Fig. 6d per-RSU
  bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.collaborative import CollaborativeDetector, summaries_from_upstream
from repro.core.detector import AD3Detector
from repro.core.rsu import RsuConfig, RsuNode
from repro.core.scenario import ScenarioBuilder, ScenarioSpec
from repro.core.vehicle import VehicleNode, VehicleStats
from repro.core.wire import topic_serdes
from repro.dataset.generator import DatasetGenerator, GeneratorConfig
from repro.dataset.preprocess import Preprocessor
from repro.dataset.schema import TelemetryRecord
from repro.geo.network_builder import CityNetworkBuilder
from repro.geo.roadnet import RoadType
from repro.net.dsrc import DSRC_BANDWIDTH_BPS, DsrcChannel
from repro.net.htb import HtbClass, HtbShaper
from repro.net.link import WiredLink
from repro.simkernel.rng import RngRegistry
from repro.simkernel.simulator import Simulator


@dataclass
class ResilienceStats:
    """What the faults cost, and how the system absorbed them.

    Aggregated over the whole scenario after the run; the injector's
    ``fault_log`` records what was injected and when, the counters
    record the system's response.
    """

    #: Timestamped injector actions (empty on fault-free runs).
    fault_log: List[object] = field(default_factory=list)
    #: Telemetry refused by a down broker and dropped (no retry policy).
    records_lost: int = 0
    #: Telemetry buffered during an outage and later delivered.
    records_retried: int = 0
    #: Telemetry evicted from full retry buffers (lost despite retry).
    records_dropped: int = 0
    #: Buffered telemetry discarded on purpose at a cross-road
    #: handover (stale for the new RSU's road model).
    records_abandoned: int = 0
    #: Warning polls refused by a down broker.
    poll_failures: int = 0
    #: Redundant produce attempts rejected by broker-side idempotence.
    duplicates_rejected: int = 0
    #: Broker shutdowns (crashes + permanent failures).
    broker_crashes: int = 0
    #: CO-DATA summaries lost to partitions or dead targets.
    summaries_lost: int = 0
    #: Per-RSU ``(time, "degraded" | "recovered")`` transitions.
    degradation_events: Dict[str, List[Tuple[float, str]]] = field(
        default_factory=dict
    )
    #: Per-RSU restart time (crashed-and-recovered nodes only).
    restarted_at_s: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "fault_log": [
                {
                    "time_s": entry.time_s,
                    "kind": entry.kind,
                    "target": entry.target,
                    "detail": entry.detail,
                }
                for entry in self.fault_log
            ],
            "records_lost": self.records_lost,
            "records_retried": self.records_retried,
            "records_dropped": self.records_dropped,
            "records_abandoned": self.records_abandoned,
            "poll_failures": self.poll_failures,
            "duplicates_rejected": self.duplicates_rejected,
            "broker_crashes": self.broker_crashes,
            "summaries_lost": self.summaries_lost,
            "degradation_events": {
                name: [[t, kind] for t, kind in events]
                for name, events in self.degradation_events.items()
            },
            "restarted_at_s": dict(self.restarted_at_s),
        }


@dataclass
class RsuMetrics:
    """Per-RSU results."""

    name: str
    mean_processing_ms: float
    bandwidth_in_bps: float
    n_events: int
    warnings_issued: int
    summaries_sent: int
    summaries_received: int
    mean_tx_ms: float
    mean_queuing_ms: float
    #: Online detection quality (None if no labelled events).
    detection: Optional[object] = None
    #: CO-DATA byte/suppression accounting (zero unless the
    #: bandwidth-adaptive collaboration plane is enabled).
    co_bytes_sent: int = 0
    co_bytes_suppressed: int = 0
    co_msgs_gated: int = 0
    co_stale_dropped: int = 0


@dataclass
class ScenarioResult:
    """Everything the Fig. 6 experiments read."""

    config: ScenarioSpec
    duration_s: float
    rsu_metrics: Dict[str, RsuMetrics]
    vehicle_stats: Dict[int, VehicleStats]
    #: Fault/recovery accounting (None only for results built by older
    #: code paths that predate the resilience layer).
    resilience: Optional[ResilienceStats] = None
    #: Merged metrics snapshot (:class:`repro.obs.metrics.RegistrySnapshot`);
    #: None unless the run had ``observability=True``.
    obs: Optional[object] = None

    # ------------------------------------------------------------------
    def _all_latencies(self, attribute: str) -> np.ndarray:
        values: List[float] = []
        for stats in self.vehicle_stats.values():
            values.extend(getattr(stats, attribute))
        return np.asarray(values)

    @property
    def e2e_latencies_ms(self) -> np.ndarray:
        return self._all_latencies("e2e_latencies_s") * 1e3

    @property
    def dissemination_latencies_ms(self) -> np.ndarray:
        return self._all_latencies("dissemination_latencies_s") * 1e3

    def mean_e2e_ms(self) -> float:
        latencies = self.e2e_latencies_ms
        return float(latencies.mean()) if latencies.size else 0.0

    def mean_dissemination_ms(self) -> float:
        latencies = self.dissemination_latencies_ms
        return float(latencies.mean()) if latencies.size else 0.0

    def mean_tx_ms(self) -> float:
        weighted = [
            (m.mean_tx_ms, m.n_events) for m in self.rsu_metrics.values()
        ]
        total = sum(n for _, n in weighted)
        if total == 0:
            return 0.0
        return sum(v * n for v, n in weighted) / total

    def mean_processing_ms(self) -> float:
        values = [m.mean_processing_ms for m in self.rsu_metrics.values()]
        return float(np.mean(values)) if values else 0.0

    def per_vehicle_bandwidth_bps(self) -> float:
        rates = [
            stats.bandwidth_bps(self.duration_s)
            for stats in self.vehicle_stats.values()
        ]
        return float(np.mean(rates)) if rates else 0.0

    def total_bandwidth_bps(self) -> float:
        return sum(m.bandwidth_in_bps for m in self.rsu_metrics.values())

    def to_dict(self) -> dict:
        """JSON-serialisable summary (for experiment artefacts)."""
        return {
            "duration_s": self.duration_s,
            "resilience": (
                None if self.resilience is None else self.resilience.to_dict()
            ),
            "obs": None if self.obs is None else self.obs.to_dict(),
            "n_vehicles": len(self.vehicle_stats),
            "mean_e2e_ms": self.mean_e2e_ms(),
            "mean_tx_ms": self.mean_tx_ms(),
            "mean_processing_ms": self.mean_processing_ms(),
            "mean_dissemination_ms": self.mean_dissemination_ms(),
            "per_vehicle_bandwidth_bps": self.per_vehicle_bandwidth_bps(),
            "total_bandwidth_bps": self.total_bandwidth_bps(),
            "rsus": {
                name: {
                    "bandwidth_in_bps": metrics.bandwidth_in_bps,
                    "mean_processing_ms": metrics.mean_processing_ms,
                    "n_events": metrics.n_events,
                    "warnings_issued": metrics.warnings_issued,
                    "summaries_sent": metrics.summaries_sent,
                    "summaries_received": metrics.summaries_received,
                    "co_bytes_sent": metrics.co_bytes_sent,
                    "co_bytes_suppressed": metrics.co_bytes_suppressed,
                    "co_msgs_gated": metrics.co_msgs_gated,
                    "co_stale_dropped": metrics.co_stale_dropped,
                    "detection": (
                        None
                        if metrics.detection is None
                        else {
                            "accuracy": metrics.detection.accuracy,
                            "f1": metrics.detection.f1,
                            "tp_rate": metrics.detection.tp_rate,
                            "fn_rate": metrics.detection.fn_rate,
                        }
                    ),
                }
                for name, metrics in self.rsu_metrics.items()
            },
        }


def default_training_dataset(seed: int = 11, n_cars: int = 150):
    """A labelled corridor dataset big enough to train scenario models."""
    network = CityNetworkBuilder(seed=seed).build_corridor()
    generator = DatasetGenerator(
        network,
        GeneratorConfig(
            n_cars=n_cars, trips_per_car=6, seed=seed, erroneous_rate=0.0
        ),
    )
    dataset = generator.generate()
    dataset.records = Preprocessor().run(dataset.records)
    return dataset


@dataclass
class ScenarioBundle:
    """Fitted detectors and replay record pools for one scenario.

    Built once in the parent process; forked shard workers share it
    copy-on-write, so every shard materializes from byte-identical
    models and record pools.
    """

    detectors: Dict[str, object]
    pools: Dict[str, List[TelemetryRecord]]


def corridor_bundle(
    config: ScenarioSpec,
    dataset=None,
    link_detector_kind: str = "cad3",
) -> ScenarioBundle:
    """Train the corridor's detectors and split its replay pools.

    ``link_detector_kind`` selects what the link RSU runs: ``"cad3"``
    (the collaborative detector, default) or ``"ad3"`` (standalone NB).
    """
    if link_detector_kind not in ("cad3", "ad3"):
        raise ValueError(f"unknown link_detector_kind: {link_detector_kind!r}")
    dataset = dataset or default_training_dataset(config.seed)
    train, replay = TestbedScenario._train_replay_split(dataset)
    motorway_train = [r for r in train if r.road_type is RoadType.MOTORWAY]
    link_train = [r for r in train if r.road_type is RoadType.MOTORWAY_LINK]
    motorway_records = [r for r in replay if r.road_type is RoadType.MOTORWAY]
    link_records = [r for r in replay if r.road_type is RoadType.MOTORWAY_LINK]

    motorway_detector = AD3Detector(RoadType.MOTORWAY).fit(motorway_train)
    if link_detector_kind == "cad3":
        summaries = summaries_from_upstream(motorway_detector, motorway_train)
        link_detector = CollaborativeDetector(RoadType.MOTORWAY_LINK).fit(
            link_train, summaries
        )
    else:
        link_detector = AD3Detector(RoadType.MOTORWAY_LINK).fit(link_train)
    return ScenarioBundle(
        detectors={"motorway": motorway_detector, "link": link_detector},
        pools={"motorway": motorway_records, "link": link_records},
    )


def collect_rsu_metrics(
    rsus: Dict[str, "RsuNode"], duration_s: float
) -> Dict[str, RsuMetrics]:
    """Per-RSU metrics after a run (shared with the shard workers)."""
    rsu_metrics = {}
    for name, rsu in rsus.items():
        tx = rsu.events.tx_s()
        queuing = rsu.events.queuing_s()
        plane = getattr(rsu, "collab", None)
        rsu_metrics[name] = RsuMetrics(
            name=name,
            mean_processing_ms=rsu.mean_processing_ms(),
            bandwidth_in_bps=rsu.bandwidth_in_bps(duration_s),
            n_events=len(rsu.events),
            warnings_issued=rsu.warnings_issued,
            summaries_sent=rsu.summaries_sent,
            summaries_received=rsu.summaries_received,
            mean_tx_ms=float(np.mean(tx)) * 1e3 if tx.size else 0.0,
            mean_queuing_ms=(
                float(np.mean(queuing)) * 1e3 if queuing.size else 0.0
            ),
            detection=rsu.detection_report(),
            co_bytes_sent=0 if plane is None else plane.bytes_sent,
            co_bytes_suppressed=(
                0 if plane is None else plane.bytes_suppressed
            ),
            co_msgs_gated=0 if plane is None else plane.msgs_gated,
            co_stale_dropped=getattr(rsu, "summaries_stale_dropped", 0),
        )
    return rsu_metrics


class TestbedScenario:
    """A wired-up simulation ready to :meth:`run`."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, config: ScenarioSpec) -> None:
        self.config = config
        self.sim = Simulator()
        self.rng = RngRegistry(config.seed)
        self.rsus: Dict[str, RsuNode] = {}
        self.channels: Dict[str, DsrcChannel] = {}
        self.shapers: Dict[str, HtbShaper] = {}
        self.vehicles: List[VehicleNode] = []
        self._next_car_id = 1
        self._record_pools: Dict[RoadType, List[TelemetryRecord]] = {}
        self._injector = None
        # Populated by run() on observability runs.
        self.obs_registry = None
        self.obs_recorder = None

    @staticmethod
    def builder() -> ScenarioBuilder:
        """Start a fluent :class:`~repro.core.scenario.ScenarioBuilder`."""
        return ScenarioBuilder()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @property
    def _batched(self) -> bool:
        return getattr(self.config, "dataplane", "event") == "batched"

    def _rsu_config(self) -> RsuConfig:
        return RsuConfig(
            batch_interval_s=self.config.batch_interval_s,
            processing_model=self.config.processing_model,
            columnar=self.config.columnar,
            block=self.config.columnar and self._batched,
            serdes=topic_serdes(self.config.serde_profile),
            upstream_timeout_s=self.config.upstream_timeout_s,
            collab=getattr(self.config, "collab", None),
        )

    def _wire_batched_flush(self, name: str) -> None:
        """Hook the RSU's pre-poll to the channel's deferred flush.

        Every micro-batch tick first resolves the contention of frames
        effective by the tick instant, landing them on IN-DATA exactly
        where their per-frame delivery events would have — the batch
        the poll then cuts is bit-identical to the event dataplane's.
        """
        channel = self.channels[name]
        self.rsus[name].context.pre_poll = lambda: channel.flush(self.sim.now)

    def add_rsu(self, name: str, detector) -> RsuNode:
        rsu = RsuNode(
            self.sim,
            name,
            detector,
            config=self._rsu_config(),
            jitter_rng=self.rng.stream(f"jitter.{name}"),
        )
        self.rsus[name] = rsu
        self.channels[name] = DsrcChannel(
            self.sim,
            mcs=self.config.mcs,
            rng=self.rng.stream(f"dsrc.{name}"),
            loss_prob=self.config.loss_prob,
        )
        if self.config.use_htb:
            root = HtbClass(f"{name}-root", DSRC_BANDWIDTH_BPS, DSRC_BANDWIDTH_BPS)
            self.shapers[name] = HtbShaper(root)
        collab = getattr(self.config, "collab", None)
        if (
            collab is not None
            and collab.enabled
            and collab.priority
            and self.config.use_htb
        ):
            # Two CO-DATA leaf classes under the RSU's shaper: urgent
            # (decision-changing deltas, warnings-adjacent) charges
            # before refresh (staleness keep-alives), so gated-but-sent
            # refresh traffic never delays what matters.
            shaper = self.shapers[name]
            urgent = shaper.add_leaf(
                HtbClass(
                    f"{name}-co-urgent",
                    collab.urgent_rate_bps,
                    DSRC_BANDWIDTH_BPS,
                    priority=0,
                )
            )
            refresh = shaper.add_leaf(
                HtbClass(
                    f"{name}-co-refresh",
                    collab.refresh_rate_bps,
                    DSRC_BANDWIDTH_BPS,
                    priority=1,
                )
            )
            rsu.attach_co_shaper(shaper, urgent.name, refresh.name)
        if self._batched:
            self._wire_batched_flush(name)
        return rsu

    def _shaper_for(self, rsu_name: str, car_id: int) -> Optional[HtbShaper]:
        if not self.config.use_htb:
            return None
        shaper = self.shapers[rsu_name]
        leaf_name = f"vehicle-{car_id}"
        try:
            shaper.leaf(leaf_name)
        except KeyError:
            shaper.add_leaf(
                HtbClass(leaf_name, self.config.htb_floor_bps, DSRC_BANDWIDTH_BPS)
            )
        return shaper

    def add_vehicles(
        self,
        rsu_name: str,
        count: int,
        records: Sequence[TelemetryRecord],
    ) -> List[VehicleNode]:
        """Attach ``count`` vehicles to an RSU, striping ``records``."""
        car_ids = tuple(
            range(self._next_car_id, self._next_car_id + count)
        )
        return self.add_vehicles_with_ids(rsu_name, car_ids, records)

    def add_vehicles_with_ids(
        self,
        rsu_name: str,
        car_ids: Sequence[int],
        records: Sequence[TelemetryRecord],
    ) -> List[VehicleNode]:
        """Attach vehicles with explicit identities, striping ``records``.

        Shard workers build only their own vehicle groups, so car ids
        (and the ``vehicle.{car_id}`` RNG stream names derived from
        them) must come from the topology, not a build-order counter.
        Vehicle ``car_ids[i]`` replays stripe ``records[i::len(car_ids)]``
        — identical to the counter-based path for a full group.
        """
        if not records:
            raise ValueError("need a non-empty record pool")
        rsu = self.rsus[rsu_name]
        channel = self.channels[rsu_name]
        created = []
        count = len(car_ids)
        for index, car_id in enumerate(car_ids):
            stripe = list(records[index::count]) or list(records)
            vehicle = VehicleNode(
                self.sim,
                car_id,
                stripe,
                rsu,
                channel,
                shaper=self._shaper_for(rsu_name, car_id),
                update_rate_hz=self.config.update_rate_hz,
                poll_interval_s=self.config.poll_interval_s,
                rng=self.rng.stream(f"vehicle.{car_id}"),
                serdes=topic_serdes(self.config.serde_profile),
                dissemination=self.config.dissemination,
                retry=self.config.producer_retry,
                dataplane=getattr(self.config, "dataplane", "event"),
            )
            self.vehicles.append(vehicle)
            created.append(vehicle)
        if car_ids:
            self._next_car_id = max(self._next_car_id, max(car_ids) + 1)
        return created

    def connect(self, src: str, dst: str, latency_s: float = 0.5e-3) -> None:
        link = WiredLink(self.sim, latency_s=latency_s, name=f"{src}->{dst}")
        self.rsus[src].connect(self.rsus[dst], link)

    # ------------------------------------------------------------------
    # Declarative assembly (shared with the sharded engine)
    # ------------------------------------------------------------------
    def materialize(
        self,
        topology,
        bundle: ScenarioBundle,
        local=None,
        remote_rsu=None,
    ) -> None:
        """Build (a shard of) a declarative topology.

        ``local=None`` builds everything (the serial path).  With a set
        of RSU names, only those RSUs and their vehicle groups are
        created; links toward non-local RSUs attach to a
        ``remote_rsu(name)`` proxy (the sharded engine's capture
        stand-in).  Handovers are *not* scheduled here: the serial path
        schedules them as simulator events
        (:meth:`schedule_topology_handovers`), the sharded engine
        executes them at its barriers.
        """

        def is_local(name: str) -> bool:
            return local is None or name in local

        for spec in topology.rsus:
            if not is_local(spec.name):
                continue
            self.add_rsu(spec.name, bundle.detectors[spec.detector])
            for dst in spec.connects_to:
                if is_local(dst):
                    self.connect(spec.name, dst)
                else:
                    if remote_rsu is None:
                        raise ValueError(
                            f"{spec.name!r} links to non-local {dst!r} but "
                            "no remote_rsu factory was given"
                        )
                    link = WiredLink(
                        self.sim, latency_s=0.5e-3, name=f"{spec.name}->{dst}"
                    )
                    self.rsus[spec.name].connect(remote_rsu(dst), link)
        for group in topology.groups:
            if is_local(group.rsu):
                self.add_vehicles_with_ids(
                    group.rsu, group.car_ids, bundle.pools[group.pool]
                )

    def schedule_topology_handovers(
        self, topology, bundle: ScenarioBundle
    ) -> None:
        """Schedule a topology's handovers as simulator events."""
        by_id = {vehicle.car_id: vehicle for vehicle in self.vehicles}
        for handover in topology.handovers:
            self.schedule_handover(
                [by_id[car_id] for car_id in handover.car_ids],
                handover.to_rsu,
                handover.at_s,
                bundle.pools[handover.pool],
            )

    def schedule_handover(
        self,
        vehicles: Sequence[VehicleNode],
        to_rsu: str,
        at_s: float,
        new_records: Sequence[TelemetryRecord],
    ) -> None:
        """Migrate ``vehicles`` to ``to_rsu`` at ``at_s`` (the paper's
        emulated mobility: producers switch RSU and sub-dataset)."""
        target = self.rsus[to_rsu]
        channel = self.channels[to_rsu]

        def migrate() -> None:
            for index, vehicle in enumerate(vehicles):
                old = vehicle.rsu
                old.handover(vehicle.car_id, to_rsu)
                # The vehicle changes road (and sub-dataset): telemetry
                # still buffered for the old RSU is stale, not replayed.
                vehicle.migrate(target, channel, drop_pending=True)
                vehicle.shaper = self._shaper_for(to_rsu, vehicle.car_id)
                stripe = list(new_records[index :: max(1, len(vehicles))])
                if stripe:
                    vehicle.set_records(stripe)

        self.sim.at(at_s, migrate, label="handover")

    def schedule_failover(
        self, rsu_name: str, fallback_name: str, at_s: float
    ) -> None:
        """Fail an RSU at ``at_s`` and re-home its vehicles.

        Models the edge-resilience scenario the paper motivates: when
        a node dies, its vehicles attach to a neighbouring RSU and
        detection continues (without the dead node's history — the
        failed node cannot forward CO-DATA summaries).
        """
        if rsu_name == fallback_name:
            raise ValueError("fallback must be a different RSU")
        failed = self.rsus[rsu_name]
        fallback = self.rsus[fallback_name]
        fallback_channel = self.channels[fallback_name]

        def fail() -> None:
            failed.fail()
            for vehicle in self.vehicles:
                if vehicle.rsu is failed:
                    vehicle.migrate(fallback, fallback_channel)
                    vehicle.shaper = self._shaper_for(
                        fallback_name, vehicle.car_id
                    )

        self.sim.at(at_s, fail, label="failover")

    # ------------------------------------------------------------------
    # Trip churn (mid-run spawn / retire)
    # ------------------------------------------------------------------
    def spawn_vehicles(
        self,
        rsu_name: str,
        count: int,
        at_s: float,
        records: Sequence[TelemetryRecord],
    ) -> None:
        """Schedule ``count`` fresh vehicles to join ``rsu_name`` at
        ``at_s`` and run until the scenario ends.

        Car ids are assigned when the spawn *fires* (from the same
        counter :meth:`add_vehicles` uses), so interleaved spawns stay
        deterministic: the simulator fires same-time events in schedule
        order.
        """
        if count < 1:
            raise ValueError("spawn count must be >= 1")

        def spawn() -> None:
            created = self.add_vehicles(rsu_name, count, records)
            for vehicle in created:
                vehicle.start(until=self.config.duration_s)

        self.sim.at(at_s, spawn, label="spawn")

    def schedule_retire(self, car_ids: Sequence[int], at_s: float) -> None:
        """Retire the given vehicles at ``at_s`` (their trips end).

        Retired vehicles stop producing and polling but stay attached,
        so their remaining warnings stay auditable; their stats are
        still collected at the end of the run.
        """
        targets = tuple(car_ids)

        def retire() -> None:
            by_id = {vehicle.car_id: vehicle for vehicle in self.vehicles}
            for car_id in targets:
                vehicle = by_id.get(car_id)
                if vehicle is None:
                    raise KeyError(f"no vehicle with car id {car_id}")
                vehicle.retire()

        self.sim.at(at_s, retire, label="retire")

    # ------------------------------------------------------------------
    # Canonical topologies
    # ------------------------------------------------------------------
    @staticmethod
    def _train_replay_split(dataset) -> tuple:
        """The paper's protocol: 80 % of trips train the models, the
        remaining 20 % are what the emulated vehicles replay online."""
        return dataset.split_by_trip(0.8, seed=0)

    @classmethod
    def single_rsu(
        cls, config: ScenarioSpec, dataset=None
    ) -> "TestbedScenario":
        """One motorway RSU with ``config.n_vehicles`` vehicles."""
        scenario = cls(config)
        dataset = dataset or default_training_dataset(config.seed)
        train, replay = cls._train_replay_split(dataset)
        motorway_train = [
            r for r in train if r.road_type is RoadType.MOTORWAY
        ]
        motorway_replay = [
            r for r in replay if r.road_type is RoadType.MOTORWAY
        ]
        detector = AD3Detector(RoadType.MOTORWAY).fit(motorway_train)
        scenario.add_rsu("rsu-motorway", detector)
        scenario.add_vehicles(
            "rsu-motorway", config.n_vehicles, motorway_replay
        )
        return scenario

    @classmethod
    def single_rsu_cloud(
        cls, config: ScenarioSpec, dataset=None, cloud=None
    ) -> "TestbedScenario":
        """The QF-COTE-style baseline: detection offloaded to the
        cloud behind the RSU (Sec. VII-A comparison)."""
        from repro.core.cloud import CloudRelayRsu

        scenario = cls(config)
        dataset = dataset or default_training_dataset(config.seed)
        train, replay = cls._train_replay_split(dataset)
        motorway_train = [
            r for r in train if r.road_type is RoadType.MOTORWAY
        ]
        motorway = [r for r in replay if r.road_type is RoadType.MOTORWAY]
        detector = AD3Detector(RoadType.MOTORWAY).fit(motorway_train)
        name = "rsu-motorway-cloud"
        rsu = CloudRelayRsu(
            scenario.sim,
            name,
            detector,
            cloud=cloud,
            config=scenario._rsu_config(),
            jitter_rng=scenario.rng.stream(f"jitter.{name}"),
        )
        scenario.rsus[name] = rsu
        scenario.channels[name] = DsrcChannel(
            scenario.sim,
            mcs=config.mcs,
            rng=scenario.rng.stream(f"dsrc.{name}"),
        )
        if config.use_htb:
            root = HtbClass(
                f"{name}-root", DSRC_BANDWIDTH_BPS, DSRC_BANDWIDTH_BPS
            )
            scenario.shapers[name] = HtbShaper(root)
        if scenario._batched:
            scenario._wire_batched_flush(name)
        scenario.add_vehicles(name, config.n_vehicles, motorway)
        return scenario

    @classmethod
    def corridor(
        cls,
        config: ScenarioSpec,
        motorways: int = 4,
        dataset=None,
        link_detector_kind: str = "cad3",
    ) -> "TestbedScenario":
        """``motorways`` motorway RSUs collaborating with one link RSU.

        ``link_detector_kind`` selects what the link RSU runs:
        ``"cad3"`` (the collaborative detector, default) or ``"ad3"``
        (standalone NB) — the knob behind the full-system Fig. 7
        comparison.
        """
        from repro.core.topology import corridor_topology

        topology = corridor_topology(config, motorways)
        bundle = corridor_bundle(
            config, dataset=dataset, link_detector_kind=link_detector_kind
        )
        scenario = cls(config)
        scenario.materialize(topology, bundle)
        scenario.schedule_topology_handovers(topology, bundle)
        return scenario

    @classmethod
    def chain(
        cls,
        config: ScenarioSpec,
        hops: int = 3,
        dataset=None,
    ) -> "TestbedScenario":
        """``hops`` motorway RSUs in a line; every vehicle traverses
        them all, handing over (and carrying its summary on) at each
        boundary — the online form of the mesoscopic chain.
        """
        if hops < 2:
            raise ValueError("a chain needs at least 2 hops")
        scenario = cls(config)
        dataset = dataset or default_training_dataset(config.seed)
        train, replay = cls._train_replay_split(dataset)
        motorway_train = [
            r for r in train if r.road_type is RoadType.MOTORWAY
        ]
        motorway_replay = [
            r for r in replay if r.road_type is RoadType.MOTORWAY
        ]
        nb = AD3Detector(RoadType.MOTORWAY).fit(motorway_train)
        summaries = summaries_from_upstream(nb, motorway_train)
        collaborative = CollaborativeDetector(
            RoadType.MOTORWAY, nb=nb
        ).fit(motorway_train, summaries, refit_nb=False)

        names = [f"rsu-hop-{index + 1}" for index in range(hops)]
        for index, name in enumerate(names):
            # First hop detects standalone; downstream hops fuse the
            # carried-on history.
            scenario.add_rsu(name, nb if index == 0 else collaborative)
            if index > 0:
                scenario.connect(names[index - 1], name)
        vehicles = scenario.add_vehicles(
            names[0], config.n_vehicles, motorway_replay
        )
        dwell = config.duration_s / hops
        for index in range(1, hops):
            scenario.schedule_handover(
                vehicles, names[index], index * dwell, motorway_replay
            )
        return scenario

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Start everything, run for the configured duration, collect."""
        until = self.config.duration_s
        if self.config.faults is not None and self._injector is None:
            # Imported lazily: repro.faults builds on repro.core.
            from repro.faults.injector import FaultInjector

            self._injector = FaultInjector(self)
            self._injector.install(self.config.faults)
        observing = bool(getattr(self.config, "observability", False))
        snapshot = None
        if observing:
            # Imported lazily: repro.obs stays off the cold path.
            from repro.obs import metrics as obs_metrics
            from repro.obs.collect import finalize_scenario
            from repro.obs.trace import (
                SpanRecorder,
                disable_tracing,
                enable_tracing,
            )

            self.obs_registry = obs_metrics.MetricsRegistry()
            self.obs_recorder = SpanRecorder()
            obs_metrics.enable(self.obs_registry)
            enable_tracing(self.obs_recorder)
        try:
            for rsu in self.rsus.values():
                rsu.start(until=until)
            for vehicle in self.vehicles:
                vehicle.start(until=until)
            # Allow in-flight batches/polls to complete shortly past the
            # nominal end before freezing measurements.
            self.sim.run_until(until + 0.5)
            if self._batched:
                # Resolve frames still deferred past the last tick: the
                # event dataplane's delivery events inside the drain
                # window fired (frames landing after it never deliver
                # in either mode — flush schedules them as dead events,
                # just as run_until left them unfired).
                for channel in self.channels.values():
                    channel.flush(self.sim.now)
            for vehicle in self.vehicles:
                vehicle.stop()
            for rsu in self.rsus.values():
                rsu.stop()
            if observing:
                finalize_scenario(self, self.obs_registry, self.obs_recorder)
                snapshot = self.obs_registry.snapshot()
        finally:
            if observing:
                obs_metrics.disable()
                disable_tracing()

        return ScenarioResult(
            config=self.config,
            duration_s=self.config.duration_s,
            rsu_metrics=collect_rsu_metrics(self.rsus, self.config.duration_s),
            vehicle_stats={v.car_id: v.stats for v in self.vehicles},
            resilience=self._collect_resilience(),
            obs=snapshot,
        )

    def _collect_resilience(self) -> ResilienceStats:
        """Aggregate fault/recovery accounting across all nodes."""
        stats = ResilienceStats(
            fault_log=list(self._injector.log) if self._injector else []
        )
        for vehicle in self.vehicles:
            stats.records_lost += vehicle.stats.records_lost
            stats.poll_failures += vehicle.stats.poll_failures
            stats.records_retried += vehicle._producer.records_retried
            stats.records_dropped += vehicle._producer.records_dropped
            stats.records_abandoned += vehicle._producer.records_abandoned
        for name, rsu in self.rsus.items():
            stats.duplicates_rejected += rsu.broker.duplicates_rejected
            stats.broker_crashes += rsu.broker.crashes
            stats.summaries_lost += rsu.summaries_lost
            if rsu.degradation_events:
                stats.degradation_events[name] = list(rsu.degradation_events)
            if rsu.restarted_at is not None:
                stats.restarted_at_s[name] = rsu.restarted_at
        return stats
