"""Declarative scenario topology, shared by the serial and sharded engines.

:meth:`TestbedScenario.corridor` used to wire its RSUs, vehicles, and
handovers imperatively; the sharded engine needs the same structure as
*data* — which RSU gets which car ids, which record stripe each vehicle
replays, and which cars hand over where — so each worker can materialize
exactly its own slice with identical identities and RNG stream names.
:func:`corridor_topology` captures the legacy build as a
:class:`CorridorTopology`; both engines build from it, which is what the
golden-equivalence tests lean on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class RsuSpec:
    """One RSU: its detector key and outgoing CO-DATA links."""

    name: str
    #: Key into the scenario bundle's fitted detectors.
    detector: str
    #: RSU names this node can forward CO-DATA to (build order).
    connects_to: Tuple[str, ...] = ()


@dataclass(frozen=True)
class VehicleGroup:
    """Vehicles attached to one RSU at build time.

    ``car_ids`` are explicit (not assigned by a build-order counter), so
    a shard that builds only this group creates the same identities —
    and therefore the same ``vehicle.{car_id}`` RNG streams — as the
    single-process build.  Vehicle ``car_ids[i]`` replays record stripe
    ``pool_records[i::len(car_ids)]``, matching the legacy striping.
    """

    rsu: str
    car_ids: Tuple[int, ...]
    #: Key into the scenario bundle's replay record pools.
    pool: str


@dataclass(frozen=True)
class HandoverSpec:
    """A scheduled migration of ``car_ids`` (in pool order) to one RSU."""

    at_s: float
    to_rsu: str
    car_ids: Tuple[int, ...]
    #: Pool the migrated vehicles replay from (stripe ``i`` of the pool
    #: goes to the car at position ``i``).
    pool: str


@dataclass(frozen=True)
class CorridorTopology:
    """The corridor scenario as data: RSUs, vehicle groups, handovers."""

    rsus: Tuple[RsuSpec, ...]
    groups: Tuple[VehicleGroup, ...]
    handovers: Tuple[HandoverSpec, ...]

    # ------------------------------------------------------------------
    def rsu_names(self) -> List[str]:
        return [spec.name for spec in self.rsus]

    def group_of(self, rsu_name: str) -> Optional[VehicleGroup]:
        for group in self.groups:
            if group.rsu == rsu_name:
                return group
        return None

    def home_of(self, car_id: int) -> str:
        """The RSU a car is attached to at build time."""
        for group in self.groups:
            if car_id in group.car_ids:
                return group.rsu
        raise KeyError(f"car {car_id} is in no vehicle group")

    def edges(self) -> List[Tuple[str, str]]:
        """Directed CO-DATA links ``(src, dst)``."""
        return [
            (spec.name, dst) for spec in self.rsus for dst in spec.connects_to
        ]

    def vehicle_load(self) -> Dict[str, int]:
        """Per-RSU load estimate: homed vehicles + handover influx.

        The influx term matters for planning: the handover target's
        post-migration population (and per-window event work) grows by
        every pool it receives.
        """
        load = {spec.name: 0 for spec in self.rsus}
        for group in self.groups:
            load[group.rsu] += len(group.car_ids)
        for handover in self.handovers:
            load[handover.to_rsu] += len(handover.car_ids)
        return load


def corridor_topology(spec, motorways: int = 4) -> CorridorTopology:
    """The paper's corridor (Fig. 5) as a :class:`CorridorTopology`.

    Car-id ranges reproduce the legacy sequential assignment: motorway
    ``i`` (1-based) owns ids ``(i-1)*n+1 .. i*n``, the link RSU owns the
    final block.  The handover pool is the first
    ``int(n * handover_fraction)`` vehicles of each motorway, in
    motorway order — ascending car id, which also pins the serial
    migration loop's ordering.
    """
    n = spec.n_vehicles
    link_name = "rsu-mw-link"
    rsus = [RsuSpec(link_name, "link")]
    groups: List[VehicleGroup] = []
    pool: List[int] = []
    n_migrating = int(n * spec.handover_fraction)
    for index in range(motorways):
        name = f"rsu-mw-{index + 1}"
        rsus.append(RsuSpec(name, "motorway", connects_to=(link_name,)))
        car_ids = tuple(range(index * n + 1, (index + 1) * n + 1))
        groups.append(VehicleGroup(name, car_ids, "motorway"))
        pool.extend(car_ids[:n_migrating])
    groups.append(
        VehicleGroup(
            link_name,
            tuple(range(motorways * n + 1, (motorways + 1) * n + 1)),
            "link",
        )
    )
    handovers: List[HandoverSpec] = []
    if pool:
        at = (
            spec.handover_at_s
            if spec.handover_at_s is not None
            else spec.duration_s / 2.0
        )
        handovers.append(HandoverSpec(at, link_name, tuple(pool), "link"))
    return CorridorTopology(tuple(rsus), tuple(groups), tuple(handovers))
