"""Cloud-offloaded detection: the QF-COTE-style comparator (Sec. VII-A).

The paper positions CAD3 against QF-COTE, an MEC system that "detects
road anomalies in over 300 ms, using the cloud for inter-node
collaboration".  This module models that architecture so the latency
comparison can be regenerated: the RSU still ingests telemetry, but
every micro-batch is shipped to a cloud backend over a wide-area link,
detected there, and the warnings ride back down before dissemination.

The cloud is elastic (batches process in parallel — no single-slot
queueing like the edge pipeline), so the cost is pure round-trip
latency plus cloud batch processing; with typical RSU-to-cloud WAN
latencies this lands in the >300 ms regime the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.features import IN_DATA, payload_to_record
from repro.core.rsu import DetectionEvent, RsuConfig, RsuNode
from repro.core.wire import decode_telemetry_block
from repro.dataset.schema import ABNORMAL
from repro.simkernel.simulator import Simulator


@dataclass(frozen=True)
class CloudProfile:
    """WAN + backend characteristics of the cloud detour.

    Defaults model a 2019-era MEC-to-cloud path: ~120 ms one-way WAN
    latency (cellular backhaul + internet transit to a regional cloud)
    and a batch-processing cost with a higher floor than the edge
    (virtualisation, load balancing, shared tenancy).
    """

    uplink_latency_s: float = 0.120
    downlink_latency_s: float = 0.120
    processing_base_s: float = 0.030
    processing_per_record_s: float = 20e-6
    jitter_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.uplink_latency_s < 0 or self.downlink_latency_s < 0:
            raise ValueError("latencies must be non-negative")
        if self.processing_base_s < 0:
            raise ValueError("processing base must be non-negative")


class CloudRelayRsu(RsuNode):
    """An RSU that offloads detection to the cloud.

    Identical ingestion and dissemination to :class:`RsuNode`; the
    detection itself happens after an uplink hop, cloud processing,
    and a downlink hop.  Collaboration state (CO-DATA) is unused: in
    the QF-COTE architecture the cloud *is* the collaboration point.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        detector,
        cloud: Optional[CloudProfile] = None,
        config: Optional[RsuConfig] = None,
        jitter_rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(sim, name, detector, config=config, jitter_rng=jitter_rng)
        self.cloud = cloud or CloudProfile()
        self._cloud_rng = jitter_rng or np.random.default_rng(0)
        self.batches_offloaded = 0

    def _on_batch(self, batch, completion_time: float) -> None:
        """Ship the batch to the cloud; detect and warn on return."""
        if batch.is_empty():
            return
        payloads = batch.collect()
        self.batches_offloaded += 1
        cloud = self.cloud
        jitter = 1.0 + cloud.jitter_fraction * float(
            self._cloud_rng.uniform(-1.0, 1.0)
        )
        processing = (
            cloud.processing_base_s
            + cloud.processing_per_record_s * len(payloads)
        ) * jitter
        detour = (
            cloud.uplink_latency_s + processing + cloud.downlink_latency_s
        )
        self.sim.after(
            detour,
            lambda p=payloads: self._cloud_result(p, self.sim.now + detour),
            label=f"{self.name}-cloud-return",
        )

    def _cloud_result(self, payloads, arrival_time: float) -> None:
        now = self.sim.now
        if self.config.columnar:
            # ``payloads`` are raw wire bytes in columnar mode;
            # batch-decode and score the block in one pass.
            block = decode_telemetry_block(
                payloads, serde=self._serde_for(IN_DATA)
            )
            classes, _ = self.detector.detect_block(block)
            abnormal = np.asarray(classes) == ABNORMAL
            self.events.append_block(
                block.car_id,
                block.generated_at,
                block.arrived_at,
                now,
                abnormal,
                block.label,
            )
            for position in np.nonzero(abnormal)[0].tolist():
                self._emit_warning(
                    car_id=int(block.car_id[position]),
                    road_id=int(block.road_id[position]),
                    speed_kmh=float(block.speed_kmh[position]),
                    generated_at=float(block.generated_at[position]),
                    detected_at=now,
                )
            return
        records = [payload_to_record(p["data"]) for p in payloads]
        classes, _ = self.detector.detect(records)
        for payload, record, cls in zip(payloads, records, classes):
            abnormal = int(cls) == ABNORMAL
            self.events.append(
                DetectionEvent(
                    car_id=record.car_id,
                    generated_at=payload["generated_at"],
                    arrived_at=payload["arrived_at"],
                    detected_at=now,
                    abnormal=abnormal,
                    true_label=record.label,
                )
            )
            if abnormal:
                self._emit_warning(
                    car_id=record.car_id,
                    road_id=record.road_id,
                    speed_kmh=record.speed_kmh,
                    generated_at=payload["generated_at"],
                    detected_at=now,
                )
